# Empty compiler generated dependencies file for test_replay_fuzz.
# This may be replaced when dependencies are built.
