file(REMOVE_RECURSE
  "CMakeFiles/test_replay_fuzz.dir/test_replay_fuzz.cpp.o"
  "CMakeFiles/test_replay_fuzz.dir/test_replay_fuzz.cpp.o.d"
  "test_replay_fuzz"
  "test_replay_fuzz.pdb"
  "test_replay_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
