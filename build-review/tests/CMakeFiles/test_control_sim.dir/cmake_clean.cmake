file(REMOVE_RECURSE
  "CMakeFiles/test_control_sim.dir/test_control_sim.cpp.o"
  "CMakeFiles/test_control_sim.dir/test_control_sim.cpp.o.d"
  "test_control_sim"
  "test_control_sim.pdb"
  "test_control_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
