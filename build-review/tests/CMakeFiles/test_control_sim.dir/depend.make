# Empty dependencies file for test_control_sim.
# This may be replaced when dependencies are built.
