file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_property.dir/test_cluster_property.cpp.o"
  "CMakeFiles/test_cluster_property.dir/test_cluster_property.cpp.o.d"
  "test_cluster_property"
  "test_cluster_property.pdb"
  "test_cluster_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
