# Empty dependencies file for test_cluster_property.
# This may be replaced when dependencies are built.
