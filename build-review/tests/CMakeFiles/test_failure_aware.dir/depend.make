# Empty dependencies file for test_failure_aware.
# This may be replaced when dependencies are built.
