file(REMOVE_RECURSE
  "CMakeFiles/test_failure_aware.dir/test_failure_aware.cpp.o"
  "CMakeFiles/test_failure_aware.dir/test_failure_aware.cpp.o.d"
  "test_failure_aware"
  "test_failure_aware.pdb"
  "test_failure_aware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
