file(REMOVE_RECURSE
  "CMakeFiles/test_accumulators.dir/test_accumulators.cpp.o"
  "CMakeFiles/test_accumulators.dir/test_accumulators.cpp.o.d"
  "test_accumulators"
  "test_accumulators.pdb"
  "test_accumulators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accumulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
