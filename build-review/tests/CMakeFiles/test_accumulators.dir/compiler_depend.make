# Empty compiler generated dependencies file for test_accumulators.
# This may be replaced when dependencies are built.
