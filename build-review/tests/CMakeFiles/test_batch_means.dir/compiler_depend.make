# Empty compiler generated dependencies file for test_batch_means.
# This may be replaced when dependencies are built.
