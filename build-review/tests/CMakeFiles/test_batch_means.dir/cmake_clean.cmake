file(REMOVE_RECURSE
  "CMakeFiles/test_batch_means.dir/test_batch_means.cpp.o"
  "CMakeFiles/test_batch_means.dir/test_batch_means.cpp.o.d"
  "test_batch_means"
  "test_batch_means.pdb"
  "test_batch_means[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_means.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
