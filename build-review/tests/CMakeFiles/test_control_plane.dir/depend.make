# Empty dependencies file for test_control_plane.
# This may be replaced when dependencies are built.
