file(REMOVE_RECURSE
  "CMakeFiles/test_control_plane.dir/test_control_plane.cpp.o"
  "CMakeFiles/test_control_plane.dir/test_control_plane.cpp.o.d"
  "test_control_plane"
  "test_control_plane.pdb"
  "test_control_plane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
