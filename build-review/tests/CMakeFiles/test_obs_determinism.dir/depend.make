# Empty dependencies file for test_obs_determinism.
# This may be replaced when dependencies are built.
