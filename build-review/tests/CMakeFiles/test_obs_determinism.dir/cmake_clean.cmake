file(REMOVE_RECURSE
  "CMakeFiles/test_obs_determinism.dir/test_obs_determinism.cpp.o"
  "CMakeFiles/test_obs_determinism.dir/test_obs_determinism.cpp.o.d"
  "test_obs_determinism"
  "test_obs_determinism.pdb"
  "test_obs_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obs_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
