# Empty dependencies file for test_determinism_golden.
# This may be replaced when dependencies are built.
