file(REMOVE_RECURSE
  "CMakeFiles/test_determinism_golden.dir/test_determinism_golden.cpp.o"
  "CMakeFiles/test_determinism_golden.dir/test_determinism_golden.cpp.o.d"
  "test_determinism_golden"
  "test_determinism_golden.pdb"
  "test_determinism_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_determinism_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
