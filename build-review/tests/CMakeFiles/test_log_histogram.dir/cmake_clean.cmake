file(REMOVE_RECURSE
  "CMakeFiles/test_log_histogram.dir/test_log_histogram.cpp.o"
  "CMakeFiles/test_log_histogram.dir/test_log_histogram.cpp.o.d"
  "test_log_histogram"
  "test_log_histogram.pdb"
  "test_log_histogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
