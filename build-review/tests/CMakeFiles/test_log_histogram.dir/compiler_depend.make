# Empty compiler generated dependencies file for test_log_histogram.
# This may be replaced when dependencies are built.
