file(REMOVE_RECURSE
  "CMakeFiles/test_provisioner.dir/test_provisioner.cpp.o"
  "CMakeFiles/test_provisioner.dir/test_provisioner.cpp.o.d"
  "test_provisioner"
  "test_provisioner.pdb"
  "test_provisioner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_provisioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
