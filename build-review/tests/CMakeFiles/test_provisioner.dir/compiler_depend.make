# Empty compiler generated dependencies file for test_provisioner.
# This may be replaced when dependencies are built.
