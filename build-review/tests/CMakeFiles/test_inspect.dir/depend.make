# Empty dependencies file for test_inspect.
# This may be replaced when dependencies are built.
