file(REMOVE_RECURSE
  "CMakeFiles/test_inspect.dir/test_inspect.cpp.o"
  "CMakeFiles/test_inspect.dir/test_inspect.cpp.o.d"
  "test_inspect"
  "test_inspect.pdb"
  "test_inspect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
