# Empty dependencies file for test_fault_sim.
# This may be replaced when dependencies are built.
