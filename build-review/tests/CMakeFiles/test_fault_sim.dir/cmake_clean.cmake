file(REMOVE_RECURSE
  "CMakeFiles/test_fault_sim.dir/test_fault_sim.cpp.o"
  "CMakeFiles/test_fault_sim.dir/test_fault_sim.cpp.o.d"
  "test_fault_sim"
  "test_fault_sim.pdb"
  "test_fault_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
