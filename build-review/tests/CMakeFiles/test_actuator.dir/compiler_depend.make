# Empty compiler generated dependencies file for test_actuator.
# This may be replaced when dependencies are built.
