file(REMOVE_RECURSE
  "CMakeFiles/test_actuator.dir/test_actuator.cpp.o"
  "CMakeFiles/test_actuator.dir/test_actuator.cpp.o.d"
  "test_actuator"
  "test_actuator.pdb"
  "test_actuator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_actuator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
