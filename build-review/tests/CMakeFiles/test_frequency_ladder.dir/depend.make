# Empty dependencies file for test_frequency_ladder.
# This may be replaced when dependencies are built.
