file(REMOVE_RECURSE
  "CMakeFiles/test_frequency_ladder.dir/test_frequency_ladder.cpp.o"
  "CMakeFiles/test_frequency_ladder.dir/test_frequency_ladder.cpp.o.d"
  "test_frequency_ladder"
  "test_frequency_ladder.pdb"
  "test_frequency_ladder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frequency_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
