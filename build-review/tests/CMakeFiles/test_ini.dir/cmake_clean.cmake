file(REMOVE_RECURSE
  "CMakeFiles/test_ini.dir/test_ini.cpp.o"
  "CMakeFiles/test_ini.dir/test_ini.cpp.o.d"
  "test_ini"
  "test_ini.pdb"
  "test_ini[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
