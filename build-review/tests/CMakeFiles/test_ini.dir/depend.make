# Empty dependencies file for test_ini.
# This may be replaced when dependencies are built.
