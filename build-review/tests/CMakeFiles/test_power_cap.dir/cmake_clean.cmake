file(REMOVE_RECURSE
  "CMakeFiles/test_power_cap.dir/test_power_cap.cpp.o"
  "CMakeFiles/test_power_cap.dir/test_power_cap.cpp.o.d"
  "test_power_cap"
  "test_power_cap.pdb"
  "test_power_cap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
