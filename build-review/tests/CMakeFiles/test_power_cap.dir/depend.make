# Empty dependencies file for test_power_cap.
# This may be replaced when dependencies are built.
