file(REMOVE_RECURSE
  "CMakeFiles/test_quantile.dir/test_quantile.cpp.o"
  "CMakeFiles/test_quantile.dir/test_quantile.cpp.o.d"
  "test_quantile"
  "test_quantile.pdb"
  "test_quantile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
