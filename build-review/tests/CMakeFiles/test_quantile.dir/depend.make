# Empty dependencies file for test_quantile.
# This may be replaced when dependencies are built.
