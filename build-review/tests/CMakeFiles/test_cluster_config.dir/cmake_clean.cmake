file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_config.dir/test_cluster_config.cpp.o"
  "CMakeFiles/test_cluster_config.dir/test_cluster_config.cpp.o.d"
  "test_cluster_config"
  "test_cluster_config.pdb"
  "test_cluster_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
