# Empty dependencies file for test_cluster_config.
# This may be replaced when dependencies are built.
