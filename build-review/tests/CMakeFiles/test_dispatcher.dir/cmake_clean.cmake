file(REMOVE_RECURSE
  "CMakeFiles/test_dispatcher.dir/test_dispatcher.cpp.o"
  "CMakeFiles/test_dispatcher.dir/test_dispatcher.cpp.o.d"
  "test_dispatcher"
  "test_dispatcher.pdb"
  "test_dispatcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
