# Empty dependencies file for test_dispatcher.
# This may be replaced when dependencies are built.
