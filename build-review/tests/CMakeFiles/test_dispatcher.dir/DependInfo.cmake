
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dispatcher.cpp" "tests/CMakeFiles/test_dispatcher.dir/test_dispatcher.cpp.o" "gcc" "tests/CMakeFiles/test_dispatcher.dir/test_dispatcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gc_exp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_control.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_queueing.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_power.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_cp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
