# Empty dependencies file for test_simulation_validation.
# This may be replaced when dependencies are built.
