file(REMOVE_RECURSE
  "CMakeFiles/test_simulation_validation.dir/test_simulation_validation.cpp.o"
  "CMakeFiles/test_simulation_validation.dir/test_simulation_validation.cpp.o.d"
  "test_simulation_validation"
  "test_simulation_validation.pdb"
  "test_simulation_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulation_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
