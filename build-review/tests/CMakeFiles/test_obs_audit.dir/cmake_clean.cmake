file(REMOVE_RECURSE
  "CMakeFiles/test_obs_audit.dir/test_obs_audit.cpp.o"
  "CMakeFiles/test_obs_audit.dir/test_obs_audit.cpp.o.d"
  "test_obs_audit"
  "test_obs_audit.pdb"
  "test_obs_audit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obs_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
