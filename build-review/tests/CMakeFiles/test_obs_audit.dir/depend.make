# Empty dependencies file for test_obs_audit.
# This may be replaced when dependencies are built.
