file(REMOVE_RECURSE
  "CMakeFiles/test_simulation_sweep.dir/test_simulation_sweep.cpp.o"
  "CMakeFiles/test_simulation_sweep.dir/test_simulation_sweep.cpp.o.d"
  "test_simulation_sweep"
  "test_simulation_sweep.pdb"
  "test_simulation_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
