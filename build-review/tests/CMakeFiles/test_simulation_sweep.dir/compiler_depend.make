# Empty compiler generated dependencies file for test_simulation_sweep.
# This may be replaced when dependencies are built.
