file(REMOVE_RECURSE
  "CMakeFiles/test_simulation_edge.dir/test_simulation_edge.cpp.o"
  "CMakeFiles/test_simulation_edge.dir/test_simulation_edge.cpp.o.d"
  "test_simulation_edge"
  "test_simulation_edge.pdb"
  "test_simulation_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulation_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
