file(REMOVE_RECURSE
  "CMakeFiles/test_dcp.dir/test_dcp.cpp.o"
  "CMakeFiles/test_dcp.dir/test_dcp.cpp.o.d"
  "test_dcp"
  "test_dcp.pdb"
  "test_dcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
