# Empty compiler generated dependencies file for test_dcp.
# This may be replaced when dependencies are built.
