file(REMOVE_RECURSE
  "CMakeFiles/test_event_queue_model.dir/test_event_queue_model.cpp.o"
  "CMakeFiles/test_event_queue_model.dir/test_event_queue_model.cpp.o.d"
  "test_event_queue_model"
  "test_event_queue_model.pdb"
  "test_event_queue_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_queue_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
