file(REMOVE_RECURSE
  "CMakeFiles/test_rate_profile.dir/test_rate_profile.cpp.o"
  "CMakeFiles/test_rate_profile.dir/test_rate_profile.cpp.o.d"
  "test_rate_profile"
  "test_rate_profile.pdb"
  "test_rate_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
