file(REMOVE_RECURSE
  "CMakeFiles/test_dispatcher_equivalence.dir/test_dispatcher_equivalence.cpp.o"
  "CMakeFiles/test_dispatcher_equivalence.dir/test_dispatcher_equivalence.cpp.o.d"
  "test_dispatcher_equivalence"
  "test_dispatcher_equivalence.pdb"
  "test_dispatcher_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dispatcher_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
