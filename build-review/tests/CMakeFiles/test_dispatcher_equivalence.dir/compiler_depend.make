# Empty compiler generated dependencies file for test_dispatcher_equivalence.
# This may be replaced when dependencies are built.
