# Empty dependencies file for test_obs_counters.
# This may be replaced when dependencies are built.
