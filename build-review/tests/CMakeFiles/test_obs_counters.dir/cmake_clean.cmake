file(REMOVE_RECURSE
  "CMakeFiles/test_obs_counters.dir/test_obs_counters.cpp.o"
  "CMakeFiles/test_obs_counters.dir/test_obs_counters.cpp.o.d"
  "test_obs_counters"
  "test_obs_counters.pdb"
  "test_obs_counters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obs_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
