# Empty dependencies file for test_hetero_sim.
# This may be replaced when dependencies are built.
