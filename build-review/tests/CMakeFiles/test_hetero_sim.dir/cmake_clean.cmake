file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_sim.dir/test_hetero_sim.cpp.o"
  "CMakeFiles/test_hetero_sim.dir/test_hetero_sim.cpp.o.d"
  "test_hetero_sim"
  "test_hetero_sim.pdb"
  "test_hetero_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
