# Empty dependencies file for test_energy_meter.
# This may be replaced when dependencies are built.
