file(REMOVE_RECURSE
  "CMakeFiles/test_energy_meter.dir/test_energy_meter.cpp.o"
  "CMakeFiles/test_energy_meter.dir/test_energy_meter.cpp.o.d"
  "test_energy_meter"
  "test_energy_meter.pdb"
  "test_energy_meter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
