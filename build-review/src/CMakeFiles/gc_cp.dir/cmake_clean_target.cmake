file(REMOVE_RECURSE
  "libgc_cp.a"
)
