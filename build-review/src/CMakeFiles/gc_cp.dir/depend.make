# Empty dependencies file for gc_cp.
# This may be replaced when dependencies are built.
