
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/actuator.cpp" "src/CMakeFiles/gc_cp.dir/control/actuator.cpp.o" "gcc" "src/CMakeFiles/gc_cp.dir/control/actuator.cpp.o.d"
  "/root/repo/src/control/estimator.cpp" "src/CMakeFiles/gc_cp.dir/control/estimator.cpp.o" "gcc" "src/CMakeFiles/gc_cp.dir/control/estimator.cpp.o.d"
  "/root/repo/src/cp/chaos.cpp" "src/CMakeFiles/gc_cp.dir/cp/chaos.cpp.o" "gcc" "src/CMakeFiles/gc_cp.dir/cp/chaos.cpp.o.d"
  "/root/repo/src/cp/control_plane.cpp" "src/CMakeFiles/gc_cp.dir/cp/control_plane.cpp.o" "gcc" "src/CMakeFiles/gc_cp.dir/cp/control_plane.cpp.o.d"
  "/root/repo/src/cp/replay.cpp" "src/CMakeFiles/gc_cp.dir/cp/replay.cpp.o" "gcc" "src/CMakeFiles/gc_cp.dir/cp/replay.cpp.o.d"
  "/root/repo/src/cp/snapshot.cpp" "src/CMakeFiles/gc_cp.dir/cp/snapshot.cpp.o" "gcc" "src/CMakeFiles/gc_cp.dir/cp/snapshot.cpp.o.d"
  "/root/repo/src/cp/wal.cpp" "src/CMakeFiles/gc_cp.dir/cp/wal.cpp.o" "gcc" "src/CMakeFiles/gc_cp.dir/cp/wal.cpp.o.d"
  "/root/repo/src/cp/wire.cpp" "src/CMakeFiles/gc_cp.dir/cp/wire.cpp.o" "gcc" "src/CMakeFiles/gc_cp.dir/cp/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gc_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
