file(REMOVE_RECURSE
  "CMakeFiles/gc_cp.dir/control/actuator.cpp.o"
  "CMakeFiles/gc_cp.dir/control/actuator.cpp.o.d"
  "CMakeFiles/gc_cp.dir/control/estimator.cpp.o"
  "CMakeFiles/gc_cp.dir/control/estimator.cpp.o.d"
  "CMakeFiles/gc_cp.dir/cp/chaos.cpp.o"
  "CMakeFiles/gc_cp.dir/cp/chaos.cpp.o.d"
  "CMakeFiles/gc_cp.dir/cp/control_plane.cpp.o"
  "CMakeFiles/gc_cp.dir/cp/control_plane.cpp.o.d"
  "CMakeFiles/gc_cp.dir/cp/replay.cpp.o"
  "CMakeFiles/gc_cp.dir/cp/replay.cpp.o.d"
  "CMakeFiles/gc_cp.dir/cp/snapshot.cpp.o"
  "CMakeFiles/gc_cp.dir/cp/snapshot.cpp.o.d"
  "CMakeFiles/gc_cp.dir/cp/wal.cpp.o"
  "CMakeFiles/gc_cp.dir/cp/wal.cpp.o.d"
  "CMakeFiles/gc_cp.dir/cp/wire.cpp.o"
  "CMakeFiles/gc_cp.dir/cp/wire.cpp.o.d"
  "libgc_cp.a"
  "libgc_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
