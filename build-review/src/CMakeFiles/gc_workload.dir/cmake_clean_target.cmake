file(REMOVE_RECURSE
  "libgc_workload.a"
)
