
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival_process.cpp" "src/CMakeFiles/gc_workload.dir/workload/arrival_process.cpp.o" "gcc" "src/CMakeFiles/gc_workload.dir/workload/arrival_process.cpp.o.d"
  "/root/repo/src/workload/rate_profile.cpp" "src/CMakeFiles/gc_workload.dir/workload/rate_profile.cpp.o" "gcc" "src/CMakeFiles/gc_workload.dir/workload/rate_profile.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/gc_workload.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/gc_workload.dir/workload/trace.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/CMakeFiles/gc_workload.dir/workload/workload.cpp.o" "gcc" "src/CMakeFiles/gc_workload.dir/workload/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gc_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
