# Empty dependencies file for gc_workload.
# This may be replaced when dependencies are built.
