file(REMOVE_RECURSE
  "CMakeFiles/gc_workload.dir/workload/arrival_process.cpp.o"
  "CMakeFiles/gc_workload.dir/workload/arrival_process.cpp.o.d"
  "CMakeFiles/gc_workload.dir/workload/rate_profile.cpp.o"
  "CMakeFiles/gc_workload.dir/workload/rate_profile.cpp.o.d"
  "CMakeFiles/gc_workload.dir/workload/trace.cpp.o"
  "CMakeFiles/gc_workload.dir/workload/trace.cpp.o.d"
  "CMakeFiles/gc_workload.dir/workload/workload.cpp.o"
  "CMakeFiles/gc_workload.dir/workload/workload.cpp.o.d"
  "libgc_workload.a"
  "libgc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
