file(REMOVE_RECURSE
  "CMakeFiles/gc_stats.dir/stats/accumulators.cpp.o"
  "CMakeFiles/gc_stats.dir/stats/accumulators.cpp.o.d"
  "CMakeFiles/gc_stats.dir/stats/batch_means.cpp.o"
  "CMakeFiles/gc_stats.dir/stats/batch_means.cpp.o.d"
  "CMakeFiles/gc_stats.dir/stats/distributions.cpp.o"
  "CMakeFiles/gc_stats.dir/stats/distributions.cpp.o.d"
  "CMakeFiles/gc_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/gc_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/gc_stats.dir/stats/log_histogram.cpp.o"
  "CMakeFiles/gc_stats.dir/stats/log_histogram.cpp.o.d"
  "CMakeFiles/gc_stats.dir/stats/quantile.cpp.o"
  "CMakeFiles/gc_stats.dir/stats/quantile.cpp.o.d"
  "libgc_stats.a"
  "libgc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
