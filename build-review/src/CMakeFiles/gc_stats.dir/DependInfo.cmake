
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/accumulators.cpp" "src/CMakeFiles/gc_stats.dir/stats/accumulators.cpp.o" "gcc" "src/CMakeFiles/gc_stats.dir/stats/accumulators.cpp.o.d"
  "/root/repo/src/stats/batch_means.cpp" "src/CMakeFiles/gc_stats.dir/stats/batch_means.cpp.o" "gcc" "src/CMakeFiles/gc_stats.dir/stats/batch_means.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/CMakeFiles/gc_stats.dir/stats/distributions.cpp.o" "gcc" "src/CMakeFiles/gc_stats.dir/stats/distributions.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/gc_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/gc_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/log_histogram.cpp" "src/CMakeFiles/gc_stats.dir/stats/log_histogram.cpp.o" "gcc" "src/CMakeFiles/gc_stats.dir/stats/log_histogram.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/CMakeFiles/gc_stats.dir/stats/quantile.cpp.o" "gcc" "src/CMakeFiles/gc_stats.dir/stats/quantile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
