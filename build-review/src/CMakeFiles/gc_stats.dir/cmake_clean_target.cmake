file(REMOVE_RECURSE
  "libgc_stats.a"
)
