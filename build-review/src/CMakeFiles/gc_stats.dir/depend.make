# Empty dependencies file for gc_stats.
# This may be replaced when dependencies are built.
