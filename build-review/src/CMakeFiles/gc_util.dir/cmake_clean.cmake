file(REMOVE_RECURSE
  "CMakeFiles/gc_util.dir/util/cli.cpp.o"
  "CMakeFiles/gc_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/gc_util.dir/util/csv.cpp.o"
  "CMakeFiles/gc_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/gc_util.dir/util/format.cpp.o"
  "CMakeFiles/gc_util.dir/util/format.cpp.o.d"
  "CMakeFiles/gc_util.dir/util/ini.cpp.o"
  "CMakeFiles/gc_util.dir/util/ini.cpp.o.d"
  "CMakeFiles/gc_util.dir/util/log.cpp.o"
  "CMakeFiles/gc_util.dir/util/log.cpp.o.d"
  "CMakeFiles/gc_util.dir/util/string_util.cpp.o"
  "CMakeFiles/gc_util.dir/util/string_util.cpp.o.d"
  "CMakeFiles/gc_util.dir/util/table.cpp.o"
  "CMakeFiles/gc_util.dir/util/table.cpp.o.d"
  "CMakeFiles/gc_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/gc_util.dir/util/thread_pool.cpp.o.d"
  "libgc_util.a"
  "libgc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
