
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/gc_util.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/gc_util.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/gc_util.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/gc_util.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/gc_util.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/gc_util.dir/util/format.cpp.o.d"
  "/root/repo/src/util/ini.cpp" "src/CMakeFiles/gc_util.dir/util/ini.cpp.o" "gcc" "src/CMakeFiles/gc_util.dir/util/ini.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/gc_util.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/gc_util.dir/util/log.cpp.o.d"
  "/root/repo/src/util/string_util.cpp" "src/CMakeFiles/gc_util.dir/util/string_util.cpp.o" "gcc" "src/CMakeFiles/gc_util.dir/util/string_util.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/gc_util.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/gc_util.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/gc_util.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/gc_util.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
