file(REMOVE_RECURSE
  "CMakeFiles/gc_obs.dir/obs/audit.cpp.o"
  "CMakeFiles/gc_obs.dir/obs/audit.cpp.o.d"
  "CMakeFiles/gc_obs.dir/obs/counters.cpp.o"
  "CMakeFiles/gc_obs.dir/obs/counters.cpp.o.d"
  "CMakeFiles/gc_obs.dir/obs/inspect.cpp.o"
  "CMakeFiles/gc_obs.dir/obs/inspect.cpp.o.d"
  "CMakeFiles/gc_obs.dir/obs/prometheus.cpp.o"
  "CMakeFiles/gc_obs.dir/obs/prometheus.cpp.o.d"
  "CMakeFiles/gc_obs.dir/obs/timeseries.cpp.o"
  "CMakeFiles/gc_obs.dir/obs/timeseries.cpp.o.d"
  "CMakeFiles/gc_obs.dir/obs/trace.cpp.o"
  "CMakeFiles/gc_obs.dir/obs/trace.cpp.o.d"
  "libgc_obs.a"
  "libgc_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
