
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/audit.cpp" "src/CMakeFiles/gc_obs.dir/obs/audit.cpp.o" "gcc" "src/CMakeFiles/gc_obs.dir/obs/audit.cpp.o.d"
  "/root/repo/src/obs/counters.cpp" "src/CMakeFiles/gc_obs.dir/obs/counters.cpp.o" "gcc" "src/CMakeFiles/gc_obs.dir/obs/counters.cpp.o.d"
  "/root/repo/src/obs/inspect.cpp" "src/CMakeFiles/gc_obs.dir/obs/inspect.cpp.o" "gcc" "src/CMakeFiles/gc_obs.dir/obs/inspect.cpp.o.d"
  "/root/repo/src/obs/prometheus.cpp" "src/CMakeFiles/gc_obs.dir/obs/prometheus.cpp.o" "gcc" "src/CMakeFiles/gc_obs.dir/obs/prometheus.cpp.o.d"
  "/root/repo/src/obs/timeseries.cpp" "src/CMakeFiles/gc_obs.dir/obs/timeseries.cpp.o" "gcc" "src/CMakeFiles/gc_obs.dir/obs/timeseries.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/CMakeFiles/gc_obs.dir/obs/trace.cpp.o" "gcc" "src/CMakeFiles/gc_obs.dir/obs/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gc_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
