file(REMOVE_RECURSE
  "CMakeFiles/gc_power.dir/power/energy_meter.cpp.o"
  "CMakeFiles/gc_power.dir/power/energy_meter.cpp.o.d"
  "CMakeFiles/gc_power.dir/power/frequency_ladder.cpp.o"
  "CMakeFiles/gc_power.dir/power/frequency_ladder.cpp.o.d"
  "CMakeFiles/gc_power.dir/power/power_model.cpp.o"
  "CMakeFiles/gc_power.dir/power/power_model.cpp.o.d"
  "libgc_power.a"
  "libgc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
