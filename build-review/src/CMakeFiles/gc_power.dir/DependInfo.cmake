
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/energy_meter.cpp" "src/CMakeFiles/gc_power.dir/power/energy_meter.cpp.o" "gcc" "src/CMakeFiles/gc_power.dir/power/energy_meter.cpp.o.d"
  "/root/repo/src/power/frequency_ladder.cpp" "src/CMakeFiles/gc_power.dir/power/frequency_ladder.cpp.o" "gcc" "src/CMakeFiles/gc_power.dir/power/frequency_ladder.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/CMakeFiles/gc_power.dir/power/power_model.cpp.o" "gcc" "src/CMakeFiles/gc_power.dir/power/power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
