# Empty dependencies file for gc_power.
# This may be replaced when dependencies are built.
