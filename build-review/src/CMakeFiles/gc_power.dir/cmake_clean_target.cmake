file(REMOVE_RECURSE
  "libgc_power.a"
)
