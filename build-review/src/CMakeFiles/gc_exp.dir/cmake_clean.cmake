file(REMOVE_RECURSE
  "CMakeFiles/gc_exp.dir/exp/comparison.cpp.o"
  "CMakeFiles/gc_exp.dir/exp/comparison.cpp.o.d"
  "CMakeFiles/gc_exp.dir/exp/hetero_sim.cpp.o"
  "CMakeFiles/gc_exp.dir/exp/hetero_sim.cpp.o.d"
  "CMakeFiles/gc_exp.dir/exp/runner.cpp.o"
  "CMakeFiles/gc_exp.dir/exp/runner.cpp.o.d"
  "CMakeFiles/gc_exp.dir/exp/scenario.cpp.o"
  "CMakeFiles/gc_exp.dir/exp/scenario.cpp.o.d"
  "libgc_exp.a"
  "libgc_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
