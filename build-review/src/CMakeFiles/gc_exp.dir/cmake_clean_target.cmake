file(REMOVE_RECURSE
  "libgc_exp.a"
)
