# Empty dependencies file for gc_exp.
# This may be replaced when dependencies are built.
