file(REMOVE_RECURSE
  "CMakeFiles/gc_queueing.dir/queueing/mg1.cpp.o"
  "CMakeFiles/gc_queueing.dir/queueing/mg1.cpp.o.d"
  "CMakeFiles/gc_queueing.dir/queueing/mm1.cpp.o"
  "CMakeFiles/gc_queueing.dir/queueing/mm1.cpp.o.d"
  "CMakeFiles/gc_queueing.dir/queueing/mmc.cpp.o"
  "CMakeFiles/gc_queueing.dir/queueing/mmc.cpp.o.d"
  "libgc_queueing.a"
  "libgc_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
