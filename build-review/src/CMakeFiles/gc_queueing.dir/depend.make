# Empty dependencies file for gc_queueing.
# This may be replaced when dependencies are built.
