
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/mg1.cpp" "src/CMakeFiles/gc_queueing.dir/queueing/mg1.cpp.o" "gcc" "src/CMakeFiles/gc_queueing.dir/queueing/mg1.cpp.o.d"
  "/root/repo/src/queueing/mm1.cpp" "src/CMakeFiles/gc_queueing.dir/queueing/mm1.cpp.o" "gcc" "src/CMakeFiles/gc_queueing.dir/queueing/mm1.cpp.o.d"
  "/root/repo/src/queueing/mmc.cpp" "src/CMakeFiles/gc_queueing.dir/queueing/mmc.cpp.o" "gcc" "src/CMakeFiles/gc_queueing.dir/queueing/mmc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
