file(REMOVE_RECURSE
  "libgc_queueing.a"
)
