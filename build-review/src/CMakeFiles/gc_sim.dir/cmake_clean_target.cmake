file(REMOVE_RECURSE
  "libgc_sim.a"
)
