# Empty dependencies file for gc_sim.
# This may be replaced when dependencies are built.
