file(REMOVE_RECURSE
  "CMakeFiles/gc_sim.dir/sim/admission.cpp.o"
  "CMakeFiles/gc_sim.dir/sim/admission.cpp.o.d"
  "CMakeFiles/gc_sim.dir/sim/cluster.cpp.o"
  "CMakeFiles/gc_sim.dir/sim/cluster.cpp.o.d"
  "CMakeFiles/gc_sim.dir/sim/control_channel.cpp.o"
  "CMakeFiles/gc_sim.dir/sim/control_channel.cpp.o.d"
  "CMakeFiles/gc_sim.dir/sim/dispatcher.cpp.o"
  "CMakeFiles/gc_sim.dir/sim/dispatcher.cpp.o.d"
  "CMakeFiles/gc_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/gc_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/gc_sim.dir/sim/fault_injector.cpp.o"
  "CMakeFiles/gc_sim.dir/sim/fault_injector.cpp.o.d"
  "CMakeFiles/gc_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/gc_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/gc_sim.dir/sim/server.cpp.o"
  "CMakeFiles/gc_sim.dir/sim/server.cpp.o.d"
  "CMakeFiles/gc_sim.dir/sim/sharded.cpp.o"
  "CMakeFiles/gc_sim.dir/sim/sharded.cpp.o.d"
  "CMakeFiles/gc_sim.dir/sim/simulation.cpp.o"
  "CMakeFiles/gc_sim.dir/sim/simulation.cpp.o.d"
  "libgc_sim.a"
  "libgc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
