
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/admission.cpp" "src/CMakeFiles/gc_sim.dir/sim/admission.cpp.o" "gcc" "src/CMakeFiles/gc_sim.dir/sim/admission.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/CMakeFiles/gc_sim.dir/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/gc_sim.dir/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/control_channel.cpp" "src/CMakeFiles/gc_sim.dir/sim/control_channel.cpp.o" "gcc" "src/CMakeFiles/gc_sim.dir/sim/control_channel.cpp.o.d"
  "/root/repo/src/sim/dispatcher.cpp" "src/CMakeFiles/gc_sim.dir/sim/dispatcher.cpp.o" "gcc" "src/CMakeFiles/gc_sim.dir/sim/dispatcher.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/gc_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/gc_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/fault_injector.cpp" "src/CMakeFiles/gc_sim.dir/sim/fault_injector.cpp.o" "gcc" "src/CMakeFiles/gc_sim.dir/sim/fault_injector.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/gc_sim.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/gc_sim.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/server.cpp" "src/CMakeFiles/gc_sim.dir/sim/server.cpp.o" "gcc" "src/CMakeFiles/gc_sim.dir/sim/server.cpp.o.d"
  "/root/repo/src/sim/sharded.cpp" "src/CMakeFiles/gc_sim.dir/sim/sharded.cpp.o" "gcc" "src/CMakeFiles/gc_sim.dir/sim/sharded.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/gc_sim.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/gc_sim.dir/sim/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gc_cp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_power.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
