
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_config.cpp" "src/CMakeFiles/gc_core.dir/core/cluster_config.cpp.o" "gcc" "src/CMakeFiles/gc_core.dir/core/cluster_config.cpp.o.d"
  "/root/repo/src/core/config_io.cpp" "src/CMakeFiles/gc_core.dir/core/config_io.cpp.o" "gcc" "src/CMakeFiles/gc_core.dir/core/config_io.cpp.o.d"
  "/root/repo/src/core/dcp.cpp" "src/CMakeFiles/gc_core.dir/core/dcp.cpp.o" "gcc" "src/CMakeFiles/gc_core.dir/core/dcp.cpp.o.d"
  "/root/repo/src/core/hetero.cpp" "src/CMakeFiles/gc_core.dir/core/hetero.cpp.o" "gcc" "src/CMakeFiles/gc_core.dir/core/hetero.cpp.o.d"
  "/root/repo/src/core/power_cap.cpp" "src/CMakeFiles/gc_core.dir/core/power_cap.cpp.o" "gcc" "src/CMakeFiles/gc_core.dir/core/power_cap.cpp.o.d"
  "/root/repo/src/core/provisioner.cpp" "src/CMakeFiles/gc_core.dir/core/provisioner.cpp.o" "gcc" "src/CMakeFiles/gc_core.dir/core/provisioner.cpp.o.d"
  "/root/repo/src/core/reliability.cpp" "src/CMakeFiles/gc_core.dir/core/reliability.cpp.o" "gcc" "src/CMakeFiles/gc_core.dir/core/reliability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/gc_power.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_queueing.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/gc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
