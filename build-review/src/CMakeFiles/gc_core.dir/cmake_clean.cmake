file(REMOVE_RECURSE
  "CMakeFiles/gc_core.dir/core/cluster_config.cpp.o"
  "CMakeFiles/gc_core.dir/core/cluster_config.cpp.o.d"
  "CMakeFiles/gc_core.dir/core/config_io.cpp.o"
  "CMakeFiles/gc_core.dir/core/config_io.cpp.o.d"
  "CMakeFiles/gc_core.dir/core/dcp.cpp.o"
  "CMakeFiles/gc_core.dir/core/dcp.cpp.o.d"
  "CMakeFiles/gc_core.dir/core/hetero.cpp.o"
  "CMakeFiles/gc_core.dir/core/hetero.cpp.o.d"
  "CMakeFiles/gc_core.dir/core/power_cap.cpp.o"
  "CMakeFiles/gc_core.dir/core/power_cap.cpp.o.d"
  "CMakeFiles/gc_core.dir/core/provisioner.cpp.o"
  "CMakeFiles/gc_core.dir/core/provisioner.cpp.o.d"
  "CMakeFiles/gc_core.dir/core/reliability.cpp.o"
  "CMakeFiles/gc_core.dir/core/reliability.cpp.o.d"
  "libgc_core.a"
  "libgc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
