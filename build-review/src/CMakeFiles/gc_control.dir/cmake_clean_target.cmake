file(REMOVE_RECURSE
  "libgc_control.a"
)
