file(REMOVE_RECURSE
  "CMakeFiles/gc_control.dir/control/config_io.cpp.o"
  "CMakeFiles/gc_control.dir/control/config_io.cpp.o.d"
  "CMakeFiles/gc_control.dir/control/failure_aware.cpp.o"
  "CMakeFiles/gc_control.dir/control/failure_aware.cpp.o.d"
  "CMakeFiles/gc_control.dir/control/policies.cpp.o"
  "CMakeFiles/gc_control.dir/control/policies.cpp.o.d"
  "CMakeFiles/gc_control.dir/control/predictor.cpp.o"
  "CMakeFiles/gc_control.dir/control/predictor.cpp.o.d"
  "CMakeFiles/gc_control.dir/control/reliability_dcp.cpp.o"
  "CMakeFiles/gc_control.dir/control/reliability_dcp.cpp.o.d"
  "libgc_control.a"
  "libgc_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
