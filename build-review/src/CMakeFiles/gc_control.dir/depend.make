# Empty dependencies file for gc_control.
# This may be replaced when dependencies are built.
