# Empty compiler generated dependencies file for gcreplay.
# This may be replaced when dependencies are built.
