file(REMOVE_RECURSE
  "CMakeFiles/gcreplay.dir/gcreplay.cpp.o"
  "CMakeFiles/gcreplay.dir/gcreplay.cpp.o.d"
  "gcreplay"
  "gcreplay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcreplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
