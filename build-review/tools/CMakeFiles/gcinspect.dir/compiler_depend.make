# Empty compiler generated dependencies file for gcinspect.
# This may be replaced when dependencies are built.
