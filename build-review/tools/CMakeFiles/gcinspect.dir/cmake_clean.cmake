file(REMOVE_RECURSE
  "CMakeFiles/gcinspect.dir/gcinspect.cpp.o"
  "CMakeFiles/gcinspect.dir/gcinspect.cpp.o.d"
  "gcinspect"
  "gcinspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcinspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
