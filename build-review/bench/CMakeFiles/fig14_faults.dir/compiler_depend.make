# Empty compiler generated dependencies file for fig14_faults.
# This may be replaced when dependencies are built.
