file(REMOVE_RECURSE
  "CMakeFiles/fig14_faults.dir/fig14_faults.cpp.o"
  "CMakeFiles/fig14_faults.dir/fig14_faults.cpp.o.d"
  "fig14_faults"
  "fig14_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
