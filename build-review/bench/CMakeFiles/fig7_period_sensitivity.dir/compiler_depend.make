# Empty compiler generated dependencies file for fig7_period_sensitivity.
# This may be replaced when dependencies are built.
