file(REMOVE_RECURSE
  "CMakeFiles/fig7_period_sensitivity.dir/fig7_period_sensitivity.cpp.o"
  "CMakeFiles/fig7_period_sensitivity.dir/fig7_period_sensitivity.cpp.o.d"
  "fig7_period_sensitivity"
  "fig7_period_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_period_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
