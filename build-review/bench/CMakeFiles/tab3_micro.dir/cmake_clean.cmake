file(REMOVE_RECURSE
  "CMakeFiles/tab3_micro.dir/tab3_micro.cpp.o"
  "CMakeFiles/tab3_micro.dir/tab3_micro.cpp.o.d"
  "tab3_micro"
  "tab3_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
