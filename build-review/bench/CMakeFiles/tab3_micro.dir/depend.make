# Empty dependencies file for tab3_micro.
# This may be replaced when dependencies are built.
