# Empty dependencies file for tab1_model_params.
# This may be replaced when dependencies are built.
