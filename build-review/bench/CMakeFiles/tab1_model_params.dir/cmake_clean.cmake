file(REMOVE_RECURSE
  "CMakeFiles/tab1_model_params.dir/tab1_model_params.cpp.o"
  "CMakeFiles/tab1_model_params.dir/tab1_model_params.cpp.o.d"
  "tab1_model_params"
  "tab1_model_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_model_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
