# Empty compiler generated dependencies file for fig15_control_faults.
# This may be replaced when dependencies are built.
