file(REMOVE_RECURSE
  "CMakeFiles/fig15_control_faults.dir/fig15_control_faults.cpp.o"
  "CMakeFiles/fig15_control_faults.dir/fig15_control_faults.cpp.o.d"
  "fig15_control_faults"
  "fig15_control_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_control_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
