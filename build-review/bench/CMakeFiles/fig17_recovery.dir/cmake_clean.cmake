file(REMOVE_RECURSE
  "CMakeFiles/fig17_recovery.dir/fig17_recovery.cpp.o"
  "CMakeFiles/fig17_recovery.dir/fig17_recovery.cpp.o.d"
  "fig17_recovery"
  "fig17_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
