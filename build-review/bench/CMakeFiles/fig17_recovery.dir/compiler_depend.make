# Empty compiler generated dependencies file for fig17_recovery.
# This may be replaced when dependencies are built.
