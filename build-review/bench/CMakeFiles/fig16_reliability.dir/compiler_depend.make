# Empty compiler generated dependencies file for fig16_reliability.
# This may be replaced when dependencies are built.
