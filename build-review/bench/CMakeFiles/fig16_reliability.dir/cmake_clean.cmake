file(REMOVE_RECURSE
  "CMakeFiles/fig16_reliability.dir/fig16_reliability.cpp.o"
  "CMakeFiles/fig16_reliability.dir/fig16_reliability.cpp.o.d"
  "fig16_reliability"
  "fig16_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
