file(REMOVE_RECURSE
  "CMakeFiles/fig2_operating_points.dir/fig2_operating_points.cpp.o"
  "CMakeFiles/fig2_operating_points.dir/fig2_operating_points.cpp.o.d"
  "fig2_operating_points"
  "fig2_operating_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_operating_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
