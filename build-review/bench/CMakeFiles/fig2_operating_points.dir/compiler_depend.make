# Empty compiler generated dependencies file for fig2_operating_points.
# This may be replaced when dependencies are built.
