# Empty compiler generated dependencies file for fig10_ablations.
# This may be replaced when dependencies are built.
