file(REMOVE_RECURSE
  "CMakeFiles/fig10_ablations.dir/fig10_ablations.cpp.o"
  "CMakeFiles/fig10_ablations.dir/fig10_ablations.cpp.o.d"
  "fig10_ablations"
  "fig10_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
