file(REMOVE_RECURSE
  "CMakeFiles/tab2_energy_savings.dir/tab2_energy_savings.cpp.o"
  "CMakeFiles/tab2_energy_savings.dir/tab2_energy_savings.cpp.o.d"
  "tab2_energy_savings"
  "tab2_energy_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_energy_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
