# Empty compiler generated dependencies file for tab2_energy_savings.
# This may be replaced when dependencies are built.
