# Empty compiler generated dependencies file for fig6_dcp_overhead.
# This may be replaced when dependencies are built.
