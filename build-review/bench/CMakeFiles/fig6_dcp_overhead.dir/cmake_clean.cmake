file(REMOVE_RECURSE
  "CMakeFiles/fig6_dcp_overhead.dir/fig6_dcp_overhead.cpp.o"
  "CMakeFiles/fig6_dcp_overhead.dir/fig6_dcp_overhead.cpp.o.d"
  "fig6_dcp_overhead"
  "fig6_dcp_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dcp_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
