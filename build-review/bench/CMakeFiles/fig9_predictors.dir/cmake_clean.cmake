file(REMOVE_RECURSE
  "CMakeFiles/fig9_predictors.dir/fig9_predictors.cpp.o"
  "CMakeFiles/fig9_predictors.dir/fig9_predictors.cpp.o.d"
  "fig9_predictors"
  "fig9_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
