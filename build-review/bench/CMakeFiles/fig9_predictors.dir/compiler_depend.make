# Empty compiler generated dependencies file for fig9_predictors.
# This may be replaced when dependencies are built.
