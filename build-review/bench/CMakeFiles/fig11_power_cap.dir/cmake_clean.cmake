file(REMOVE_RECURSE
  "CMakeFiles/fig11_power_cap.dir/fig11_power_cap.cpp.o"
  "CMakeFiles/fig11_power_cap.dir/fig11_power_cap.cpp.o.d"
  "fig11_power_cap"
  "fig11_power_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_power_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
