file(REMOVE_RECURSE
  "CMakeFiles/perf_smoke.dir/perf_smoke.cpp.o"
  "CMakeFiles/perf_smoke.dir/perf_smoke.cpp.o.d"
  "perf_smoke"
  "perf_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
