# Empty dependencies file for fig3_power_vs_load.
# This may be replaced when dependencies are built.
