file(REMOVE_RECURSE
  "CMakeFiles/tab4_replication_ci.dir/tab4_replication_ci.cpp.o"
  "CMakeFiles/tab4_replication_ci.dir/tab4_replication_ci.cpp.o.d"
  "tab4_replication_ci"
  "tab4_replication_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_replication_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
