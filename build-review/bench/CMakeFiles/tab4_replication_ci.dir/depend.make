# Empty dependencies file for tab4_replication_ci.
# This may be replaced when dependencies are built.
