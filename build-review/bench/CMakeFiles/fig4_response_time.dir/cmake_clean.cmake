file(REMOVE_RECURSE
  "CMakeFiles/fig4_response_time.dir/fig4_response_time.cpp.o"
  "CMakeFiles/fig4_response_time.dir/fig4_response_time.cpp.o.d"
  "fig4_response_time"
  "fig4_response_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
