# Empty dependencies file for fig4_response_time.
# This may be replaced when dependencies are built.
