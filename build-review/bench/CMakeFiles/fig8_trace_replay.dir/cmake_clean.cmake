file(REMOVE_RECURSE
  "CMakeFiles/fig8_trace_replay.dir/fig8_trace_replay.cpp.o"
  "CMakeFiles/fig8_trace_replay.dir/fig8_trace_replay.cpp.o.d"
  "fig8_trace_replay"
  "fig8_trace_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
