# Empty compiler generated dependencies file for fig8_trace_replay.
# This may be replaced when dependencies are built.
