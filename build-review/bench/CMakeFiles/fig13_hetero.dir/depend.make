# Empty dependencies file for fig13_hetero.
# This may be replaced when dependencies are built.
