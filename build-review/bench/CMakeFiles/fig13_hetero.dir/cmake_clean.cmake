file(REMOVE_RECURSE
  "CMakeFiles/fig13_hetero.dir/fig13_hetero.cpp.o"
  "CMakeFiles/fig13_hetero.dir/fig13_hetero.cpp.o.d"
  "fig13_hetero"
  "fig13_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
