#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "greencluster::gc_util" for configuration "Release"
set_property(TARGET greencluster::gc_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(greencluster::gc_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgc_util.a"
  )

list(APPEND _cmake_import_check_targets greencluster::gc_util )
list(APPEND _cmake_import_check_files_for_greencluster::gc_util "${_IMPORT_PREFIX}/lib/libgc_util.a" )

# Import target "greencluster::gc_stats" for configuration "Release"
set_property(TARGET greencluster::gc_stats APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(greencluster::gc_stats PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgc_stats.a"
  )

list(APPEND _cmake_import_check_targets greencluster::gc_stats )
list(APPEND _cmake_import_check_files_for_greencluster::gc_stats "${_IMPORT_PREFIX}/lib/libgc_stats.a" )

# Import target "greencluster::gc_power" for configuration "Release"
set_property(TARGET greencluster::gc_power APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(greencluster::gc_power PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgc_power.a"
  )

list(APPEND _cmake_import_check_targets greencluster::gc_power )
list(APPEND _cmake_import_check_files_for_greencluster::gc_power "${_IMPORT_PREFIX}/lib/libgc_power.a" )

# Import target "greencluster::gc_workload" for configuration "Release"
set_property(TARGET greencluster::gc_workload APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(greencluster::gc_workload PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgc_workload.a"
  )

list(APPEND _cmake_import_check_targets greencluster::gc_workload )
list(APPEND _cmake_import_check_files_for_greencluster::gc_workload "${_IMPORT_PREFIX}/lib/libgc_workload.a" )

# Import target "greencluster::gc_queueing" for configuration "Release"
set_property(TARGET greencluster::gc_queueing APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(greencluster::gc_queueing PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgc_queueing.a"
  )

list(APPEND _cmake_import_check_targets greencluster::gc_queueing )
list(APPEND _cmake_import_check_files_for_greencluster::gc_queueing "${_IMPORT_PREFIX}/lib/libgc_queueing.a" )

# Import target "greencluster::gc_obs" for configuration "Release"
set_property(TARGET greencluster::gc_obs APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(greencluster::gc_obs PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgc_obs.a"
  )

list(APPEND _cmake_import_check_targets greencluster::gc_obs )
list(APPEND _cmake_import_check_files_for_greencluster::gc_obs "${_IMPORT_PREFIX}/lib/libgc_obs.a" )

# Import target "greencluster::gc_cp" for configuration "Release"
set_property(TARGET greencluster::gc_cp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(greencluster::gc_cp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgc_cp.a"
  )

list(APPEND _cmake_import_check_targets greencluster::gc_cp )
list(APPEND _cmake_import_check_files_for_greencluster::gc_cp "${_IMPORT_PREFIX}/lib/libgc_cp.a" )

# Import target "greencluster::gc_core" for configuration "Release"
set_property(TARGET greencluster::gc_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(greencluster::gc_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgc_core.a"
  )

list(APPEND _cmake_import_check_targets greencluster::gc_core )
list(APPEND _cmake_import_check_files_for_greencluster::gc_core "${_IMPORT_PREFIX}/lib/libgc_core.a" )

# Import target "greencluster::gc_sim" for configuration "Release"
set_property(TARGET greencluster::gc_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(greencluster::gc_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgc_sim.a"
  )

list(APPEND _cmake_import_check_targets greencluster::gc_sim )
list(APPEND _cmake_import_check_files_for_greencluster::gc_sim "${_IMPORT_PREFIX}/lib/libgc_sim.a" )

# Import target "greencluster::gc_control" for configuration "Release"
set_property(TARGET greencluster::gc_control APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(greencluster::gc_control PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgc_control.a"
  )

list(APPEND _cmake_import_check_targets greencluster::gc_control )
list(APPEND _cmake_import_check_files_for_greencluster::gc_control "${_IMPORT_PREFIX}/lib/libgc_control.a" )

# Import target "greencluster::gc_exp" for configuration "Release"
set_property(TARGET greencluster::gc_exp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(greencluster::gc_exp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libgc_exp.a"
  )

list(APPEND _cmake_import_check_targets greencluster::gc_exp )
list(APPEND _cmake_import_check_files_for_greencluster::gc_exp "${_IMPORT_PREFIX}/lib/libgc_exp.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
