// Capacity planner: turn an arrival trace into an operating schedule.
//
//   $ ./capacity_planner [trace.csv] [--bin S] [--config cluster.ini]
//
// Reads a trace (CSV with one `arrival_s` column; synthesizes a demo trace
// when none is given), bins it into an empirical rate profile, and prints
// the recommended (servers, frequency) schedule per bin together with the
// predicted energy vs an always-on cluster — plus the power-cap view: how
// much load each power budget could carry.  This is the "offline planning"
// face of the same solver the online DCP controller uses.
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/config_io.h"
#include "core/power_cap.h"
#include "core/provisioner.h"
#include "exp/scenario.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  const gc::CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"bin", "config"});
  if (!unknown.empty()) {
    std::cerr << "unknown flag --" << unknown[0]
              << "\nusage: capacity_planner [trace.csv] [--bin S] [--config cluster.ini]\n";
    return 2;
  }
  const gc::ClusterConfig config =
      args.has("config")
          ? gc::cluster_config_from_ini(gc::IniFile::load(args.get_or("config", "")))
          : gc::bench_cluster_config();

  gc::Trace trace;
  const bool have_trace =
      !args.positional().empty() && std::filesystem::exists(args.positional()[0]);
  if (have_trace) {
    trace = gc::Trace::load_csv(args.positional()[0]);
    std::cout << gc::format("loaded {} arrivals from {}\n\n", trace.size(),
                            args.positional()[0]);
  } else {
    const auto profile = gc::make_wc98_like_profile(
        0.65 * config.max_feasible_arrival_rate(), /*days=*/1.0, /*seed=*/77,
        /*day_s=*/3600.0);
    trace = gc::Trace::from_profile(*profile, 3600.0, /*seed=*/77);
    std::cout << gc::format("no trace given; synthesized {} arrivals (1 compressed day)\n\n",
                            trace.size());
  }
  const double bin_s = args.get_double_or("bin", trace.duration() / 12.0);
  const auto profile = trace.to_rate_profile(bin_s);

  const gc::Provisioner solver(config);
  gc::TablePrinter table(gc::format("operating schedule ({:.0f} s bins)", bin_s));
  table.column("from", {.precision = 0, .unit = "s"})
      .column("load", {.precision = 1, .unit = "jobs/s"})
      .column("servers", {.precision = 0})
      .column("speed", {.precision = 2})
      .column("power", {.precision = 0, .unit = "W"})
      .column("pred T", {.precision = 0, .unit = "ms"});

  double plan_energy = 0.0;
  const gc::OperatingPoint all_on = solver.evaluate(0.0, config.max_servers, 1.0);
  double npm_energy = 0.0;
  for (double t = 0.0; t < trace.duration(); t += bin_s) {
    const double load = profile->average_rate(t, std::min(t + bin_s, trace.duration()));
    const gc::OperatingPoint pt = solver.solve(load);
    plan_energy += pt.power_watts * bin_s;
    npm_energy += solver.evaluate(load, config.max_servers, 1.0).power_watts * bin_s;
    table.row()
        .cell(t)
        .cell(load)
        .cell(static_cast<long long>(pt.servers))
        .cell(pt.speed)
        .cell(pt.power_watts)
        .cell(pt.response_time_s * 1e3);
  }
  std::cout << table;
  std::cout << gc::format(
      "\nplanned energy {:.3f} kWh vs always-on {:.3f} kWh -> {:.1f}% savings\n"
      "(idle all-on cluster draws {:.0f} W)\n\n",
      plan_energy / 3.6e6, npm_energy / 3.6e6, (1.0 - plan_energy / npm_energy) * 100.0,
      all_on.power_watts);

  // Power-budget view.
  const gc::PowerCapSolver cap_solver(&solver);
  gc::TablePrinter caps("what a power budget buys (SLA held)");
  caps.column("budget", {.precision = 0, .unit = "W"})
      .column("max load", {.precision = 1, .unit = "jobs/s"})
      .column("share of trace peak", {.precision = 2});
  const double peak = profile->max_rate(0.0, trace.duration());
  for (double cap = 1000.0; cap <= 4000.0; cap += 1000.0) {
    const double rate = cap_solver.max_supportable_rate(cap);
    caps.row().cell(cap).cell(rate).cell(peak > 0.0 ? rate / peak : 0.0);
  }
  std::cout << caps;
  return 0;
}
