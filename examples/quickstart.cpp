// Quickstart: size a cluster with the joint DVFS+VOVF solver, then verify
// the chosen operating point in simulation.
//
//   $ ./quickstart [arrival_rate]
//
// Walks through the core API: ClusterConfig -> Provisioner::solve ->
// run_simulation with a static pin at the solved point.
#include <cstdlib>
#include <iostream>

#include "core/provisioner.h"
#include "sim/simulation.h"
#include "util/format.h"
#include "util/log.h"
#include "workload/workload.h"

namespace {

// Pins the cluster at one operating point so the simulation measures
// exactly what the solver promised.
class PinController final : public gc::Controller {
 public:
  explicit PinController(gc::OperatingPoint point) : point_(point) {}
  [[nodiscard]] double short_period_s() const override { return 1e9; }
  [[nodiscard]] double long_period_s() const override { return 1e9; }
  [[nodiscard]] gc::ControlAction on_short_tick(const gc::ControlContext&) override {
    return {};
  }
  [[nodiscard]] gc::ControlAction on_long_tick(const gc::ControlContext&) override {
    gc::ControlAction action;
    action.active_target = point_.servers;
    action.speed = point_.speed;
    return action;
  }
  [[nodiscard]] const char* name() const override { return "pin"; }

 private:
  gc::OperatingPoint point_;
};

}  // namespace

int main(int argc, char** argv) {
  gc::set_log_level(gc::LogLevel::kInfo);

  // 1. Describe the cluster: 32 servers, 20 jobs/s each at full speed,
  //    and a 250 ms mean-response-time guarantee.
  gc::ClusterConfig config;
  config.max_servers = 32;
  config.mu_max = 20.0;
  config.t_ref_s = 0.25;

  const double lambda = argc > 1 ? std::atof(argv[1]) : 180.0;

  // 2. Solve for the cheapest (servers, frequency) pair.
  const gc::Provisioner solver(config);
  const gc::OperatingPoint point = solver.solve(lambda);
  std::cout << gc::format(
      "load {:g} jobs/s -> run {} servers at {:.0f}% speed\n"
      "  predicted power:    {:.0f} W (cluster)\n"
      "  predicted response: {:.1f} ms (guarantee {:.0f} ms)\n",
      lambda, point.servers, point.speed * 100.0, point.power_watts,
      point.response_time_s * 1e3, config.t_ref_s * 1e3);
  if (!point.feasible) {
    std::cout << "load exceeds cluster feasibility; best effort shown\n";
    return 1;
  }

  // 3. Check the math against the discrete-event simulator.
  gc::Workload workload =
      gc::Workload::poisson_exponential(lambda, config.mu_max, 2000.0, /*seed=*/1);
  gc::ClusterOptions cluster;
  cluster.num_servers = config.max_servers;
  cluster.power = config.power;
  cluster.initial_active = config.max_servers;
  PinController controller(point);
  gc::SimulationOptions sim;
  sim.t_ref_s = config.t_ref_s;
  sim.warmup_s = 200.0;
  const gc::SimResult result = gc::run_simulation(workload, cluster, controller, sim);

  std::cout << gc::format(
      "simulated: {} jobs, mean response {:.1f} ms (p95 {:.1f} ms), mean power {:.0f} W\n",
      result.completed_jobs, result.mean_response_s * 1e3, result.p95_response_s * 1e3,
      result.mean_power_w);
  std::cout << (result.sla_met(config.t_ref_s) ? "SLA met.\n" : "SLA MISSED!\n");
  return result.sla_met(config.t_ref_s) ? 0 : 1;
}
