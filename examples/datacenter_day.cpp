// A day in the life of a power-managed data center.
//
//   $ ./datacenter_day [policy] [--level F] [--day S] [--record S]
//                      [--seed N] [--scenario diurnal|flash-crowd|wc98-like]
//                      [--timeseries-out PREFIX]
//
//   policy: npm | dvfs-only | vovf-only | combined-dcp | combined-single |
//           threshold   (default combined-dcp)
//
// Runs the chosen policy over a compressed day and prints the timeline —
// arrival rate, active servers, frequency, power — plus the end-of-day
// summary.  This regenerates the kind of plot the paper's time-series
// figure shows, as text.  With --timeseries-out the full per-control-period
// record lands in PREFIX.timeseries.csv (plus PREFIX.counters.json and a
// Prometheus exposition in PREFIX.prom) for `gcinspect PREFIX`.
#include <cstring>
#include <fstream>
#include <iostream>

#include "exp/runner.h"
#include "obs/prometheus.h"
#include "obs/timeseries.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"

namespace {

gc::PolicyKind parse_policy(const std::string& arg) {
  using gc::PolicyKind;
  if (arg == "npm") return PolicyKind::kNpm;
  if (arg == "dvfs-only") return PolicyKind::kDvfsOnly;
  if (arg == "vovf-only") return PolicyKind::kVovfOnly;
  if (arg == "combined-single") return PolicyKind::kCombinedSinglePeriod;
  if (arg == "threshold") return PolicyKind::kThreshold;
  if (arg == "oracle") return PolicyKind::kOracle;
  return PolicyKind::kCombinedDcp;
}

gc::ScenarioKind parse_scenario(const std::string& arg) {
  using gc::ScenarioKind;
  if (arg == "flash-crowd") return ScenarioKind::kFlashCrowd;
  if (arg == "wc98-like") return ScenarioKind::kWc98Like;
  if (arg == "constant") return ScenarioKind::kConstant;
  return ScenarioKind::kDiurnal;
}

}  // namespace

int main(int argc, char** argv) {
  const gc::CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags(
      {"level", "day", "record", "seed", "scenario", "timeseries-out"});
  if (!unknown.empty()) {
    std::cerr << "unknown flag --" << unknown[0]
              << "\nusage: datacenter_day [policy] [--level F] [--day S] "
                 "[--record S] [--seed N] [--scenario NAME] "
                 "[--timeseries-out PREFIX]\n";
    return 2;
  }
  const gc::PolicyKind policy =
      args.positional().empty() ? gc::PolicyKind::kCombinedDcp
                                : parse_policy(args.positional()[0]);
  const double day_s = args.get_double_or("day", 7200.0);

  gc::RunSpec spec;
  spec.config = gc::bench_cluster_config();
  spec.policy = policy;
  spec.policy_options.dcp = gc::bench_dcp_params();
  spec.sim.record_interval_s = args.get_double_or("record", day_s / 60.0);
  spec.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 2024));

  gc::TimeSeriesRecorder timeseries;
  const auto ts_prefix = args.get("timeseries-out");
  if (ts_prefix) spec.sim.timeseries = &timeseries;

  const gc::Scenario scenario = gc::make_scenario(
      parse_scenario(args.get_or("scenario", "diurnal")), spec.config,
      args.get_double_or("level", 0.7), 99, day_s);
  std::cout << gc::format("policy {} on scenario {} ({:.0f} s horizon)\n\n",
                          to_string(policy), scenario.name, scenario.horizon_s);

  const gc::SimResult result = gc::run_one(scenario, spec);

  if (ts_prefix) {
    timeseries.write_csv(*ts_prefix + ".timeseries.csv");
    std::ofstream counters(*ts_prefix + ".counters.json");
    counters << result.counters.to_json() << '\n';
    std::ofstream prom(*ts_prefix + ".prom");
    prom << gc::to_prometheus_text(
        result.counters, {{"response_time_seconds", &result.response_hist}});
    std::cerr << gc::format(
        "timeseries-out: {}.{{timeseries.csv,counters.json,prom}} ({} rows, "
        "stride {})\n",
        *ts_prefix, timeseries.size(), timeseries.stride());
  }

  gc::TablePrinter table("timeline");
  table.column("t", {.precision = 0, .unit = "s"})
      .column("load", {.precision = 1, .unit = "jobs/s"})
      .column("serving", {.precision = 0})
      .column("speed", {.precision = 2})
      .column("power", {.precision = 0, .unit = "W"})
      .column("win mean T", {.precision = 1, .unit = "ms"});
  for (const gc::TimelinePoint& p : result.timeline) {
    table.row()
        .cell(p.time)
        .cell(p.arrival_rate)
        .cell(static_cast<long long>(p.serving))
        .cell(p.speed)
        .cell(p.power_watts)
        .cell(p.window_mean_response_s * 1e3);
  }
  std::cout << table << '\n';

  std::cout << gc::format(
      "day summary: {} jobs | energy {:.2f} kWh (busy {:.0f}% / idle {:.0f}% / "
      "transition {:.0f}%) | mean T {:.1f} ms | p95 {:.1f} ms | p99 {:.1f} ms | "
      "boots {} | SLA {}\n",
      result.completed_jobs, result.energy.total_j() / 3.6e6,
      100.0 * result.energy.busy_j / result.energy.total_j(),
      100.0 * result.energy.idle_j / result.energy.total_j(),
      100.0 * result.energy.transition_j / result.energy.total_j(),
      result.mean_response_s * 1e3, result.p95_response_s * 1e3,
      result.p99_response_s * 1e3, result.boots,
      result.sla_met(spec.config.t_ref_s) ? "met" : "MISSED");
  return 0;
}
