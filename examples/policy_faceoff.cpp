// Policy face-off: every policy against every scenario, one table.
//
//   $ ./policy_faceoff [level]    (peak load as a fraction of feasibility,
//                                  default 0.7)
//
// This is the example-sized version of bench/tab2_energy_savings: it uses
// the exp:: comparison harness end to end, running cells in parallel on
// the process thread pool.
#include <cstdlib>
#include <iostream>

#include "exp/comparison.h"

int main(int argc, char** argv) {
  const double level = argc > 1 ? std::atof(argv[1]) : 0.7;

  gc::RunSpec spec;
  spec.config = gc::bench_cluster_config();
  spec.policy_options.dcp = gc::bench_dcp_params();
  spec.seed = 31;

  const std::vector<gc::PolicyKind> policies = {
      gc::PolicyKind::kDvfsOnly, gc::PolicyKind::kVovfOnly, gc::PolicyKind::kCombinedDcp};

  for (const auto kind : {gc::ScenarioKind::kDiurnal, gc::ScenarioKind::kFlashCrowd}) {
    const gc::Scenario scenario =
        gc::make_scenario(kind, spec.config, level, /*seed=*/41, /*day_s=*/3600.0);
    const auto rows = gc::compare_policies(scenario, spec, policies);
    std::cout << gc::comparison_table(scenario.name, rows) << '\n';
  }
  return 0;
}
