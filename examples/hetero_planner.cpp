// Heterogeneous fleet planner: optimal per-class allocation across loads.
//
//   $ ./hetero_planner [--config fleet.ini] [--load JOBS_PER_S]
//
// With --config, the fleet comes from `[class NAME]` INI sections (see
// examples/configs/mixed_fleet.ini); otherwise a demo 8-new + 8-old pod is
// used.  Prints the allocation at one load (if --load is given) or the
// full sweep, and validates the chosen point in simulation.
#include <iostream>

#include "core/config_io.h"
#include "core/hetero.h"
#include "exp/hetero_sim.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"

namespace {

gc::HeteroConfig demo_fleet() {
  gc::HeteroConfig config;
  config.t_ref_s = 0.5;
  gc::ServerClass fresh;
  fresh.name = "new";
  fresh.count = 8;
  fresh.mu_max = 12.0;
  fresh.power.p_idle_watts = 100.0;
  fresh.power.p_max_watts = 200.0;
  fresh.power.utilization_gated = false;
  config.classes.push_back(fresh);
  gc::ServerClass old = fresh;
  old.name = "old";
  old.mu_max = 10.0;
  old.power.p_idle_watts = 180.0;
  old.power.p_max_watts = 300.0;
  config.classes.push_back(old);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const gc::CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"config", "load"});
  if (!unknown.empty()) {
    std::cerr << "unknown flag --" << unknown[0]
              << "\nusage: hetero_planner [--config fleet.ini] [--load JOBS_PER_S]\n";
    return 2;
  }
  const gc::HeteroConfig config =
      args.has("config")
          ? gc::hetero_config_from_ini(gc::IniFile::load(args.get_or("config", "")))
          : demo_fleet();
  const gc::HeteroProvisioner solver(config);

  std::cout << gc::format("fleet: {} classes, {} servers, feasible up to {:.1f} jobs/s\n",
                          config.classes.size(), config.total_servers(),
                          config.max_feasible_arrival_rate());
  for (const gc::ServerClass& sc : config.classes) {
    std::cout << gc::format(
        "  {:>8}: {} x (mu {:.1f} jobs/s, {:.0f}-{:.0f} W, alpha {:.1f})\n", sc.name,
        sc.count, sc.mu_max, sc.power.p_idle_watts, sc.power.p_max_watts, sc.power.alpha);
  }
  std::cout << '\n';

  if (args.has("load")) {
    const double lambda = args.get_double_or("load", 0.0);
    const gc::HeteroOperatingPoint point = solver.solve(lambda);
    if (!point.feasible) {
      std::cout << "load exceeds fleet feasibility; best effort shown\n";
    }
    gc::TablePrinter table(gc::format("allocation at {:.1f} jobs/s", lambda));
    table.column("class")
        .column("active", {.precision = 0})
        .column("speed", {.precision = 2})
        .column("load", {.precision = 1, .unit = "jobs/s"})
        .column("power", {.precision = 0, .unit = "W"})
        .column("pred T", {.precision = 0, .unit = "ms"});
    for (std::size_t c = 0; c < config.classes.size(); ++c) {
      const gc::ClassAllocation& alloc = point.allocations[c];
      table.row()
          .cell(config.classes[c].name)
          .cell(static_cast<long long>(alloc.servers))
          .cell(alloc.speed)
          .cell(alloc.load)
          .cell(alloc.power_watts)
          .cell(alloc.response_time_s * 1e3);
    }
    std::cout << table;
    if (point.feasible && lambda > 0.0) {
      const gc::HeteroSimResult sim =
          gc::run_hetero_validation(config, point, lambda, 2000.0, 100.0, 1);
      std::cout << gc::format(
          "\nsimulated check: mean T {:.0f} ms, mean power {:.0f} W "
          "(prediction {:.0f} W)\n",
          sim.mean_response_s * 1e3, sim.mean_power_w, point.power_watts);
    }
    return 0;
  }

  gc::TablePrinter table("allocation sweep");
  table.column("load", {.precision = 1, .unit = "jobs/s"})
      .column("power", {.precision = 0, .unit = "W"});
  for (const gc::ServerClass& sc : config.classes) {
    table.column(gc::format("n[{}]", sc.name), {.precision = 0});
  }
  const double max_rate = config.max_feasible_arrival_rate();
  for (double frac = 0.1; frac <= 1.0001; frac += 0.1) {
    const double lambda = frac * max_rate;
    const gc::HeteroOperatingPoint point = solver.solve(lambda);
    table.row().cell(lambda).cell(point.power_watts);
    for (const gc::ClassAllocation& alloc : point.allocations) {
      table.cell(static_cast<long long>(alloc.servers));
    }
  }
  std::cout << table;
  return 0;
}
