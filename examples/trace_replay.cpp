// Trace tooling: synthesize a WC98-like arrival trace, save it to CSV,
// load it back, and replay it under two policies.
//
//   $ ./trace_replay [trace.csv]
//
// If a path is given and exists, that trace is replayed instead (drop in a
// real trace with a single `arrival_s` column).  Demonstrates the
// trace-centred workflow: every policy sees the *identical* arrival
// sequence, so differences are purely the controller's doing.
#include <filesystem>
#include <iostream>

#include "control/policies.h"
#include "exp/scenario.h"
#include "sim/simulation.h"
#include "util/format.h"
#include "workload/trace.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  const gc::ClusterConfig config = gc::bench_cluster_config();

  gc::Trace trace;
  const std::filesystem::path path =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "wc98_like.csv";
  if (argc > 1 && std::filesystem::exists(path)) {
    trace = gc::Trace::load_csv(path);
    std::cout << gc::format("loaded {} arrivals from {}\n", trace.size(), path.string());
  } else {
    const auto profile = gc::make_wc98_like_profile(
        0.7 * config.max_feasible_arrival_rate(), /*days=*/1.0, /*seed=*/5,
        /*day_s=*/3600.0);
    trace = gc::Trace::from_profile(*profile, 3600.0, /*seed=*/5);
    trace.save_csv(path);
    std::cout << gc::format("synthesized {} arrivals -> {}\n", trace.size(),
                            path.string());
  }
  std::cout << gc::format("trace: {:.0f} s, mean rate {:.1f} jobs/s\n\n",
                          trace.duration(), trace.mean_rate());

  const gc::Provisioner solver(config);
  gc::PolicyOptions popts;
  popts.dcp = gc::bench_dcp_params();

  for (const auto kind : {gc::PolicyKind::kDvfsOnly, gc::PolicyKind::kCombinedDcp}) {
    gc::Workload workload = gc::Workload::trace_replay(
        trace, gc::Distribution::exponential(config.mu_max), /*seed=*/17);
    const auto controller = gc::make_policy(kind, &solver, popts);
    gc::ClusterOptions cluster;
    cluster.num_servers = config.max_servers;
    cluster.power = config.power;
    cluster.transition = config.transition;
    cluster.initial_active = config.max_servers;
    gc::SimulationOptions sim;
    sim.t_ref_s = config.t_ref_s;
    sim.warmup_s = 2.0 * popts.dcp.long_period_s;
    const gc::SimResult result = run_simulation(workload, cluster, *controller, sim);
    std::cout << gc::format(
        "{:>16}: energy {:.3f} kWh | mean T {:.1f} ms | viol {:.2f}% | boots {}\n",
        controller->name(), result.energy.total_j() / 3.6e6,
        result.mean_response_s * 1e3, result.job_violation_ratio * 100.0, result.boots);
  }
  return 0;
}
