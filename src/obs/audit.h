// Control-decision audit log: one structured record per DCP control tick.
//
// A SimResult is an aggregate; the audit log is the causal story behind it
// — what the controller observed (measured/predicted load, fleet state),
// what it planned (solver m before hysteresis/retry gating, the safety
// margin actually applied), and what it commanded (server-count target,
// speed, the implied transition plan).  This is what lets a run answer
// "why did we boot three servers at t = 4200?" without re-deriving the
// controller by hand.
//
// Records are appended by the simulation loop (sim/simulation.cpp) on
// every short and long tick when SimulationOptions::audit is set; the
// controllers fill ControlAction::explain with the planning internals the
// loop cannot see.  Writers: JSON Lines (one object per record — jq/pandas
// friendly) and CSV via util/csv (numeric columns only; the tick kind is
// encoded 0 = short, 1 = long).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "util/csv.h"

namespace gc {

struct AuditRecord {
  double time_s = 0.0;
  bool long_tick = false;  // false = short (DVFS) tick, true = long (VOVF) tick
  // -- observed --------------------------------------------------------------
  double observed_rate = 0.0;   // measured arrival rate over the elapsed window
  unsigned serving = 0;
  unsigned committed = 0;       // serving + booting
  unsigned powered = 0;
  unsigned available = 0;       // ground truth (not FAILED)
  std::uint64_t jobs_in_system = 0;
  // -- planned (ControlAction::explain; 0 when the policy has no notion) -----
  double predicted_rate = 0.0;   // predictor output over the horizon
  double planning_rate = 0.0;    // rate actually handed to the solver
  double safety_margin = 0.0;    // margin applied (after any spare relief)
  unsigned planned_servers = 0;  // solver m before hysteresis/retry gating
  unsigned detected_available = 0;  // failure-aware detector view
  // -- commanded -------------------------------------------------------------
  bool target_set = false;  // active_target present in the action
  unsigned target_servers = 0;
  // Transition plan implied by the target: >0 boots/revives, <0 drains.
  int delta_servers = 0;
  bool speed_set = false;
  double speed = 0.0;
  bool infeasible = false;
  double admit_probability = 1.0;  // admission control state after the tick
  // -- control-plane degradation (appended columns; PR 4) --------------------
  double obs_age_s = 0.0;   // age of the telemetry sample the tick planned on
  bool safe_mode = false;   // fleet was in the watchdog's static fallback
  // -- reliability plan (appended columns; core/reliability.h) ---------------
  // Solved spare count of the standing ReliablePlan; -1 for policies with
  // no notion of solved spares.
  int solved_spares = -1;
  double availability_est = 0.0;  // closed-form A(planned m, spares)
  // BindingConstraint as an integer (0 none, 1 latency, 2 availability,
  // 3 capacity): which constraint pinned the plan this tick.
  unsigned binding_constraint = 0;
};

class DecisionAuditLog {
 public:
  void append(const AuditRecord& record) { records_.push_back(record); }

  [[nodiscard]] const std::vector<AuditRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  void clear() noexcept { records_.clear(); }

  // One JSON object per line, schema identical across records.
  [[nodiscard]] std::string to_jsonl() const;
  void write_jsonl(const std::filesystem::path& path) const;

  // Parses exactly the line shape to_jsonl emits (flat objects, "tick" as
  // "short"/"long", bare true/false booleans); unknown keys are ignored so
  // newer logs load into older tooling.  Throws std::runtime_error on
  // malformed lines.  Round trip: from_jsonl(to_jsonl(log)) reproduces
  // every record bit-exactly.
  [[nodiscard]] static DecisionAuditLog from_jsonl(std::string_view text);
  [[nodiscard]] static DecisionAuditLog read_jsonl(
      const std::filesystem::path& path);

  // All-numeric CSV (booleans as 0/1) via the util/csv helpers.
  [[nodiscard]] CsvTable to_csv_table() const;
  void write_csv(const std::filesystem::path& path) const;

 private:
  std::vector<AuditRecord> records_;
};

}  // namespace gc
