#include "obs/counters.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gc {
namespace {

// Minimal escaping: metric names are code-chosen identifiers, but a stray
// quote or backslash must not produce invalid JSON.
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

// -- tiny parser for the exact shape to_json emits ---------------------------

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("CountersSnapshot::from_json: " + std::string(what) +
                             " at offset " + std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  [[nodiscard]] char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos;
  }
  [[nodiscard]] bool consume_if(char c) {
    if (pos < text.size() && peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }
  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) fail("dangling escape");
        const char e = text[pos++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default: fail("unsupported escape");
        }
      }
      out += c;
    }
    if (pos >= text.size()) fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }
  // Raw number token (strtod/strtoull grammar subset).
  [[nodiscard]] std::string parse_number_token() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' ||
          c == 'E') {
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) fail("expected a number");
    return std::string(text.substr(start, pos - start));
  }
};

}  // namespace

std::uint64_t CountersSnapshot::counter_or(std::string_view name,
                                           std::uint64_t fallback) const noexcept {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

double CountersSnapshot::gauge_or(std::string_view name, double fallback) const noexcept {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

void CountersSnapshot::add_counter(std::string name, std::uint64_t value) {
  counters.emplace_back(std::move(name), value);
}

void CountersSnapshot::add_gauge(std::string name, double value) {
  gauges.emplace_back(std::move(name), value);
}

std::string CountersSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
    out += ": ";
    out += buf;
  }
  out += first ? "},\n  \"gauges\": {" : "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    char buf[64];
    // %.17g survives a strtod round trip bit-exactly for any finite double.
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += ": ";
    out += buf;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

CountersSnapshot CountersSnapshot::from_json(std::string_view text) {
  Parser p{text};
  CountersSnapshot out;
  p.expect('{');
  bool first_section = true;
  while (p.peek() != '}') {
    if (!first_section) p.expect(',');
    first_section = false;
    const std::string section = p.parse_string();
    p.expect(':');
    p.expect('{');
    bool first_entry = true;
    while (p.peek() != '}') {
      if (!first_entry) p.expect(',');
      first_entry = false;
      std::string name = p.parse_string();
      p.expect(':');
      const std::string token = p.parse_number_token();
      if (section == "counters") {
        out.counters.emplace_back(std::move(name),
                                  std::strtoull(token.c_str(), nullptr, 10));
      } else if (section == "gauges") {
        out.gauges.emplace_back(std::move(name), std::strtod(token.c_str(), nullptr));
      } else {
        p.fail("unknown section");
      }
    }
    p.expect('}');
  }
  p.expect('}');
  return out;
}

bool operator==(const CountersSnapshot& a, const CountersSnapshot& b) {
  return a.counters == b.counters && a.gauges == b.gauges;
}

Counter& MetricRegistry::counter(std::string_view name) {
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return counters_[i];
  }
  for (const std::string& g : gauge_names_) {
    if (g == name) {
      throw std::invalid_argument("MetricRegistry: '" + std::string(name) +
                                  "' is already registered as a gauge");
    }
  }
  counter_names_.emplace_back(name);
  return counters_.emplace_back(Counter{});
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) return gauges_[i];
  }
  for (const std::string& c : counter_names_) {
    if (c == name) {
      throw std::invalid_argument("MetricRegistry: '" + std::string(name) +
                                  "' is already registered as a counter");
    }
  }
  gauge_names_.emplace_back(name);
  return gauges_.emplace_back(Gauge{});
}

CountersSnapshot MetricRegistry::snapshot() const {
  CountersSnapshot snap;
  snap.counters.reserve(counters_.size());
  snap.gauges.reserve(gauges_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    snap.counters.emplace_back(counter_names_[i], counters_[i].value());
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i], gauges_[i].value());
  }
  return snap;
}

}  // namespace gc
