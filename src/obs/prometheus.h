// Prometheus text exposition (format 0.0.4) for end-of-run metrics.
//
// The simulator has no HTTP endpoint to scrape; instead a finished run's
// counters/gauges and final latency histograms are rendered once into the
// standard text format so any Prometheus-ecosystem tool (promtool,
// node_exporter textfile collector, Grafana CSV/infinity plugins) can
// ingest them.  Mapping:
//
//   * every metric name gains a `gc_` prefix and has '.' replaced by '_'
//     (`chan.telemetry.dropped` -> `gc_chan_telemetry_dropped`);
//   * counters render as `# TYPE ... counter` with a `_total` suffix,
//     gauges as `gauge`;
//   * a LogHistogram renders as a classic cumulative histogram:
//     `_bucket{le="..."}` lines per non-empty bucket boundary (upper
//     bounds, cumulative counts, underflow folded into the first bucket),
//     a final `_bucket{le="+Inf"}`, then `_sum` and `_count`.
//
// Output is deterministic: entries keep snapshot order, numbers print via
// %.17g.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "stats/log_histogram.h"

namespace gc {

// Named histograms to expose alongside the snapshot, e.g.
// {{"response_time_seconds", &result.response_hist}}.
using PrometheusHistogram = std::pair<std::string, const LogHistogram*>;

// Sanitizes one metric name: prepend "gc_", map every character outside
// [A-Za-z0-9_] to '_'.
[[nodiscard]] std::string prometheus_name(std::string_view name);

[[nodiscard]] std::string to_prometheus_text(
    const CountersSnapshot& snapshot,
    const std::vector<PrometheusHistogram>& histograms = {});

// Answers one Prometheus scrape on a connected byte-stream fd (UNIX
// socket, socketpair): consumes the request head (up to the blank line, or
// EOF for bare netcat-style reads) and writes a minimal HTTP/1.0 200
// response carrying `body` as text/plain exposition format, then returns
// (the caller closes the fd).  Throws std::runtime_error on I/O errors.
void serve_scrape(int fd, std::string_view body);

}  // namespace gc
