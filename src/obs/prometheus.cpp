#include "obs/prometheus.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace gc {

namespace {

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "gc_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_prometheus_text(
    const CountersSnapshot& snapshot,
    const std::vector<PrometheusHistogram>& histograms) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = prometheus_name(name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " ";
    append_number(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " ";
    append_number(out, value);
    out += '\n';
  }
  for (const auto& [name, hist] : histograms) {
    if (hist == nullptr) continue;
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " histogram\n";
    // Cumulative `le` series over the non-empty buckets; mass below the
    // first boundary (the underflow counter) is inside the first bucket's
    // cumulative count by construction.
    std::uint64_t cumulative = hist->underflow();
    for (const auto& bucket : hist->nonzero_buckets()) {
      cumulative += bucket.count;
      out += metric + "_bucket{le=\"";
      append_number(out, bucket.upper);
      out += "\"} ";
      append_number(out, cumulative);
      out += '\n';
    }
    out += metric + "_bucket{le=\"+Inf\"} ";
    append_number(out, hist->count());
    out += '\n';
    out += metric + "_sum ";
    append_number(out, hist->sum());
    out += '\n';
    out += metric + "_count ";
    append_number(out, hist->count());
    out += '\n';
  }
  return out;
}

void serve_scrape(int fd, std::string_view body) {
  // Consume the request head so well-behaved HTTP clients see their send
  // acknowledged before the response lands; a client that writes nothing
  // and just reads (netcat, the smoke test) works too because an empty
  // first chunk / EOF falls straight through to the response.
  std::string head;
  char chunk[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("scrape: recv failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) break;
    head.append(chunk, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      break;
    }
    if (head.size() > 64 * 1024) break;  // oversized head: answer anyway
  }
  std::string out = "HTTP/1.0 200 OK\r\n";
  out += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out.append(body);
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("scrape: send failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace gc
