#include "obs/inspect.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/table.h"

namespace gc {

namespace {

std::string read_text_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Column aggregate over a parsed time-series table.
std::optional<double> column_aggregate(const CsvTable& table,
                                       std::string_view name,
                                       std::string_view agg) {
  const int index = table.column_index(std::string(name));
  if (index < 0 || table.rows.empty()) return std::nullopt;
  const auto col = static_cast<std::size_t>(index);
  if (agg == "last") return table.rows.back()[col];
  double sum = 0.0;
  double lo = table.rows.front()[col];
  double hi = lo;
  for (const auto& row : table.rows) {
    const double v = row[col];
    sum += v;
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  if (agg == "sum") return sum;
  if (agg == "min") return lo;
  if (agg == "max") return hi;
  if (agg == "mean") return sum / static_cast<double>(table.rows.size());
  return std::nullopt;
}

}  // namespace

RunArtifacts RunArtifacts::load(const std::string& prefix) {
  RunArtifacts out;
  out.prefix = prefix;
  const std::filesystem::path counters_path = prefix + ".counters.json";
  const std::filesystem::path audit_path = prefix + ".audit.jsonl";
  const std::filesystem::path timeseries_path = prefix + ".timeseries.csv";
  if (std::filesystem::exists(counters_path)) {
    out.counters = CountersSnapshot::from_json(read_text_file(counters_path));
  }
  if (std::filesystem::exists(audit_path)) {
    out.audit = DecisionAuditLog::read_jsonl(audit_path);
  }
  if (std::filesystem::exists(timeseries_path)) {
    out.timeseries = read_csv_file(timeseries_path);
  }
  if (out.empty()) {
    throw std::runtime_error(
        "no artifacts found for prefix '" + prefix +
        "' (expected at least one of .counters.json, .audit.jsonl, "
        ".timeseries.csv)");
  }
  return out;
}

std::optional<double> lookup_metric(const RunArtifacts& run,
                                    std::string_view metric) {
  const std::size_t colon = metric.rfind(':');
  if (colon != std::string_view::npos) {
    if (!run.timeseries) return std::nullopt;
    return column_aggregate(*run.timeseries, metric.substr(0, colon),
                            metric.substr(colon + 1));
  }
  if (run.counters) {
    for (const auto& [name, value] : run.counters->counters) {
      if (name == metric) return static_cast<double>(value);
    }
    for (const auto& [name, value] : run.counters->gauges) {
      if (name == metric) return value;
    }
  }
  if (run.timeseries) {
    return column_aggregate(*run.timeseries, metric, "mean");
  }
  return std::nullopt;
}

MetricCheck parse_check(std::string_view text) {
  MetricCheck check;
  std::size_t op_pos = std::string_view::npos;
  std::size_t op_len = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '<' || text[i] == '>') {
      op_pos = i;
      check.upper = text[i] == '<';
      op_len = (i + 1 < text.size() && text[i + 1] == '=') ? 2 : 1;
      check.strict = op_len == 1;
      break;
    }
  }
  if (op_pos == std::string_view::npos || op_pos == 0 ||
      op_pos + op_len >= text.size()) {
    throw std::invalid_argument(
        "check must look like METRIC<=BOUND (got '" +
        std::string(text) + "')");
  }
  check.metric = std::string(text.substr(0, op_pos));
  const std::string bound_text(text.substr(op_pos + op_len));
  std::size_t parsed = 0;
  try {
    check.bound = std::stod(bound_text, &parsed);
  } catch (const std::exception&) {
    parsed = 0;
  }
  if (parsed != bound_text.size()) {
    throw std::invalid_argument("malformed bound '" + bound_text +
                                "'");
  }
  return check;
}

CheckResult evaluate_check(const RunArtifacts& run, const MetricCheck& check) {
  const std::optional<double> value = lookup_metric(run, check.metric);
  if (!value) {
    throw std::runtime_error("metric '" + check.metric +
                             "' not found in artifacts for '" + run.prefix +
                             "'");
  }
  CheckResult result;
  result.value = *value;
  if (check.upper) {
    result.passed = check.strict ? *value < check.bound : *value <= check.bound;
  } else {
    result.passed = check.strict ? *value > check.bound : *value >= check.bound;
  }
  return result;
}

namespace {

// The time-series columns worth surfacing in summaries/diffs, with the
// aggregate that makes sense for each.
struct KeyColumn {
  const char* column;
  const char* agg;
};

constexpr KeyColumn kKeyColumns[] = {
    {"observed_rate", "mean"}, {"serving", "mean"},
    {"power_w", "mean"},       {"power_w", "max"},
    {"energy_j", "last"},      {"queue_depth", "max"},
    {"win_mean_t_s", "mean"},  {"win_p95_t_s", "max"},
    {"win_p99_t_s", "max"},    {"rolling_viol_frac", "max"},
    {"shed_frac", "mean"},     {"d_shed", "sum"},
};

void print_counters_section(std::ostream& os, const CountersSnapshot& snapshot) {
  TablePrinter counters("counters");
  counters.column("name").column("value", {0, true, ""});
  for (const auto& [name, value] : snapshot.counters) {
    counters.row().cell(name).cell(static_cast<long long>(value));
  }
  if (counters.num_rows() > 0) counters.print(os);
  TablePrinter gauges("gauges");
  gauges.column("name").column("value", {6, false, ""});
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.row().cell(name).cell(value);
  }
  if (gauges.num_rows() > 0) gauges.print(os);
}

void print_timeseries_section(std::ostream& os, const CsvTable& table) {
  TablePrinter overview("timeseries");
  overview.column("metric").column("value", {6, false, ""});
  const int t_col = table.column_index("t");
  if (t_col >= 0 && !table.rows.empty()) {
    const auto col = static_cast<std::size_t>(t_col);
    overview.row().cell("rows").cell(
        static_cast<long long>(table.rows.size()));
    overview.row().cell("t_first_s").cell(table.rows.front()[col]);
    overview.row().cell("t_last_s").cell(table.rows.back()[col]);
  }
  for (const KeyColumn& key : kKeyColumns) {
    const auto value = column_aggregate(table, key.column, key.agg);
    if (!value) continue;
    overview.row()
        .cell(std::string(key.column) + ":" + key.agg)
        .cell(*value);
  }
  overview.print(os);
}

// Audit-derived phase breakdown: ticks partitioned by kind and by whether
// the fleet was in the watchdog's safe mode.
void print_phase_section(std::ostream& os, const DecisionAuditLog& audit) {
  struct Phase {
    const char* name;
    std::size_t ticks = 0;
    double rate_sum = 0.0;
    double serving_sum = 0.0;
    double target_sum = 0.0;
    std::size_t infeasible = 0;
  };
  Phase phases[] = {{"short"}, {"long"}, {"safe_mode"}};
  for (const AuditRecord& r : audit.records()) {
    Phase& phase =
        r.safe_mode ? phases[2] : (r.long_tick ? phases[1] : phases[0]);
    ++phase.ticks;
    phase.rate_sum += r.observed_rate;
    phase.serving_sum += static_cast<double>(r.serving);
    phase.target_sum += static_cast<double>(r.target_servers);
    if (r.infeasible) ++phase.infeasible;
  }
  TablePrinter table("phases (audit)");
  table.column("phase")
      .column("ticks", {0, true, ""})
      .column("mean_rate", {3, true, "jobs/s"})
      .column("mean_serving", {2, true, ""})
      .column("mean_target", {2, true, ""})
      .column("infeasible", {0, true, ""});
  for (const Phase& phase : phases) {
    if (phase.ticks == 0) continue;
    const auto n = static_cast<double>(phase.ticks);
    table.row()
        .cell(phase.name)
        .cell(static_cast<long long>(phase.ticks))
        .cell(phase.rate_sum / n)
        .cell(phase.serving_sum / n)
        .cell(phase.target_sum / n)
        .cell(static_cast<long long>(phase.infeasible));
  }
  table.print(os);
}

}  // namespace

void print_summary(std::ostream& os, const RunArtifacts& run) {
  os << "run: " << run.prefix << "\n";
  if (run.counters) print_counters_section(os, *run.counters);
  if (run.timeseries) print_timeseries_section(os, *run.timeseries);
  if (run.audit) print_phase_section(os, *run.audit);
}

void print_diff(std::ostream& os, const RunArtifacts& a,
                const RunArtifacts& b) {
  os << "A: " << a.prefix << "\nB: " << b.prefix << "\n";
  if (a.counters && b.counters) {
    TablePrinter table("counters diff");
    table.column("name")
        .column("A", {0, true, ""})
        .column("B", {0, true, ""})
        .column("delta", {0, true, ""});
    for (const auto& [name, value_a] : a.counters->counters) {
      bool found = false;
      std::uint64_t value_b = 0;
      for (const auto& [name_b, v] : b.counters->counters) {
        if (name_b == name) {
          value_b = v;
          found = true;
          break;
        }
      }
      if (!found) continue;
      table.row()
          .cell(name)
          .cell(static_cast<long long>(value_a))
          .cell(static_cast<long long>(value_b))
          .cell(static_cast<long long>(value_b) -
                static_cast<long long>(value_a));
    }
    if (table.num_rows() > 0) table.print(os);
  }
  if (a.timeseries && b.timeseries) {
    TablePrinter table("timeseries diff");
    table.column("metric")
        .column("A", {6, false, ""})
        .column("B", {6, false, ""})
        .column("delta", {6, false, ""})
        .column("rel_pct", {2, true, "%"});
    for (const KeyColumn& key : kKeyColumns) {
      const auto value_a = column_aggregate(*a.timeseries, key.column, key.agg);
      const auto value_b = column_aggregate(*b.timeseries, key.column, key.agg);
      if (!value_a || !value_b) continue;
      const double delta = *value_b - *value_a;
      const double rel =
          *value_a != 0.0 ? 100.0 * delta / std::fabs(*value_a) : 0.0;
      table.row()
          .cell(std::string(key.column) + ":" + key.agg)
          .cell(*value_a)
          .cell(*value_b)
          .cell(delta)
          .cell(rel);
    }
    if (table.num_rows() > 0) table.print(os);
  }
}

}  // namespace gc
