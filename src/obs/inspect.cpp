#include "obs/inspect.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/table.h"

namespace gc {

namespace {

std::string read_text_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Column aggregate over a parsed time-series table.
std::optional<double> column_aggregate(const CsvTable& table,
                                       std::string_view name,
                                       std::string_view agg) {
  const int index = table.column_index(std::string(name));
  if (index < 0 || table.rows.empty()) return std::nullopt;
  const auto col = static_cast<std::size_t>(index);
  if (agg == "last") return table.rows.back()[col];
  double sum = 0.0;
  double lo = table.rows.front()[col];
  double hi = lo;
  for (const auto& row : table.rows) {
    const double v = row[col];
    sum += v;
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  if (agg == "sum") return sum;
  if (agg == "min") return lo;
  if (agg == "max") return hi;
  if (agg == "mean") return sum / static_cast<double>(table.rows.size());
  return std::nullopt;
}

}  // namespace

RunArtifacts RunArtifacts::load(const std::string& prefix) {
  RunArtifacts out;
  out.prefix = prefix;
  const std::filesystem::path counters_path = prefix + ".counters.json";
  const std::filesystem::path audit_path = prefix + ".audit.jsonl";
  const std::filesystem::path timeseries_path = prefix + ".timeseries.csv";
  if (std::filesystem::exists(counters_path)) {
    out.counters = CountersSnapshot::from_json(read_text_file(counters_path));
  }
  if (std::filesystem::exists(audit_path)) {
    out.audit = DecisionAuditLog::read_jsonl(audit_path);
  }
  if (std::filesystem::exists(timeseries_path)) {
    out.timeseries = read_csv_file(timeseries_path);
  }
  if (out.empty()) {
    throw std::runtime_error(
        "no artifacts found for prefix '" + prefix +
        "' (expected at least one of .counters.json, .audit.jsonl, "
        ".timeseries.csv)");
  }
  return out;
}

std::optional<double> lookup_metric(const RunArtifacts& run,
                                    std::string_view metric) {
  // Full-name counter/gauge match first: quantile gauges like
  // `cp.lifecycle.ack_latency:p99` carry a literal colon, so the name must
  // win over the NAME:AGG time-series interpretation.  Only when no
  // counter or gauge matches does the suffix fall back to an aggregate.
  if (run.counters) {
    for (const auto& [name, value] : run.counters->counters) {
      if (name == metric) return static_cast<double>(value);
    }
    for (const auto& [name, value] : run.counters->gauges) {
      if (name == metric) return value;
    }
  }
  const std::size_t colon = metric.rfind(':');
  if (colon != std::string_view::npos) {
    if (!run.timeseries) return std::nullopt;
    return column_aggregate(*run.timeseries, metric.substr(0, colon),
                            metric.substr(colon + 1));
  }
  if (run.timeseries) {
    return column_aggregate(*run.timeseries, metric, "mean");
  }
  return std::nullopt;
}

MetricCheck parse_check(std::string_view text) {
  MetricCheck check;
  std::size_t op_pos = std::string_view::npos;
  std::size_t op_len = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '<' || text[i] == '>') {
      op_pos = i;
      check.upper = text[i] == '<';
      op_len = (i + 1 < text.size() && text[i + 1] == '=') ? 2 : 1;
      check.strict = op_len == 1;
      break;
    }
  }
  if (op_pos == std::string_view::npos || op_pos == 0 ||
      op_pos + op_len >= text.size()) {
    throw std::invalid_argument(
        "check must look like METRIC<=BOUND (got '" +
        std::string(text) + "')");
  }
  check.metric = std::string(text.substr(0, op_pos));
  const std::string bound_text(text.substr(op_pos + op_len));
  std::size_t parsed = 0;
  try {
    check.bound = std::stod(bound_text, &parsed);
  } catch (const std::exception&) {
    parsed = 0;
  }
  if (parsed != bound_text.size()) {
    throw std::invalid_argument("malformed bound '" + bound_text +
                                "'");
  }
  return check;
}

CheckResult evaluate_check(const RunArtifacts& run, const MetricCheck& check) {
  const std::optional<double> value = lookup_metric(run, check.metric);
  if (!value) {
    throw std::runtime_error("metric '" + check.metric +
                             "' not found in artifacts for '" + run.prefix +
                             "'");
  }
  CheckResult result;
  result.value = *value;
  if (check.upper) {
    result.passed = check.strict ? *value < check.bound : *value <= check.bound;
  } else {
    result.passed = check.strict ? *value > check.bound : *value >= check.bound;
  }
  return result;
}

namespace {

// The time-series columns worth surfacing in summaries/diffs, with the
// aggregate that makes sense for each.
struct KeyColumn {
  const char* column;
  const char* agg;
};

constexpr KeyColumn kKeyColumns[] = {
    {"observed_rate", "mean"}, {"serving", "mean"},
    {"power_w", "mean"},       {"power_w", "max"},
    {"energy_j", "last"},      {"queue_depth", "max"},
    {"win_mean_t_s", "mean"},  {"win_p95_t_s", "max"},
    {"win_p99_t_s", "max"},    {"rolling_viol_frac", "max"},
    {"shed_frac", "mean"},     {"d_shed", "sum"},
};

void print_counters_section(std::ostream& os, const CountersSnapshot& snapshot) {
  TablePrinter counters("counters");
  counters.column("name").column("value", {0, true, ""});
  for (const auto& [name, value] : snapshot.counters) {
    counters.row().cell(name).cell(static_cast<long long>(value));
  }
  if (counters.num_rows() > 0) counters.print(os);
  TablePrinter gauges("gauges");
  gauges.column("name").column("value", {6, false, ""});
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.row().cell(name).cell(value);
  }
  if (gauges.num_rows() > 0) gauges.print(os);
}

void print_timeseries_section(std::ostream& os, const CsvTable& table) {
  TablePrinter overview("timeseries");
  overview.column("metric").column("value", {6, false, ""});
  const int t_col = table.column_index("t");
  if (t_col >= 0 && !table.rows.empty()) {
    const auto col = static_cast<std::size_t>(t_col);
    overview.row().cell("rows").cell(
        static_cast<long long>(table.rows.size()));
    overview.row().cell("t_first_s").cell(table.rows.front()[col]);
    overview.row().cell("t_last_s").cell(table.rows.back()[col]);
  }
  for (const KeyColumn& key : kKeyColumns) {
    const auto value = column_aggregate(table, key.column, key.agg);
    if (!value) continue;
    overview.row()
        .cell(std::string(key.column) + ":" + key.agg)
        .cell(*value);
  }
  overview.print(os);
}

// Audit-derived phase breakdown: ticks partitioned by kind and by whether
// the fleet was in the watchdog's safe mode.
void print_phase_section(std::ostream& os, const DecisionAuditLog& audit) {
  struct Phase {
    const char* name;
    std::size_t ticks = 0;
    double rate_sum = 0.0;
    double serving_sum = 0.0;
    double target_sum = 0.0;
    std::size_t infeasible = 0;
  };
  Phase phases[] = {{"short"}, {"long"}, {"safe_mode"}};
  for (const AuditRecord& r : audit.records()) {
    Phase& phase =
        r.safe_mode ? phases[2] : (r.long_tick ? phases[1] : phases[0]);
    ++phase.ticks;
    phase.rate_sum += r.observed_rate;
    phase.serving_sum += static_cast<double>(r.serving);
    phase.target_sum += static_cast<double>(r.target_servers);
    if (r.infeasible) ++phase.infeasible;
  }
  TablePrinter table("phases (audit)");
  table.column("phase")
      .column("ticks", {0, true, ""})
      .column("mean_rate", {3, true, "jobs/s"})
      .column("mean_serving", {2, true, ""})
      .column("mean_target", {2, true, ""})
      .column("infeasible", {0, true, ""});
  for (const Phase& phase : phases) {
    if (phase.ticks == 0) continue;
    const auto n = static_cast<double>(phase.ticks);
    table.row()
        .cell(phase.name)
        .cell(static_cast<long long>(phase.ticks))
        .cell(phase.rate_sum / n)
        .cell(phase.serving_sum / n)
        .cell(phase.target_sum / n)
        .cell(static_cast<long long>(phase.infeasible));
  }
  table.print(os);
}

}  // namespace

void print_summary(std::ostream& os, const RunArtifacts& run) {
  os << "run: " << run.prefix << "\n";
  if (run.counters) print_counters_section(os, *run.counters);
  if (run.timeseries) print_timeseries_section(os, *run.timeseries);
  if (run.audit) print_phase_section(os, *run.audit);
}

void print_diff(std::ostream& os, const RunArtifacts& a,
                const RunArtifacts& b) {
  os << "A: " << a.prefix << "\nB: " << b.prefix << "\n";
  if (a.counters && b.counters) {
    TablePrinter table("counters diff");
    table.column("name")
        .column("A", {0, true, ""})
        .column("B", {0, true, ""})
        .column("delta", {0, true, ""});
    for (const auto& [name, value_a] : a.counters->counters) {
      bool found = false;
      std::uint64_t value_b = 0;
      for (const auto& [name_b, v] : b.counters->counters) {
        if (name_b == name) {
          value_b = v;
          found = true;
          break;
        }
      }
      if (!found) continue;
      table.row()
          .cell(name)
          .cell(static_cast<long long>(value_a))
          .cell(static_cast<long long>(value_b))
          .cell(static_cast<long long>(value_b) -
                static_cast<long long>(value_a));
    }
    if (table.num_rows() > 0) table.print(os);
  }
  if (a.timeseries && b.timeseries) {
    TablePrinter table("timeseries diff");
    table.column("metric")
        .column("A", {6, false, ""})
        .column("B", {6, false, ""})
        .column("delta", {6, false, ""})
        .column("rel_pct", {2, true, "%"});
    for (const KeyColumn& key : kKeyColumns) {
      const auto value_a = column_aggregate(*a.timeseries, key.column, key.agg);
      const auto value_b = column_aggregate(*b.timeseries, key.column, key.agg);
      if (!value_a || !value_b) continue;
      const double delta = *value_b - *value_a;
      const double rel =
          *value_a != 0.0 ? 100.0 * delta / std::fabs(*value_a) : 0.0;
      table.row()
          .cell(std::string(key.column) + ":" + key.agg)
          .cell(*value_a)
          .cell(*value_b)
          .cell(delta)
          .cell(rel);
    }
    if (table.num_rows() > 0) table.print(os);
  }
}

// -- Lifecycle view ----------------------------------------------------------

namespace {

// Minimal per-line JSON object scanner for the tracker's export_jsonl
// format: flat objects whose values are numbers or plain strings.
struct LifecycleLineParser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("lifecycle.jsonl: " + why + " at byte " +
                             std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  [[nodiscard]] char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of line");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') out += text[pos++];
    if (pos >= text.size()) fail("unterminated string");
    ++pos;
    return out;
  }
  [[nodiscard]] double parse_number() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size()) {
      const char d = text[pos];
      if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
          d == 'e' || d == 'E') {
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) fail("expected a number");
    return std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                       nullptr);
  }
};

}  // namespace

std::vector<LifecycleRow> parse_lifecycle_jsonl(std::string_view text) {
  std::vector<LifecycleRow> rows;
  std::size_t line_start = 0;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    const std::string_view line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    bool blank = true;
    for (const char c : line) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    LifecycleLineParser p{line};
    LifecycleRow r;
    p.expect('{');
    bool first = true;
    while (p.peek() != '}') {
      if (!first) p.expect(',');
      first = false;
      const std::string key = p.parse_string();
      p.expect(':');
      if (key == "kind") {
        r.kind = p.parse_string();
      } else if (key == "state") {
        r.state = p.parse_string();
      } else if (p.peek() == '"') {
        (void)p.parse_string();  // unknown string key: skip
      } else {
        const double v = p.parse_number();
        if (key == "gen") {
          r.gen = static_cast<std::uint64_t>(v);
        } else if (key == "id") {
          r.id = static_cast<std::uint64_t>(v);
        } else if (key == "era") {
          r.era = static_cast<std::uint64_t>(v);
        } else if (key == "value") {
          r.value = v;
        } else if (key == "issued_s") {
          r.issued_s = v;
        } else if (key == "obs_age_s") {
          r.obs_age_s = v;
        } else if (key == "retransmits") {
          r.retransmits = static_cast<std::uint64_t>(v);
        } else if (key == "frame_drops") {
          r.frame_drops = static_cast<std::uint64_t>(v);
        } else if (key == "last_sent_s") {
          r.last_sent_s = v;
        } else if (key == "acked_s") {
          r.acked_s = v;
        } else if (key == "applied_s") {
          r.applied_s = v;
        }
        // Unknown numeric keys fall through: forward compatibility.
      }
    }
    p.expect('}');
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<LifecycleRow> read_lifecycle_jsonl(const std::string& path) {
  return parse_lifecycle_jsonl(read_text_file(path));
}

void print_lifecycle(std::ostream& os, const std::string& prefix) {
  const std::string path = prefix + ".lifecycle.jsonl";
  if (!std::filesystem::exists(path)) {
    throw std::runtime_error("no lifecycle artifact at " + path);
  }
  const std::vector<LifecycleRow> rows = read_lifecycle_jsonl(path);

  TablePrinter table("command lifecycles");
  table.column("id", {0, true, ""})
      .column("kind")
      .column("gen", {0, true, ""})
      .column("era", {0, true, ""})
      .column("value", {3, false, ""})
      .column("issued_s", {3, false, ""})
      .column("obs_age_s", {4, false, ""})
      .column("rtx", {0, true, ""})
      .column("ack_lat_s", {4, false, ""})
      .column("apply_lat_s", {4, false, ""})
      .column("state");
  for (const LifecycleRow& r : rows) {
    table.row()
        .cell(static_cast<long long>(r.id))
        .cell(r.kind)
        .cell(static_cast<long long>(r.gen))
        .cell(static_cast<long long>(r.era))
        .cell(r.value)
        .cell(r.issued_s)
        .cell(r.obs_age_s)
        .cell(static_cast<long long>(r.retransmits));
    if (r.acked_s >= 0.0) {
      table.cell(r.acked_s - r.issued_s);
    } else {
      table.cell("-");
    }
    if (r.applied_s >= 0.0) {
      table.cell(r.applied_s - r.issued_s);
    } else {
      table.cell("-");
    }
    table.cell(r.state);
  }
  table.print(os);

  std::uint64_t completed = 0, superseded = 0, reconciled = 0, other = 0;
  std::uint64_t retransmits = 0, acked = 0, applied = 0;
  double ack_lat_max = 0.0, apply_lat_max = 0.0, ack_lat_sum = 0.0,
         apply_lat_sum = 0.0;
  for (const LifecycleRow& r : rows) {
    if (r.state == "completed") {
      ++completed;
    } else if (r.state == "superseded") {
      ++superseded;
    } else if (r.state == "reconciled") {
      ++reconciled;
    } else {
      ++other;
    }
    retransmits += r.retransmits;
    if (r.acked_s >= 0.0) {
      ++acked;
      const double lat = r.acked_s - r.issued_s;
      ack_lat_sum += lat;
      if (lat > ack_lat_max) ack_lat_max = lat;
    }
    if (r.applied_s >= 0.0) {
      ++applied;
      const double lat = r.applied_s - r.issued_s;
      apply_lat_sum += lat;
      if (lat > apply_lat_max) apply_lat_max = lat;
    }
  }
  TablePrinter summary("lifecycle summary");
  summary.column("metric").column("value", {4, false, ""});
  summary.row().cell("commands").cell(static_cast<long long>(rows.size()));
  summary.row().cell("completed").cell(static_cast<long long>(completed));
  summary.row().cell("superseded").cell(static_cast<long long>(superseded));
  summary.row().cell("reconciled").cell(static_cast<long long>(reconciled));
  if (other > 0) summary.row().cell("other").cell(static_cast<long long>(other));
  summary.row().cell("acked").cell(static_cast<long long>(acked));
  summary.row().cell("applied").cell(static_cast<long long>(applied));
  summary.row().cell("retransmits").cell(static_cast<long long>(retransmits));
  summary.row().cell("retransmit_rate").cell(
      rows.empty() ? 0.0
                   : static_cast<double>(retransmits) /
                         static_cast<double>(rows.size()));
  summary.row().cell("ack_latency_mean_s").cell(
      acked > 0 ? ack_lat_sum / static_cast<double>(acked) : 0.0);
  summary.row().cell("ack_latency_max_s").cell(ack_lat_max);
  summary.row().cell("apply_latency_mean_s").cell(
      applied > 0 ? apply_lat_sum / static_cast<double>(applied) : 0.0);
  summary.row().cell("apply_latency_max_s").cell(apply_lat_max);
  summary.print(os);
}

}  // namespace gc
