#include "obs/trace.h"

#include <cstdio>
#include <stdexcept>

namespace gc {
namespace {

void append_escaped(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += *s; break;
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

TraceCollector::TraceCollector(TraceOptions options) {
  if (options.capacity == 0) {
    throw std::invalid_argument("TraceCollector: capacity must be > 0");
  }
  ring_.resize(options.capacity);
}

void TraceCollector::emit(const TraceRecord& record) noexcept {
  ring_[head_] = record;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) ++size_;
  ++emitted_;
}

void TraceCollector::instant(double ts_s, const char* cat, const char* name,
                             std::uint32_t tid) {
  TraceRecord r;
  r.ts_s = ts_s;
  r.cat = cat;
  r.name = name;
  r.phase = TracePhase::kInstant;
  r.tid = tid;
  emit(r);
}

void TraceCollector::instant1(double ts_s, const char* cat, const char* name,
                              const char* arg, double value, std::uint32_t tid) {
  TraceRecord r;
  r.ts_s = ts_s;
  r.cat = cat;
  r.name = name;
  r.phase = TracePhase::kInstant;
  r.tid = tid;
  r.nargs = 1;
  r.arg_name[0] = arg;
  r.arg_value[0] = value;
  emit(r);
}

void TraceCollector::complete(double ts_s, double dur_s, const char* cat,
                              const char* name, std::uint32_t tid) {
  TraceRecord r;
  r.ts_s = ts_s;
  r.dur_s = dur_s;
  r.cat = cat;
  r.name = name;
  r.phase = TracePhase::kComplete;
  r.tid = tid;
  emit(r);
}

void TraceCollector::counter(double ts_s, const char* name, const char* series,
                             double value) {
  TraceRecord r;
  r.ts_s = ts_s;
  r.cat = "counter";
  r.name = name;
  r.phase = TracePhase::kCounter;
  r.nargs = 1;
  r.arg_name[0] = series;
  r.arg_value[0] = value;
  emit(r);
}

void TraceCollector::async_begin(double ts_s, const char* cat, const char* name,
                                 std::uint32_t id) {
  TraceRecord r;
  r.ts_s = ts_s;
  r.cat = cat;
  r.name = name;
  r.phase = TracePhase::kAsyncBegin;
  r.id = id;
  emit(r);
}

void TraceCollector::async_end(double ts_s, const char* cat, const char* name,
                               std::uint32_t id) {
  TraceRecord r;
  r.ts_s = ts_s;
  r.cat = cat;
  r.name = name;
  r.phase = TracePhase::kAsyncEnd;
  r.id = id;
  emit(r);
}

std::vector<TraceRecord> TraceCollector::records() const {
  std::vector<TraceRecord> out;
  out.reserve(size_);
  // Oldest record: head_ when the ring has wrapped, 0 otherwise.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceCollector::clear() noexcept {
  head_ = 0;
  size_ = 0;
  emitted_ = 0;
}

std::string TraceCollector::to_chrome_json() const {
  // Chrome's JSON object format: displayTimeUnit/metadata are optional but
  // make Perfetto label the axis in milliseconds of simulated time.
  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  const std::vector<TraceRecord> recs = records();
  bool first = true;
  for (const TraceRecord& r : recs) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"pid\": 1, \"tid\": ";
    append_number(out, static_cast<double>(r.tid));
    out += ", \"ph\": \"";
    out += static_cast<char>(r.phase);
    out += "\", \"ts\": ";
    append_number(out, r.ts_s * 1e6);  // simulation seconds -> microseconds
    if (r.phase == TracePhase::kComplete) {
      out += ", \"dur\": ";
      append_number(out, r.dur_s * 1e6);
    }
    if (r.phase == TracePhase::kInstant) {
      out += ", \"s\": \"t\"";  // instant scope: thread
    }
    if (r.phase == TracePhase::kAsyncBegin || r.phase == TracePhase::kAsyncEnd) {
      out += ", \"id\": ";
      append_number(out, static_cast<double>(r.id));
    }
    out += ", \"cat\": ";
    append_escaped(out, r.cat);
    out += ", \"name\": ";
    append_escaped(out, r.name);
    if (r.phase == TracePhase::kCounter) {
      // Counter events chart args series; name is the chart title.
      out += ", \"args\": {";
      append_escaped(out, r.arg_name[0]);
      out += ": ";
      append_number(out, r.arg_value[0]);
      out += '}';
    } else if (r.nargs > 0) {
      out += ", \"args\": {";
      for (std::uint8_t a = 0; a < r.nargs && a < 2; ++a) {
        if (a > 0) out += ", ";
        append_escaped(out, r.arg_name[a]);
        out += ": ";
        append_number(out, r.arg_value[a]);
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

void TraceCollector::write_chrome_json(const std::filesystem::path& path) const {
  const std::string text = to_chrome_json();
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("TraceCollector: cannot write " + path.string());
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    throw std::runtime_error("TraceCollector: short write to " + path.string());
  }
}

}  // namespace gc
