#include "obs/audit.h"

#include <cstdio>
#include <stdexcept>

namespace gc {
namespace {

void append_kv(std::string& out, const char* key, double value, bool last = false) {
  char buf[96];
  // %.17g keeps doubles re-parse-exact; integers render without exponents.
  std::snprintf(buf, sizeof buf, "\"%s\": %.17g%s", key, value, last ? "" : ", ");
  out += buf;
}

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(value), last ? "" : ", ");
  out += buf;
}

void append_kv(std::string& out, const char* key, bool value, bool last = false) {
  out += '"';
  out += key;
  out += value ? "\": true" : "\": false";
  if (!last) out += ", ";
}

}  // namespace

std::string DecisionAuditLog::to_jsonl() const {
  std::string out;
  out.reserve(records_.size() * 256);
  for (const AuditRecord& r : records_) {
    out += '{';
    append_kv(out, "t", r.time_s);
    out += r.long_tick ? "\"tick\": \"long\", " : "\"tick\": \"short\", ";
    append_kv(out, "observed_rate", r.observed_rate);
    append_kv(out, "serving", std::uint64_t{r.serving});
    append_kv(out, "committed", std::uint64_t{r.committed});
    append_kv(out, "powered", std::uint64_t{r.powered});
    append_kv(out, "available", std::uint64_t{r.available});
    append_kv(out, "jobs_in_system", r.jobs_in_system);
    append_kv(out, "predicted_rate", r.predicted_rate);
    append_kv(out, "planning_rate", r.planning_rate);
    append_kv(out, "safety_margin", r.safety_margin);
    append_kv(out, "planned_servers", std::uint64_t{r.planned_servers});
    append_kv(out, "detected_available", std::uint64_t{r.detected_available});
    append_kv(out, "target_set", r.target_set);
    append_kv(out, "target_servers", std::uint64_t{r.target_servers});
    append_kv(out, "delta_servers", static_cast<double>(r.delta_servers));
    append_kv(out, "speed_set", r.speed_set);
    append_kv(out, "speed", r.speed);
    append_kv(out, "infeasible", r.infeasible);
    append_kv(out, "admit_probability", r.admit_probability);
    append_kv(out, "obs_age_s", r.obs_age_s);
    append_kv(out, "safe_mode", r.safe_mode, /*last=*/true);
    out += "}\n";
  }
  return out;
}

void DecisionAuditLog::write_jsonl(const std::filesystem::path& path) const {
  const std::string text = to_jsonl();
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("DecisionAuditLog: cannot write " + path.string());
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    throw std::runtime_error("DecisionAuditLog: short write to " + path.string());
  }
}

CsvTable DecisionAuditLog::to_csv_table() const {
  CsvTable table;
  table.header = {"t",
                  "long_tick",
                  "observed_rate",
                  "serving",
                  "committed",
                  "powered",
                  "available",
                  "jobs_in_system",
                  "predicted_rate",
                  "planning_rate",
                  "safety_margin",
                  "planned_servers",
                  "detected_available",
                  "target_set",
                  "target_servers",
                  "delta_servers",
                  "speed_set",
                  "speed",
                  "infeasible",
                  "admit_probability",
                  "obs_age_s",
                  "safe_mode"};
  table.rows.reserve(records_.size());
  for (const AuditRecord& r : records_) {
    table.rows.push_back({r.time_s,
                          r.long_tick ? 1.0 : 0.0,
                          r.observed_rate,
                          static_cast<double>(r.serving),
                          static_cast<double>(r.committed),
                          static_cast<double>(r.powered),
                          static_cast<double>(r.available),
                          static_cast<double>(r.jobs_in_system),
                          r.predicted_rate,
                          r.planning_rate,
                          r.safety_margin,
                          static_cast<double>(r.planned_servers),
                          static_cast<double>(r.detected_available),
                          r.target_set ? 1.0 : 0.0,
                          static_cast<double>(r.target_servers),
                          static_cast<double>(r.delta_servers),
                          r.speed_set ? 1.0 : 0.0,
                          r.speed,
                          r.infeasible ? 1.0 : 0.0,
                          r.admit_probability,
                          r.obs_age_s,
                          r.safe_mode ? 1.0 : 0.0});
  }
  return table;
}

void DecisionAuditLog::write_csv(const std::filesystem::path& path) const {
  write_csv_file(path, to_csv_table());
}

}  // namespace gc
