#include "obs/audit.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gc {
namespace {

void append_kv(std::string& out, const char* key, double value, bool last = false) {
  char buf[96];
  // %.17g keeps doubles re-parse-exact; integers render without exponents.
  std::snprintf(buf, sizeof buf, "\"%s\": %.17g%s", key, value, last ? "" : ", ");
  out += buf;
}

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(value), last ? "" : ", ");
  out += buf;
}

void append_kv(std::string& out, const char* key, bool value, bool last = false) {
  out += '"';
  out += key;
  out += value ? "\": true" : "\": false";
  if (!last) out += ", ";
}

}  // namespace

std::string DecisionAuditLog::to_jsonl() const {
  std::string out;
  out.reserve(records_.size() * 256);
  for (const AuditRecord& r : records_) {
    out += '{';
    append_kv(out, "t", r.time_s);
    out += r.long_tick ? "\"tick\": \"long\", " : "\"tick\": \"short\", ";
    append_kv(out, "observed_rate", r.observed_rate);
    append_kv(out, "serving", std::uint64_t{r.serving});
    append_kv(out, "committed", std::uint64_t{r.committed});
    append_kv(out, "powered", std::uint64_t{r.powered});
    append_kv(out, "available", std::uint64_t{r.available});
    append_kv(out, "jobs_in_system", r.jobs_in_system);
    append_kv(out, "predicted_rate", r.predicted_rate);
    append_kv(out, "planning_rate", r.planning_rate);
    append_kv(out, "safety_margin", r.safety_margin);
    append_kv(out, "planned_servers", std::uint64_t{r.planned_servers});
    append_kv(out, "detected_available", std::uint64_t{r.detected_available});
    append_kv(out, "target_set", r.target_set);
    append_kv(out, "target_servers", std::uint64_t{r.target_servers});
    append_kv(out, "delta_servers", static_cast<double>(r.delta_servers));
    append_kv(out, "speed_set", r.speed_set);
    append_kv(out, "speed", r.speed);
    append_kv(out, "infeasible", r.infeasible);
    append_kv(out, "admit_probability", r.admit_probability);
    append_kv(out, "obs_age_s", r.obs_age_s);
    append_kv(out, "safe_mode", r.safe_mode);
    append_kv(out, "solved_spares", static_cast<double>(r.solved_spares));
    append_kv(out, "availability_est", r.availability_est);
    append_kv(out, "binding_constraint", std::uint64_t{r.binding_constraint},
              /*last=*/true);
    out += "}\n";
  }
  return out;
}

namespace {

// Line-local scanner for the flat objects to_jsonl writes: string keys,
// number / true / false / "short" / "long" values, no nesting, no escapes.
struct LineParser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("DecisionAuditLog::from_jsonl: " +
                             std::string(what) + " at offset " +
                             std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  [[nodiscard]] char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of line");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos;
  }
  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') out += text[pos++];
    if (pos >= text.size()) fail("unterminated string");
    ++pos;
    return out;
  }
  // Value as a double: numbers parse, true/false map to 1/0, "short"/"long"
  // map to 0/1 (the CSV encoding of the tick kind).
  [[nodiscard]] double parse_value() {
    const char c = peek();
    if (c == '"') {
      const std::string s = parse_string();
      if (s == "long") return 1.0;
      if (s == "short") return 0.0;
      fail("unexpected string value");
    }
    if (c == 't' || c == 'f') {
      const bool is_true = text.compare(pos, 4, "true") == 0;
      if (is_true) {
        pos += 4;
        return 1.0;
      }
      if (text.compare(pos, 5, "false") == 0) {
        pos += 5;
        return 0.0;
      }
      fail("unexpected literal");
    }
    const std::size_t start = pos;
    while (pos < text.size()) {
      const char d = text[pos];
      if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
          d == 'e' || d == 'E') {
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) fail("expected a value");
    return std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                       nullptr);
  }
};

}  // namespace

DecisionAuditLog DecisionAuditLog::from_jsonl(std::string_view text) {
  DecisionAuditLog log;
  std::size_t line_start = 0;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    const std::string_view line =
        text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    bool blank = true;
    for (const char c : line) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    LineParser p{line};
    AuditRecord r;
    p.expect('{');
    bool first = true;
    while (p.peek() != '}') {
      if (!first) p.expect(',');
      first = false;
      const std::string key = p.parse_string();
      p.expect(':');
      const double v = p.parse_value();
      if (key == "t") {
        r.time_s = v;
      } else if (key == "tick") {
        r.long_tick = v != 0.0;
      } else if (key == "observed_rate") {
        r.observed_rate = v;
      } else if (key == "serving") {
        r.serving = static_cast<unsigned>(v);
      } else if (key == "committed") {
        r.committed = static_cast<unsigned>(v);
      } else if (key == "powered") {
        r.powered = static_cast<unsigned>(v);
      } else if (key == "available") {
        r.available = static_cast<unsigned>(v);
      } else if (key == "jobs_in_system") {
        r.jobs_in_system = static_cast<std::uint64_t>(v);
      } else if (key == "predicted_rate") {
        r.predicted_rate = v;
      } else if (key == "planning_rate") {
        r.planning_rate = v;
      } else if (key == "safety_margin") {
        r.safety_margin = v;
      } else if (key == "planned_servers") {
        r.planned_servers = static_cast<unsigned>(v);
      } else if (key == "detected_available") {
        r.detected_available = static_cast<unsigned>(v);
      } else if (key == "target_set") {
        r.target_set = v != 0.0;
      } else if (key == "target_servers") {
        r.target_servers = static_cast<unsigned>(v);
      } else if (key == "delta_servers") {
        r.delta_servers = static_cast<int>(v);
      } else if (key == "speed_set") {
        r.speed_set = v != 0.0;
      } else if (key == "speed") {
        r.speed = v;
      } else if (key == "infeasible") {
        r.infeasible = v != 0.0;
      } else if (key == "admit_probability") {
        r.admit_probability = v;
      } else if (key == "obs_age_s") {
        r.obs_age_s = v;
      } else if (key == "safe_mode") {
        r.safe_mode = v != 0.0;
      } else if (key == "solved_spares") {
        r.solved_spares = static_cast<int>(v);
      } else if (key == "availability_est") {
        r.availability_est = v;
      } else if (key == "binding_constraint") {
        r.binding_constraint = static_cast<unsigned>(v);
      }
      // Unknown keys fall through: forward compatibility with newer logs.
    }
    p.expect('}');
    log.append(r);
  }
  return log;
}

DecisionAuditLog DecisionAuditLog::read_jsonl(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("DecisionAuditLog: cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_jsonl(buffer.str());
}

void DecisionAuditLog::write_jsonl(const std::filesystem::path& path) const {
  const std::string text = to_jsonl();
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("DecisionAuditLog: cannot write " + path.string());
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    throw std::runtime_error("DecisionAuditLog: short write to " + path.string());
  }
}

CsvTable DecisionAuditLog::to_csv_table() const {
  CsvTable table;
  table.header = {"t",
                  "long_tick",
                  "observed_rate",
                  "serving",
                  "committed",
                  "powered",
                  "available",
                  "jobs_in_system",
                  "predicted_rate",
                  "planning_rate",
                  "safety_margin",
                  "planned_servers",
                  "detected_available",
                  "target_set",
                  "target_servers",
                  "delta_servers",
                  "speed_set",
                  "speed",
                  "infeasible",
                  "admit_probability",
                  "obs_age_s",
                  "safe_mode",
                  "solved_spares",
                  "availability_est",
                  "binding_constraint"};
  table.rows.reserve(records_.size());
  for (const AuditRecord& r : records_) {
    table.rows.push_back({r.time_s,
                          r.long_tick ? 1.0 : 0.0,
                          r.observed_rate,
                          static_cast<double>(r.serving),
                          static_cast<double>(r.committed),
                          static_cast<double>(r.powered),
                          static_cast<double>(r.available),
                          static_cast<double>(r.jobs_in_system),
                          r.predicted_rate,
                          r.planning_rate,
                          r.safety_margin,
                          static_cast<double>(r.planned_servers),
                          static_cast<double>(r.detected_available),
                          r.target_set ? 1.0 : 0.0,
                          static_cast<double>(r.target_servers),
                          static_cast<double>(r.delta_servers),
                          r.speed_set ? 1.0 : 0.0,
                          r.speed,
                          r.infeasible ? 1.0 : 0.0,
                          r.admit_probability,
                          r.obs_age_s,
                          r.safe_mode ? 1.0 : 0.0,
                          static_cast<double>(r.solved_spares),
                          r.availability_est,
                          static_cast<double>(r.binding_constraint)});
  }
  return table;
}

void DecisionAuditLog::write_csv(const std::filesystem::path& path) const {
  write_csv_file(path, to_csv_table());
}

}  // namespace gc
