// Run-artifact inspection — the library behind tools/gcinspect.
//
// A run identified by PREFIX leaves up to three artifacts next to each
// other: PREFIX.counters.json (CountersSnapshot), PREFIX.audit.jsonl
// (DecisionAuditLog), PREFIX.timeseries.csv (TimeSeriesRecorder export).
// RunArtifacts loads whichever exist; the summary/diff/check helpers work
// with whatever subset is present.
//
// Metric references (for --check and diffs) are strings of the form
//
//   NAME          counter or gauge NAME from the counters snapshot, else
//                 the mean of time-series column NAME
//   NAME:AGG      time-series column NAME aggregated by AGG, one of
//                 mean | min | max | last | sum
//
// and a check is `METRIC OP BOUND` with OP one of <=, >=, <, > (no
// spaces, e.g. `win_p95_t_s:max<=2.5` or `chan.commands.dropped<=40`).
// evaluate_check() is what ci/check.sh gates on via `gcinspect --check`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/audit.h"
#include "obs/counters.h"
#include "util/csv.h"

namespace gc {

struct RunArtifacts {
  std::string prefix;
  std::optional<CountersSnapshot> counters;
  std::optional<DecisionAuditLog> audit;
  std::optional<CsvTable> timeseries;

  // Loads PREFIX.counters.json / PREFIX.audit.jsonl / PREFIX.timeseries.csv,
  // each only if the file exists.  Throws std::runtime_error if none of the
  // three is present, or if a present file fails to parse.
  [[nodiscard]] static RunArtifacts load(const std::string& prefix);

  [[nodiscard]] bool empty() const noexcept {
    return !counters && !audit && !timeseries;
  }
};

// Resolves a metric reference (see header comment) against the artifacts.
// Returns nullopt when the name is unknown or the needed artifact is absent.
[[nodiscard]] std::optional<double> lookup_metric(const RunArtifacts& run,
                                                  std::string_view metric);

struct MetricCheck {
  std::string metric;   // reference, possibly with :AGG suffix
  bool upper = true;    // true: value must be <op> bound with op in {<=,<}
  bool strict = false;  // strict inequality
  double bound = 0.0;
};

// Parses `METRIC OP BOUND`; throws std::invalid_argument on syntax errors.
[[nodiscard]] MetricCheck parse_check(std::string_view text);

struct CheckResult {
  bool passed = false;
  double value = 0.0;  // resolved metric value
};

// Resolves the metric and applies the bound.  Throws std::runtime_error if
// the metric cannot be resolved against this run's artifacts.
[[nodiscard]] CheckResult evaluate_check(const RunArtifacts& run,
                                         const MetricCheck& check);

// One-run report: counter/gauge listing, time-series overview (duration,
// rows, per-column aggregates of the key columns), and an audit-derived
// per-phase breakdown (warmup vs. measured, normal vs. safe-mode ticks).
void print_summary(std::ostream& os, const RunArtifacts& run);

// Two-run A/B report: shared counters and key time-series aggregates side
// by side with absolute and relative deltas.
void print_diff(std::ostream& os, const RunArtifacts& a, const RunArtifacts& b);

// -- Lifecycle view ----------------------------------------------------------
//
// One parsed PREFIX.lifecycle.jsonl record — a command's reconstructed
// issued -> sent -> retransmitted×N -> acked -> applied timeline as the
// lifecycle tracker (cp/lifecycle.h) exported it.  Parsed generically
// (kind/state kept as strings) so the inspector carries no cp/ dependency.
struct LifecycleRow {
  std::string kind;             // "target" | "speed"
  std::uint64_t gen = 0;
  std::uint64_t id = 0;         // deterministic lifecycle id (gen<<1 | kind)
  std::uint64_t era = 0;
  double value = 0.0;
  double issued_s = 0.0;
  double obs_age_s = 0.0;       // telemetry age at the issuing decision
  std::uint64_t retransmits = 0;
  std::uint64_t frame_drops = 0;
  double last_sent_s = 0.0;
  double acked_s = -1.0;        // < 0: never acked
  double applied_s = -1.0;      // < 0: never applied (or unobservable)
  std::string state;            // "completed" | "superseded" | "reconciled" | ...
};

// Parses the tracker's export_jsonl output.  Throws std::runtime_error on
// unreadable files or malformed lines; unknown keys are ignored.
[[nodiscard]] std::vector<LifecycleRow> parse_lifecycle_jsonl(
    std::string_view text);
[[nodiscard]] std::vector<LifecycleRow> read_lifecycle_jsonl(
    const std::string& path);

// `gcinspect --lifecycle`: renders PREFIX.lifecycle.jsonl as a per-command
// timeline table (id, kind, gen, issued, retransmits, ack/apply latencies,
// terminal state) plus a summary block (counts by state, retransmit rate,
// latency extremes).  Throws if the artifact is missing.
void print_lifecycle(std::ostream& os, const std::string& prefix);

}  // namespace gc
