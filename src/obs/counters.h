// Named counters/gauges registry — the observability layer's metric plane.
//
// Design (DESIGN.md §7):
//
//   * Registration is the slow path: `MetricRegistry::counter(name)` /
//     `gauge(name)` look the name up (or create it) and return a handle
//     whose address is stable for the registry's lifetime.  Call it once,
//     keep the handle.
//   * The hot path is the handle: `Counter::inc()` is a single non-atomic
//     64-bit add and `Gauge::set()` a single store.  A registry is owned by
//     exactly one simulation run (the experiment runner builds one per run,
//     mirroring the Provisioner), so there is no cross-thread sharing and
//     therefore no lock and no atomic RMW on the hot path.  Do not share a
//     registry across threads.
//   * Counters are monotonic event counts (uint64); gauges are last-value
//     doubles (rates, ratios, sizes).
//   * `snapshot()` freezes everything into a plain CountersSnapshot that is
//     copied into SimResult and can be dumped as (and re-parsed from) JSON.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gc {

// Monotonic event count.  Handles are owned by a MetricRegistry; the
// address is stable until the registry is destroyed.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  friend class MetricRegistry;
  Counter() = default;
  std::uint64_t value_ = 0;
};

// Last-value instrument for non-monotonic quantities.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  friend class MetricRegistry;
  Gauge() = default;
  double value_ = 0.0;
};

// A frozen view of a registry: plain data, cheap to copy into SimResult.
// Entries keep registration order (deterministic across runs).
struct CountersSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty();
  }
  // Value lookups for tests and report code (linear scan; snapshots are
  // small).
  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback) const noexcept;
  [[nodiscard]] double gauge_or(std::string_view name, double fallback) const noexcept;

  // Appends an entry directly (used by layers that keep their own counters,
  // e.g. the solver memo cache, to merge into a run's snapshot).
  void add_counter(std::string name, std::uint64_t value);
  void add_gauge(std::string name, double value);

  // JSON object {"counters": {...}, "gauges": {...}}.  Gauges are printed
  // with %.17g so from_json(to_json(s)) == s bit-exactly.
  [[nodiscard]] std::string to_json() const;

  // Parses exactly the shape to_json emits (flat string->number maps under
  // "counters"/"gauges"); throws std::runtime_error on malformed input.
  [[nodiscard]] static CountersSnapshot from_json(std::string_view text);
};

[[nodiscard]] bool operator==(const CountersSnapshot& a, const CountersSnapshot& b);

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Returns the instrument registered under `name`, creating it on first
  // use.  A name identifies exactly one instrument; registering the same
  // name as both a counter and a gauge throws std::invalid_argument.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size();
  }

  [[nodiscard]] CountersSnapshot snapshot() const;

 private:
  // deque: stable element addresses under growth (handles are pointers).
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::vector<std::string> counter_names_;  // parallel to counters_
  std::vector<std::string> gauge_names_;    // parallel to gauges_
};

}  // namespace gc
