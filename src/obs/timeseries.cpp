#include "obs/timeseries.h"

#include <cstdio>
#include <stdexcept>

namespace gc {

namespace {

// Merge disposition per column when folding two adjacent instants (or two
// adjacent stored rows during decimation) into one.  `into` is the earlier
// instant, `next` the later.
enum class MergeKind {
  kLast,      // instantaneous/state: keep the later value
  kMax,       // flags and tail quantiles: conservative envelope
  kSum,       // per-period deltas and window counts
  kDerived,   // recomputed from other columns after they merged
  kWeighted,  // count-weighted window average (handled before kSum columns)
};

MergeKind merge_kind(std::size_t col) {
  using Col = TimeSeriesRecorder::Col;
  switch (col) {
    case Col::kLongTick:
    case Col::kMeasured:
    case Col::kSafeMode:
    case Col::kInfeasible:
    case Col::kWinP95T:
    case Col::kWinP99T:
      return MergeKind::kMax;
    case Col::kWinCompleted:
    case Col::kDAdmitted:
    case Col::kDShed:
    case Col::kDTelemetryDropped:
    case Col::kDCommandsDropped:
    case Col::kDAcksDropped:
    case Col::kDCmdRetries:
    case Col::kDCmdDuplicates:
    case Col::kDTicksMissed:
    case Col::kDBoots:
    case Col::kDShutdowns:
      return MergeKind::kSum;
    case Col::kWinMeanT:
    case Col::kWinViolFrac:
      return MergeKind::kWeighted;
    case Col::kShedFrac:
      return MergeKind::kDerived;
    default:
      return MergeKind::kLast;
  }
}

void append_json_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

void TimeSeriesOptions::validate() const {
  if (max_points < 16 || (max_points % 2) != 0) {
    throw std::invalid_argument(
        "TimeSeriesOptions: max_points must be even and >= 16");
  }
  if (sla_window == 0) {
    throw std::invalid_argument("TimeSeriesOptions: sla_window must be > 0");
  }
}

TimeSeriesRecorder::TimeSeriesRecorder(TimeSeriesOptions options)
    : options_(options) {
  options_.validate();
  columns_.assign(kNumColumns, {});
  pending_.assign(kNumColumns, 0.0);
}

const std::vector<std::string>& TimeSeriesRecorder::column_names() {
  static const std::vector<std::string> names = {
      "t",
      "long_tick",
      "measured",
      "observed_rate",
      "local_rate",
      "predicted_rate",
      "planning_rate",
      "target_m",
      "serving",
      "committed",
      "powered",
      "available",
      "speed",
      "power_w",
      "energy_j",
      "queue_depth",
      "win_completed",
      "win_mean_t_s",
      "win_p95_t_s",
      "win_p99_t_s",
      "win_viol_frac",
      "rolling_viol_frac",
      "d_admitted",
      "d_shed",
      "shed_frac",
      "admit_p",
      "obs_age_s",
      "safe_mode",
      "infeasible",
      "d_telemetry_dropped",
      "d_commands_dropped",
      "d_acks_dropped",
      "d_command_retries",
      "d_command_duplicates",
      "d_ticks_missed",
      "d_boots",
      "d_shutdowns",
      "solved_spares",
      "availability_est",
      "wear_frac",
  };
  return names;
}

TimeSeriesRecorder::Row TimeSeriesRecorder::to_row(
    const TimeSeriesSample& sample) {
  Row row(kNumColumns, 0.0);
  row[kTime] = sample.time;
  row[kLongTick] = sample.long_tick ? 1.0 : 0.0;
  row[kMeasured] = sample.measured ? 1.0 : 0.0;
  row[kObservedRate] = sample.observed_rate;
  row[kLocalRate] = sample.local_rate;
  row[kPredictedRate] = sample.predicted_rate;
  row[kPlanningRate] = sample.planning_rate;
  row[kTargetM] = sample.target_m;
  row[kServing] = static_cast<double>(sample.serving);
  row[kCommitted] = static_cast<double>(sample.committed);
  row[kPowered] = static_cast<double>(sample.powered);
  row[kAvailable] = static_cast<double>(sample.available);
  row[kSpeed] = sample.speed;
  row[kPowerW] = sample.power_w;
  row[kEnergyJ] = sample.energy_j;
  row[kQueueDepth] = static_cast<double>(sample.queue_depth);
  row[kWinCompleted] = static_cast<double>(sample.window_completed);
  row[kWinMeanT] = sample.window_mean_response_s;
  row[kWinP95T] = sample.window_p95_response_s;
  row[kWinP99T] = sample.window_p99_response_s;
  row[kWinViolFrac] = sample.window_violation_fraction;
  row[kRollingViolFrac] = 0.0;  // filled at append time
  row[kDAdmitted] = static_cast<double>(sample.d_admitted);
  row[kDShed] = static_cast<double>(sample.d_shed);
  const double offered =
      static_cast<double>(sample.d_admitted + sample.d_shed);
  row[kShedFrac] =
      offered > 0.0 ? static_cast<double>(sample.d_shed) / offered : 0.0;
  row[kAdmitP] = sample.admit_probability;
  row[kObsAgeS] = sample.obs_age_s;
  row[kSafeMode] = sample.safe_mode ? 1.0 : 0.0;
  row[kInfeasible] = sample.infeasible ? 1.0 : 0.0;
  row[kDTelemetryDropped] = static_cast<double>(sample.d_telemetry_dropped);
  row[kDCommandsDropped] = static_cast<double>(sample.d_commands_dropped);
  row[kDAcksDropped] = static_cast<double>(sample.d_acks_dropped);
  row[kDCmdRetries] = static_cast<double>(sample.d_command_retries);
  row[kDCmdDuplicates] = static_cast<double>(sample.d_command_duplicates);
  row[kDTicksMissed] = static_cast<double>(sample.d_ticks_missed);
  row[kDBoots] = static_cast<double>(sample.d_boots);
  row[kDShutdowns] = static_cast<double>(sample.d_shutdowns);
  row[kSolvedSpares] = sample.solved_spares;
  row[kAvailEst] = sample.availability_est;
  row[kWearFrac] = sample.wear_fraction;
  return row;
}

void TimeSeriesRecorder::merge_row(Row& into, const Row& next) {
  // Count-weighted window stats need the pre-merge counts, so they go first.
  const double c1 = into[kWinCompleted];
  const double c2 = next[kWinCompleted];
  if (c1 + c2 > 0.0) {
    into[kWinMeanT] =
        (c1 * into[kWinMeanT] + c2 * next[kWinMeanT]) / (c1 + c2);
    into[kWinViolFrac] =
        (c1 * into[kWinViolFrac] + c2 * next[kWinViolFrac]) / (c1 + c2);
  }
  for (std::size_t col = 0; col < kNumColumns; ++col) {
    switch (merge_kind(col)) {
      case MergeKind::kLast:
        into[col] = next[col];
        break;
      case MergeKind::kMax:
        if (next[col] > into[col]) into[col] = next[col];
        break;
      case MergeKind::kSum:
        into[col] += next[col];
        break;
      case MergeKind::kWeighted:
      case MergeKind::kDerived:
        break;  // handled outside the loop
    }
  }
  const double offered = into[kDAdmitted] + into[kDShed];
  into[kShedFrac] = offered > 0.0 ? into[kDShed] / offered : 0.0;
}

void TimeSeriesRecorder::append(const TimeSeriesSample& sample) {
  Row row = to_row(sample);
  if (have_sample_ && sample.time == last_sample_time_) {
    // Second tick at the same instant (a long tick is immediately followed
    // by its short tick): fold into the existing period instead of counting
    // a new one.
    row[kRollingViolFrac] = rolling_violation();
    if (pending_count_ > 0) {
      merge_row(pending_, row);
    } else {
      Row last(kNumColumns);
      for (std::size_t col = 0; col < kNumColumns; ++col) {
        last[col] = columns_[col][num_rows_ - 1];
      }
      merge_row(last, row);
      for (std::size_t col = 0; col < kNumColumns; ++col) {
        columns_[col][num_rows_ - 1] = last[col];
      }
    }
    return;
  }
  ++periods_;
  have_sample_ = true;
  last_sample_time_ = sample.time;
  rolling_.push_back(sample.window_violated);
  if (sample.window_violated) ++rolling_hits_;
  if (rolling_.size() > options_.sla_window) {
    if (rolling_.front()) --rolling_hits_;
    rolling_.pop_front();
  }
  row[kRollingViolFrac] = rolling_violation();
  if (pending_count_ == 0) {
    pending_ = row;
    pending_count_ = 1;
  } else {
    merge_row(pending_, row);
    ++pending_count_;
  }
  if (pending_count_ >= stride_) {
    push_row(pending_);
    pending_count_ = 0;
  }
}

void TimeSeriesRecorder::push_row(const Row& row) {
  for (std::size_t col = 0; col < kNumColumns; ++col) {
    columns_[col].push_back(row[col]);
  }
  ++num_rows_;
  if (num_rows_ >= options_.max_points) halve();
}

void TimeSeriesRecorder::halve() {
  const std::size_t pairs = num_rows_ / 2;
  Row a(kNumColumns);
  Row b(kNumColumns);
  for (std::size_t i = 0; i < pairs; ++i) {
    for (std::size_t col = 0; col < kNumColumns; ++col) {
      a[col] = columns_[col][2 * i];
      b[col] = columns_[col][2 * i + 1];
    }
    merge_row(a, b);
    for (std::size_t col = 0; col < kNumColumns; ++col) {
      columns_[col][i] = a[col];
    }
  }
  for (auto& column : columns_) column.resize(pairs);
  num_rows_ = pairs;
  stride_ *= 2;
}

double TimeSeriesRecorder::rolling_violation() const noexcept {
  if (rolling_.empty()) return 0.0;
  return static_cast<double>(rolling_hits_) /
         static_cast<double>(rolling_.size());
}

double TimeSeriesRecorder::value(Col col, std::size_t row) const {
  if (col >= kNumColumns || row >= num_rows_) {
    throw std::out_of_range("TimeSeriesRecorder::value: out of range");
  }
  return columns_[col][row];
}

CsvTable TimeSeriesRecorder::to_csv_table() const {
  CsvTable table;
  table.header = column_names();
  table.rows.reserve(num_rows_ + (pending_count_ > 0 ? 1 : 0));
  for (std::size_t row = 0; row < num_rows_; ++row) {
    std::vector<double> cells(kNumColumns);
    for (std::size_t col = 0; col < kNumColumns; ++col) {
      cells[col] = columns_[col][row];
    }
    table.rows.push_back(std::move(cells));
  }
  if (pending_count_ > 0) table.rows.push_back(pending_);
  return table;
}

void TimeSeriesRecorder::write_csv(const std::filesystem::path& path) const {
  write_csv_file(path, to_csv_table());
}

std::string TimeSeriesRecorder::to_json() const {
  const CsvTable table = to_csv_table();
  std::string out = "{\"stride\": ";
  append_json_number(out, static_cast<double>(stride_));
  out += ", \"periods\": ";
  append_json_number(out, static_cast<double>(periods_));
  out += ", \"columns\": {";
  const auto& names = column_names();
  for (std::size_t col = 0; col < kNumColumns; ++col) {
    if (col != 0) out += ", ";
    out += '"';
    out += names[col];
    out += "\": [";
    for (std::size_t row = 0; row < table.rows.size(); ++row) {
      if (row != 0) out += ", ";
      append_json_number(out, table.rows[row][col]);
    }
    out += ']';
  }
  out += "}}";
  return out;
}

void TimeSeriesRecorder::clear() noexcept {
  for (auto& column : columns_) column.clear();
  num_rows_ = 0;
  periods_ = 0;
  stride_ = 1;
  pending_.assign(kNumColumns, 0.0);
  pending_count_ = 0;
  last_sample_time_ = 0.0;
  have_sample_ = false;
  rolling_.clear();
  rolling_hits_ = 0;
}

}  // namespace gc
