// Per-control-period time series — the trajectory behind a SimResult.
//
// A SimResult is one row of aggregates and the audit log is a causal
// narrative; this recorder is the *quantitative* middle: one sample per
// control instant holding what the controller saw (observed/predicted λ,
// telemetry age), what it commanded (target M, speed), what the fleet
// actually did (serving/powered, instantaneous power, cumulative energy,
// queue depth), the response-time distribution of the elapsed window
// (mean/p95/p99 from a per-window LogHistogram), SLA accounting (window
// violation fraction plus a rolling violation window), and per-period
// deltas of the control-plane counters (chan.*/act.* — drops, retries,
// missed ticks localized in time instead of summed over the run).
//
// Storage is columnar: one std::vector<double> per column in a fixed
// schema, appended in lockstep.  Memory is bounded by `max_points` —
// reaching it pairwise-merges adjacent rows and doubles the decimation
// stride, so a run of any length keeps at most max_points rows, each
// covering `stride()` consecutive control periods.  Merging is
// deterministic and type-aware: instantaneous columns keep the latest
// value, per-period deltas add, window aggregates combine count-weighted
// (p95/p99 conservatively take the max).  A short and a long tick at the
// same simulation instant fold into a single row.
//
// Attaching the recorder is strictly observational (the contract of every
// obs/ sink): no RNG draw, no event, no cluster mutation — recorder on or
// off reproduces the pinned determinism goldens bit-for-bit
// (tests/test_obs_determinism.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <string>
#include <vector>

#include "util/csv.h"

namespace gc {

// One control instant, filled by the simulation loop.
struct TimeSeriesSample {
  double time = 0.0;
  bool long_tick = false;
  bool measured = false;  // past warmup
  // -- controller view / plan ------------------------------------------------
  double observed_rate = 0.0;   // newest delivered telemetry sample
  double local_rate = 0.0;      // ground-truth fleet-side measured rate
  double predicted_rate = 0.0;  // ControlExplain::predicted_rate
  double planning_rate = 0.0;   // ControlExplain::planning_rate
  double target_m = 0.0;        // last commanded server target (sticky)
  // -- fleet ground truth ----------------------------------------------------
  unsigned serving = 0;
  unsigned committed = 0;
  unsigned powered = 0;
  unsigned available = 0;
  double speed = 0.0;
  double power_w = 0.0;   // instantaneous
  double energy_j = 0.0;  // cumulative since t = 0 (includes warmup)
  std::uint64_t queue_depth = 0;
  // -- elapsed-window response distribution ----------------------------------
  std::uint64_t window_completed = 0;
  double window_mean_response_s = 0.0;
  double window_p95_response_s = 0.0;
  double window_p99_response_s = 0.0;
  double window_violation_fraction = 0.0;  // per-job tail violations
  bool window_violated = false;  // window mean exceeded t_ref (rolling input)
  // -- admission / degradation ----------------------------------------------
  std::uint64_t d_admitted = 0;  // jobs admitted this period
  std::uint64_t d_shed = 0;      // jobs shed this period
  double admit_probability = 1.0;
  double obs_age_s = 0.0;
  bool safe_mode = false;
  bool infeasible = false;
  // -- per-period control-plane counter deltas (chan.* / act.*) -------------
  std::uint64_t d_telemetry_dropped = 0;
  std::uint64_t d_commands_dropped = 0;
  std::uint64_t d_acks_dropped = 0;
  std::uint64_t d_command_retries = 0;
  std::uint64_t d_command_duplicates = 0;
  std::uint64_t d_ticks_missed = 0;
  // -- reliability (appended columns; core/reliability.h) --------------------
  std::uint64_t d_boots = 0;      // boot commands issued this period
  std::uint64_t d_shutdowns = 0;  // shutdowns begun this period
  double solved_spares = 0.0;     // standing plan's spare count (sticky)
  double availability_est = 0.0;  // plan's closed-form availability (sticky)
  double wear_fraction = 0.0;     // fleet-mean lifetime fraction consumed
};

struct TimeSeriesOptions {
  // Stored-row budget; reaching it halves the series in place and doubles
  // the per-row stride.  Must be >= 16.
  std::size_t max_points = 1u << 14;
  // Control periods in the rolling SLA-violation window.
  std::size_t sla_window = 60;

  void validate() const;  // throws std::invalid_argument
};

class TimeSeriesRecorder {
 public:
  // Column ids double as indices into the columnar store; kNumColumns rows
  // the schema.  Order is the CSV column order.
  enum Col : std::size_t {
    kTime = 0, kLongTick, kMeasured,
    kObservedRate, kLocalRate, kPredictedRate, kPlanningRate, kTargetM,
    kServing, kCommitted, kPowered, kAvailable, kSpeed, kPowerW, kEnergyJ,
    kQueueDepth,
    kWinCompleted, kWinMeanT, kWinP95T, kWinP99T, kWinViolFrac,
    kRollingViolFrac,
    kDAdmitted, kDShed, kShedFrac, kAdmitP, kObsAgeS, kSafeMode, kInfeasible,
    kDTelemetryDropped, kDCommandsDropped, kDAcksDropped, kDCmdRetries,
    kDCmdDuplicates, kDTicksMissed,
    kDBoots, kDShutdowns, kSolvedSpares, kAvailEst, kWearFrac,
    kNumColumns
  };

  explicit TimeSeriesRecorder(TimeSeriesOptions options = {});

  void append(const TimeSeriesSample& sample);

  // Stored rows (a partially filled stride is not yet a row; exports
  // include it).
  [[nodiscard]] std::size_t size() const noexcept { return num_rows_; }
  // Raw control instants seen (pre-decimation).
  [[nodiscard]] std::uint64_t periods() const noexcept { return periods_; }
  // Control instants folded into one stored row (1 until the first halving).
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  // Current rolling SLA-violation fraction over the last sla_window periods.
  [[nodiscard]] double rolling_violation() const noexcept;
  [[nodiscard]] const TimeSeriesOptions& options() const noexcept { return options_; }

  [[nodiscard]] static const std::vector<std::string>& column_names();

  // Column-major view of stored rows (exports also flush the pending
  // partial stride; this accessor does not).
  [[nodiscard]] double value(Col col, std::size_t row) const;

  // Exports: CSV (util/csv, `t` first column) and columnar JSON
  // {"stride": k, "columns": {name: [...]}}.  Both include the pending
  // partial stride as a final row.
  [[nodiscard]] CsvTable to_csv_table() const;
  void write_csv(const std::filesystem::path& path) const;
  [[nodiscard]] std::string to_json() const;

  void clear() noexcept;

 private:
  using Row = std::vector<double>;  // kNumColumns wide

  static Row to_row(const TimeSeriesSample& sample);
  // Merges `next` (the later instant) into `into`, per-column type-aware.
  static void merge_row(Row& into, const Row& next);
  void push_row(const Row& row);
  void halve();

  TimeSeriesOptions options_;
  std::vector<std::vector<double>> columns_;  // [kNumColumns][num_rows_]
  std::size_t num_rows_ = 0;
  std::uint64_t periods_ = 0;
  std::size_t stride_ = 1;
  // Accumulator for the current stride (valid when pending_count_ > 0).
  Row pending_;
  std::size_t pending_count_ = 0;
  double last_sample_time_ = 0.0;
  bool have_sample_ = false;
  // Rolling SLA window: violation flags of the newest sla_window periods.
  std::deque<bool> rolling_;
  std::size_t rolling_hits_ = 0;
};

}  // namespace gc
