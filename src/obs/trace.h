// Trace sink: typed spans/instants/counter samples over the *simulated*
// timeline, exported as Chrome trace_event JSON (load in chrome://tracing
// or https://ui.perfetto.dev).
//
// Design (DESIGN.md §7):
//
//   * Records are 64-byte PODs in a fixed-capacity ring buffer: emitting
//     never allocates, and a long run keeps the most recent `capacity`
//     records (overwrites are counted in `dropped()` so truncation is
//     visible, never silent).
//   * Names and categories are `const char*` and must point to storage
//     that outlives the collector — in practice string literals.  This
//     keeps a record trivially copyable; the exporter never frees them.
//   * Timestamps are simulation seconds; the exporter scales to the
//     microseconds Chrome expects.  Per-server lifecycle spans are emitted
//     as async begin/end pairs (phases 'b'/'e') keyed by server id, which
//     Perfetto renders as one lane per server without nesting constraints.
//   * Gating: the runtime switch is the sink pointer itself — call sites
//     hold a TraceCollector* that is null when tracing is off, so the off
//     cost is one branch.  The compile switch is the CMake option
//     GC_TRACING (default ON); configuring with -DGC_TRACING=OFF defines
//     GC_TRACING_DISABLED, which turns the `trace_*` call-site helpers
//     below into empty inlines the optimizer deletes entirely.  Tracing is
//     observational either way: it never touches RNG streams or event
//     ordering, so SimResult is bit-identical with tracing on, off, or
//     compiled out (tests/test_obs_determinism.cpp).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace gc {

// Chrome trace_event phases we emit (the value is the "ph" character).
enum class TracePhase : char {
  kComplete = 'X',    // span with explicit duration
  kInstant = 'i',     // point event
  kCounter = 'C',     // numeric series sample
  kAsyncBegin = 'b',  // async span begin (keyed by id)
  kAsyncEnd = 'e',    // async span end
};

struct TraceRecord {
  double ts_s = 0.0;       // simulation time
  double dur_s = 0.0;      // kComplete only
  const char* cat = "";    // category (see obs::cat below)
  const char* name = "";
  TracePhase phase = TracePhase::kInstant;
  std::uint32_t tid = 0;   // Chrome "thread": lane within the trace
  std::uint32_t id = 0;    // async span key (kAsyncBegin/kAsyncEnd)
  // Up to two numeric arguments, rendered into "args".
  std::uint8_t nargs = 0;
  const char* arg_name[2] = {"", ""};
  double arg_value[2] = {0.0, 0.0};
};

struct TraceOptions {
  // Ring capacity in records (64 B each).  A fig8-style day keeps the most
  // recent ~4 MiB of history at the default.
  std::size_t capacity = 1u << 16;
};

class TraceCollector {
 public:
  explicit TraceCollector(TraceOptions options = {});

  // Hot-path emit: copies the record into the ring, overwriting the oldest
  // record when full.
  void emit(const TraceRecord& record) noexcept;

  // Convenience constructors for the common shapes.
  void instant(double ts_s, const char* cat, const char* name, std::uint32_t tid = 0);
  void instant1(double ts_s, const char* cat, const char* name, const char* arg,
                double value, std::uint32_t tid = 0);
  void complete(double ts_s, double dur_s, const char* cat, const char* name,
                std::uint32_t tid = 0);
  void counter(double ts_s, const char* name, const char* series, double value);
  void async_begin(double ts_s, const char* cat, const char* name, std::uint32_t id);
  void async_end(double ts_s, const char* cat, const char* name, std::uint32_t id);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  // Total records emitted, including overwritten ones.
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  // Records lost to ring overwrite (emitted - size while saturated).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return emitted_ - static_cast<std::uint64_t>(size_);
  }

  // Records in emission order, oldest first.
  [[nodiscard]] std::vector<TraceRecord> records() const;

  void clear() noexcept;

  // Chrome trace_event JSON ({"traceEvents": [...], ...}); `write_*` throws
  // std::runtime_error on I/O failure.
  [[nodiscard]] std::string to_chrome_json() const;
  void write_chrome_json(const std::filesystem::path& path) const;

 private:
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::uint64_t emitted_ = 0;
};

// -- call-site helpers (compiled out under -DGC_TRACING=OFF) -----------------
//
// All instrumentation in sim/ and exp/ goes through these so a single
// compile flag removes every call site.  `sink` may be null (tracing off at
// runtime).

#if defined(GC_TRACING_DISABLED)
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

inline void trace_instant(TraceCollector* sink, double ts_s, const char* cat,
                          const char* name, std::uint32_t tid = 0) {
  if constexpr (kTracingCompiledIn) {
    if (sink != nullptr) sink->instant(ts_s, cat, name, tid);
  } else {
    (void)sink; (void)ts_s; (void)cat; (void)name; (void)tid;
  }
}

inline void trace_instant1(TraceCollector* sink, double ts_s, const char* cat,
                           const char* name, const char* arg, double value,
                           std::uint32_t tid = 0) {
  if constexpr (kTracingCompiledIn) {
    if (sink != nullptr) sink->instant1(ts_s, cat, name, arg, value, tid);
  } else {
    (void)sink; (void)ts_s; (void)cat; (void)name; (void)arg; (void)value; (void)tid;
  }
}

inline void trace_complete(TraceCollector* sink, double ts_s, double dur_s,
                           const char* cat, const char* name, std::uint32_t tid = 0) {
  if constexpr (kTracingCompiledIn) {
    if (sink != nullptr) sink->complete(ts_s, dur_s, cat, name, tid);
  } else {
    (void)sink; (void)ts_s; (void)dur_s; (void)cat; (void)name; (void)tid;
  }
}

inline void trace_counter(TraceCollector* sink, double ts_s, const char* name,
                          const char* series, double value) {
  if constexpr (kTracingCompiledIn) {
    if (sink != nullptr) sink->counter(ts_s, name, series, value);
  } else {
    (void)sink; (void)ts_s; (void)name; (void)series; (void)value;
  }
}

inline void trace_async_begin(TraceCollector* sink, double ts_s, const char* cat,
                              const char* name, std::uint32_t id) {
  if constexpr (kTracingCompiledIn) {
    if (sink != nullptr) sink->async_begin(ts_s, cat, name, id);
  } else {
    (void)sink; (void)ts_s; (void)cat; (void)name; (void)id;
  }
}

inline void trace_async_end(TraceCollector* sink, double ts_s, const char* cat,
                            const char* name, std::uint32_t id) {
  if constexpr (kTracingCompiledIn) {
    if (sink != nullptr) sink->async_end(ts_s, cat, name, id);
  } else {
    (void)sink; (void)ts_s; (void)cat; (void)name; (void)id;
  }
}

// Emitted record with a full numeric payload.
inline void trace_emit(TraceCollector* sink, const TraceRecord& record) {
  if constexpr (kTracingCompiledIn) {
    if (sink != nullptr) sink->emit(record);
  } else {
    (void)sink; (void)record;
  }
}

}  // namespace gc
