// M/M/c (Erlang-C) closed-form results.
//
// Used (a) as an alternative, less conservative performance model for the
// solver (a cluster with join-shortest-queue dispatch behaves between
// M/M/1-per-server and M/M/c), and (b) as the oracle for validating the
// simulator's central-queue mode.
#pragma once

namespace gc {
namespace mmc {

// Offered load a = λ/μ; stability requires a < c.
[[nodiscard]] bool stable(double lambda, double mu, unsigned c) noexcept;

// Erlang-C: probability an arriving job must wait.
[[nodiscard]] double erlang_c(double lambda, double mu, unsigned c);

// Mean waiting time Wq = C(c,a) / (cμ - λ).
[[nodiscard]] double mean_waiting_time(double lambda, double mu, unsigned c);

// Mean response time T = Wq + 1/μ.
[[nodiscard]] double mean_response_time(double lambda, double mu, unsigned c);

// Mean number in system L = λ T.
[[nodiscard]] double mean_number_in_system(double lambda, double mu, unsigned c);

// Smallest c with mean response time <= t_ref (returns 0 if impossible
// because even c -> inf cannot beat 1/μ > t_ref).
[[nodiscard]] unsigned min_servers_for_response_time(double lambda, double mu,
                                                     double t_ref, unsigned c_max);

}  // namespace mmc
}  // namespace gc
