// M/G/1 Pollaczek–Khinchine results.
//
// The evaluation's sensitivity study replaces exponential job sizes with
// deterministic and bounded-Pareto ones; P–K quantifies how far the M/M/1
// design model drifts under those, which EXPERIMENTS.md reports.
#pragma once

namespace gc {
namespace mg1 {

// `scv` is the squared coefficient of variation of service time
// (Var/mean^2): 0 deterministic, 1 exponential, >1 heavy-tailed.
// Mean waiting time Wq = ρ/(1-ρ) · (1+scv)/2 · E[S].
[[nodiscard]] double mean_waiting_time(double lambda, double mean_service, double scv);

// Mean response time T = Wq + E[S].
[[nodiscard]] double mean_response_time(double lambda, double mean_service, double scv);

// Mean number in system via Little's law.
[[nodiscard]] double mean_number_in_system(double lambda, double mean_service, double scv);

}  // namespace mg1
}  // namespace gc
