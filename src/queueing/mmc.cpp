#include "queueing/mmc.h"

#include <cmath>
#include <stdexcept>

namespace gc {
namespace mmc {
namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

}  // namespace

bool stable(double lambda, double mu, unsigned c) noexcept {
  return lambda >= 0.0 && mu > 0.0 && c > 0 && lambda < mu * static_cast<double>(c);
}

double erlang_c(double lambda, double mu, unsigned c) {
  require(stable(lambda, mu, c), "mmc: unstable or invalid parameters");
  const double a = lambda / mu;
  const double rho = a / static_cast<double>(c);
  // Numerically robust recurrence on the Erlang-B blocking probability:
  // B(0,a)=1, B(k,a) = a·B(k-1,a) / (k + a·B(k-1,a)); then
  // C = B / (1 - ρ (1 - B)).
  double b = 1.0;
  for (unsigned k = 1; k <= c; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  return b / (1.0 - rho * (1.0 - b));
}

double mean_waiting_time(double lambda, double mu, unsigned c) {
  const double pc = erlang_c(lambda, mu, c);
  return pc / (static_cast<double>(c) * mu - lambda);
}

double mean_response_time(double lambda, double mu, unsigned c) {
  return mean_waiting_time(lambda, mu, c) + 1.0 / mu;
}

double mean_number_in_system(double lambda, double mu, unsigned c) {
  return lambda * mean_response_time(lambda, mu, c);
}

unsigned min_servers_for_response_time(double lambda, double mu, double t_ref,
                                       unsigned c_max) {
  require(lambda >= 0.0 && mu > 0.0 && t_ref > 0.0 && c_max > 0, "mmc: invalid arguments");
  if (1.0 / mu > t_ref) return 0;  // service time alone exceeds the target
  for (unsigned c = 1; c <= c_max; ++c) {
    if (!stable(lambda, mu, c)) continue;
    if (mean_response_time(lambda, mu, c) <= t_ref) return c;
  }
  return 0;
}

}  // namespace mmc
}  // namespace gc
