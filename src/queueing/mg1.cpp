#include "queueing/mg1.h"

#include <stdexcept>

namespace gc {
namespace mg1 {
namespace {

void require_valid(double lambda, double mean_service, double scv) {
  const double rho = lambda * mean_service;
  if (!(lambda >= 0.0 && mean_service > 0.0 && scv >= 0.0 && rho < 1.0)) {
    throw std::invalid_argument("mg1: need lambda>=0, E[S]>0, scv>=0, rho<1");
  }
}

}  // namespace

double mean_waiting_time(double lambda, double mean_service, double scv) {
  require_valid(lambda, mean_service, scv);
  const double rho = lambda * mean_service;
  return rho / (1.0 - rho) * (1.0 + scv) / 2.0 * mean_service;
}

double mean_response_time(double lambda, double mean_service, double scv) {
  return mean_waiting_time(lambda, mean_service, scv) + mean_service;
}

double mean_number_in_system(double lambda, double mean_service, double scv) {
  return lambda * mean_response_time(lambda, mean_service, scv);
}

}  // namespace mg1
}  // namespace gc
