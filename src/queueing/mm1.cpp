#include "queueing/mm1.h"

#include <cmath>
#include <stdexcept>

namespace gc {
namespace mm1 {
namespace {

void require_stable(double lambda, double mu) {
  if (!(lambda >= 0.0 && mu > 0.0 && lambda < mu)) {
    throw std::invalid_argument("mm1: requires 0 <= lambda < mu");
  }
}

}  // namespace

double utilization(double lambda, double mu) noexcept { return lambda / mu; }

bool stable(double lambda, double mu) noexcept {
  return lambda >= 0.0 && mu > 0.0 && lambda < mu;
}

double mean_number_in_system(double lambda, double mu) {
  require_stable(lambda, mu);
  const double rho = lambda / mu;
  return rho / (1.0 - rho);
}

double mean_response_time(double lambda, double mu) {
  require_stable(lambda, mu);
  return 1.0 / (mu - lambda);
}

double mean_waiting_time(double lambda, double mu) {
  require_stable(lambda, mu);
  return mean_response_time(lambda, mu) - 1.0 / mu;
}

double response_time_tail(double lambda, double mu, double t) {
  require_stable(lambda, mu);
  if (t < 0.0) return 1.0;
  return std::exp(-(mu - lambda) * t);
}

double response_time_quantile(double lambda, double mu, double p) {
  require_stable(lambda, mu);
  if (!(p >= 0.0 && p < 1.0)) throw std::invalid_argument("mm1: p must be in [0,1)");
  return -std::log(1.0 - p) / (mu - lambda);
}

double required_service_rate(double lambda, double t_ref) {
  if (!(lambda >= 0.0 && t_ref > 0.0)) {
    throw std::invalid_argument("mm1: need lambda >= 0 and t_ref > 0");
  }
  return lambda + 1.0 / t_ref;
}

}  // namespace mm1
}  // namespace gc
