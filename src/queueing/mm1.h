// M/M/1 closed-form results.
//
// Each active cluster server behind an even load balancer is modeled as an
// M/M/1 queue with service rate s·μ_max — the performance model underlying
// the paper's optimization (DESIGN.md §1.1).  These formulas are also the
// oracles the simulator-validation property tests compare against.
#pragma once

namespace gc {
namespace mm1 {

// ρ = λ/μ.  All functions require a stable queue (ρ < 1) unless noted.
[[nodiscard]] double utilization(double lambda, double mu) noexcept;
[[nodiscard]] bool stable(double lambda, double mu) noexcept;

// Mean number in system L = ρ/(1-ρ).
[[nodiscard]] double mean_number_in_system(double lambda, double mu);

// Mean response (sojourn) time T = 1/(μ-λ).
[[nodiscard]] double mean_response_time(double lambda, double mu);

// Mean waiting time W = T - 1/μ.
[[nodiscard]] double mean_waiting_time(double lambda, double mu);

// P(T > t) = exp(-(μ-λ)t): response time is exponential in M/M/1-FCFS.
[[nodiscard]] double response_time_tail(double lambda, double mu, double t);

// p-quantile of the response time.
[[nodiscard]] double response_time_quantile(double lambda, double mu, double p);

// Minimal service rate μ such that mean response time <= t_ref.
// This is the inversion at the heart of the solver: μ = λ + 1/t_ref.
[[nodiscard]] double required_service_rate(double lambda, double t_ref);

}  // namespace mm1
}  // namespace gc
