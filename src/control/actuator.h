// Ack/retry command actuation over a lossy control channel (DESIGN.md §8.2).
//
// With a perfect management network "command = applied" and this layer is
// pass-through.  Over sim/control_channel a command can be dropped,
// delayed past its successor, or applied without its ack making it back —
// so the controller side runs a small per-command-kind protocol:
//
//   * every issued command gets a monotonically increasing *generation*
//     per kind (target-m and frequency are independent lanes).  The fleet
//     applies a delivered command only when its generation exceeds the
//     last applied one, so reordered or retransmitted commands are
//     idempotent — a duplicate is detected, re-acked (the original ack may
//     have been the casualty) and not re-applied;
//   * an unacked command is retransmitted after `ack_timeout_s`, then at
//     bounded exponentially backed-off intervals with uniform jitter, up
//     to `retry_budget` retransmissions.  Retries reuse the original
//     generation: the protocol re-asserts *that* command, it does not
//     invent new ones;
//   * issuing a new command of the same kind supersedes the outstanding
//     one — its retries stop, and its ack (if it ever arrives) is counted
//     as stale and ignored;
//   * when the budget is exhausted the actuator reconciles to *acked*
//     state: it stops asserting the command and reports the last
//     acknowledged value, so the controller's next plan starts from what
//     the fleet confirmed rather than what was wished for.  (The next
//     control tick re-plans and re-issues anyway; exhaustion only stops
//     the retransmit burst.)
//
// Determinism: the jitter RNG is drawn only when a retransmission
// actually fires with jitter_frac > 0, so a loss-free run consumes no
// randomness (same discipline as sim/control_channel).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cp/frames.h"
#include "stats/rng.h"

namespace gc {

class SnapshotWriter;  // cp/snapshot.h
class SnapshotReader;

// CommandKind and Command (= CommandFrame) moved to cp/frames.h — they are
// the control plane's fleet-ward wire message; included above so existing
// actuator/simulator code keeps compiling unchanged.

struct ActuatorOptions {
  // When false, commands are fire-and-forget: still generation-stamped
  // (reorder protection) but never acked or retried — the "naive DCP"
  // contrast in bench/fig15_control_faults.
  bool enabled = false;
  // Ack wait before the first retransmission.
  double ack_timeout_s = 1.0;
  // First retry interval; doubles per retry.  0 defaults to ack_timeout_s.
  double backoff_base_s = 0.0;
  // Upper bound on the backed-off interval.
  double backoff_cap_s = 60.0;
  // Uniform jitter applied to each backoff: wait *= 1 + jitter_frac * U[0,1).
  double jitter_frac = 0.1;
  // Retransmissions per command before reconciling to acked state.
  unsigned retry_budget = 6;

  // Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

class CommandActuator {
 public:
  CommandActuator(const ActuatorOptions& options, Rng rng);

  // Stamps and (when enabled) tracks a new command, superseding any
  // outstanding command of the same kind.
  [[nodiscard]] Command issue(double now, CommandKind kind, double value,
                              std::uint32_t era);

  // Collects retransmissions due at `now` into `due` (appended).  Call on
  // every executed control tick.
  void poll(double now, std::vector<Command>& due);

  // Ack from the fleet for (kind, gen).  Stale acks (superseded or
  // already-acked generations) are counted and ignored.
  void on_ack(double now, CommandKind kind, std::uint64_t gen);

  [[nodiscard]] bool enabled() const noexcept { return options_.enabled; }
  // Last value of `kind` the fleet acknowledged; nullopt before any ack.
  [[nodiscard]] std::optional<double> acked_value(CommandKind kind) const noexcept;
  [[nodiscard]] bool outstanding(CommandKind kind) const noexcept;

  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::uint64_t acked() const noexcept { return acked_count_; }
  [[nodiscard]] std::uint64_t stale_acks() const noexcept { return stale_acks_; }
  [[nodiscard]] std::uint64_t exhausted() const noexcept { return exhausted_; }

  // Checkpoint/restore (cp/snapshot.h): both lanes (outstanding command,
  // retry deadline/backoff, generation counter, acked value), the protocol
  // totals and the jitter RNG state — a restored actuator retransmits at
  // the exact instants, with the exact jitter draws, the saved one would
  // have.  Options are configuration and travel with the caller.
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  struct Lane {
    bool outstanding = false;
    Command cmd;
    double next_retry_s = 0.0;
    double backoff_s = 0.0;
    unsigned retransmits = 0;
    std::uint64_t next_gen = 1;
    std::optional<double> acked_value;
  };
  [[nodiscard]] Lane& lane(CommandKind kind) noexcept {
    return lanes_[static_cast<int>(kind)];
  }
  [[nodiscard]] const Lane& lane(CommandKind kind) const noexcept {
    return lanes_[static_cast<int>(kind)];
  }

  ActuatorOptions options_;
  Rng rng_;
  Lane lanes_[kNumCommandKinds];
  std::uint64_t retries_ = 0;
  std::uint64_t acked_count_ = 0;
  std::uint64_t stale_acks_ = 0;
  std::uint64_t exhausted_ = 0;
};

}  // namespace gc
