#include "control/predictor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cp/snapshot.h"
#include "util/format.h"

namespace gc {
namespace {

// Shared history (de)serialization for the windowed predictors.  The
// recorded length is checked against the configured window so a snapshot
// taken with different configuration is rejected, not silently truncated.
void save_history(SnapshotWriter& w, const std::deque<double>& history) {
  w.u32(static_cast<std::uint32_t>(history.size()));
  for (const double v : history) w.f64(v);
}

void load_history(SnapshotReader& r, std::deque<double>& history,
                  std::size_t window) {
  const std::uint32_t n = r.u32();
  if (n > window) {
    throw SnapshotError(
        format("predictor: snapshot holds {} samples but the window is {}", n,
               window));
  }
  history.clear();
  for (std::uint32_t i = 0; i < n; ++i) history.push_back(r.f64());
}

}  // namespace

const char* to_string(PredictorKind kind) noexcept {
  switch (kind) {
    case PredictorKind::kLastValue: return "last-value";
    case PredictorKind::kEwma: return "ewma";
    case PredictorKind::kSlidingMax: return "sliding-max";
    case PredictorKind::kLinearTrend: return "linear-trend";
  }
  return "?";
}

std::unique_ptr<LoadPredictor> make_predictor(PredictorKind kind, double sample_period_s) {
  if (!(sample_period_s > 0.0)) {
    throw std::invalid_argument("make_predictor: sample period must be positive");
  }
  switch (kind) {
    case PredictorKind::kLastValue: return std::make_unique<LastValuePredictor>();
    case PredictorKind::kEwma: return std::make_unique<EwmaPredictor>(0.3);
    case PredictorKind::kSlidingMax:
      // Window roughly one long period (10 short samples by default).
      return std::make_unique<SlidingMaxPredictor>(10);
    case PredictorKind::kLinearTrend:
      return std::make_unique<LinearTrendPredictor>(20, sample_period_s);
  }
  throw std::invalid_argument("make_predictor: unknown kind");
}

void LastValuePredictor::save(SnapshotWriter& w) const { w.f64(last_); }

void LastValuePredictor::load(SnapshotReader& r) { last_ = r.f64(); }

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument("EwmaPredictor: alpha must be in (0,1]");
  }
}

void EwmaPredictor::observe(double rate) {
  if (!primed_) {
    value_ = rate;
    primed_ = true;
    return;
  }
  value_ = alpha_ * rate + (1.0 - alpha_) * value_;
}

double EwmaPredictor::predict(double /*horizon_s*/) const { return value_; }

std::string EwmaPredictor::name() const { return gc::format("ewma({:g})", alpha_); }

void EwmaPredictor::reset() {
  value_ = 0.0;
  primed_ = false;
}

void EwmaPredictor::save(SnapshotWriter& w) const {
  w.f64(value_);
  w.boolean(primed_);
}

void EwmaPredictor::load(SnapshotReader& r) {
  value_ = r.f64();
  primed_ = r.boolean();
}

SlidingMaxPredictor::SlidingMaxPredictor(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("SlidingMaxPredictor: window 0");
}

void SlidingMaxPredictor::observe(double rate) {
  history_.push_back(rate);
  if (history_.size() > window_) history_.pop_front();
}

double SlidingMaxPredictor::predict(double /*horizon_s*/) const {
  if (history_.empty()) return 0.0;
  return *std::max_element(history_.begin(), history_.end());
}

std::string SlidingMaxPredictor::name() const {
  return gc::format("sliding-max({})", window_);
}

void SlidingMaxPredictor::reset() { history_.clear(); }

void SlidingMaxPredictor::save(SnapshotWriter& w) const {
  save_history(w, history_);
}

void SlidingMaxPredictor::load(SnapshotReader& r) {
  load_history(r, history_, window_);
}

LinearTrendPredictor::LinearTrendPredictor(std::size_t window, double sample_period_s)
    : window_(window), sample_period_(sample_period_s) {
  if (window < 2) throw std::invalid_argument("LinearTrendPredictor: window must be >= 2");
  if (!(sample_period_s > 0.0)) {
    throw std::invalid_argument("LinearTrendPredictor: sample period must be positive");
  }
}

void LinearTrendPredictor::observe(double rate) {
  history_.push_back(rate);
  if (history_.size() > window_) history_.pop_front();
}

double LinearTrendPredictor::predict(double horizon_s) const {
  const std::size_t n = history_.size();
  if (n == 0) return 0.0;
  if (n == 1) return history_.back();
  // Least squares over x = 0..n-1 (in samples).
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    const double y = history_[i];
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double nn = static_cast<double>(n);
  const double denom = nn * sxx - sx * sx;
  const double slope = denom != 0.0 ? (nn * sxy - sx * sy) / denom : 0.0;
  const double intercept = (sy - slope * sx) / nn;
  // Extrapolate to the *end* of the horizon (conservative for a growing
  // ramp, mildly aggressive for a falling one).
  const double x_future =
      static_cast<double>(n - 1) + horizon_s / sample_period_;
  return std::max(intercept + slope * x_future, 0.0);
}

std::string LinearTrendPredictor::name() const {
  return gc::format("linear-trend({})", window_);
}

void LinearTrendPredictor::reset() { history_.clear(); }

void LinearTrendPredictor::save(SnapshotWriter& w) const {
  save_history(w, history_);
}

void LinearTrendPredictor::load(SnapshotReader& r) {
  load_history(r, history_, window_);
}

}  // namespace gc
