#include "control/config_io.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/format.h"
#include "util/string_util.h"

namespace gc {
namespace {

// Same typed-read idiom as core/config_io.cpp: a bad value must throw with
// the section/key in the message, never clamp or leak a NaN policy-ward.
unsigned get_unsigned(const IniFile& ini, const std::string& section,
                      const std::string& key, unsigned fallback) {
  const long long value =
      ini.get_int_or(section, key, static_cast<long long>(fallback));
  if (value < 0) {
    throw std::runtime_error(
        gc::format("config: [{}] {} must be >= 0 (got {})", section, key, value));
  }
  if (value > static_cast<long long>(std::numeric_limits<unsigned>::max())) {
    throw std::runtime_error(
        gc::format("config: [{}] {} is out of range (got {})", section, key, value));
  }
  return static_cast<unsigned>(value);
}

std::uint64_t get_seed(const IniFile& ini, const std::string& section,
                       const std::string& key, std::uint64_t fallback) {
  const long long value =
      ini.get_int_or(section, key, static_cast<long long>(fallback));
  if (value < 0) {
    throw std::runtime_error(
        gc::format("config: [{}] {} must be >= 0 (got {})", section, key, value));
  }
  return static_cast<std::uint64_t>(value);
}

double get_finite(const IniFile& ini, const std::string& section,
                  const std::string& key, double fallback) {
  const double value = ini.get_double_or(section, key, fallback);
  if (!std::isfinite(value)) {
    throw std::runtime_error(
        gc::format("config: [{}] {} must be finite (got {})", section, key, value));
  }
  return value;
}

double get_nonnegative(const IniFile& ini, const std::string& section,
                       const std::string& key, double fallback) {
  const double value = get_finite(ini, section, key, fallback);
  if (!(value >= 0.0)) {
    throw std::runtime_error(
        gc::format("config: [{}] {} must be >= 0 (got {})", section, key, value));
  }
  return value;
}

double get_fraction(const IniFile& ini, const std::string& section,
                    const std::string& key, double fallback) {
  const double value = get_finite(ini, section, key, fallback);
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::runtime_error(gc::format(
        "config: [{}] {} must be in [0, 1] (got {})", section, key, value));
  }
  return value;
}

}  // namespace

FaultOptions fault_options_from_ini(const IniFile& ini) {
  FaultOptions faults;
  faults.mtbf_s = get_nonnegative(ini, "faults", "mtbf_s", faults.mtbf_s);
  faults.mttr_s = get_nonnegative(ini, "faults", "mttr_s", faults.mttr_s);
  if (!(faults.mttr_s > 0.0)) {
    throw std::runtime_error(
        gc::format("config: [faults] mttr_s must be > 0 (got {})", faults.mttr_s));
  }
  faults.boot_hang_prob =
      get_fraction(ini, "faults", "boot_hang_prob", faults.boot_hang_prob);
  faults.boot_timeout_s =
      get_nonnegative(ini, "faults", "boot_timeout_s", faults.boot_timeout_s);
  faults.seed = get_seed(ini, "faults", "seed", faults.seed);
  faults.validate();
  return faults;
}

FailureAwareOptions failure_aware_options_from_ini(const IniFile& ini) {
  FailureAwareOptions fa;
  fa.heartbeat_interval_s = get_nonnegative(ini, "failure_aware",
                                            "heartbeat_interval_s",
                                            fa.heartbeat_interval_s);
  if (!(fa.heartbeat_interval_s > 0.0)) {
    throw std::runtime_error(
        gc::format("config: [failure_aware] heartbeat_interval_s must be > 0 "
                   "(got {})",
                   fa.heartbeat_interval_s));
  }
  fa.heartbeat_misses = get_unsigned(ini, "failure_aware", "heartbeat_misses",
                                     fa.heartbeat_misses);
  fa.spare_capacity_fraction = get_fraction(
      ini, "failure_aware", "spare_capacity_fraction", fa.spare_capacity_fraction);
  fa.boot_retry_budget = get_unsigned(ini, "failure_aware", "boot_retry_budget",
                                      fa.boot_retry_budget);
  fa.boot_retry_backoff_s = get_nonnegative(
      ini, "failure_aware", "boot_retry_backoff_s", fa.boot_retry_backoff_s);
  fa.validate();
  return fa;
}

ReliabilityOptions reliability_options_from_ini(const IniFile& ini) {
  ReliabilityOptions reliability;
  reliability.mtbf_s =
      get_nonnegative(ini, "reliability", "mtbf_s", reliability.mtbf_s);
  reliability.mttr_s =
      get_nonnegative(ini, "reliability", "mttr_s", reliability.mttr_s);
  reliability.availability_target = get_fraction(
      ini, "reliability", "availability_target", reliability.availability_target);
  reliability.max_spares =
      get_unsigned(ini, "reliability", "max_spares", reliability.max_spares);
  reliability.cycles_to_failure = get_nonnegative(
      ini, "reliability", "cycles_to_failure", reliability.cycles_to_failure);
  reliability.cycle_cost_j = get_nonnegative(ini, "reliability", "cycle_cost_j",
                                             reliability.cycle_cost_j);
  if (const auto levels = ini.get("reliability", "class_cycles_to_failure")) {
    for (const auto piece : split(*levels, ' ')) {
      const auto trimmed = trim(piece);
      if (trimmed.empty()) continue;
      const auto value = parse_double(trimmed);
      if (!value || !std::isfinite(*value) || *value < 0.0) {
        throw std::runtime_error(gc::format(
            "config: [reliability] bad class_cycles_to_failure entry '{}' "
            "(need a finite non-negative cycle budget)",
            std::string(trimmed)));
      }
      reliability.class_cycles_to_failure.push_back(*value);
    }
  }
  reliability.validate();
  return reliability;
}

}  // namespace gc
