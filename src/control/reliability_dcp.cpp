#include "control/reliability_dcp.h"

#include <algorithm>

#include "cp/snapshot.h"
#include "util/assert.h"

namespace gc {

ReliabilityDcpController::ReliabilityDcpController(const Provisioner* provisioner,
                                                   const DcpParams& dcp,
                                                   PredictorKind predictor,
                                                   const FailureAwareOptions& failure,
                                                   const ReliabilityOptions& reliability,
                                                   const StalenessOptions& staleness)
    : provisioner_(provisioner), planner_(provisioner, dcp),
      predictor_(make_predictor(predictor, dcp.short_period_s)),
      hysteresis_(effective_patience(dcp, provisioner->config().transition,
                                     PowerModel(provisioner->config().power))),
      failure_(validated(failure)), reliability_(validated(reliability)),
      detector_(failure_.detection_delay_s(), provisioner->config().max_servers),
      retry_(failure_.boot_retry_budget,
             failure_.boot_retry_backoff_s > 0.0 ? failure_.boot_retry_backoff_s
                                                 : dcp.long_period_s),
      guard_(staleness) {
  GC_CHECK(provisioner != nullptr, "ReliabilityDcpController: null provisioner");
}

double ReliabilityDcpController::short_period_s() const {
  return planner_.params().short_period_s;
}
double ReliabilityDcpController::long_period_s() const {
  return planner_.params().long_period_s;
}

ControlAction ReliabilityDcpController::on_short_tick(const ControlContext& ctx) {
  const double rate = guard_.filter(ctx.obs_age_s, ctx.measured_rate);
  predictor_->observe(rate);
  const unsigned detected = detector_.observe(ctx.now, ctx.available);
  const double padded =
      rate * planner_.params().safety_margin * guard_.margin_multiplier();
  unsigned serving = std::max(ctx.serving, 1u);
  // Same discipline as the failure-aware short tick: fit the frequency for
  // the planned base fleet so the solved spares buy latency headroom
  // instead of diluting it; follow the real fleet when failures pull
  // serving below the base.
  if (planned_base_ > 0) serving = std::min(serving, planned_base_);
  const OperatingPoint pt = planner_.plan_speed_with_backlog(
      padded, serving, static_cast<double>(ctx.jobs_in_system),
      planner_.params().short_period_s);
  ControlAction action;
  action.speed = pt.speed;
  action.infeasible = !pt.feasible;
  action.explain.planning_rate = padded;
  action.explain.safety_margin =
      planner_.params().safety_margin * guard_.margin_multiplier();
  action.explain.planned_servers = serving;
  action.explain.detected_available = detected;
  // Re-report the standing plan so the reliability story is on every audit
  // record, not just the long-period ones.
  if (last_plan_.binding != BindingConstraint::kNone) {
    action.explain.solved_spares = static_cast<int>(last_plan_.spares);
    action.explain.availability_est = last_plan_.availability;
    action.explain.binding_constraint =
        static_cast<unsigned>(last_plan_.binding);
  }
  return action;
}

ControlAction ReliabilityDcpController::on_long_tick(const ControlContext& ctx) {
  const double rate = guard_.filter(ctx.obs_age_s, ctx.measured_rate);
  const unsigned detected = std::max(detector_.observe(ctx.now, ctx.available), 1u);
  const double predicted =
      std::max(predictor_->predict(planner_.prediction_horizon()), rate);
  // No spare relief here: the solver sizes the pool itself, so the full
  // safety margin stays on the prediction (solved spares cover failures,
  // the margin covers forecast error — distinct risks, both paid for).
  const double padded =
      predicted * planner_.params().safety_margin * guard_.margin_multiplier();

  const ReliablePlan plan = provisioner_->solve_reliable(
      padded, detected, ctx.committed, planner_.params().long_period_s,
      reliability_);
  last_plan_ = plan;
  planned_base_ = plan.base.servers;
  unsigned target = std::min(plan.base.servers + plan.spares, detected);
  target = hysteresis_.propose(ctx.committed, target);
  target = retry_.propose(ctx.now, ctx.committed, target);

  ControlAction action;
  action.active_target = target;
  action.infeasible = !plan.base.feasible;
  action.explain.predicted_rate = predicted;
  action.explain.planning_rate = padded;
  action.explain.safety_margin =
      planner_.params().safety_margin * guard_.margin_multiplier();
  action.explain.planned_servers = plan.base.servers;
  action.explain.detected_available = detected;
  action.explain.solved_spares = static_cast<int>(plan.spares);
  action.explain.availability_est = plan.availability;
  action.explain.binding_constraint = static_cast<unsigned>(plan.binding);
  return action;
}

void ReliabilityDcpController::save_state(SnapshotWriter& w) const {
  predictor_->save(w);
  w.u32(hysteresis_.streak());
  detector_.save(w);
  retry_.save(w);
  guard_.save(w);
  w.u32(planned_base_);
  // The standing ReliablePlan: the short tick re-reports its availability/
  // binding fields into every audit record, so a restored controller must
  // carry the exact plan, not re-solve it.
  w.u32(last_plan_.base.servers);
  w.f64(last_plan_.base.speed);
  w.f64(last_plan_.base.power_watts);
  w.f64(last_plan_.base.response_time_s);
  w.f64(last_plan_.base.utilization);
  w.boolean(last_plan_.base.feasible);
  w.u32(last_plan_.spares);
  w.f64(last_plan_.availability);
  w.f64(last_plan_.objective_w);
  w.u8(static_cast<std::uint8_t>(last_plan_.binding));
}

void ReliabilityDcpController::load_state(SnapshotReader& r) {
  predictor_->load(r);
  hysteresis_.set_streak(r.u32());
  detector_.load(r);
  retry_.load(r);
  guard_.load(r);
  planned_base_ = r.u32();
  last_plan_.base.servers = r.u32();
  last_plan_.base.speed = r.f64();
  last_plan_.base.power_watts = r.f64();
  last_plan_.base.response_time_s = r.f64();
  last_plan_.base.utilization = r.f64();
  last_plan_.base.feasible = r.boolean();
  last_plan_.spares = r.u32();
  last_plan_.availability = r.f64();
  last_plan_.objective_w = r.f64();
  const std::uint8_t binding = r.u8();
  if (binding > static_cast<std::uint8_t>(BindingConstraint::kCapacity)) {
    throw SnapshotError("reliability: binding constraint out of range in snapshot");
  }
  last_plan_.binding = static_cast<BindingConstraint>(binding);
}

}  // namespace gc
