// Reliability-constrained DCP: the failure-aware controller with the spare
// heuristic replaced by a solved spare pool and a wear-costed objective
// (DESIGN.md §10).
//
// FailureAwareDcpController adds ceil(spare_capacity_fraction * m) standby
// servers no matter what the failure regime looks like — one knob, fixed by
// the operator, with availability only an emergent side effect.  This
// controller instead hands Provisioner::solve_reliable the MTBF/MTTR model
// and an availability target A_ref, and the solver returns the jointly
// optimal (m, s, spares):
//
//   minimize   power(m + spares, s) + wear_cost(|m + spares − committed|)
//   subject to E[T](m, s) <= t_ref          (base fleet alone)
//              A(m, spares) >= A_ref        (closed-form binomial tail)
//              m + spares <= detected fleet
//
// The wear term makes cycling cost lifetime, not just transition energy:
// shrinking the pool for a marginal power saving is vetoed whenever the
// saving over one long period is smaller than the amortized cycle cost, so
// the wear-aware policy holds its fleet steady where naive DCP breathes
// with every load wiggle (bench/fig16_reliability quantifies the cut).
//
// Detector and boot-retry machinery are reused verbatim from
// control/failure_aware.h; `options.spare_capacity_fraction` is ignored —
// spares are solved, not guessed.  Policies.cpp wires this up as
// PolicyKind::kDcpReliability.
#pragma once

#include <memory>

#include "core/dcp.h"
#include "core/provisioner.h"
#include "core/reliability.h"
#include "control/estimator.h"
#include "control/failure_aware.h"
#include "control/predictor.h"
#include "cp/controller.h"

namespace gc {

class ReliabilityDcpController final : public Controller {
 public:
  // Validates both option structs (throws std::invalid_argument).
  ReliabilityDcpController(const Provisioner* provisioner, const DcpParams& dcp,
                           PredictorKind predictor,
                           const FailureAwareOptions& failure,
                           const ReliabilityOptions& reliability,
                           const StalenessOptions& staleness = {});

  [[nodiscard]] double short_period_s() const override;
  [[nodiscard]] double long_period_s() const override;
  [[nodiscard]] ControlAction on_short_tick(const ControlContext& ctx) override;
  [[nodiscard]] ControlAction on_long_tick(const ControlContext& ctx) override;
  [[nodiscard]] const char* name() const override { return "dcp-reliability"; }
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  [[nodiscard]] static const FailureAwareOptions& validated(
      const FailureAwareOptions& options) {
    options.validate();
    return options;
  }
  [[nodiscard]] static const ReliabilityOptions& validated(
      const ReliabilityOptions& options) {
    options.validate();
    return options;
  }

  const Provisioner* provisioner_;
  DcpPlanner planner_;
  std::unique_ptr<LoadPredictor> predictor_;
  HysteresisGate hysteresis_;
  FailureAwareOptions failure_;
  ReliabilityOptions reliability_;
  FailureDetector detector_;
  BootRetryGate retry_;
  StalenessGuard guard_;
  // Last long-period plan: the short tick fits speed to the base fleet
  // (spares stay pure headroom) and re-reports the plan's availability /
  // binding constraint so every audit record explains itself.
  unsigned planned_base_ = 0;
  ReliablePlan last_plan_;
};

}  // namespace gc
