#include "control/failure_aware.h"

#include <algorithm>
#include <stdexcept>

#include "cp/snapshot.h"
#include "util/assert.h"

namespace gc {

void FailureAwareOptions::validate() const {
  if (!(heartbeat_interval_s > 0.0) || !std::isfinite(heartbeat_interval_s)) {
    throw std::invalid_argument(
        "FailureAwareOptions: heartbeat_interval_s must be finite and > 0");
  }
  if (heartbeat_misses == 0) {
    throw std::invalid_argument("FailureAwareOptions: heartbeat_misses must be >= 1");
  }
  if (!(spare_capacity_fraction >= 0.0 && spare_capacity_fraction <= 1.0)) {
    throw std::invalid_argument(
        "FailureAwareOptions: spare_capacity_fraction out of [0,1]");
  }
  if (boot_retry_budget == 0) {
    throw std::invalid_argument("FailureAwareOptions: boot_retry_budget must be >= 1");
  }
  if (!(boot_retry_backoff_s >= 0.0) || !std::isfinite(boot_retry_backoff_s)) {
    throw std::invalid_argument(
        "FailureAwareOptions: boot_retry_backoff_s must be finite and >= 0");
  }
}

// -- FailureDetector ---------------------------------------------------------

FailureDetector::FailureDetector(double detection_delay_s, unsigned initial_available)
    : delay_(detection_delay_s), detected_(initial_available) {
  GC_CHECK(detection_delay_s >= 0.0, "FailureDetector: negative delay");
  window_.push_back(Sample{0.0, initial_available});
}

unsigned FailureDetector::observe(double now, unsigned available) {
  window_.push_back(Sample{now, available});
  // Drop samples that aged out of the detection window, but always keep at
  // least the newest one.
  while (window_.size() > 1 && window_.front().time < now - delay_) {
    window_.pop_front();
  }
  unsigned max_avail = 0;
  for (const Sample& s : window_) max_avail = std::max(max_avail, s.available);
  // Repairs are announced instantly: never report below the current truth.
  detected_ = std::max(max_avail, available);
  return detected_;
}

void FailureDetector::save(SnapshotWriter& w) const {
  w.u32(detected_);
  w.u32(static_cast<std::uint32_t>(window_.size()));
  for (const Sample& s : window_) {
    w.f64(s.time);
    w.u32(s.available);
  }
}

void FailureDetector::load(SnapshotReader& r) {
  detected_ = r.u32();
  const std::uint32_t n = r.u32();
  if (n == 0) {
    throw SnapshotError("detector: snapshot window must hold >= 1 sample");
  }
  window_.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    const double time = r.f64();
    const unsigned available = r.u32();
    window_.push_back(Sample{time, available});
  }
}

// -- BootRetryGate -----------------------------------------------------------

BootRetryGate::BootRetryGate(unsigned budget, double backoff_s)
    : budget_(budget), backoff_s_(backoff_s) {
  GC_CHECK(budget >= 1, "BootRetryGate: budget must be >= 1");
  GC_CHECK(backoff_s >= 0.0, "BootRetryGate: negative backoff");
}

unsigned BootRetryGate::propose(double now, unsigned committed, unsigned target) {
  // Boots landing between proposals is progress: the deficit is a normal
  // ramp (the target outruns the boot delay), not hung boot commands, so
  // the episode resets.  Only a committed count that refuses to rise keeps
  // the episode (and its backoff) alive.
  const bool progressed = committed > last_committed_;
  last_committed_ = committed;
  if (target <= committed) {
    // Deficit closed (or the plan shrank): episode over.
    attempts_ = 0;
    in_deficit_ = false;
    return target;
  }
  if (progressed || !in_deficit_) {
    // New shortfall: assert immediately, first retry after one backoff.
    in_deficit_ = true;
    attempts_ = 1;
    next_retry_ = now + backoff_s_;
    return target;
  }
  if (now + 1e-9 >= next_retry_) {
    if (attempts_ >= budget_) return committed;  // budget spent: degrade
    ++attempts_;
    // Exponential backoff: the k-th retry waits 2^(k-1) backoffs.
    const double wait =
        backoff_s_ * static_cast<double>(1u << std::min(attempts_ - 1, 20u));
    next_retry_ = now + wait;
    return target;
  }
  return committed;  // between retries: no new boot commands
}

void BootRetryGate::save(SnapshotWriter& w) const {
  w.u32(attempts_);
  w.f64(next_retry_);
  w.boolean(in_deficit_);
  w.u32(last_committed_);
}

void BootRetryGate::load(SnapshotReader& r) {
  attempts_ = r.u32();
  next_retry_ = r.f64();
  in_deficit_ = r.boolean();
  last_committed_ = r.u32();
}

// -- FailureAwareDcpController ------------------------------------------------

FailureAwareDcpController::FailureAwareDcpController(const Provisioner* provisioner,
                                                     const DcpParams& dcp,
                                                     PredictorKind predictor,
                                                     const FailureAwareOptions& options,
                                                     const StalenessOptions& staleness)
    : provisioner_(provisioner), planner_(provisioner, dcp),
      predictor_(make_predictor(predictor, dcp.short_period_s)),
      hysteresis_(effective_patience(dcp, provisioner->config().transition,
                                     PowerModel(provisioner->config().power))),
      options_(validated(options)),
      detector_(options_.detection_delay_s(), provisioner->config().max_servers),
      retry_(options_.boot_retry_budget,
             options_.boot_retry_backoff_s > 0.0 ? options_.boot_retry_backoff_s
                                                 : dcp.long_period_s),
      guard_(staleness) {
  GC_CHECK(provisioner != nullptr, "FailureAwareDcpController: null provisioner");
}

double FailureAwareDcpController::short_period_s() const {
  return planner_.params().short_period_s;
}
double FailureAwareDcpController::long_period_s() const {
  return planner_.params().long_period_s;
}

ControlAction FailureAwareDcpController::on_short_tick(const ControlContext& ctx) {
  // Stale-telemetry guard: fresh observations pass through bit-identically
  // (multiplier exactly 1.0); past the horizon the last-good rate is held
  // and the margin widened (control/estimator.h).
  const double rate = guard_.filter(ctx.obs_age_s, ctx.measured_rate);
  predictor_->observe(rate);
  const unsigned detected = detector_.observe(ctx.now, ctx.available);
  const double padded =
      rate * planner_.params().safety_margin * guard_.margin_multiplier();
  unsigned serving = std::max(ctx.serving, 1u);
  // Fit the frequency for the planned base fleet, not the spared one:
  // speed sized for `base` servers spread over `serving >= base` servers
  // leaves every queue strictly faster than the design point, so the
  // spares buy latency headroom instead of diluting it.  When failures
  // pull serving below the base the fit follows the real fleet.
  if (planned_base_ > 0) serving = std::min(serving, planned_base_);
  // Backlog-aware speed fitting drains failover bursts: a crash dumps its
  // victims' queues onto the survivors, which the plain rate signal cannot
  // see.
  const OperatingPoint pt = planner_.plan_speed_with_backlog(
      padded, serving, static_cast<double>(ctx.jobs_in_system),
      planner_.params().short_period_s);
  ControlAction action;
  action.speed = pt.speed;
  action.infeasible = !pt.feasible;
  action.explain.planning_rate = padded;
  action.explain.safety_margin =
      planner_.params().safety_margin * guard_.margin_multiplier();
  action.explain.planned_servers = serving;
  action.explain.detected_available = detected;
  return action;
}

ControlAction FailureAwareDcpController::on_long_tick(const ControlContext& ctx) {
  const double rate = guard_.filter(ctx.obs_age_s, ctx.measured_rate);
  const unsigned detected = std::max(detector_.observe(ctx.now, ctx.available), 1u);
  const double predicted =
      std::max(predictor_->predict(planner_.prediction_horizon()), rate);
  // The spare already over-provisions by ~spare_capacity_fraction, and
  // absent a crash it absorbs prediction error exactly like the
  // multiplicative margin would — so the margin is relieved by the spare's
  // share instead of stacking on top of it (clamped at 1: never plan below
  // the prediction itself).
  const double relieved_margin =
      std::max(1.0, planner_.params().safety_margin /
                        (1.0 + options_.spare_capacity_fraction));
  const double padded = predicted * relieved_margin * guard_.margin_multiplier();

  // Plan within the fleet the detector believes is alive.
  const OperatingPoint pt = provisioner_->solve_capped(padded, detected);
  planned_base_ = pt.servers;
  unsigned target = pt.servers;
  if (pt.feasible && options_.spare_capacity_fraction > 0.0) {
    const auto spare = static_cast<unsigned>(std::ceil(
        options_.spare_capacity_fraction * static_cast<double>(pt.servers)));
    target = std::min(target + spare, detected);
  }
  target = hysteresis_.propose(ctx.committed, target);
  target = retry_.propose(ctx.now, ctx.committed, target);

  ControlAction action;
  action.active_target = target;
  action.infeasible = !pt.feasible;
  action.explain.predicted_rate = predicted;
  action.explain.planning_rate = padded;
  action.explain.safety_margin = relieved_margin * guard_.margin_multiplier();
  action.explain.planned_servers = pt.servers;
  action.explain.detected_available = detected;
  return action;
}

void FailureAwareDcpController::save_state(SnapshotWriter& w) const {
  predictor_->save(w);
  w.u32(hysteresis_.streak());
  detector_.save(w);
  retry_.save(w);
  guard_.save(w);
  w.u32(planned_base_);
}

void FailureAwareDcpController::load_state(SnapshotReader& r) {
  predictor_->load(r);
  hysteresis_.set_streak(r.u32());
  detector_.load(r);
  retry_.load(r);
  guard_.load(r);
  planned_base_ = r.u32();
}

}  // namespace gc
