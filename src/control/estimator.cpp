#include "control/estimator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cp/snapshot.h"

namespace gc {

EwmaEstimator::EwmaEstimator(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument("EwmaEstimator: alpha must be in (0,1]");
  }
}

void EwmaEstimator::observe(double value) noexcept {
  if (!primed_) {
    value_ = value;
    primed_ = true;
    return;
  }
  value_ = alpha_ * value + (1.0 - alpha_) * value_;
}

void EwmaEstimator::reset() noexcept {
  value_ = 0.0;
  primed_ = false;
}

void EwmaEstimator::save(SnapshotWriter& w) const {
  w.f64(value_);
  w.boolean(primed_);
}

void EwmaEstimator::load(SnapshotReader& r) {
  value_ = r.f64();
  primed_ = r.boolean();
}

StalenessGuard::StalenessGuard(double horizon_s, double margin_widen)
    : horizon_s_(horizon_s), widen_(margin_widen) {
  if (!(horizon_s >= 0.0) || !std::isfinite(horizon_s)) {
    throw std::invalid_argument("StalenessGuard: horizon_s must be finite and >= 0");
  }
  if (!(margin_widen >= 1.0) || !std::isfinite(margin_widen)) {
    throw std::invalid_argument(
        "StalenessGuard: margin_widen must be finite and >= 1");
  }
}

double StalenessGuard::filter(double age_s, double rate) noexcept {
  if (horizon_s_ <= 0.0 || age_s <= horizon_s_) {
    last_good_ = rate;
    stale_ = false;
    return rate;
  }
  stale_ = true;
  ++stale_ticks_;
  return last_good_;
}

void StalenessGuard::save(SnapshotWriter& w) const {
  w.f64(last_good_);
  w.boolean(stale_);
  w.u64(stale_ticks_);
}

void StalenessGuard::load(SnapshotReader& r) {
  last_good_ = r.f64();
  stale_ = r.boolean();
  stale_ticks_ = r.u64();
}

SlidingWindowEstimator::SlidingWindowEstimator(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("SlidingWindowEstimator: capacity 0");
}

void SlidingWindowEstimator::observe(double value) {
  window_.push_back(value);
  if (window_.size() > capacity_) window_.pop_front();
}

double SlidingWindowEstimator::mean() const noexcept {
  if (window_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : window_) sum += v;
  return sum / static_cast<double>(window_.size());
}

double SlidingWindowEstimator::max() const noexcept {
  if (window_.empty()) return 0.0;
  return *std::max_element(window_.begin(), window_.end());
}

double SlidingWindowEstimator::last() const noexcept {
  return window_.empty() ? 0.0 : window_.back();
}

}  // namespace gc
