// Load predictors for the DCP long period.
//
// A predictor turns the recent history of measured rates into a single
// per-horizon load figure the provisioner plans against.  The ablation in
// bench/fig9_predictors compares them on the energy-vs-violation frontier.
#pragma once

#include <deque>
#include <memory>
#include <string>

namespace gc {

class SnapshotWriter;  // cp/snapshot.h
class SnapshotReader;

class LoadPredictor {
 public:
  virtual ~LoadPredictor() = default;

  // Feed one measurement (rate over the last short period).
  virtual void observe(double rate) = 0;

  // Predicted load over the next `horizon_s` seconds (a scalar the
  // provisioner plans against; conservative predictors return peak-ish
  // values, aggressive ones mean-ish values).
  [[nodiscard]] virtual double predict(double horizon_s) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  virtual void reset() = 0;

  // Checkpoint/restore of the observation history (cp/snapshot.h): a
  // restored predictor must predict exactly what the saved one would.
  // Every shipped predictor implements both; the built-in kinds write
  // their mutable state only (window sizes and alphas are configuration).
  virtual void save(SnapshotWriter& w) const = 0;
  virtual void load(SnapshotReader& r) = 0;
};

enum class PredictorKind : int {
  kLastValue = 0,
  kEwma = 1,
  kSlidingMax = 2,
  kLinearTrend = 3,
};
[[nodiscard]] const char* to_string(PredictorKind kind) noexcept;

// Factory.  `sample_period_s` is the spacing of observe() calls (the short
// control period); predictors use it to convert horizons into sample counts.
[[nodiscard]] std::unique_ptr<LoadPredictor> make_predictor(PredictorKind kind,
                                                            double sample_period_s);

// -- Implementations (exposed for unit tests) -------------------------------

class LastValuePredictor final : public LoadPredictor {
 public:
  void observe(double rate) override { last_ = rate; }
  [[nodiscard]] double predict(double /*horizon_s*/) const override { return last_; }
  [[nodiscard]] std::string name() const override { return "last-value"; }
  void reset() override { last_ = 0.0; }
  void save(SnapshotWriter& w) const override;
  void load(SnapshotReader& r) override;

 private:
  double last_ = 0.0;
};

class EwmaPredictor final : public LoadPredictor {
 public:
  explicit EwmaPredictor(double alpha);
  void observe(double rate) override;
  [[nodiscard]] double predict(double horizon_s) const override;
  [[nodiscard]] std::string name() const override;
  void reset() override;
  void save(SnapshotWriter& w) const override;
  void load(SnapshotReader& r) override;

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

// Max over the last `window` observations — robust against flash crowds at
// the cost of over-provisioning after them.
class SlidingMaxPredictor final : public LoadPredictor {
 public:
  explicit SlidingMaxPredictor(std::size_t window);
  void observe(double rate) override;
  [[nodiscard]] double predict(double horizon_s) const override;
  [[nodiscard]] std::string name() const override;
  void reset() override;
  void save(SnapshotWriter& w) const override;
  void load(SnapshotReader& r) override;

 private:
  std::size_t window_;
  std::deque<double> history_;
};

// Least-squares line over the last `window` observations, extrapolated to
// the end of the horizon (clamped at 0).  Tracks diurnal ramps.
class LinearTrendPredictor final : public LoadPredictor {
 public:
  LinearTrendPredictor(std::size_t window, double sample_period_s);
  void observe(double rate) override;
  [[nodiscard]] double predict(double horizon_s) const override;
  [[nodiscard]] std::string name() const override;
  void reset() override;
  void save(SnapshotWriter& w) const override;
  void load(SnapshotReader& r) override;

 private:
  std::size_t window_;
  double sample_period_;
  std::deque<double> history_;
};

}  // namespace gc
