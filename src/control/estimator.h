// Arrival-rate estimation from per-tick measurements.
//
// The simulator hands controllers a raw rate (arrivals / short period);
// these estimators smooth it.  All are causal and O(1) or O(window).
#pragma once

#include <cstddef>
#include <deque>

namespace gc {

// Exponentially weighted moving average with smoothing factor `alpha`
// (weight of the newest observation).
class EwmaEstimator {
 public:
  explicit EwmaEstimator(double alpha);

  void observe(double value) noexcept;
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }
  void reset() noexcept;

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

// Sliding window keeping the last `capacity` observations; exposes mean and
// max (the max is what a conservative provisioner wants).
class SlidingWindowEstimator {
 public:
  explicit SlidingWindowEstimator(std::size_t capacity);

  void observe(double value);
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double last() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return window_.size(); }
  void reset() noexcept { window_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<double> window_;
};

}  // namespace gc
