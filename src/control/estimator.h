// Arrival-rate estimation from per-tick measurements.
//
// The simulator hands controllers a raw rate (arrivals / short period);
// these estimators smooth it.  All are causal and O(1) or O(window).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

namespace gc {

class SnapshotWriter;  // cp/snapshot.h
class SnapshotReader;

// Exponentially weighted moving average with smoothing factor `alpha`
// (weight of the newest observation).
class EwmaEstimator {
 public:
  explicit EwmaEstimator(double alpha);

  void observe(double value) noexcept;
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }
  void reset() noexcept;

  // Checkpoint/restore of the mutable state (value, primed); alpha is
  // configuration and travels with the options, not the snapshot.
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

// Stale-telemetry guard for age-stamped observations (DESIGN.md §8.2).
//
// Over a degraded control channel (sim/control_channel) the newest rate
// the controller holds can be arbitrarily old.  The guard compares each
// observation's age against a staleness horizon: while fresh it records
// the rate as last-good and passes it through; past the horizon it holds
// the last-good rate instead and reports a widened safety margin
// (`margin_widen`), so the planner hedges against the drift it cannot
// see.  A horizon of 0 disables the guard entirely — filter() is then the
// identity and margin_multiplier() is exactly 1.0, preserving bit
// identity with unguarded controllers.
struct StalenessOptions {
  // Observation age beyond which telemetry counts as stale; 0 disables
  // the guard (no behavior change vs an unguarded controller).
  double horizon_s = 0.0;
  // Safety-margin multiplier applied while stale.
  double margin_widen = 1.25;
};

class StalenessGuard {
 public:
  explicit StalenessGuard(const StalenessOptions& options)
      : StalenessGuard(options.horizon_s, options.margin_widen) {}
  // Throws std::invalid_argument on inconsistent settings.
  StalenessGuard(double horizon_s, double margin_widen);

  // Feeds one age-stamped observation; returns the rate to plan with.
  double filter(double age_s, double rate) noexcept;

  [[nodiscard]] bool stale() const noexcept { return stale_; }
  [[nodiscard]] double margin_multiplier() const noexcept {
    return stale_ ? widen_ : 1.0;
  }
  [[nodiscard]] std::uint64_t stale_ticks() const noexcept { return stale_ticks_; }

  // Checkpoint/restore of the mutable state (last-good rate, stale flag,
  // stale-tick counter); the horizon/widen knobs are configuration.
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  double horizon_s_;
  double widen_;
  double last_good_ = 0.0;
  bool stale_ = false;
  std::uint64_t stale_ticks_ = 0;
};

// Sliding window keeping the last `capacity` observations; exposes mean and
// max (the max is what a conservative provisioner wants).
class SlidingWindowEstimator {
 public:
  explicit SlidingWindowEstimator(std::size_t capacity);

  void observe(double value);
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double last() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return window_.size(); }
  void reset() noexcept { window_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<double> window_;
};

}  // namespace gc
