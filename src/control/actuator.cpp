#include "control/actuator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cp/snapshot.h"

namespace gc {

const char* to_string(CommandKind kind) noexcept {
  switch (kind) {
    case CommandKind::kTarget: return "target";
    case CommandKind::kSpeed: return "speed";
  }
  return "?";
}

void ActuatorOptions::validate() const {
  if (!(ack_timeout_s > 0.0) || !std::isfinite(ack_timeout_s)) {
    throw std::invalid_argument(
        "ActuatorOptions: ack_timeout_s must be finite and > 0");
  }
  if (!(backoff_base_s >= 0.0) || !std::isfinite(backoff_base_s)) {
    throw std::invalid_argument(
        "ActuatorOptions: backoff_base_s must be finite and >= 0");
  }
  if (!(backoff_cap_s > 0.0) || !std::isfinite(backoff_cap_s)) {
    throw std::invalid_argument(
        "ActuatorOptions: backoff_cap_s must be finite and > 0");
  }
  if (!(jitter_frac >= 0.0 && jitter_frac <= 1.0)) {
    throw std::invalid_argument("ActuatorOptions: jitter_frac must be in [0, 1]");
  }
  if (retry_budget == 0) {
    throw std::invalid_argument("ActuatorOptions: retry_budget must be >= 1");
  }
}

CommandActuator::CommandActuator(const ActuatorOptions& options, Rng rng)
    : options_(options), rng_(rng) {
  options_.validate();
}

Command CommandActuator::issue(double now, CommandKind kind, double value,
                               std::uint32_t era) {
  Lane& l = lane(kind);
  // A newer command supersedes the outstanding one: its retries stop and
  // its eventual ack (if any) will read as stale.
  Command cmd;
  cmd.kind = kind;
  cmd.value = value;
  cmd.gen = l.next_gen++;
  cmd.era = era;
  if (options_.enabled) {
    l.outstanding = true;
    l.cmd = cmd;
    l.backoff_s = options_.backoff_base_s > 0.0 ? options_.backoff_base_s
                                                : options_.ack_timeout_s;
    l.next_retry_s = now + options_.ack_timeout_s;
    l.retransmits = 0;
  }
  return cmd;
}

void CommandActuator::poll(double now, std::vector<Command>& due) {
  if (!options_.enabled) return;
  for (Lane& l : lanes_) {
    if (!l.outstanding || now + 1e-9 < l.next_retry_s) continue;
    if (l.retransmits >= options_.retry_budget) {
      // Budget spent: reconcile to acked state.  The command stops being
      // asserted; acked_value keeps the last confirmed value so the next
      // plan starts from fleet truth, not the unconfirmed wish.
      l.outstanding = false;
      ++exhausted_;
      continue;
    }
    ++l.retransmits;
    ++retries_;
    double wait = std::min(l.backoff_s, options_.backoff_cap_s);
    if (options_.jitter_frac > 0.0) {
      // Drawn only when a retransmission actually fires (determinism
      // contract: loss-free runs consume no randomness).
      wait *= 1.0 + options_.jitter_frac * rng_.uniform01();
    }
    l.next_retry_s = now + wait;
    l.backoff_s = std::min(l.backoff_s * 2.0, options_.backoff_cap_s);
    due.push_back(l.cmd);
  }
}

void CommandActuator::on_ack(double /*now*/, CommandKind kind, std::uint64_t gen) {
  Lane& l = lane(kind);
  if (!l.outstanding || gen != l.cmd.gen) {
    // Superseded, already acked, or a duplicate ack from a retransmission.
    ++stale_acks_;
    return;
  }
  l.acked_value = l.cmd.value;
  l.outstanding = false;
  ++acked_count_;
}

std::optional<double> CommandActuator::acked_value(CommandKind kind) const noexcept {
  return lane(kind).acked_value;
}

bool CommandActuator::outstanding(CommandKind kind) const noexcept {
  return lane(kind).outstanding;
}

void CommandActuator::save(SnapshotWriter& w) const {
  for (const Lane& l : lanes_) {
    w.boolean(l.outstanding);
    w.u8(static_cast<std::uint8_t>(l.cmd.kind));
    w.f64(l.cmd.value);
    w.u64(l.cmd.gen);
    w.u32(l.cmd.era);
    w.f64(l.next_retry_s);
    w.f64(l.backoff_s);
    w.u32(l.retransmits);
    w.u64(l.next_gen);
    w.boolean(l.acked_value.has_value());
    w.f64(l.acked_value.value_or(0.0));
  }
  w.u64(retries_);
  w.u64(acked_count_);
  w.u64(stale_acks_);
  w.u64(exhausted_);
  for (const std::uint64_t word : rng_.state()) w.u64(word);
}

void CommandActuator::load(SnapshotReader& r) {
  for (Lane& l : lanes_) {
    l.outstanding = r.boolean();
    const std::uint8_t kind = r.u8();
    if (kind >= kNumCommandKinds) {
      throw SnapshotError("actuator: command kind out of range in snapshot");
    }
    l.cmd.kind = static_cast<CommandKind>(kind);
    l.cmd.value = r.f64();
    l.cmd.gen = r.u64();
    l.cmd.era = r.u32();
    l.next_retry_s = r.f64();
    l.backoff_s = r.f64();
    l.retransmits = r.u32();
    l.next_gen = r.u64();
    const bool has_acked = r.boolean();
    const double acked = r.f64();
    l.acked_value = has_acked ? std::optional<double>(acked) : std::nullopt;
  }
  retries_ = r.u64();
  acked_count_ = r.u64();
  stale_acks_ = r.u64();
  exhausted_ = r.u64();
  Rng::State state;
  for (std::uint64_t& word : state) word = r.u64();
  rng_.set_state(state);
}

}  // namespace gc
