#include "control/policies.h"

#include <algorithm>
#include <stdexcept>

#include "cp/snapshot.h"
#include "util/assert.h"
#include "workload/rate_profile.h"

namespace gc {
namespace {

// VOVF-only runs every server at full speed; reuse the same config but with
// a one-level ladder at f_max.
ClusterConfig pinned_full_speed(ClusterConfig config) {
  config.ladder = FrequencyLadder({config.ladder.is_continuous()
                                       ? 1.0
                                       : config.ladder.f_max_ghz()});
  return config;
}

}  // namespace

const char* to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kNpm: return "npm";
    case PolicyKind::kDvfsOnly: return "dvfs-only";
    case PolicyKind::kVovfOnly: return "vovf-only";
    case PolicyKind::kCombinedDcp: return "combined-dcp";
    case PolicyKind::kCombinedSinglePeriod: return "combined-single";
    case PolicyKind::kOracle: return "oracle";
    case PolicyKind::kThreshold: return "threshold";
    case PolicyKind::kDcpFailureAware: return "dcp-failure-aware";
    case PolicyKind::kDcpReliability: return "dcp-reliability";
  }
  return "?";
}

std::unique_ptr<Controller> make_policy(PolicyKind kind, const Provisioner* provisioner,
                                        const PolicyOptions& options) {
  GC_CHECK(provisioner != nullptr, "make_policy: null provisioner");
  switch (kind) {
    case PolicyKind::kNpm:
      return std::make_unique<NpmController>(provisioner, options);
    case PolicyKind::kDvfsOnly:
      return std::make_unique<DvfsOnlyController>(provisioner, options);
    case PolicyKind::kVovfOnly:
      return std::make_unique<VovfOnlyController>(provisioner, options);
    case PolicyKind::kCombinedDcp:
      return std::make_unique<CombinedDcpController>(provisioner, options);
    case PolicyKind::kCombinedSinglePeriod:
      return std::make_unique<CombinedSinglePeriodController>(provisioner, options);
    case PolicyKind::kOracle:
      throw std::invalid_argument(
          "make_policy: the oracle needs the profile; use make_oracle_policy");
    case PolicyKind::kThreshold:
      return std::make_unique<ThresholdController>(provisioner, options);
    case PolicyKind::kDcpFailureAware:
      return std::make_unique<FailureAwareDcpController>(
          provisioner, options.dcp, options.predictor, options.failure,
          options.staleness);
    case PolicyKind::kDcpReliability:
      return std::make_unique<ReliabilityDcpController>(
          provisioner, options.dcp, options.predictor, options.failure,
          options.reliability, options.staleness);
  }
  throw std::invalid_argument("make_policy: unknown policy kind");
}

std::unique_ptr<Controller> make_oracle_policy(const Provisioner* provisioner,
                                               const PolicyOptions& options,
                                               std::shared_ptr<const RateProfile> profile) {
  GC_CHECK(provisioner != nullptr, "make_oracle_policy: null provisioner");
  return std::make_unique<OracleController>(provisioner, options, std::move(profile));
}

// -- NPM ----------------------------------------------------------------------

NpmController::NpmController(const Provisioner* provisioner, const PolicyOptions& options)
    : provisioner_(provisioner), dcp_(options.dcp) {
  dcp_.validate();
}

double NpmController::short_period_s() const { return dcp_.short_period_s; }
double NpmController::long_period_s() const { return dcp_.long_period_s; }

ControlAction NpmController::on_short_tick(const ControlContext& /*ctx*/) { return {}; }

ControlAction NpmController::on_long_tick(const ControlContext& /*ctx*/) {
  // Idempotent: everything on at full speed.
  ControlAction action;
  action.active_target = provisioner_->config().max_servers;
  action.speed = 1.0;
  action.explain.planned_servers = provisioner_->config().max_servers;
  return action;
}

// -- DVFS-only ------------------------------------------------------------------

DvfsOnlyController::DvfsOnlyController(const Provisioner* provisioner,
                                       const PolicyOptions& options)
    : provisioner_(provisioner), dcp_(options.dcp), smoother_(0.5) {
  dcp_.validate();
}

double DvfsOnlyController::short_period_s() const { return dcp_.short_period_s; }
double DvfsOnlyController::long_period_s() const { return dcp_.long_period_s; }

ControlAction DvfsOnlyController::on_short_tick(const ControlContext& ctx) {
  smoother_.observe(ctx.measured_rate);
  const double predicted = smoother_.predict(0.0);
  const double padded = predicted * dcp_.safety_margin;
  ControlAction action;
  const OperatingPoint pt =
      provisioner_->best_speed_for(padded, provisioner_->config().max_servers);
  action.speed = pt.speed;
  action.infeasible = !pt.feasible;
  action.explain.predicted_rate = predicted;
  action.explain.planning_rate = padded;
  action.explain.safety_margin = dcp_.safety_margin;
  action.explain.planned_servers = provisioner_->config().max_servers;
  return action;
}

ControlAction DvfsOnlyController::on_long_tick(const ControlContext& /*ctx*/) {
  ControlAction action;
  action.active_target = provisioner_->config().max_servers;
  return action;
}

void DvfsOnlyController::save_state(SnapshotWriter& w) const { smoother_.save(w); }

void DvfsOnlyController::load_state(SnapshotReader& r) { smoother_.load(r); }

// -- VOVF-only ------------------------------------------------------------------

VovfOnlyController::VovfOnlyController(const Provisioner* provisioner,
                                       const PolicyOptions& options)
    : full_speed_provisioner_(pinned_full_speed(provisioner->config())),
      planner_(&full_speed_provisioner_, options.dcp),
      predictor_(make_predictor(options.predictor, options.dcp.short_period_s)),
      hysteresis_(options.dcp.scale_down_patience) {}

double VovfOnlyController::short_period_s() const {
  return planner_.params().short_period_s;
}
double VovfOnlyController::long_period_s() const { return planner_.params().long_period_s; }

ControlAction VovfOnlyController::on_short_tick(const ControlContext& ctx) {
  predictor_->observe(ctx.measured_rate);
  ControlAction action;
  action.speed = 1.0;
  return action;
}

ControlAction VovfOnlyController::on_long_tick(const ControlContext& ctx) {
  const double predicted =
      std::max(predictor_->predict(planner_.prediction_horizon()), ctx.measured_rate);
  const OperatingPoint pt = planner_.plan_point(predicted);
  ControlAction action;
  action.active_target = hysteresis_.propose(ctx.committed, pt.servers);
  action.speed = 1.0;
  action.infeasible = !pt.feasible;
  action.explain.predicted_rate = predicted;
  action.explain.planning_rate = predicted * planner_.params().safety_margin;
  action.explain.safety_margin = planner_.params().safety_margin;
  action.explain.planned_servers = pt.servers;
  return action;
}

// -- Combined (DCP) --------------------------------------------------------------

CombinedDcpController::CombinedDcpController(const Provisioner* provisioner,
                                             const PolicyOptions& options)
    : provisioner_(provisioner), planner_(provisioner, options.dcp),
      predictor_(make_predictor(options.predictor, options.dcp.short_period_s)),
      hysteresis_(effective_patience(options.dcp, provisioner->config().transition,
                                     PowerModel(provisioner->config().power))),
      backlog_aware_(options.backlog_aware), guard_(options.staleness) {}

double CombinedDcpController::short_period_s() const {
  return planner_.params().short_period_s;
}
double CombinedDcpController::long_period_s() const {
  return planner_.params().long_period_s;
}

ControlAction CombinedDcpController::on_short_tick(const ControlContext& ctx) {
  // With fresh telemetry filter() is the identity and the multiplier 1.0,
  // so the unguarded arithmetic (and its bits) is preserved; past the
  // staleness horizon the last-good rate is held and the margin widened.
  const double rate = guard_.filter(ctx.obs_age_s, ctx.measured_rate);
  predictor_->observe(rate);
  // Fit the frequency to the capacity that is actually serving right now.
  const double padded =
      rate * planner_.params().safety_margin * guard_.margin_multiplier();
  const unsigned serving = std::max(ctx.serving, 1u);
  ControlAction action;
  OperatingPoint pt;
  if (backlog_aware_) {
    pt = planner_.plan_speed_with_backlog(padded, serving,
                                          static_cast<double>(ctx.jobs_in_system),
                                          planner_.params().short_period_s);
  } else {
    pt = planner_.plan_speed(padded, serving);
  }
  action.speed = pt.speed;
  action.infeasible = !pt.feasible;
  action.explain.planning_rate = padded;
  action.explain.safety_margin =
      planner_.params().safety_margin * guard_.margin_multiplier();
  action.explain.planned_servers = serving;
  return action;
}

ControlAction CombinedDcpController::on_long_tick(const ControlContext& ctx) {
  const double rate = guard_.filter(ctx.obs_age_s, ctx.measured_rate);
  const double predicted =
      std::max(predictor_->predict(planner_.prediction_horizon()), rate) *
      guard_.margin_multiplier();
  const OperatingPoint pt = planner_.plan_point(predicted);
  ControlAction action;
  action.active_target = hysteresis_.propose(ctx.committed, pt.servers);
  action.infeasible = !pt.feasible;
  action.explain.predicted_rate = predicted;
  action.explain.planning_rate = predicted * planner_.params().safety_margin;
  action.explain.safety_margin = planner_.params().safety_margin;
  action.explain.planned_servers = pt.servers;
  // Speed is corrected by the following short tick (same timestamp).
  return action;
}

// -- Oracle (clairvoyant Combined/DCP) --------------------------------------------

void VovfOnlyController::save_state(SnapshotWriter& w) const {
  predictor_->save(w);
  w.u32(hysteresis_.streak());
}

void VovfOnlyController::load_state(SnapshotReader& r) {
  predictor_->load(r);
  hysteresis_.set_streak(r.u32());
}

void CombinedDcpController::save_state(SnapshotWriter& w) const {
  predictor_->save(w);
  w.u32(hysteresis_.streak());
  guard_.save(w);
}

void CombinedDcpController::load_state(SnapshotReader& r) {
  predictor_->load(r);
  hysteresis_.set_streak(r.u32());
  guard_.load(r);
}

OracleController::OracleController(const Provisioner* provisioner,
                                   const PolicyOptions& options,
                                   std::shared_ptr<const RateProfile> profile)
    : provisioner_(provisioner), planner_(provisioner, options.dcp),
      profile_(std::move(profile)),
      hysteresis_(effective_patience(options.dcp, provisioner->config().transition,
                                     PowerModel(provisioner->config().power))) {
  GC_CHECK(profile_ != nullptr, "OracleController: null profile");
}

double OracleController::short_period_s() const { return planner_.params().short_period_s; }
double OracleController::long_period_s() const { return planner_.params().long_period_s; }

ControlAction OracleController::on_short_tick(const ControlContext& ctx) {
  // Perfect knowledge of the *rate*; arrivals are still stochastic, so the
  // safety margin stays.
  const double truth = profile_->rate(ctx.now);
  ControlAction action;
  const OperatingPoint pt = planner_.plan_speed(
      truth * planner_.params().safety_margin, std::max(ctx.serving, 1u));
  action.speed = pt.speed;
  action.infeasible = !pt.feasible;
  action.explain.predicted_rate = truth;
  action.explain.planning_rate = truth * planner_.params().safety_margin;
  action.explain.safety_margin = planner_.params().safety_margin;
  action.explain.planned_servers = std::max(ctx.serving, 1u);
  return action;
}

ControlAction OracleController::on_long_tick(const ControlContext& ctx) {
  const double horizon = planner_.prediction_horizon();
  const double peak = profile_->max_rate(ctx.now, ctx.now + horizon);
  const OperatingPoint pt = planner_.plan_point(peak);
  ControlAction action;
  action.active_target = hysteresis_.propose(ctx.committed, pt.servers);
  action.infeasible = !pt.feasible;
  action.explain.predicted_rate = peak;
  action.explain.planning_rate = peak * planner_.params().safety_margin;
  action.explain.safety_margin = planner_.params().safety_margin;
  action.explain.planned_servers = pt.servers;
  return action;
}

// -- Threshold autoscaler ----------------------------------------------------------

ThresholdController::ThresholdController(const Provisioner* provisioner,
                                         const PolicyOptions& options,
                                         double scale_out_util, double scale_in_util)
    : provisioner_(provisioner), dcp_(options.dcp), scale_out_util_(scale_out_util),
      scale_in_util_(scale_in_util), smoother_(0.5) {
  dcp_.validate();
  if (!(0.0 < scale_in_util && scale_in_util < scale_out_util && scale_out_util <= 1.0)) {
    throw std::invalid_argument(
        "ThresholdController: need 0 < scale_in < scale_out <= 1");
  }
}

double ThresholdController::short_period_s() const { return dcp_.short_period_s; }
double ThresholdController::long_period_s() const { return dcp_.long_period_s; }

ControlAction ThresholdController::on_short_tick(const ControlContext& ctx) {
  smoother_.observe(ctx.measured_rate);
  ControlAction action;
  action.speed = 1.0;  // rule-based autoscalers do not touch DVFS
  return action;
}

ControlAction ThresholdController::on_long_tick(const ControlContext& ctx) {
  const double rate = smoother_.predict(0.0);
  const unsigned serving = std::max(ctx.serving, 1u);
  const double util =
      rate / (static_cast<double>(serving) * provisioner_->config().mu_max);
  ControlAction action;
  if (util > scale_out_util_) {
    action.active_target =
        std::min(ctx.committed + 1, provisioner_->config().max_servers);
  } else if (util < scale_in_util_ && ctx.committed > 1) {
    action.active_target = ctx.committed - 1;
  }
  action.speed = 1.0;
  action.explain.predicted_rate = rate;
  action.explain.planning_rate = rate;
  action.explain.planned_servers =
      action.active_target ? *action.active_target : ctx.committed;
  return action;
}

// -- Combined, single control period ---------------------------------------------

void OracleController::save_state(SnapshotWriter& w) const {
  w.u32(hysteresis_.streak());
}

void OracleController::load_state(SnapshotReader& r) {
  hysteresis_.set_streak(r.u32());
}

void ThresholdController::save_state(SnapshotWriter& w) const {
  smoother_.save(w);
}

void ThresholdController::load_state(SnapshotReader& r) { smoother_.load(r); }

CombinedSinglePeriodController::CombinedSinglePeriodController(
    const Provisioner* provisioner, const PolicyOptions& options)
    : provisioner_(provisioner), dcp_(options.dcp),
      backlog_aware_(options.backlog_aware) {
  dcp_.validate();
}

// One timescale: both decisions every long period.  The short tick exists
// only because the simulator requires one; it does nothing.
double CombinedSinglePeriodController::short_period_s() const {
  return dcp_.long_period_s;
}
double CombinedSinglePeriodController::long_period_s() const {
  return dcp_.long_period_s;
}

ControlAction CombinedSinglePeriodController::on_short_tick(const ControlContext&) {
  return {};
}

ControlAction CombinedSinglePeriodController::on_long_tick(const ControlContext& ctx) {
  // Reactive: last measured rate, no boot-delay lookahead, no hysteresis.
  double planning_rate = ctx.measured_rate * dcp_.safety_margin;
  if (backlog_aware_) {
    // Budget capacity to drain queue excess within a few SLA periods
    // (extension; see DcpPlanner::plan_speed_with_backlog for the
    // Little's-law target).  The horizon is deliberately aggressive — a
    // reactive controller's queues otherwise persist for many periods.
    const double on_target = planning_rate * provisioner_->config().t_ref_s;
    const double excess =
        std::max(static_cast<double>(ctx.jobs_in_system) - on_target, 0.0);
    planning_rate += excess / (4.0 * provisioner_->config().t_ref_s);
  }
  const OperatingPoint pt = provisioner_->solve(planning_rate);
  ControlAction action;
  action.active_target = pt.servers;
  action.speed = pt.speed;
  action.infeasible = !pt.feasible;
  action.explain.predicted_rate = ctx.measured_rate;
  action.explain.planning_rate = planning_rate;
  action.explain.safety_margin = dcp_.safety_margin;
  action.explain.planned_servers = pt.servers;
  return action;
}

}  // namespace gc
