// The power-management policies evaluated by the paper plus the ablation
// and extension controllers (DESIGN.md §1.3, §3):
//
//   * NpmController            — no power management: M servers at s = 1.
//   * DvfsOnlyController       — all M servers on; frequency tracks load
//                                every short period.
//   * VovfOnlyController       — fixed s = 1; server count tracks load
//                                every long period.
//   * CombinedDcpController    — the paper's contribution: VOVF on the long
//                                period (predictive, boot-aware, with
//                                hysteresis) + DVFS on the short period.
//   * CombinedSinglePeriodController — joint (m, s) re-solve on a single
//                                period with last-value "prediction";
//                                isolates what DCP buys under transition
//                                overhead (F6).
//   * OracleController         — Combined/DCP fed the true λ(t); the
//                                clairvoyant bound on causal predictors (F9).
//   * ThresholdController      — rule-based utilization autoscaler, the
//                                practitioners' baseline (T2).
#pragma once

#include <memory>

#include "core/dcp.h"
#include "core/provisioner.h"
#include "core/reliability.h"
#include "control/estimator.h"
#include "control/failure_aware.h"
#include "control/predictor.h"
#include "control/reliability_dcp.h"
#include "cp/controller.h"

namespace gc {

enum class PolicyKind : int {
  kNpm = 0,
  kDvfsOnly = 1,
  kVovfOnly = 2,
  kCombinedDcp = 3,
  kCombinedSinglePeriod = 4,
  // Clairvoyant upper bound: provisions against the *true* future arrival
  // rate (needs the ground-truth profile; see make_oracle_policy).
  kOracle = 5,
  // Rule-based threshold autoscaler (the classic reactive baseline: scale
  // out when utilization is high, in when low; no model, no solver).
  kThreshold = 6,
  // Combined/DCP hardened against fail-stop faults: failure detection,
  // capped provisioning with spare capacity, boot retries with backoff
  // (control/failure_aware.h).
  kDcpFailureAware = 7,
  // Reliability-constrained DCP: the fixed spare fraction generalized to a
  // solved spare pool meeting availability >= A_ref, with on/off wear
  // charged in the objective (control/reliability_dcp.h, DESIGN.md §10).
  kDcpReliability = 8,
};
[[nodiscard]] const char* to_string(PolicyKind kind) noexcept;

struct PolicyOptions {
  DcpParams dcp = {};
  PredictorKind predictor = PredictorKind::kSlidingMax;
  // Combined/DCP only: budget extra frequency on the short tick to drain
  // queued backlog (DcpPlanner::plan_speed_with_backlog).  Off by default
  // to match the paper's controller; quantified in bench/fig6.
  bool backlog_aware = false;
  // kDcpFailureAware / kDcpReliability: detector / spare capacity / boot
  // retry knobs (kDcpReliability ignores spare_capacity_fraction — spares
  // are solved, not guessed).
  FailureAwareOptions failure = {};
  // kDcpReliability only: MTBF/MTTR model, availability target and wear
  // budget for Provisioner::solve_reliable.  Defaults disable everything,
  // degenerating the policy to capped DCP with zero spares.
  ReliabilityOptions reliability = {};
  // Stale-telemetry guard over a degraded control channel (Combined/DCP
  // and failure-aware only): hold last-good λ̂ and widen the safety margin
  // when the delivered observation ages past the horizon.  Inert (0
  // horizon) by default.
  StalenessOptions staleness = {};
};

// Factory: builds a controller of the given kind over a provisioner that
// must outlive it.  Throws std::invalid_argument for kOracle, which needs
// the ground-truth profile — use make_oracle_policy.
[[nodiscard]] std::unique_ptr<Controller> make_policy(PolicyKind kind,
                                                      const Provisioner* provisioner,
                                                      const PolicyOptions& options = {});

class RateProfile;  // workload/rate_profile.h

// The clairvoyant policy: like Combined/DCP but with the predictor
// replaced by the true profile's peak over the prediction horizon.  It
// bounds what any causal predictor could achieve (fig9).
[[nodiscard]] std::unique_ptr<Controller> make_oracle_policy(
    const Provisioner* provisioner, const PolicyOptions& options,
    std::shared_ptr<const RateProfile> profile);

// -- Implementations ---------------------------------------------------------

class NpmController final : public Controller {
 public:
  NpmController(const Provisioner* provisioner, const PolicyOptions& options);
  [[nodiscard]] double short_period_s() const override;
  [[nodiscard]] double long_period_s() const override;
  [[nodiscard]] ControlAction on_short_tick(const ControlContext& ctx) override;
  [[nodiscard]] ControlAction on_long_tick(const ControlContext& ctx) override;
  [[nodiscard]] const char* name() const override { return "npm"; }

 private:
  const Provisioner* provisioner_;
  DcpParams dcp_;
};

class DvfsOnlyController final : public Controller {
 public:
  DvfsOnlyController(const Provisioner* provisioner, const PolicyOptions& options);
  [[nodiscard]] double short_period_s() const override;
  [[nodiscard]] double long_period_s() const override;
  [[nodiscard]] ControlAction on_short_tick(const ControlContext& ctx) override;
  [[nodiscard]] ControlAction on_long_tick(const ControlContext& ctx) override;
  [[nodiscard]] const char* name() const override { return "dvfs-only"; }
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  const Provisioner* provisioner_;
  DcpParams dcp_;
  EwmaPredictor smoother_;
};

class VovfOnlyController final : public Controller {
 public:
  VovfOnlyController(const Provisioner* provisioner, const PolicyOptions& options);
  [[nodiscard]] double short_period_s() const override;
  [[nodiscard]] double long_period_s() const override;
  [[nodiscard]] ControlAction on_short_tick(const ControlContext& ctx) override;
  [[nodiscard]] ControlAction on_long_tick(const ControlContext& ctx) override;
  [[nodiscard]] const char* name() const override { return "vovf-only"; }
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  // VOVF-only must provision at s = 1, so it plans against a config whose
  // ladder is pinned to full speed.
  Provisioner full_speed_provisioner_;
  DcpPlanner planner_;
  std::unique_ptr<LoadPredictor> predictor_;
  HysteresisGate hysteresis_;
};

class CombinedDcpController final : public Controller {
 public:
  CombinedDcpController(const Provisioner* provisioner, const PolicyOptions& options);
  [[nodiscard]] double short_period_s() const override;
  [[nodiscard]] double long_period_s() const override;
  [[nodiscard]] ControlAction on_short_tick(const ControlContext& ctx) override;
  [[nodiscard]] ControlAction on_long_tick(const ControlContext& ctx) override;
  [[nodiscard]] const char* name() const override { return "combined-dcp"; }
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  const Provisioner* provisioner_;
  DcpPlanner planner_;
  std::unique_ptr<LoadPredictor> predictor_;
  HysteresisGate hysteresis_;
  bool backlog_aware_;
  StalenessGuard guard_;
};

class OracleController final : public Controller {
 public:
  OracleController(const Provisioner* provisioner, const PolicyOptions& options,
                   std::shared_ptr<const RateProfile> profile);
  [[nodiscard]] double short_period_s() const override;
  [[nodiscard]] double long_period_s() const override;
  [[nodiscard]] ControlAction on_short_tick(const ControlContext& ctx) override;
  [[nodiscard]] ControlAction on_long_tick(const ControlContext& ctx) override;
  [[nodiscard]] const char* name() const override { return "oracle"; }
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  const Provisioner* provisioner_;
  DcpPlanner planner_;
  std::shared_ptr<const RateProfile> profile_;
  HysteresisGate hysteresis_;
};

// The operations-manual autoscaler every cloud ships: no queueing model,
// just utilization thresholds.  Runs at full speed (rule-based systems
// rarely touch DVFS); scales out by one server when the measured
// per-server utilization exceeds `scale_out_util`, in by one when it
// falls below `scale_in_util`.  Serves as the "what practitioners do
// today" baseline against the paper's model-driven optimum.
class ThresholdController final : public Controller {
 public:
  ThresholdController(const Provisioner* provisioner, const PolicyOptions& options,
                      double scale_out_util = 0.8, double scale_in_util = 0.3);
  [[nodiscard]] double short_period_s() const override;
  [[nodiscard]] double long_period_s() const override;
  [[nodiscard]] ControlAction on_short_tick(const ControlContext& ctx) override;
  [[nodiscard]] ControlAction on_long_tick(const ControlContext& ctx) override;
  [[nodiscard]] const char* name() const override { return "threshold"; }
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  const Provisioner* provisioner_;
  DcpParams dcp_;
  double scale_out_util_;
  double scale_in_util_;
  EwmaPredictor smoother_;
};

class CombinedSinglePeriodController final : public Controller {
 public:
  CombinedSinglePeriodController(const Provisioner* provisioner,
                                 const PolicyOptions& options);
  [[nodiscard]] double short_period_s() const override;
  [[nodiscard]] double long_period_s() const override;
  [[nodiscard]] ControlAction on_short_tick(const ControlContext& ctx) override;
  [[nodiscard]] ControlAction on_long_tick(const ControlContext& ctx) override;
  [[nodiscard]] const char* name() const override { return "combined-single"; }

 private:
  const Provisioner* provisioner_;
  DcpParams dcp_;
  bool backlog_aware_;
};

}  // namespace gc
