// Failure-aware extensions to the DCP controller.
//
// Three pieces compose into FailureAwareDcpController:
//
//   * FailureDetector — a heartbeat-style detector over the fleet's
//     available-server count.  A crashed server keeps being counted until
//     `heartbeat_misses` consecutive heartbeats go unanswered
//     (detection_delay_s = interval * misses); a repaired server is seen
//     immediately (it announces itself).  Modeled as the max of the true
//     availability over the trailing detection window — failures surface
//     late, repairs instantly.
//   * BootRetryGate — boot commands can be swallowed by boot hangs (the
//     commanded server never reaches ON).  The gate watches the
//     committed-vs-target deficit: the first shortfall asserts the target
//     immediately, then re-asserts it only at exponentially backed-off
//     deadlines (backoff, 2*backoff, ...) up to `boot_retry_budget`
//     attempts per episode, returning the committed count in between so
//     the reconciler is not spammed with boots that will hang again.
//     Reaching the target (or a lowered one) resets the episode, and so
//     does any *rise* in the committed count between proposals: boots that
//     land mean the deficit is an ordinary ramp, not hung commands.
//   * Spare capacity — the planner solves within the *detected* available
//     fleet (Provisioner::solve_capped) and then adds
//     ceil(spare_capacity_fraction * m) standby servers, so attrition
//     during the long period lands on warm spares instead of the SLA.
//     Because the spare itself over-provisions, the long-period safety
//     margin is relieved by the spare's share
//     (margin / (1 + spare_capacity_fraction), clamped at 1) rather than
//     stacked on top of it — the spare absorbs prediction error exactly
//     like the margin would whenever no crash claims it.
//     The spares are pure headroom: the short tick fits the frequency for
//     the *planned base* server count, so spreading the load over the
//     wider fleet can only speed jobs up.  (Fitting to the full fleet
//     would dilute the safety margin's latency headroom — T rises toward
//     t_ref as m grows — and make the spared fleet *slower* per job than
//     the unspared plan.)
//
// Declared independently of control/policies.h (which includes this file
// and exposes the policy as PolicyKind::kDcpFailureAware).
#pragma once

#include <cmath>
#include <deque>
#include <memory>

#include "core/dcp.h"
#include "core/provisioner.h"
#include "control/estimator.h"
#include "control/predictor.h"
#include "cp/controller.h"

namespace gc {

struct FailureAwareOptions {
  double heartbeat_interval_s = 5.0;
  // Missed heartbeats before a server is declared dead.
  unsigned heartbeat_misses = 2;
  // Extra standby servers on top of the planned m, as a fraction of m
  // (rounded up).  0 disables spare capacity.  The default keeps one warm
  // spare for fleets up to 16 planned servers — enough to absorb one
  // crash per long period without breathing the SLA, at a single-digit
  // energy premium.
  double spare_capacity_fraction = 0.0625;
  // Re-assert an unmet server-count target at most this many times per
  // shortfall episode before settling for the committed fleet.
  unsigned boot_retry_budget = 4;
  // First retry delay; doubles per retry.  0 defaults to one long period
  // (retry on the next provisioning decision).
  double boot_retry_backoff_s = 0.0;

  // Throws std::invalid_argument on inconsistent settings.
  void validate() const;
  [[nodiscard]] double detection_delay_s() const noexcept {
    return heartbeat_interval_s * static_cast<double>(heartbeat_misses);
  }
};

// Delayed-failure / instant-repair availability view.
class FailureDetector {
 public:
  // `initial_available` is what the detector reports before any
  // observation ages past the detection delay.
  FailureDetector(double detection_delay_s, unsigned initial_available);

  // Feeds the true available count at `now`; returns the detected count
  // (the max over the trailing detection window).
  unsigned observe(double now, unsigned available);

  [[nodiscard]] unsigned detected() const noexcept { return detected_; }

  // Checkpoint/restore of the detection window (cp/snapshot.h): the delay
  // is configuration, the trailing sample window is state.
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  struct Sample {
    double time;
    unsigned available;
  };
  double delay_;
  unsigned detected_;
  std::deque<Sample> window_;
};

// Exponential-backoff gate on unmet server-count targets.
class BootRetryGate {
 public:
  BootRetryGate(unsigned budget, double backoff_s);

  // `target` is what the planner wants, `committed` what the cluster has
  // (serving + booting).  Returns the target to actually assert.
  [[nodiscard]] unsigned propose(double now, unsigned committed, unsigned target);

  [[nodiscard]] unsigned attempts() const noexcept { return attempts_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return in_deficit_ && attempts_ >= budget_;
  }

  // Checkpoint/restore of the episode state (cp/snapshot.h).
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  unsigned budget_;
  double backoff_s_;
  unsigned attempts_ = 0;
  double next_retry_ = 0.0;
  bool in_deficit_ = false;
  unsigned last_committed_ = 0;
};

// Combined/DCP with failure detection, capped+spared provisioning and boot
// retries.  Construction mirrors CombinedDcpController; policies.cpp wires
// it to PolicyKind::kDcpFailureAware.
class FailureAwareDcpController final : public Controller {
 public:
  FailureAwareDcpController(const Provisioner* provisioner, const DcpParams& dcp,
                            PredictorKind predictor,
                            const FailureAwareOptions& options,
                            const StalenessOptions& staleness = {});

  [[nodiscard]] double short_period_s() const override;
  [[nodiscard]] double long_period_s() const override;
  [[nodiscard]] ControlAction on_short_tick(const ControlContext& ctx) override;
  [[nodiscard]] ControlAction on_long_tick(const ControlContext& ctx) override;
  [[nodiscard]] const char* name() const override { return "dcp-failure-aware"; }
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  // Pass-through that runs validate() first, so degenerate settings (a
  // non-positive heartbeat interval, zero misses, a zero retry budget)
  // throw std::invalid_argument at construction — *before* the member
  // initializers below hand the derived values to FailureDetector /
  // BootRetryGate, whose GC_CHECK preconditions would abort instead.
  [[nodiscard]] static const FailureAwareOptions& validated(
      const FailureAwareOptions& options) {
    options.validate();
    return options;
  }

  const Provisioner* provisioner_;
  DcpPlanner planner_;
  std::unique_ptr<LoadPredictor> predictor_;
  HysteresisGate hysteresis_;
  FailureAwareOptions options_;
  FailureDetector detector_;
  BootRetryGate retry_;
  StalenessGuard guard_;
  // Base server count of the last long-period plan (before spares); the
  // short tick fits speed to this so spares stay pure headroom.  0 until
  // the first long tick.
  unsigned planned_base_ = 0;
};

}  // namespace gc
