// Fault / failure-aware / reliability policy knobs <-> INI sections.
//
// Extends the core config format (core/config_io.h) with the sections the
// robustness policies read.  Lives in control/ because the three structs
// span the module graph (FaultOptions in sim/, FailureAwareOptions in
// control/, ReliabilityOptions in core/) and gc_control is the lowest
// layer that links all of them.
//
//   [faults]
//   mtbf_s = 21600            ; 0 disables the background fault process
//   mttr_s = 600
//   boot_hang_prob = 0.02
//   boot_timeout_s = 0        ; 0 = three boot delays
//   seed = 0                  ; 0 derives from the dispatch seed
//
//   [failure_aware]
//   heartbeat_interval_s = 5
//   heartbeat_misses = 2
//   spare_capacity_fraction = 0.0625
//   boot_retry_budget = 4
//   boot_retry_backoff_s = 0
//
//   [reliability]
//   mtbf_s = 21600
//   mttr_s = 600
//   availability_target = 0.999
//   max_spares = 8
//   cycles_to_failure = 40000
//   cycle_cost_j = 5000
//   class_cycles_to_failure = 40000 10000   ; optional per-class override
//
// Missing keys fall back to the in-code defaults.  Malformed values —
// non-finite or negative MTBF/MTTR, probabilities or fractions outside
// [0, 1], negative wear budgets — *throw* (std::runtime_error with the
// offending section/key, or the struct validate()'s std::invalid_argument);
// nothing is silently clamped.  tests/test_config_fuzz.cpp keeps the
// malformed-input corpus.
#pragma once

#include "control/failure_aware.h"
#include "core/reliability.h"
#include "sim/fault_injector.h"
#include "util/ini.h"

namespace gc {

[[nodiscard]] FaultOptions fault_options_from_ini(const IniFile& ini);
[[nodiscard]] FailureAwareOptions failure_aware_options_from_ini(const IniFile& ini);
[[nodiscard]] ReliabilityOptions reliability_options_from_ini(const IniFile& ini);

}  // namespace gc
