// Load-balancing policies for routing arrivals to serving servers.
//
// The paper's model assumes an even split (which join-shortest-queue
// approximates closely at these utilizations); round-robin and random are
// provided for the dispatch-sensitivity ablation, least-work as the
// strongest practical policy.
//
// Two entry points share one policy core and therefore one decision
// sequence:
//
//   * pick(now, servers, serving) — the hot path.  `serving` is the
//     cluster's incrementally-maintained index of serving() servers in
//     ascending order (sim/cluster.h), so round-robin and random pick in
//     O(1) and JSQ/least-work scan only the serving subset instead of all
//     M servers.
//   * pick(now, servers) — the retained reference implementation: rebuilds
//     the serving set by scanning every server, exactly as the
//     pre-index dispatcher did.  Kept as the equivalence oracle
//     (tests/test_dispatcher_equivalence.cpp) and for callers without an
//     index.
//
// Both produce identical pick sequences for the same (policy, rng) state
// because the index lists the same candidates in the same ascending order
// the scan would collect.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stats/rng.h"
#include "sim/server.h"

namespace gc {

enum class DispatchPolicy : int {
  kRoundRobin = 0,
  kRandom = 1,
  kJoinShortestQueue = 2,
  kLeastWork = 3,
};
[[nodiscard]] const char* to_string(DispatchPolicy policy) noexcept;

class Dispatcher {
 public:
  Dispatcher(DispatchPolicy policy, Rng rng);

  // Hot path: picks among `serving` (indices of serving() servers in
  // ascending order).  Returns the server index, or -1 if empty.
  [[nodiscard]] long pick(double now, std::span<const Server> servers,
                          std::span<const std::uint32_t> serving);

  // Reference scan: collects the serving set from `servers` and delegates
  // to the same core.  O(M) per call.
  [[nodiscard]] long pick(double now, std::span<const Server> servers);

  [[nodiscard]] DispatchPolicy policy() const noexcept { return policy_; }

 private:
  DispatchPolicy policy_;
  Rng rng_;
  std::uint32_t rr_cursor_ = 0;
  std::vector<std::uint32_t> scratch_;  // reference-scan candidate buffer
};

}  // namespace gc
