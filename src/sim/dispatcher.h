// Load-balancing policies for routing arrivals to serving servers.
//
// The paper's model assumes an even split (which join-shortest-queue
// approximates closely at these utilizations); round-robin and random are
// provided for the dispatch-sensitivity ablation, least-work as the
// strongest practical policy.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "stats/rng.h"
#include "sim/server.h"

namespace gc {

enum class DispatchPolicy : int {
  kRoundRobin = 0,
  kRandom = 1,
  kJoinShortestQueue = 2,
  kLeastWork = 3,
};
[[nodiscard]] const char* to_string(DispatchPolicy policy) noexcept;

class Dispatcher {
 public:
  Dispatcher(DispatchPolicy policy, Rng rng);

  // Picks a target among `servers` restricted to serving() ones.
  // Returns the server index, or -1 if no server is serving.
  [[nodiscard]] long pick(double now, std::span<const Server> servers);

  [[nodiscard]] DispatchPolicy policy() const noexcept { return policy_; }

 private:
  DispatchPolicy policy_;
  Rng rng_;
  std::uint32_t rr_cursor_ = 0;
};

}  // namespace gc
