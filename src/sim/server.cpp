#include "sim/server.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace gc {

Server::Server(std::uint32_t index, const PowerModel* power, double initial_speed,
               bool initially_on, double start_time, double rate_scale)
    : index_(index), power_(power),
      state_(initially_on ? PowerState::kOn : PowerState::kOff), speed_(initial_speed),
      rate_scale_(rate_scale), meter_(power, start_time) {
  GC_CHECK(power != nullptr, "Server: null power model");
  GC_CHECK(initial_speed > 0.0 && initial_speed <= 1.0, "Server: speed out of (0,1]");
  GC_CHECK(rate_scale > 0.0, "Server: rate_scale must be positive");
  meter_.update(start_time, state_, speed_, /*busy=*/false);
}

void Server::meter_update(double now) { meter_.update(now, state_, speed_, busy()); }

double Server::outstanding_work(double now) const {
  double work = 0.0;
  if (current_) {
    const double done = (now - progress_anchor_) * effective_rate();
    work += std::max(current_->remaining - done, 0.0);
  }
  for (const Job& j : queue_) work += j.remaining;
  return work;
}

void Server::start_boot(double now) {
  GC_CHECK(state_ == PowerState::kOff, "start_boot: server not OFF");
  state_ = PowerState::kBooting;
  meter_update(now);
}

void Server::finish_boot(double now) {
  GC_CHECK(state_ == PowerState::kBooting, "finish_boot: server not BOOTING");
  state_ = PowerState::kOn;
  draining_ = false;
  meter_update(now);
}

void Server::set_draining(double now, bool draining) {
  GC_CHECK(state_ == PowerState::kOn, "set_draining: server not ON");
  if (draining_ == draining) return;
  draining_ = draining;
  meter_update(now);
}

void Server::begin_shutdown(double now) {
  GC_CHECK(state_ == PowerState::kOn && draining_ && !busy() && queue_.empty(),
           "begin_shutdown: server must be ON, draining and empty");
  state_ = PowerState::kShuttingDown;
  draining_ = false;
  meter_update(now);
}

void Server::finish_shutdown(double now) {
  GC_CHECK(state_ == PowerState::kShuttingDown, "finish_shutdown: not SHUTTING_DOWN");
  state_ = PowerState::kOff;
  meter_update(now);
}

std::vector<Job> Server::fail(double now) {
  GC_CHECK(state_ == PowerState::kBooting || state_ == PowerState::kOn ||
               state_ == PowerState::kShuttingDown,
           "fail: server must be powered to crash");
  // Bank progress up to the crash instant so re-dispatched work is not
  // redone from scratch (crash-consistent checkpointing would be the
  // optimistic model; we keep the remaining-work the job actually had).
  sync_progress(now);
  std::vector<Job> orphans;
  orphans.reserve(queue_.size() + (current_ ? 1 : 0));
  if (current_) {
    orphans.push_back(*current_);
    current_.reset();
  }
  for (const Job& j : queue_) orphans.push_back(j);
  queue_.clear();
  state_ = PowerState::kFailed;
  draining_ = false;
  meter_update(now);
  return orphans;
}

void Server::finish_repair(double now) {
  GC_CHECK(state_ == PowerState::kFailed, "finish_repair: server not FAILED");
  state_ = PowerState::kOff;
  meter_update(now);
}

void Server::sync_progress(double now) {
  if (!current_) {
    progress_anchor_ = now;
    return;
  }
  const double done = (now - progress_anchor_) * effective_rate();
  current_->remaining = std::max(current_->remaining - done, 0.0);
  progress_anchor_ = now;
}

void Server::start_next(double now) {
  GC_CHECK(!current_ && !queue_.empty(), "start_next: nothing to start");
  current_ = queue_.front();
  queue_.pop_front();
  current_->start_service_time = now;
  progress_anchor_ = now;
}

std::optional<double> Server::enqueue(double now, const Job& job) {
  GC_CHECK(serving(), "enqueue: server not serving");
  GC_CHECK(job.remaining > 0.0, "enqueue: job with no work");
  if (current_) {
    queue_.push_back(job);
    return std::nullopt;
  }
  queue_.push_back(job);
  start_next(now);
  meter_update(now);  // idle -> busy
  return completion_eta(now);
}

double Server::completion_eta(double now) const {
  GC_CHECK(current_.has_value(), "completion_eta: no job in service");
  const double done = (now - progress_anchor_) * effective_rate();
  const double remaining = std::max(current_->remaining - done, 0.0);
  return now + remaining / effective_rate();
}

Server::Completion Server::complete_current(double now) {
  GC_CHECK(current_.has_value(), "complete_current: no job in service");
  sync_progress(now);
  // Floating-point wiggle: the departure event fires exactly at the ETA the
  // cluster computed, so remaining must be ~0 here.
  GC_DCHECK(current_->remaining <= 1e-6 * std::max(current_->size, 1.0),
            "complete_current: job finished with work left");
  Completion result{*current_, std::nullopt};
  result.finished.remaining = 0.0;
  current_.reset();
  if (!queue_.empty()) {
    start_next(now);
    result.next_eta = completion_eta(now);
  }
  meter_update(now);  // busy state may have changed
  return result;
}

std::optional<double> Server::set_speed(double now, double new_speed) {
  GC_CHECK(new_speed > 0.0 && new_speed <= 1.0, "set_speed: speed out of (0,1]");
  if (new_speed == speed_) return std::nullopt;
  sync_progress(now);
  speed_ = new_speed;
  meter_update(now);
  if (current_) return completion_eta(now);
  return std::nullopt;
}

}  // namespace gc
