// Simulation output: response-time statistics, SLA accounting, energy and
// an optional sampled timeline for the figure benches.
#pragma once

#include <cstdint>
#include <vector>

#include "cp/lifecycle.h"
#include "obs/counters.h"
#include "sim/cluster.h"
#include "sim/job.h"
#include "stats/accumulators.h"
#include "stats/log_histogram.h"
#include "stats/quantile.h"

namespace gc {

struct TimelinePoint {
  double time = 0.0;
  double arrival_rate = 0.0;  // measured over the last record interval
  unsigned serving = 0;
  unsigned powered = 0;
  unsigned available = 0;     // servers not FAILED
  double speed = 1.0;
  double power_watts = 0.0;     // instantaneous
  double jobs_in_system = 0.0;
  double window_mean_response_s = 0.0;  // mean response over the interval
  double admit_probability = 1.0;  // < 1 while admission control sheds
};

// Response distribution of one control period, produced by
// MetricsCollector::take_period_window() for the time-series recorder.
// mean is exact; p95/p99 come from a per-window LogHistogram, so they carry
// its relative-error bound (and are 0 when the window completed no jobs).
struct PeriodWindowStats {
  std::uint64_t completed = 0;
  double mean_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double violation_fraction = 0.0;  // per-job tail violations in the window
};

class MetricsCollector {
 public:
  explicit MetricsCollector(double t_ref_s);

  // Called for every completed job past warmup.
  void on_job_completed(double now, const Job& job);

  // Rolls the per-window response aggregate (used by the timeline).
  [[nodiscard]] double take_window_mean_response() noexcept;

  // Opts into per-control-period window tracking (a LogHistogram reset on
  // every take_period_window() call).  Off by default — the extra
  // bookkeeping is only paid when a TimeSeriesRecorder is attached.
  void enable_period_window() noexcept { period_window_on_ = true; }
  [[nodiscard]] bool period_window_enabled() const noexcept {
    return period_window_on_;
  }
  // Returns the stats of the window elapsed since the previous call and
  // starts a new window.  All-zero when disabled or the window was empty.
  [[nodiscard]] PeriodWindowStats take_period_window() noexcept;

  // Response distribution with the same coverage as response()/p95(): every
  // job passed to on_job_completed().  Exactly mergeable across
  // replications, unlike the P² estimators behind p95()/p99().  (The
  // simulation loop keeps its own post-warmup histogram for
  // SimResult::response_hist when a warmup is configured.)
  [[nodiscard]] const LogHistogram& response_histogram() const noexcept {
    return response_hist_;
  }

  [[nodiscard]] const MeanVarAccumulator& response() const noexcept { return response_; }
  [[nodiscard]] double p95() const noexcept { return p95_.value(); }
  [[nodiscard]] double p99() const noexcept { return p99_.value(); }
  // Fraction of jobs whose individual response time exceeded t_ref.  (The
  // paper guarantees the *mean*; per-job tail violations are reported as a
  // stricter secondary metric.)
  [[nodiscard]] double job_violation_ratio() const noexcept { return violations_.ratio(); }
  [[nodiscard]] std::uint64_t completed() const noexcept { return response_.count(); }
  [[nodiscard]] double t_ref() const noexcept { return t_ref_; }

 private:
  double t_ref_;
  MeanVarAccumulator response_;
  MeanVarAccumulator window_response_;
  P2Quantile p95_;
  P2Quantile p99_;
  RatioAccumulator violations_;
  LogHistogram response_hist_;
  // Per-control-period window (valid only while period_window_on_).
  bool period_window_on_ = false;
  LogHistogram period_hist_;
  std::uint64_t period_completed_ = 0;
  std::uint64_t period_violations_ = 0;
};

struct SimResult {
  std::uint64_t completed_jobs = 0;
  std::uint64_t dropped_jobs = 0;
  // Graceful degradation / fault accounting (all post-warmup).
  std::uint64_t shed_jobs = 0;          // rejected by admission control
  std::uint64_t failures = 0;           // fail-stop crashes (incl. boot timeouts)
  std::uint64_t repairs = 0;
  std::uint64_t boot_timeouts = 0;
  std::uint64_t jobs_redispatched = 0;  // crash survivors moved to another server
  std::uint64_t jobs_lost = 0;          // destroyed by a crash
  double sim_time_s = 0.0;      // measured horizon (post-warmup)
  double mean_response_s = 0.0;
  double p95_response_s = 0.0;
  double p99_response_s = 0.0;
  double max_response_s = 0.0;
  double job_violation_ratio = 0.0;   // per-job tail violations
  double window_violation_ratio = 0.0;  // fraction of windows with mean > t_ref
  EnergyBreakdown energy;
  double mean_power_w = 0.0;    // energy / sim_time
  std::uint64_t boots = 0;
  std::uint64_t shutdowns = 0;
  double mean_serving = 0.0;    // time-average serving servers
  double mean_speed = 0.0;      // time-average speed (over serving time)
  double mean_jobs_in_system = 0.0;  // time-average L (Little's law: L = λT)
  double mean_available = 0.0;  // time-average servers not FAILED
  // Time-average fraction of the fleet FAILED (0 without fault injection).
  double unavailability = 0.0;
  // shed / offered over the measured interval; offered = admitted + shed.
  double shed_ratio = 0.0;
  // Control ticks at which the active policy reported that the guarantee
  // was unachievable (Provisioner infeasibility), and their fraction.
  std::uint64_t infeasible_ticks = 0;
  double infeasible_ratio = 0.0;
  // Control-plane degradation accounting (whole-run, not warmup-deltaed:
  // these describe the management path, not the workload).  All zero when
  // the channel / actuator / controller faults are disabled.
  std::uint64_t telemetry_dropped = 0;  // fleet samples lost controller-ward
  std::uint64_t commands_dropped = 0;   // commands lost fleet-ward
  std::uint64_t acks_dropped = 0;       // acks lost controller-ward
  std::uint64_t command_retries = 0;    // actuator retransmissions
  std::uint64_t command_duplicates = 0; // re-deliveries deduped at the fleet
  std::uint64_t commands_exhausted = 0; // retry budget spent; reconciled to acked
  std::uint64_t ticks_missed = 0;       // control ticks with the controller down
  std::uint64_t safe_mode_entries = 0;  // watchdog trips into static fallback
  double safe_mode_time_s = 0.0;        // time spent in the fallback
  // Solver memo-cache counters (runner-filled; zero when the run was
  // driven without a Provisioner).  Purely observational: cache hits are
  // bit-identical to recomputation, so these never affect other outputs.
  std::uint64_t solver_cache_hits = 0;
  std::uint64_t solver_cache_misses = 0;
  double solver_cache_hit_rate = 0.0;
  // -- reliability readout (appended; core/reliability.h) --------------------
  // Whole-run on/off transition count per server index (boots + shutdowns),
  // the raw wear signal — populated on every run, reliability on or off.
  std::vector<std::uint32_t> server_cycles;
  // Lifetime fraction consumed per the wear model: fleet mean and the
  // worst single server.  0 unless SimulationOptions::reliability sets a
  // cycles-to-failure budget.
  double wear_fraction_mean = 0.0;
  double wear_fraction_max = 0.0;
  // Mean over long-tick plans of the controller-reported closed-form fleet
  // availability / solved spare count; 0 when no policy reported them
  // (only dcp-reliability does).
  double availability_estimate = 0.0;
  double mean_solved_spares = 0.0;
  // Observability snapshot (obs/counters.h): every named counter/gauge the
  // run registered — whole-run event counts by type, lifecycle/fault/shed
  // totals, queue and solver-cache statistics.  Dump with
  // counters.to_json().  Unlike the post-warmup deltas above, counters
  // cover the entire run including warmup.
  CountersSnapshot counters;
  // Post-warmup response-time distribution as an exactly-mergeable
  // LogHistogram: replication harnesses (bench/tab4) pool these with
  // merge() to get whole-experiment percentiles, which the P²-derived
  // p95_response_s/p99_response_s scalars cannot provide.  Purely
  // observational — excluded from the determinism checksums.
  LogHistogram response_hist;
  // Control-loop actuation latency distributions from the lifecycle
  // tracker (cp/lifecycle.h): decision→ack, decision→apply, end-to-end,
  // and the telemetry age at each issuing decision.  Same contract as
  // response_hist: observational, checksum-excluded, exactly mergeable.
  LogHistogram lifecycle_ack_hist;
  LogHistogram lifecycle_apply_hist;
  LogHistogram lifecycle_e2e_hist;
  LogHistogram lifecycle_obs_age_hist;
  // Every command's reconstructed timeline (issued/retransmits/acked/
  // applied/terminal state) — the `<prefix>.lifecycle.jsonl` payload that
  // `gcinspect --lifecycle` renders.
  std::vector<CommandLifecycle> command_lifecycles;
  std::vector<TimelinePoint> timeline;

  // True when the mean-response-time guarantee held over the whole run.
  [[nodiscard]] bool sla_met(double t_ref_s) const noexcept {
    return mean_response_s <= t_ref_s;
  }
};

}  // namespace gc
