// Fault injection for the discrete-event simulator.
//
// Two fault sources, both driving the server lifecycle extensions in
// sim/server.h ({BOOTING, ON, SHUTTING_DOWN} -> FAILED -> OFF):
//
//   * a background fail-stop process: per-server exponential time-to-failure
//     (mean `mtbf_s`) while the server is powered, with exponential repair
//     times (mean `mttr_s`).  A failure that lands on an OFF or already
//     FAILED server is a no-op (machines that are not running do not
//     crash) and the failure clock simply restarts;
//   * boot hangs: each boot command independently hangs with probability
//     `boot_hang_prob`; a hung boot never completes and is declared failed
//     after `boot_timeout_s` (the firmware/watchdog timeout), then repaired
//     like any other crash.
//
// Scripted faults make tests reproducible: each entry crashes a specific
// server at a specific time, with an optional fixed repair delay
// (defaulting to "never repaired").
//
// Determinism: every per-server failure clock draws from its own RNG
// stream derived via the SplitMix64 scheme in stats/rng.h (Rng::split), so
// fault sequences are independent of event interleaving and bitwise
// reproducible across thread counts (replications parallelize above the
// simulator; see exp/runner.h).
//
// The injector owns fault *scheduling*; the Cluster owns the state
// machine.  The simulation loop routes kServerFail / kServerRepair /
// kBootTimeout events back into the injector, which calls into the
// cluster and schedules the follow-up event.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "sim/event_queue.h"
#include "stats/rng.h"

namespace gc {

class Cluster;

struct ScriptedFault {
  double time = 0.0;          // crash instant (simulation seconds)
  std::uint32_t server = 0;   // victim
  // Seconds from the crash until the repair completes; the default
  // (infinity) means the server stays down for the rest of the run.
  double repair_after_s = std::numeric_limits<double>::infinity();
};

struct FaultOptions {
  // Mean time between failures of one powered server; 0 disables the
  // background fault process.
  double mtbf_s = 0.0;
  // Mean time to repair a crashed server (exponential).
  double mttr_s = 600.0;
  // Probability that any individual boot command hangs instead of
  // completing.
  double boot_hang_prob = 0.0;
  // How long a hung boot stays BOOTING before it is declared failed;
  // 0 means three boot delays (a watchdog would not fire earlier than the
  // expected boot time).
  double boot_timeout_s = 0.0;
  // Reproducible crash schedule, in addition to the processes above.
  std::vector<ScriptedFault> script;
  // RNG seed; 0 derives one from the cluster's dispatch seed so that
  // replications (which re-seed the RunSpec) get independent fault
  // histories automatically.
  std::uint64_t seed = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return mtbf_s > 0.0 || boot_hang_prob > 0.0 || !script.empty();
  }
  // Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

class FaultInjector {
 public:
  FaultInjector(const FaultOptions& options, unsigned num_servers, std::uint64_t seed);

  // Schedules the initial background failures and every scripted fault.
  // Call once, before the first event is popped.
  void arm(EventQueue& queue);

  // kServerFail fired: crash the server (if it is powered) and schedule
  // the repair / the next failure.  Returns true if the server crashed.
  bool on_fail_event(double now, std::uint32_t server, Cluster& cluster,
                     EventQueue& queue);

  // kBootTimeout fired: the boot hung; declare the server failed and
  // schedule its repair.
  void on_boot_timeout(double now, std::uint32_t server, Cluster& cluster,
                       EventQueue& queue);

  // kServerRepair fired: return the server to OFF and restart its failure
  // clock.
  void on_repair_event(double now, std::uint32_t server, Cluster& cluster,
                       EventQueue& queue);

  // Called by the Cluster for every boot command: nullopt = the boot
  // proceeds normally; a value = the boot hangs and the server must be
  // declared failed after that many seconds.
  [[nodiscard]] std::optional<double> sample_boot_hang(double boot_delay_s);

 private:
  [[nodiscard]] double sample_ttf(std::uint32_t server);
  [[nodiscard]] double sample_ttr(std::uint32_t server);

  FaultOptions options_;
  unsigned num_servers_;
  // Stream 0 of `rng_` drives boot-hang coin flips; each server's failure
  // clock is an independent split so outcomes do not depend on the order
  // in which other servers' events fire.
  Rng boot_rng_;
  std::vector<Rng> server_rngs_;
  // Per-server scripted entries in firing order (matched FIFO as their
  // kServerFail events fire); background failures track a pending flag so
  // exactly one background event chain exists per server.
  std::vector<std::vector<double>> scripted_repairs_;
  std::vector<std::size_t> scripted_cursor_;
  std::vector<std::vector<double>> scripted_times_;
  std::vector<bool> background_pending_;
};

}  // namespace gc
