// One simulated server: a frequency-scalable FCFS queue with a VOVF power
// state machine.
//
// State machine (PowerState plus a `draining` flag while ON):
//
//   OFF --start_boot--> BOOTING --finish_boot--> ON
//   ON(draining, idle) --begin_shutdown--> SHUTTING_DOWN --finish--> OFF
//   {BOOTING, ON, SHUTTING_DOWN} --fail--> FAILED --finish_repair--> OFF
//
// `fail` is a fail-stop crash (fault injection, sim/fault_injector.h): any
// in-flight and queued jobs are returned to the caller (the Cluster
// re-dispatches or drops them) and the server draws off power until the
// repair completes.
//
// Work accounting: a job of size w runs at `speed` work-seconds per second,
// so it completes after remaining/speed seconds *at constant speed*.  When
// the speed changes mid-service, `sync_progress` first banks the work done
// at the old speed; the cluster then reschedules the departure event from
// the new `completion_eta`.
//
// The server never touches the event queue itself — the Cluster owns event
// scheduling — but it remembers the EventId of its pending departure so the
// cluster can cancel/reschedule it.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "power/energy_meter.h"
#include "sim/event_queue.h"
#include "sim/job.h"

namespace gc {

class Server {
 public:
  // Starts life OFF (or ON at `initial_speed` if `initially_on`).
  // `rate_scale` models heterogeneous hardware: this server executes
  // rate_scale work-seconds per wall second at s = 1 (1.0 = the reference
  // class job sizes are expressed in).
  Server(std::uint32_t index, const PowerModel* power, double initial_speed,
         bool initially_on, double start_time, double rate_scale = 1.0);

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] PowerState state() const noexcept { return state_; }
  [[nodiscard]] bool draining() const noexcept { return draining_; }
  // ON and accepting new work.
  [[nodiscard]] bool serving() const noexcept {
    return state_ == PowerState::kOn && !draining_;
  }
  [[nodiscard]] bool failed() const noexcept { return state_ == PowerState::kFailed; }
  [[nodiscard]] double speed() const noexcept { return speed_; }
  [[nodiscard]] double rate_scale() const noexcept { return rate_scale_; }
  // Work-seconds executed per wall second right now.
  [[nodiscard]] double effective_rate() const noexcept { return speed_ * rate_scale_; }
  [[nodiscard]] bool busy() const noexcept { return current_.has_value(); }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return queue_.size() + (current_ ? 1 : 0);
  }
  // Remaining work (at s = 1) across the in-flight job and the queue,
  // with in-flight progress synced to `now`.
  [[nodiscard]] double outstanding_work(double now) const;

  // -- power state transitions (driven by the Cluster) ---------------------
  void start_boot(double now);
  void finish_boot(double now);
  void set_draining(double now, bool draining);
  // Allowed only when ON, draining and empty.
  void begin_shutdown(double now);
  void finish_shutdown(double now);

  // Fail-stop crash.  Allowed from any powered state (BOOTING, ON —
  // draining or not — and SHUTTING_DOWN); returns the in-flight job and
  // queue contents (in service order) so the cluster can fail them over.
  [[nodiscard]] std::vector<Job> fail(double now);
  // FAILED -> OFF; the server can be booted again afterwards.
  void finish_repair(double now);

  // -- data plane -----------------------------------------------------------
  // Accepts a job (requires serving()).  Returns the completion ETA if this
  // job went straight into service (i.e. a departure must be scheduled).
  [[nodiscard]] std::optional<double> enqueue(double now, const Job& job);

  // Completes the in-flight job (requires busy()); returns the finished job
  // and, if another job started service, its completion ETA.
  struct Completion {
    Job finished;
    std::optional<double> next_eta;
  };
  [[nodiscard]] Completion complete_current(double now);

  // Changes speed; returns the new ETA of the in-flight job if any (the
  // cluster must reschedule the departure event).
  [[nodiscard]] std::optional<double> set_speed(double now, double new_speed);

  // ETA of the in-flight job at the current speed.
  [[nodiscard]] double completion_eta(double now) const;

  // -- energy ---------------------------------------------------------------
  void flush_energy(double now) { meter_.flush(now); }
  [[nodiscard]] const EnergyMeter& meter() const noexcept { return meter_; }
  [[nodiscard]] double instantaneous_power() const noexcept {
    return meter_.instantaneous_power();
  }

  // Pending event bookkeeping (owned by the Cluster): the in-flight
  // departure, and the boot/shutdown/boot-timeout completion, so a crash
  // can cancel them.
  EventId pending_departure = kInvalidEventId;
  EventId pending_transition = kInvalidEventId;

 private:
  // Banks work done since `progress_anchor_` at the current speed.
  void sync_progress(double now);
  void start_next(double now);
  void meter_update(double now);

  std::uint32_t index_;
  const PowerModel* power_;  // non-owning
  PowerState state_;
  bool draining_ = false;
  double speed_;
  double rate_scale_;
  std::optional<Job> current_;
  std::deque<Job> queue_;
  double progress_anchor_ = 0.0;  // time at which current_->remaining was exact
  EnergyMeter meter_;
};

}  // namespace gc
