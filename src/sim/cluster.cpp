#include "sim/cluster.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/fault_injector.h"
#include "util/assert.h"

namespace gc {

Cluster::Cluster(const ClusterOptions& options, EventQueue* queue)
    : queue_(queue), transition_(options.transition),
      dispatcher_(options.dispatch, Rng(options.dispatch_seed, /*stream=*/3)),
      group_rng_(options.dispatch_seed, /*stream=*/5), speed_(options.initial_speed) {
  GC_CHECK(queue != nullptr, "Cluster: null event queue");

  // Normalize to group form: the homogeneous fields describe one group.
  std::vector<ServerGroupSpec> groups = options.groups;
  if (groups.empty()) {
    if (options.num_servers == 0) {
      throw std::invalid_argument("ClusterOptions: num_servers == 0");
    }
    if (options.initial_active == 0 || options.initial_active > options.num_servers) {
      throw std::invalid_argument(
          "ClusterOptions: need 1 <= initial_active <= num_servers");
    }
    ServerGroupSpec spec;
    spec.count = options.num_servers;
    spec.power = options.power;
    spec.rate_scale = 1.0;
    spec.initial_active = options.initial_active;
    spec.initial_speed = options.initial_speed;
    groups.push_back(spec);
  }

  std::size_t total = 0;
  for (const ServerGroupSpec& g : groups) {
    if (g.count == 0) throw std::invalid_argument("ServerGroupSpec: empty group");
    if (g.initial_active > g.count) {
      throw std::invalid_argument("ServerGroupSpec: initial_active > count");
    }
    if (!(g.initial_speed > 0.0 && g.initial_speed <= 1.0)) {
      throw std::invalid_argument("ServerGroupSpec: initial_speed out of (0,1]");
    }
    if (!(g.rate_scale > 0.0)) {
      throw std::invalid_argument("ServerGroupSpec: rate_scale must be positive");
    }
    total += g.count;
  }
  bool any_active = false;
  for (const ServerGroupSpec& g : groups) any_active |= g.initial_active > 0;
  if (!any_active) {
    throw std::invalid_argument("ClusterOptions: at least one server must start ON");
  }

  power_models_.reserve(groups.size());
  group_sizes_.reserve(groups.size());
  group_speeds_.reserve(groups.size());
  server_group_.reserve(total);
  servers_.reserve(total);
  group_booting_.assign(groups.size(), 0);
  std::uint32_t index = 0;
  std::uint32_t group_id = 0;
  for (const ServerGroupSpec& g : groups) {
    power_models_.emplace_back(g.power);  // reserved: addresses are stable
    group_sizes_.push_back(g.count);
    group_speeds_.push_back(g.initial_speed);
    for (std::uint32_t i = 0; i < g.count; ++i, ++index) {
      server_group_.push_back(group_id);
      servers_.emplace_back(index, &power_models_.back(), g.initial_speed,
                            /*initially_on=*/i < g.initial_active,
                            /*start_time=*/0.0, g.rate_scale);
    }
    ++group_id;
  }

  server_boots_.assign(total, 0);
  server_shutdowns_.assign(total, 0);

  // Seed the incremental accounting from the initial states (ON or OFF).
  serving_index_.reserve(total);
  for (const Server& s : servers_) {
    if (s.serving()) serving_index_.push_back(s.index());
    if (s.state() != PowerState::kOff) ++powered_total_;
  }
}

void Cluster::serving_insert(std::uint32_t index) {
  const auto it =
      std::lower_bound(serving_index_.begin(), serving_index_.end(), index);
  GC_DCHECK(it == serving_index_.end() || *it != index,
            "serving_insert: index already present");
  serving_index_.insert(it, index);
}

void Cluster::serving_erase(std::uint32_t index) {
  const auto it =
      std::lower_bound(serving_index_.begin(), serving_index_.end(), index);
  GC_CHECK(it != serving_index_.end() && *it == index,
           "serving_erase: index not in serving set");
  serving_index_.erase(it);
}

std::pair<std::uint32_t, std::uint32_t> Cluster::group_range(std::size_t group) const {
  GC_CHECK(group < group_sizes_.size(), "Cluster: group index out of range");
  std::uint32_t begin = 0;
  for (std::size_t g = 0; g < group; ++g) begin += group_sizes_[g];
  return {begin, begin + group_sizes_[group]};
}

unsigned Cluster::group_size(std::size_t group) const {
  GC_CHECK(group < group_sizes_.size(), "Cluster: group index out of range");
  return group_sizes_[group];
}

std::uint32_t Cluster::group_of(std::uint32_t server) const {
  GC_CHECK(server < server_group_.size(), "Cluster: server index out of range");
  return server_group_[server];
}

unsigned Cluster::group_serving_count(std::size_t group) const {
  const auto [begin, end] = group_range(group);
  // The serving index is sorted and group ranges are contiguous, so the
  // group's serving set is one subrange of it.
  const auto lo = std::lower_bound(serving_index_.begin(), serving_index_.end(), begin);
  const auto hi = std::lower_bound(lo, serving_index_.end(), end);
  return static_cast<unsigned>(hi - lo);
}

void Cluster::set_group_speed(double now, std::size_t group, double speed) {
  GC_CHECK(speed > 0.0 && speed <= 1.0, "set_group_speed: speed out of (0,1]");
  const auto [begin, end] = group_range(group);
  group_speeds_[group] = speed;
  for (std::uint32_t i = begin; i < end; ++i) {
    const auto eta = servers_[i].set_speed(now, speed);
    if (eta) reschedule_departure(now, servers_[i], *eta);
  }
}

bool Cluster::route_job_to_group(double now, std::size_t group, const Job& job) {
  const auto [begin, end] = group_range(group);
  // Random pick among the group's serving servers (matches the per-class
  // random-split M/M/1 model the hetero solver assumes).  The group's
  // serving set is a contiguous subrange of the sorted serving index, so
  // the k-th serving server is an O(log S) lookup instead of a range scan.
  const auto lo = std::lower_bound(serving_index_.begin(), serving_index_.end(), begin);
  const auto hi = std::lower_bound(lo, serving_index_.end(), end);
  const auto serving_count = static_cast<std::uint64_t>(hi - lo);
  if (serving_count == 0) {
    ++jobs_dropped_;
    return false;
  }
  const std::uint64_t pick = group_rng_.uniform_below(serving_count);
  Server& chosen = servers_[*(lo + static_cast<std::ptrdiff_t>(pick))];
  const auto eta = chosen.enqueue(now, job);
  if (eta) reschedule_departure(now, chosen, *eta);
  ++jobs_in_system_;
  return true;
}

const Server& Cluster::server(std::uint32_t index) const {
  GC_CHECK(index < servers_.size(), "Cluster: server index out of range");
  return servers_[index];
}

void Cluster::reschedule_departure(double now, Server& server, double eta) {
  if (server.pending_departure != kInvalidEventId) {
    queue_->cancel(server.pending_departure);
  }
  server.pending_departure = queue_->schedule(eta, EventType::kDeparture, server.index());
  (void)now;
}

void Cluster::set_group_active_target(double now, std::size_t group, unsigned target) {
  const auto [begin, end] = group_range(group);
  const unsigned committed = group_serving_count(group) + group_booting_[group];
  reconcile_range(now, begin, end, committed, std::min(target, group_sizes_[group]));
}

void Cluster::set_active_target(double now, unsigned target) {
  target = std::clamp(target, 1u, num_servers());
  reconcile_range(now, 0, static_cast<std::uint32_t>(servers_.size()),
                  committed_count(), target);
}

void Cluster::reconcile_range(double now, std::uint32_t begin, std::uint32_t end,
                              unsigned committed, unsigned target) {
  if (target > committed) {
    // 1) Revive draining servers — they are still hot.
    for (std::uint32_t i = begin; i < end && committed < target; ++i) {
      Server& s = servers_[i];
      if (s.state() == PowerState::kOn && s.draining()) {
        apply_transition(s, [&] { s.set_draining(now, false); });
        ++committed;
      }
    }
    // 2) Boot OFF servers.
    for (std::uint32_t i = begin; i < end && committed < target; ++i) {
      Server& s = servers_[i];
      if (s.state() == PowerState::kOff) {
        apply_transition(s, [&] { s.start_boot(now); });
        trace_async_begin(trace_, now, "lifecycle", "boot", s.index());
        // With fault injection, this individual boot may hang: instead of a
        // completion it gets a watchdog timeout that fails the server.
        const std::optional<double> hang =
            faults_ ? faults_->sample_boot_hang(transition_.boot_delay_s)
                    : std::nullopt;
        if (hang) {
          s.pending_transition =
              queue_->schedule(now + *hang, EventType::kBootTimeout, s.index());
        } else {
          s.pending_transition = queue_->schedule(
              now + transition_.boot_delay_s, EventType::kBootComplete, s.index());
        }
        ++boots_started_;
        ++server_boots_[i];
        ++committed;
      }
    }
    // If we ran out of OFF servers the remainder are SHUTTING_DOWN; they
    // will be re-booted by a later decision once OFF.  Nothing to do.
    return;
  }

  if (target < committed) {
    unsigned excess = committed - target;
    // Drain serving servers with the least outstanding work first, but
    // never below one serving server cluster-wide (a reduction to zero in
    // one *group* of a hetero cluster is allowed when target == 0 there,
    // as long as another group still serves).  Candidates come off the
    // serving index: same ascending order a full range scan would visit,
    // without touching non-serving servers.
    while (excess > 0) {
      // Never drain the last serving server: booting capacity cannot take
      // traffic yet, and a cluster with zero serving servers drops jobs.
      if (serving_count() <= 1) break;
      const auto lo =
          std::lower_bound(serving_index_.begin(), serving_index_.end(), begin);
      const auto hi = std::lower_bound(lo, serving_index_.end(), end);
      Server* victim = nullptr;
      double least_work = std::numeric_limits<double>::infinity();
      for (auto it = lo; it != hi; ++it) {
        Server& s = servers_[*it];
        const double work = s.outstanding_work(now);
        if (work < least_work) {
          least_work = work;
          victim = &s;
        }
      }
      if (victim == nullptr) break;  // only booting servers left; let them land
      apply_transition(*victim, [&] { victim->set_draining(now, true); });
      maybe_begin_shutdown(now, *victim);
      --excess;
    }
  }
}

void Cluster::maybe_begin_shutdown(double now, Server& server) {
  if (server.state() == PowerState::kOn && server.draining() && !server.busy() &&
      server.queue_length() == 0) {
    apply_transition(server, [&] { server.begin_shutdown(now); });
    trace_async_begin(trace_, now, "lifecycle", "shutdown", server.index());
    server.pending_transition = queue_->schedule(
        now + transition_.shutdown_delay_s, EventType::kShutdownComplete,
        server.index());
    ++shutdowns_started_;
    ++server_shutdowns_[server.index()];
  }
}

void Cluster::set_all_speeds(double now, double speed) {
  GC_CHECK(speed > 0.0 && speed <= 1.0, "set_all_speeds: speed out of (0,1]");
  speed_ = speed;
  for (double& s : group_speeds_) s = speed;
  for (Server& s : servers_) {
    const auto eta = s.set_speed(now, speed);
    if (eta) reschedule_departure(now, s, *eta);
  }
}

bool Cluster::route_job(double now, const Job& job) {
  const long target = dispatcher_.pick(now, servers_, serving_index_);
  if (target < 0) {
    ++jobs_dropped_;
    return false;
  }
  Server& s = servers_[static_cast<std::size_t>(target)];
  const auto eta = s.enqueue(now, job);
  if (eta) reschedule_departure(now, s, *eta);
  ++jobs_in_system_;
  return true;
}

Job Cluster::handle_departure(double now, std::uint32_t server) {
  GC_CHECK(server < servers_.size(), "departure for unknown server");
  Server& s = servers_[server];
  s.pending_departure = kInvalidEventId;
  const Server::Completion completion = s.complete_current(now);
  if (completion.next_eta) {
    reschedule_departure(now, s, *completion.next_eta);
  } else {
    maybe_begin_shutdown(now, s);
  }
  GC_CHECK(jobs_in_system_ > 0, "departure with no jobs in system");
  --jobs_in_system_;
  return completion.finished;
}

void Cluster::handle_boot_complete(double now, std::uint32_t server) {
  GC_CHECK(server < servers_.size(), "boot completion for unknown server");
  Server& s = servers_[server];
  s.pending_transition = kInvalidEventId;
  apply_transition(s, [&] { s.finish_boot(now); });
  trace_async_end(trace_, now, "lifecycle", "boot", s.index());
  // Booted servers adopt their group's current speed.
  const auto eta = s.set_speed(now, group_speeds_[server_group_[server]]);
  GC_CHECK(!eta.has_value(), "freshly booted server cannot have work");
}

void Cluster::handle_shutdown_complete(double now, std::uint32_t server) {
  GC_CHECK(server < servers_.size(), "shutdown completion for unknown server");
  Server& s = servers_[server];
  s.pending_transition = kInvalidEventId;
  apply_transition(s, [&] { s.finish_shutdown(now); });
  trace_async_end(trace_, now, "lifecycle", "shutdown", s.index());
}

bool Cluster::fail_server(double now, std::uint32_t server) {
  GC_CHECK(server < servers_.size(), "fail_server: unknown server");
  Server& s = servers_[server];
  if (s.state() == PowerState::kOff || s.failed()) return false;
  // A crashed server's scheduled future is void: its in-flight departure
  // and its boot/shutdown completion must not fire.
  if (s.pending_departure != kInvalidEventId) {
    queue_->cancel(s.pending_departure);
    s.pending_departure = kInvalidEventId;
  }
  if (s.pending_transition != kInvalidEventId) {
    queue_->cancel(s.pending_transition);
    s.pending_transition = kInvalidEventId;
  }
  // Close the interrupted transition's lane before opening the failed one.
  if (s.state() == PowerState::kBooting) {
    trace_async_end(trace_, now, "lifecycle", "boot", s.index());
  } else if (s.state() == PowerState::kShuttingDown) {
    trace_async_end(trace_, now, "lifecycle", "shutdown", s.index());
  }
  std::vector<Job> orphans;
  apply_transition(s, [&] { orphans = s.fail(now); });
  ++failures_;
  trace_async_begin(trace_, now, "lifecycle", "failed", s.index());
  // Fail the orphans over to surviving serving servers; with none left the
  // jobs are lost (distinct from admission-time drops).
  for (Job& job : orphans) {
    // A job can be caught exactly at its completion instant (crash and
    // departure tie on time); give it a vanishing sliver of work so the
    // enqueue invariant (remaining > 0) holds and it finishes immediately
    // on the failover server.
    job.remaining = std::max(job.remaining, 1e-12);
    const long target = dispatcher_.pick(now, servers_, serving_index_);
    if (target < 0) {
      ++jobs_lost_;
      GC_CHECK(jobs_in_system_ > 0, "fail_server: losing an untracked job");
      --jobs_in_system_;
      continue;
    }
    Server& survivor = servers_[static_cast<std::size_t>(target)];
    const auto eta = survivor.enqueue(now, job);
    if (eta) reschedule_departure(now, survivor, *eta);
    ++jobs_redispatched_;  // still counted in jobs_in_system_
  }
  return true;
}

void Cluster::timeout_boot(double now, std::uint32_t server) {
  GC_CHECK(server < servers_.size(), "timeout_boot: unknown server");
  Server& s = servers_[server];
  GC_CHECK(s.state() == PowerState::kBooting, "timeout_boot: server not BOOTING");
  // The timeout event that brought us here was the pending transition.
  s.pending_transition = kInvalidEventId;
  trace_async_end(trace_, now, "lifecycle", "boot", s.index());
  std::vector<Job> orphans;
  apply_transition(s, [&] { orphans = s.fail(now); });
  GC_CHECK(orphans.empty(), "timeout_boot: booting server held jobs");
  ++failures_;
  ++boot_timeouts_;
  trace_async_begin(trace_, now, "lifecycle", "failed", s.index());
}

void Cluster::repair_server(double now, std::uint32_t server) {
  GC_CHECK(server < servers_.size(), "repair_server: unknown server");
  Server& s = servers_[server];
  apply_transition(s, [&] { s.finish_repair(now); });
  ++repairs_;
  trace_async_end(trace_, now, "lifecycle", "failed", s.index());
}

void Cluster::flush_energy(double now) {
  for (Server& s : servers_) s.flush_energy(now);
}

EnergyBreakdown Cluster::energy() const {
  EnergyBreakdown sum;
  for (const Server& s : servers_) {
    sum.busy_j += s.meter().joules_busy();
    sum.idle_j += s.meter().joules_idle();
    sum.transition_j += s.meter().joules_transition();
    sum.off_j += s.meter().joules_off();
  }
  return sum;
}

double Cluster::instantaneous_power() const {
  double watts = 0.0;
  for (const Server& s : servers_) watts += s.instantaneous_power();
  return watts;
}

}  // namespace gc
