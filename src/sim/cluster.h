// The simulated cluster: N servers, a dispatcher, and the VOVF transition
// choreography.
//
// The cluster owns all event *scheduling* for its servers (departures,
// boot/shutdown completions) on an EventQueue provided by the simulation
// loop, which in turn routes those events back into the cluster's handlers.
//
// Control plane semantics (see DESIGN.md §1.2):
//   * set_active_target(m): reconciles towards m servers that are either
//     serving or booting.  To grow, draining servers are revived first
//     (free), then OFF servers are booted (boot_delay, full power, no
//     service).  To shrink, serving servers with the least outstanding
//     work are put into draining; a draining server shuts down as soon as
//     its queue empties (possibly immediately).
//   * set_all_speeds(s): applied to every powered server; in-flight work is
//     re-timed (departure events rescheduled).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "power/energy_meter.h"
#include "power/power_model.h"
#include "sim/dispatcher.h"
#include "sim/event_queue.h"
#include "sim/job.h"
#include "sim/server.h"

namespace gc {

class FaultInjector;

// A homogeneous slice of a (possibly heterogeneous) cluster.
struct ServerGroupSpec {
  unsigned count = 0;
  PowerModelParams power = {};
  double rate_scale = 1.0;       // work-seconds per wall second at s = 1
  unsigned initial_active = 0;   // servers of this group ON at t = 0
  double initial_speed = 1.0;
};

struct ClusterOptions {
  unsigned num_servers = 64;
  PowerModelParams power = {};
  TransitionModel transition = {};
  DispatchPolicy dispatch = DispatchPolicy::kJoinShortestQueue;
  unsigned initial_active = 64;  // servers ON at t = 0
  double initial_speed = 1.0;
  std::uint64_t dispatch_seed = 42;
  // Heterogeneous mode: when non-empty, `groups` supersedes num_servers /
  // power / initial_active / initial_speed (the homogeneous fields above
  // describe group 0 of a single-group cluster).
  std::vector<ServerGroupSpec> groups;
};

struct EnergyBreakdown {
  double busy_j = 0.0;
  double idle_j = 0.0;
  double transition_j = 0.0;
  double off_j = 0.0;
  [[nodiscard]] double total_j() const noexcept {
    return busy_j + idle_j + transition_j + off_j;
  }
};

class Cluster {
 public:
  // `queue` must outlive the cluster.
  Cluster(const ClusterOptions& options, EventQueue* queue);

  // -- control plane --------------------------------------------------------
  void set_active_target(double now, unsigned target);
  void set_all_speeds(double now, double speed);

  // Group-level control (heterogeneous clusters).  Groups are indexed in
  // ClusterOptions::groups order; a homogeneous cluster is group 0.
  [[nodiscard]] std::size_t num_groups() const noexcept { return group_sizes_.size(); }
  [[nodiscard]] unsigned group_size(std::size_t group) const;
  [[nodiscard]] unsigned group_serving_count(std::size_t group) const;
  [[nodiscard]] std::uint32_t group_of(std::uint32_t server) const;
  void set_group_active_target(double now, std::size_t group, unsigned target);
  void set_group_speed(double now, std::size_t group, double speed);
  // Routes within one group (serving servers only, random pick); used by
  // weighted hetero dispatchers.  Returns false if the group has no
  // serving server (the job is dropped).
  bool route_job_to_group(double now, std::size_t group, const Job& job);

  // Fleet counts are maintained incrementally on every lifecycle
  // transition (serve/boot/fail/shutdown), so all of these are O(1) —
  // they are read on every event by the simulation loop.
  [[nodiscard]] unsigned serving_count() const noexcept {
    return static_cast<unsigned>(serving_index_.size());
  }
  // Serving + booting: the capacity already committed.
  [[nodiscard]] unsigned committed_count() const noexcept {
    return serving_count() + booting_total_;
  }
  // Anything not OFF (including FAILED: a crashed machine is not off).
  [[nodiscard]] unsigned powered_count() const noexcept { return powered_total_; }
  // Anything not FAILED: the fleet a failure-aware controller can draw on.
  [[nodiscard]] unsigned available_count() const noexcept {
    return num_servers() - failed_total_;
  }
  [[nodiscard]] unsigned failed_count() const noexcept { return failed_total_; }
  // The serving-set index: indices of serving() servers, ascending.  The
  // dispatcher picks from this instead of scanning all M servers.
  [[nodiscard]] std::span<const std::uint32_t> serving_index() const noexcept {
    return serving_index_;
  }
  [[nodiscard]] unsigned num_servers() const noexcept {
    return static_cast<unsigned>(servers_.size());
  }
  [[nodiscard]] double current_speed() const noexcept { return speed_; }

  // -- data plane (called by the simulation loop) ---------------------------
  // Routes an arrival; returns false if dropped (no serving server — only
  // possible if the controller drove the cluster to zero, which
  // set_active_target prevents by keeping >= 1 serving/booting).
  bool route_job(double now, const Job& job);

  // Departure event for `server`: returns the finished job.
  [[nodiscard]] Job handle_departure(double now, std::uint32_t server);
  void handle_boot_complete(double now, std::uint32_t server);
  void handle_shutdown_complete(double now, std::uint32_t server);

  // -- fault plane (driven by sim/fault_injector.h) -------------------------
  // When set (before any boot command), every boot consults the injector
  // for a sampled hang: hung boots get a kBootTimeout event instead of
  // kBootComplete.  `injector` must outlive the cluster.
  void set_fault_injector(FaultInjector* injector) noexcept { faults_ = injector; }

  // -- observability --------------------------------------------------------
  // Optional trace sink (obs/trace.h); per-server boot/shutdown/failed
  // lifecycle phases are recorded as async spans keyed by server index.
  // Null (the default) disables recording.  `trace` must outlive the
  // cluster.  Strictly observational.
  void set_trace(TraceCollector* trace) noexcept { trace_ = trace; }

  // Fail-stop crash of a powered server.  Cancels its pending events,
  // re-dispatches the orphaned jobs to surviving serving servers (jobs
  // that cannot be placed are lost and counted).  Returns false — a no-op —
  // if the server is OFF or already FAILED.
  bool fail_server(double now, std::uint32_t server);
  // A hung boot hit its watchdog timeout: the BOOTING server fails.
  void timeout_boot(double now, std::uint32_t server);
  // FAILED -> OFF; a later reconcile may boot it again.
  void repair_server(double now, std::uint32_t server);

  // -- accounting -----------------------------------------------------------
  void flush_energy(double now);
  [[nodiscard]] EnergyBreakdown energy() const;
  [[nodiscard]] double instantaneous_power() const;
  [[nodiscard]] std::size_t jobs_in_system() const noexcept { return jobs_in_system_; }
  [[nodiscard]] std::uint64_t jobs_dropped() const noexcept { return jobs_dropped_; }
  [[nodiscard]] std::uint64_t boots_started() const noexcept { return boots_started_; }
  [[nodiscard]] std::uint64_t shutdowns_started() const noexcept {
    return shutdowns_started_;
  }
  // Per-server transition counts (index = server index), the raw signal
  // behind the wear-out model (core/reliability.h): each boot or shutdown
  // is half an on/off cycle charged against that server's lifetime budget.
  [[nodiscard]] std::span<const std::uint32_t> server_boots() const noexcept {
    return server_boots_;
  }
  [[nodiscard]] std::span<const std::uint32_t> server_shutdowns() const noexcept {
    return server_shutdowns_;
  }
  // Server class of a given index (heterogeneous fleets; 0 for uniform).
  [[nodiscard]] std::uint32_t server_class_of(unsigned server) const noexcept {
    return server_group_[server];
  }
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }
  [[nodiscard]] std::uint64_t repairs() const noexcept { return repairs_; }
  [[nodiscard]] std::uint64_t boot_timeouts() const noexcept { return boot_timeouts_; }
  // Jobs that survived a crash by moving to another serving server.
  [[nodiscard]] std::uint64_t jobs_redispatched() const noexcept {
    return jobs_redispatched_;
  }
  // Jobs destroyed by a crash (no surviving server could take them).
  [[nodiscard]] std::uint64_t jobs_lost() const noexcept { return jobs_lost_; }

  [[nodiscard]] const Server& server(std::uint32_t index) const;

 private:
  void reschedule_departure(double now, Server& server, double eta);
  void maybe_begin_shutdown(double now, Server& server);
  // Reconciles active servers towards `target` within [begin, end);
  // `committed` is the serving+booting count of that range.
  void reconcile_range(double now, std::uint32_t begin, std::uint32_t end,
                       unsigned committed, unsigned target);
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> group_range(
      std::size_t group) const;

  // -- incremental fleet accounting ----------------------------------------
  // Every server lifecycle mutation goes through apply_transition so the
  // serving-set index and the per-state counters stay exact.  The invariant
  // (checked by tests/test_cluster_property.cpp): counters and index always
  // equal what a full scan of servers_ would produce.
  void serving_insert(std::uint32_t index);
  void serving_erase(std::uint32_t index);
  template <typename Fn>
  void apply_transition(Server& server, Fn&& mutate) {
    const PowerState before = server.state();
    const bool was_serving = server.serving();
    mutate();
    const PowerState after = server.state();
    const std::uint32_t group = server_group_[server.index()];
    if (before != after) {
      if ((before != PowerState::kOff) != (after != PowerState::kOff)) {
        if (after != PowerState::kOff) ++powered_total_; else --powered_total_;
      }
      if ((before == PowerState::kBooting) != (after == PowerState::kBooting)) {
        if (after == PowerState::kBooting) {
          ++booting_total_;
          ++group_booting_[group];
        } else {
          --booting_total_;
          --group_booting_[group];
        }
      }
      if ((before == PowerState::kFailed) != (after == PowerState::kFailed)) {
        if (after == PowerState::kFailed) ++failed_total_; else --failed_total_;
      }
    }
    const bool is_serving = server.serving();
    if (was_serving != is_serving) {
      if (is_serving) serving_insert(server.index());
      else serving_erase(server.index());
    }
  }

  std::vector<Server> servers_;
  // Serving-set index: serving() servers' indices, ascending.  Updated in
  // apply_transition; O(serving) insert/erase on the rare lifecycle
  // transitions buys O(1)/O(serving) dispatch on every arrival.
  std::vector<std::uint32_t> serving_index_;
  std::vector<unsigned> group_booting_;
  unsigned booting_total_ = 0;
  unsigned powered_total_ = 0;
  unsigned failed_total_ = 0;
  EventQueue* queue_;  // non-owning
  std::vector<PowerModel> power_models_;  // one per group; stable addresses
  std::vector<unsigned> group_sizes_;
  std::vector<double> group_speeds_;      // current common speed per group
  std::vector<std::uint32_t> server_group_;
  TransitionModel transition_;
  Dispatcher dispatcher_;
  Rng group_rng_;  // used by route_job_to_group
  FaultInjector* faults_ = nullptr;  // non-owning; may be null
  TraceCollector* trace_ = nullptr;  // non-owning; may be null
  double speed_;
  std::size_t jobs_in_system_ = 0;
  std::uint64_t jobs_dropped_ = 0;
  std::uint64_t boots_started_ = 0;
  std::uint64_t shutdowns_started_ = 0;
  // Per-server transition tallies behind server_boots()/server_shutdowns().
  std::vector<std::uint32_t> server_boots_;
  std::vector<std::uint32_t> server_shutdowns_;
  std::uint64_t failures_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t boot_timeouts_ = 0;
  std::uint64_t jobs_redispatched_ = 0;
  std::uint64_t jobs_lost_ = 0;
};

}  // namespace gc
