// A unit of work flowing through the simulated cluster.
#pragma once

#include <cstdint>

namespace gc {

struct Job {
  std::uint64_t id = 0;
  double arrival_time = 0.0;  // seconds since simulation start
  double size = 0.0;          // work seconds at full speed (s = 1)
  double remaining = 0.0;     // work seconds left (at s = 1)
  double start_service_time = -1.0;  // -1 until service begins

  [[nodiscard]] bool started() const noexcept { return start_service_time >= 0.0; }
};

}  // namespace gc
