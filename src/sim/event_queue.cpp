#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

#include "util/assert.h"

namespace gc {
namespace {

constexpr std::uint64_t kIdSlotMask = 0xffffffffULL;

[[nodiscard]] EventId pack_id(std::uint32_t slot, std::uint32_t gen) noexcept {
  return (static_cast<EventId>(gen) << 32) | (static_cast<EventId>(slot) + 1);
}

}  // namespace

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kArrival: return "arrival";
    case EventType::kDeparture: return "departure";
    case EventType::kBootComplete: return "boot_complete";
    case EventType::kShutdownComplete: return "shutdown_complete";
    case EventType::kShortTick: return "short_tick";
    case EventType::kLongTick: return "long_tick";
    case EventType::kRecord: return "record";
    case EventType::kWarmupEnd: return "warmup_end";
    case EventType::kServerFail: return "server_fail";
    case EventType::kServerRepair: return "server_repair";
    case EventType::kBootTimeout: return "boot_timeout";
    case EventType::kTelemetryDeliver: return "telemetry_deliver";
    case EventType::kCommandDeliver: return "command_deliver";
    case EventType::kAckDeliver: return "ack_deliver";
    case EventType::kControllerFail: return "controller_fail";
    case EventType::kControllerRecover: return "controller_recover";
  }
  return "?";
}

void EventQueue::sift_up(std::size_t index) {
  const Entry entry = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / 4;
    if (!before(entry, heap_[parent])) break;
    place(index, heap_[parent]);
    index = parent;
  }
  place(index, entry);
}

void EventQueue::sift_down(std::size_t index) {
  const std::size_t n = heap_.size();
  const Entry entry = heap_[index];
  for (;;) {
    const std::size_t first = 4 * index + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t child = first + 1; child < last; ++child) {
      if (before(heap_[child], heap_[best])) best = child;
    }
    if (!before(heap_[best], entry)) break;
    place(index, heap_[best]);
    index = best;
  }
  place(index, entry);
}

void EventQueue::erase_at(std::size_t index) {
  const Entry tail = heap_.back();
  heap_.pop_back();
  if (index == heap_.size()) return;  // erased the last entry
  place(index, tail);
  // The tail can belong either above or below the hole; one of these is a
  // no-op after its first comparison.
  sift_down(index);
  sift_up(index);
}

void EventQueue::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.seq = kNoTenant;
  ++s.gen;
  note_growth(free_slots_);
  free_slots_.push_back(slot);
}

void EventQueue::reserve(std::size_t capacity) {
  heap_.reserve(capacity);
  slots_.reserve(capacity);
  free_slots_.reserve(capacity);
}

EventId EventQueue::schedule(double time, EventType type, std::uint32_t subject) {
  GC_CHECK(time >= now_, "EventQueue: scheduling into the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    GC_CHECK(slot <= kSlotMask, "EventQueue: too many concurrently pending events");
    note_growth(slots_);
    slots_.emplace_back();
  }
  const std::uint64_t seq = ++next_seq_;
  GC_CHECK(seq <= (~0ULL >> kSlotBits), "EventQueue: sequence space exhausted");
  Slot& s = slots_[slot];
  s.seq = seq;
  s.type = type;
  s.subject = subject;
  // `+ 0.0` canonicalizes -0.0, the one non-negative double whose bit
  // pattern would misorder under the integer compare.
  note_growth(heap_);
  heap_.push_back(
      Entry{std::bit_cast<std::uint64_t>(time + 0.0), (seq << kSlotBits) | slot});
  s.pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  return pack_id(slot, s.gen);
}

bool EventQueue::cancel(EventId id) {
  const std::uint64_t slot_plus_one = id & kIdSlotMask;
  if (slot_plus_one == 0 || slot_plus_one > slots_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(slot_plus_one - 1);
  // A fired, cancelled or recycled id carries a stale generation: no-op.
  if (slots_[slot].gen != static_cast<std::uint32_t>(id >> 32)) return false;
  const std::uint32_t pos = slots_[slot].pos;
  GC_CHECK(pos < heap_.size() && (heap_[pos].key & kSlotMask) == slot,
           "EventQueue: slot position index out of sync");
  retire_slot(slot);
  erase_at(pos);
  return true;
}

std::optional<Event> EventQueue::pop() {
  if (heap_.empty()) return std::nullopt;
  const Entry top = heap_.front();
  const auto slot = static_cast<std::uint32_t>(top.key & kSlotMask);
  const Slot& s = slots_[slot];
  const double time = std::bit_cast<double>(top.time_bits);
  const Event event{time, s.type, s.subject, pack_id(slot, s.gen)};
  retire_slot(slot);
  const Entry tail = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    place(0, tail);
    sift_down(0);
  }
  now_ = time;
  return event;
}

}  // namespace gc
