#include "sim/event_queue.h"

#include "util/assert.h"

namespace gc {

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kArrival: return "arrival";
    case EventType::kDeparture: return "departure";
    case EventType::kBootComplete: return "boot_complete";
    case EventType::kShutdownComplete: return "shutdown_complete";
    case EventType::kShortTick: return "short_tick";
    case EventType::kLongTick: return "long_tick";
    case EventType::kRecord: return "record";
    case EventType::kWarmupEnd: return "warmup_end";
    case EventType::kServerFail: return "server_fail";
    case EventType::kServerRepair: return "server_repair";
    case EventType::kBootTimeout: return "boot_timeout";
  }
  return "?";
}

EventId EventQueue::schedule(double time, EventType type, std::uint32_t subject) {
  GC_CHECK(time >= now_, "EventQueue: scheduling into the past");
  ++next_seq_;
  const EventId id = next_seq_;  // ids start at 1; 0 is kInvalidEventId
  heap_.push(Entry{time, next_seq_, type, subject, id});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Cancelling an already-fired, already-cancelled or unknown id is a no-op.
  return pending_.erase(id) != 0;
}

std::optional<Event> EventQueue::pop() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    if (pending_.erase(top.id) == 0) continue;  // cancelled: skip tombstone
    now_ = top.time;
    return Event{top.time, top.type, top.subject, top.id};
  }
  return std::nullopt;
}

}  // namespace gc
