#include "sim/dispatcher.h"

#include <limits>

#include "util/assert.h"

namespace gc {

const char* to_string(DispatchPolicy policy) noexcept {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kRandom: return "random";
    case DispatchPolicy::kJoinShortestQueue: return "jsq";
    case DispatchPolicy::kLeastWork: return "least-work";
  }
  return "?";
}

Dispatcher::Dispatcher(DispatchPolicy policy, Rng rng) : policy_(policy), rng_(rng) {}

long Dispatcher::pick(double now, std::span<const Server> servers,
                      std::span<const std::uint32_t> serving) {
  if (serving.empty()) return -1;

  switch (policy_) {
    case DispatchPolicy::kRoundRobin: {
      const std::uint32_t chosen = serving[rr_cursor_ % serving.size()];
      ++rr_cursor_;
      return static_cast<long>(chosen);
    }
    case DispatchPolicy::kRandom: {
      return static_cast<long>(serving[rng_.uniform_below(serving.size())]);
    }
    case DispatchPolicy::kJoinShortestQueue: {
      std::uint32_t best = serving.front();
      std::size_t best_len = std::numeric_limits<std::size_t>::max();
      for (const std::uint32_t idx : serving) {
        const std::size_t len = servers[idx].queue_length();
        if (len < best_len) {
          best_len = len;
          best = idx;
        }
      }
      return static_cast<long>(best);
    }
    case DispatchPolicy::kLeastWork: {
      std::uint32_t best = serving.front();
      double best_work = std::numeric_limits<double>::infinity();
      for (const std::uint32_t idx : serving) {
        const double work = servers[idx].outstanding_work(now);
        if (work < best_work) {
          best_work = work;
          best = idx;
        }
      }
      return static_cast<long>(best);
    }
  }
  GC_CHECK(false, "unreachable dispatch policy");
  return -1;
}

long Dispatcher::pick(double now, std::span<const Server> servers) {
  // Reference scan: collect the serving candidates in ascending order —
  // exactly the set (and order) the incremental index maintains.
  scratch_.clear();
  scratch_.reserve(servers.size());
  for (const Server& s : servers) {
    if (s.serving()) scratch_.push_back(s.index());
  }
  return pick(now, servers, scratch_);
}

}  // namespace gc
