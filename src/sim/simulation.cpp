#include "sim/simulation.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>

#include "stats/accumulators.h"
#include "util/assert.h"

namespace gc {
namespace {

// Applies a control action at `now`.  Order matters: grow capacity before
// raising speed so freshly revived servers adopt the new speed too.
void apply_action(Cluster& cluster, double now, const ControlAction& action) {
  if (action.active_target) cluster.set_active_target(now, *action.active_target);
  if (action.speed) cluster.set_all_speeds(now, *action.speed);
}

constexpr std::size_t kNumEventTypes =
    static_cast<std::size_t>(EventType::kBootTimeout) + 1;

}  // namespace

SimResult run_simulation(Workload& workload, const ClusterOptions& cluster_options,
                         Controller& controller, const SimulationOptions& options) {
  GC_CHECK(options.t_ref_s > 0.0, "SimulationOptions: t_ref must be positive");
  GC_CHECK(options.warmup_s >= 0.0, "SimulationOptions: warmup must be >= 0");
  const double t_short = controller.short_period_s();
  const double t_long = controller.long_period_s();
  GC_CHECK(t_short > 0.0 && t_long > 0.0, "controller periods must be positive");

  EventQueue queue;
  Cluster cluster(cluster_options, &queue);
  MetricsCollector metrics(options.t_ref_s);

  // Observability: the registry is owned by the run (single-writer, so the
  // hot-path increments below are plain adds); the trace/audit sinks are
  // caller-owned and may be null.  Everything here is observational — no
  // RNG draw or event ordering depends on it.
  MetricRegistry registry;
  std::array<Counter*, kNumEventTypes> events_dispatched{};
  for (std::size_t t = 0; t < kNumEventTypes; ++t) {
    events_dispatched[t] = &registry.counter(
        std::string("sim.events.") + to_string(static_cast<EventType>(t)));
  }
  Counter& jobs_admitted_count = registry.counter("sim.jobs.admitted");
  Counter& jobs_shed_count = registry.counter("sim.jobs.shed");
  TraceCollector* trace = kTracingCompiledIn ? options.trace : nullptr;
  cluster.set_trace(trace);

  // Fault injection: armed before the first event so background failure
  // clocks start at t = 0.  Seed 0 derives from the dispatch seed, keeping
  // replications (which re-seed the spec) on independent fault histories.
  std::optional<FaultInjector> injector;
  if (options.faults.enabled()) {
    const std::uint64_t fault_seed =
        options.faults.seed != 0
            ? options.faults.seed
            : cluster_options.dispatch_seed ^ 0xfa7a17f00dULL;
    injector.emplace(options.faults, cluster.num_servers(), fault_seed);
    cluster.set_fault_injector(&*injector);
    injector->arm(queue);
  }

  // Admission control draws from its own stream; with shedding never
  // triggered the run is event-for-event identical to admission disabled.
  AdmissionController admission(
      options.admission, options.t_ref_s,
      Rng(cluster_options.dispatch_seed, /*stream=*/7));

  // Pending arrival: exactly one kArrival event is outstanding at a time.
  std::optional<JobArrival> pending = workload.next();
  std::uint64_t next_job_id = 1;
  if (pending) queue.schedule(pending->time, EventType::kArrival);

  // Ticks: long scheduled before short at t = 0 so the provisioning
  // decision precedes the frequency decision on ties.
  queue.schedule(0.0, EventType::kLongTick);
  queue.schedule(0.0, EventType::kShortTick);
  if (options.record_interval_s > 0.0) {
    queue.schedule(options.record_interval_s, EventType::kRecord);
  }
  if (options.warmup_s > 0.0) queue.schedule(options.warmup_s, EventType::kWarmupEnd);

  // Rate measurement between short ticks.
  std::uint64_t arrivals_in_window = 0;
  double last_short_tick = 0.0;
  double last_long_tick = 0.0;  // control-period trace spans only
  // Rate measurement between record points.
  std::uint64_t arrivals_in_record = 0;
  double last_record = 0.0;
  // Jobs past admission control (routed or dropped); offered = admitted + shed.
  std::uint64_t admitted_total = 0;
  // Control ticks and how many of them reported infeasibility.
  std::uint64_t ticks_total = 0;
  std::uint64_t infeasible_ticks = 0;
  std::uint64_t warmup_ticks = 0;
  std::uint64_t warmup_infeasible = 0;

  // Time-weighted serving count / speed / queue length / availability.
  TimeWeightedAccumulator serving_avg(0.0);
  TimeWeightedAccumulator speed_avg(0.0);
  TimeWeightedAccumulator jobs_avg(0.0);
  TimeWeightedAccumulator available_avg(0.0);

  // Warmup snapshots.
  EnergyBreakdown warmup_energy;
  double measure_start = 0.0;
  std::uint64_t warmup_completed = 0;
  std::uint64_t warmup_dropped = 0;
  std::uint64_t warmup_boots = 0;
  std::uint64_t warmup_shutdowns = 0;
  std::uint64_t warmup_shed = 0;
  std::uint64_t warmup_failures = 0;
  std::uint64_t warmup_repairs = 0;
  std::uint64_t warmup_boot_timeouts = 0;
  std::uint64_t warmup_redispatched = 0;
  std::uint64_t warmup_lost = 0;
  std::uint64_t warmup_admitted = 0;
  bool in_warmup = options.warmup_s > 0.0;
  MeanVarAccumulator response_post;  // post-warmup responses
  P2Quantile p95_post(0.95), p99_post(0.99);
  RatioAccumulator violations_post;
  RatioAccumulator window_violations;

  SimResult result;
  double now = 0.0;
  bool workload_done = !pending.has_value();

  auto record_timeline = [&](double t) {
    TimelinePoint point;
    point.time = t;
    const double dt = t - last_record;
    point.arrival_rate = dt > 0.0 ? static_cast<double>(arrivals_in_record) / dt : 0.0;
    arrivals_in_record = 0;
    last_record = t;
    point.serving = cluster.serving_count();
    point.powered = cluster.powered_count();
    point.available = cluster.available_count();
    point.speed = cluster.current_speed();
    point.power_watts = cluster.instantaneous_power();
    point.jobs_in_system = static_cast<double>(cluster.jobs_in_system());
    point.window_mean_response_s = metrics.take_window_mean_response();
    point.admit_probability = admission.admit_probability();
    result.timeline.push_back(point);
  };

  // One audit record + trace span per control tick.  `period_start` is the
  // previous tick of the same kind, so the span tiles the timeline.
  auto observe_control = [&](bool long_tick, const ControlContext& ctx,
                             const ControlAction& action, double period_start) {
    if (options.audit != nullptr) {
      AuditRecord rec;
      rec.time_s = ctx.now;
      rec.long_tick = long_tick;
      rec.observed_rate = ctx.measured_rate;
      rec.serving = ctx.serving;
      rec.committed = ctx.committed;
      rec.powered = ctx.powered;
      rec.available = ctx.available;
      rec.jobs_in_system = ctx.jobs_in_system;
      rec.predicted_rate = action.explain.predicted_rate;
      rec.planning_rate = action.explain.planning_rate;
      rec.safety_margin = action.explain.safety_margin;
      rec.planned_servers = action.explain.planned_servers;
      rec.detected_available = action.explain.detected_available;
      rec.target_set = action.active_target.has_value();
      if (action.active_target) {
        rec.target_servers = *action.active_target;
        rec.delta_servers = static_cast<int>(*action.active_target) -
                            static_cast<int>(ctx.committed);
      }
      rec.speed_set = action.speed.has_value();
      if (action.speed) rec.speed = *action.speed;
      rec.infeasible = action.infeasible;
      rec.admit_probability = admission.admit_probability();
      options.audit->append(rec);
    }
    if (trace != nullptr) {
      const std::uint32_t tid = long_tick ? 2u : 1u;
      trace_complete(trace, period_start, ctx.now - period_start, "control",
                     long_tick ? "long-period" : "short-period", tid);
      TraceRecord solver;
      solver.ts_s = ctx.now;
      solver.cat = "solver";
      solver.name = long_tick ? "plan-servers" : "plan-speed";
      solver.phase = TracePhase::kInstant;
      solver.tid = tid;
      solver.nargs = 2;
      solver.arg_name[0] = "planning_rate";
      solver.arg_value[0] = action.explain.planning_rate;
      if (long_tick) {
        solver.arg_name[1] = "planned_servers";
        solver.arg_value[1] = static_cast<double>(action.explain.planned_servers);
      } else {
        solver.arg_name[1] = "speed";
        solver.arg_value[1] = action.speed ? *action.speed : 0.0;
      }
      trace_emit(trace, solver);
      if (action.infeasible) trace_instant(trace, ctx.now, "control", "infeasible", tid);
      // Counter series sampled on the control grid (post-action state).
      trace_counter(trace, ctx.now, "rate", "jobs_per_s", ctx.measured_rate);
      trace_counter(trace, ctx.now, "serving", "servers",
                    static_cast<double>(cluster.serving_count()));
      trace_counter(trace, ctx.now, "jobs_in_system", "jobs",
                    static_cast<double>(cluster.jobs_in_system()));
      trace_counter(trace, ctx.now, "speed", "s", cluster.current_speed());
      if (admission.enabled()) {
        trace_counter(trace, ctx.now, "admit_probability", "p",
                      admission.admit_probability());
      }
    }
  };

  while (auto event = queue.pop()) {
    // The run is over once the workload is exhausted and every job has
    // departed; pending ticks/completions past that point would only
    // stretch the horizon with idle time.
    if (workload_done && !pending && cluster.jobs_in_system() == 0 &&
        event->type != EventType::kDeparture && event->type != EventType::kArrival) {
      break;
    }
    now = event->time;
    if (options.hard_stop_s > 0.0 && now > options.hard_stop_s) break;

    serving_avg.advance(now, static_cast<double>(cluster.serving_count()));
    speed_avg.advance(now, cluster.current_speed());
    jobs_avg.advance(now, static_cast<double>(cluster.jobs_in_system()));
    available_avg.advance(now, static_cast<double>(cluster.available_count()));

    events_dispatched[static_cast<std::size_t>(event->type)]->inc();

    switch (event->type) {
      case EventType::kArrival: {
        GC_CHECK(pending.has_value(), "arrival event without pending job");
        // Rate measurements see the *offered* load (before shedding) so the
        // controller keeps planning against true demand and scales back up
        // when capacity returns.
        ++arrivals_in_window;
        ++arrivals_in_record;
        if (admission.admit()) {
          Job job;
          job.id = next_job_id++;
          job.arrival_time = pending->time;
          job.size = pending->size;
          job.remaining = pending->size;
          cluster.route_job(now, job);
          ++admitted_total;
          jobs_admitted_count.inc();
        } else {
          jobs_shed_count.inc();
          trace_instant(trace, now, "admission", "shed");
        }
        pending = workload.next();
        if (pending) {
          GC_CHECK(pending->time >= now, "workload produced non-monotone arrivals");
          queue.schedule(pending->time, EventType::kArrival);
        } else {
          workload_done = true;
        }
        break;
      }
      case EventType::kDeparture: {
        const Job finished = cluster.handle_departure(now, event->subject);
        metrics.on_job_completed(now, finished);
        if (!in_warmup) {
          const double response = now - finished.arrival_time;
          response_post.add(response);
          p95_post.add(response);
          p99_post.add(response);
          violations_post.add(response > options.t_ref_s);
        }
        break;
      }
      case EventType::kBootComplete:
        cluster.handle_boot_complete(now, event->subject);
        break;
      case EventType::kShutdownComplete:
        cluster.handle_shutdown_complete(now, event->subject);
        break;
      case EventType::kServerFail:
        GC_CHECK(injector.has_value(), "fail event without an injector");
        (void)injector->on_fail_event(now, event->subject, cluster, queue);
        trace_instant(trace, now, "fault", "server-fail");
        break;
      case EventType::kServerRepair:
        GC_CHECK(injector.has_value(), "repair event without an injector");
        injector->on_repair_event(now, event->subject, cluster, queue);
        trace_instant(trace, now, "fault", "server-repair");
        break;
      case EventType::kBootTimeout:
        GC_CHECK(injector.has_value(), "boot timeout without an injector");
        injector->on_boot_timeout(now, event->subject, cluster, queue);
        trace_instant(trace, now, "fault", "boot-timeout");
        break;
      case EventType::kShortTick: {
        const double elapsed = now - last_short_tick;
        ControlContext ctx;
        ctx.now = now;
        ctx.measured_rate =
            elapsed > 0.0 ? static_cast<double>(arrivals_in_window) / elapsed : 0.0;
        ctx.serving = cluster.serving_count();
        ctx.committed = cluster.committed_count();
        ctx.powered = cluster.powered_count();
        ctx.available = cluster.available_count();
        ctx.jobs_in_system = cluster.jobs_in_system();
        arrivals_in_window = 0;
        last_short_tick = now;
        const ControlAction action = controller.on_short_tick(ctx);
        apply_action(cluster, now, action);
        ++ticks_total;
        if (action.infeasible) ++infeasible_ticks;
        admission.update(ctx.measured_rate, cluster.serving_count(),
                         cluster.current_speed());
        observe_control(/*long_tick=*/false, ctx, action, now - elapsed);
        // Keep ticking while there is anything left to happen.
        if (!workload_done || cluster.jobs_in_system() > 0) {
          queue.schedule(now + t_short, EventType::kShortTick);
        }
        break;
      }
      case EventType::kLongTick: {
        ControlContext ctx;
        ctx.now = now;
        const double elapsed = now - last_short_tick;
        ctx.measured_rate =
            elapsed > 0.0 ? static_cast<double>(arrivals_in_window) / elapsed : 0.0;
        ctx.serving = cluster.serving_count();
        ctx.committed = cluster.committed_count();
        ctx.powered = cluster.powered_count();
        ctx.available = cluster.available_count();
        ctx.jobs_in_system = cluster.jobs_in_system();
        const ControlAction action = controller.on_long_tick(ctx);
        apply_action(cluster, now, action);
        ++ticks_total;
        if (action.infeasible) ++infeasible_ticks;
        admission.update(ctx.measured_rate, cluster.serving_count(),
                         cluster.current_speed());
        observe_control(/*long_tick=*/true, ctx, action, last_long_tick);
        last_long_tick = now;
        if (!workload_done || cluster.jobs_in_system() > 0) {
          queue.schedule(now + t_long, EventType::kLongTick);
        }
        break;
      }
      case EventType::kRecord: {
        record_timeline(now);
        if (!workload_done || cluster.jobs_in_system() > 0) {
          queue.schedule(now + options.record_interval_s, EventType::kRecord);
        }
        break;
      }
      case EventType::kWarmupEnd: {
        in_warmup = false;
        serving_avg = TimeWeightedAccumulator(now);
        speed_avg = TimeWeightedAccumulator(now);
        jobs_avg = TimeWeightedAccumulator(now);
        available_avg = TimeWeightedAccumulator(now);
        cluster.flush_energy(now);
        warmup_energy = cluster.energy();
        measure_start = now;
        warmup_completed = metrics.completed();
        warmup_dropped = cluster.jobs_dropped();
        warmup_boots = cluster.boots_started();
        warmup_shutdowns = cluster.shutdowns_started();
        warmup_shed = admission.shed();
        warmup_failures = cluster.failures();
        warmup_repairs = cluster.repairs();
        warmup_boot_timeouts = cluster.boot_timeouts();
        warmup_redispatched = cluster.jobs_redispatched();
        warmup_lost = cluster.jobs_lost();
        warmup_admitted = admitted_total;
        warmup_ticks = ticks_total;
        warmup_infeasible = infeasible_ticks;
        break;
      }
    }
  }

  cluster.flush_energy(now);
  if (in_warmup) {
    // The workload drained before the warmup ended: there is no measured
    // interval at all.  Report an empty (not a warmup-polluted) result.
    warmup_energy = cluster.energy();
    warmup_completed = metrics.completed();
    warmup_dropped = cluster.jobs_dropped();
    warmup_boots = cluster.boots_started();
    warmup_shutdowns = cluster.shutdowns_started();
    warmup_shed = admission.shed();
    warmup_failures = cluster.failures();
    warmup_repairs = cluster.repairs();
    warmup_boot_timeouts = cluster.boot_timeouts();
    warmup_redispatched = cluster.jobs_redispatched();
    warmup_lost = cluster.jobs_lost();
    warmup_admitted = admitted_total;
    warmup_ticks = ticks_total;
    warmup_infeasible = infeasible_ticks;
    measure_start = now;
  }
  const EnergyBreakdown total = cluster.energy();
  result.energy.busy_j = total.busy_j - warmup_energy.busy_j;
  result.energy.idle_j = total.idle_j - warmup_energy.idle_j;
  result.energy.transition_j = total.transition_j - warmup_energy.transition_j;
  result.energy.off_j = total.off_j - warmup_energy.off_j;

  result.sim_time_s = now - measure_start;
  result.completed_jobs = metrics.completed() - warmup_completed;
  result.dropped_jobs = cluster.jobs_dropped() - warmup_dropped;
  result.boots = cluster.boots_started() - warmup_boots;
  result.shutdowns = cluster.shutdowns_started() - warmup_shutdowns;
  result.shed_jobs = admission.shed() - warmup_shed;
  result.failures = cluster.failures() - warmup_failures;
  result.repairs = cluster.repairs() - warmup_repairs;
  result.boot_timeouts = cluster.boot_timeouts() - warmup_boot_timeouts;
  result.jobs_redispatched = cluster.jobs_redispatched() - warmup_redispatched;
  result.jobs_lost = cluster.jobs_lost() - warmup_lost;
  const std::uint64_t offered =
      (admitted_total - warmup_admitted) + result.shed_jobs;
  result.shed_ratio =
      offered > 0 ? static_cast<double>(result.shed_jobs) / static_cast<double>(offered)
                  : 0.0;
  result.infeasible_ticks = infeasible_ticks - warmup_infeasible;
  const std::uint64_t measured_ticks = ticks_total - warmup_ticks;
  result.infeasible_ratio =
      measured_ticks > 0 ? static_cast<double>(result.infeasible_ticks) /
                               static_cast<double>(measured_ticks)
                         : 0.0;

  if (options.warmup_s > 0.0) {
    result.mean_response_s = response_post.mean();
    result.p95_response_s = p95_post.value();
    result.p99_response_s = p99_post.value();
    result.max_response_s = response_post.count() > 0 ? response_post.max() : 0.0;
    result.job_violation_ratio = violations_post.ratio();
  } else {
    result.mean_response_s = metrics.response().mean();
    result.p95_response_s = metrics.p95();
    result.p99_response_s = metrics.p99();
    result.max_response_s = metrics.response().count() > 0 ? metrics.response().max() : 0.0;
    result.job_violation_ratio = metrics.job_violation_ratio();
  }
  // Window violations from the recorded timeline (mean response per window
  // vs the guarantee); without a timeline this stays 0.
  for (const TimelinePoint& p : result.timeline) {
    if (p.time <= measure_start) continue;
    window_violations.add(p.window_mean_response_s > options.t_ref_s);
  }
  result.window_violation_ratio = window_violations.ratio();

  result.mean_power_w =
      result.sim_time_s > 0.0 ? result.energy.total_j() / result.sim_time_s : 0.0;
  result.mean_serving = serving_avg.time_average();
  result.mean_speed = speed_avg.time_average();
  result.mean_jobs_in_system = jobs_avg.time_average();
  result.mean_available = available_avg.time_average();
  result.unavailability =
      available_avg.elapsed() > 0.0
          ? 1.0 - result.mean_available / static_cast<double>(cluster.num_servers())
          : 0.0;

  // Whole-run totals (including warmup, unlike the deltas above) for the
  // counters snapshot.  Registered at the end so the hot loop only touches
  // the per-event counters above.
  registry.counter("sim.jobs.completed").inc(metrics.completed());
  registry.counter("sim.jobs.dropped").inc(cluster.jobs_dropped());
  registry.counter("sim.jobs.redispatched").inc(cluster.jobs_redispatched());
  registry.counter("sim.jobs.lost").inc(cluster.jobs_lost());
  registry.counter("cluster.boots").inc(cluster.boots_started());
  registry.counter("cluster.shutdowns").inc(cluster.shutdowns_started());
  registry.counter("cluster.failures").inc(cluster.failures());
  registry.counter("cluster.repairs").inc(cluster.repairs());
  registry.counter("cluster.boot_timeouts").inc(cluster.boot_timeouts());
  registry.counter("control.ticks").inc(ticks_total);
  registry.counter("control.infeasible_ticks").inc(infeasible_ticks);
  registry.gauge("sim.time_s").set(now);
  if (options.audit != nullptr) {
    registry.counter("obs.audit.records").inc(options.audit->size());
  }
  if (trace != nullptr) {
    // These differ between tracing on and off by construction; determinism
    // comparisons must skip the "obs." namespace (tests/test_obs_determinism).
    registry.counter("obs.trace.emitted").inc(trace->emitted());
    registry.counter("obs.trace.dropped").inc(trace->dropped());
  }
  result.counters = registry.snapshot();
  return result;
}

}  // namespace gc
