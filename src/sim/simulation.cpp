#include "sim/simulation.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <string>

#include "cp/control_plane.h"
#include "stats/accumulators.h"
#include "util/assert.h"

namespace gc {
namespace {

// Applies a control action at `now`.  Order matters: grow capacity before
// raising speed so freshly revived servers adopt the new speed too.
void apply_action(Cluster& cluster, double now, const ControlAction& action) {
  if (action.active_target) cluster.set_active_target(now, *action.active_target);
  if (action.speed) cluster.set_all_speeds(now, *action.speed);
}

constexpr std::size_t kNumEventTypes =
    static_cast<std::size_t>(EventType::kControllerRecover) + 1;

struct AckMsg {
  CommandKind kind = CommandKind::kTarget;
  std::uint64_t gen = 0;
};

// kControllerFail subject for the random (non-scripted) outage process.
constexpr std::uint32_t kRandomOutage = ~0u;

}  // namespace

SimResult run_simulation(Workload& workload, const ClusterOptions& cluster_options,
                         Controller& controller, const SimulationOptions& options) {
  GC_CHECK(options.t_ref_s > 0.0, "SimulationOptions: t_ref must be positive");
  GC_CHECK(options.warmup_s >= 0.0, "SimulationOptions: warmup must be >= 0");
  const double t_short = controller.short_period_s();
  const double t_long = controller.long_period_s();
  GC_CHECK(t_short > 0.0 && t_long > 0.0, "controller periods must be positive");

  EventQueue queue;
  if (options.expected_events_hint > 0) queue.reserve(options.expected_events_hint);
  Cluster cluster(cluster_options, &queue);
  MetricsCollector metrics(options.t_ref_s);

  // Observability: the registry is owned by the run (single-writer, so the
  // hot-path increments below are plain adds); the trace/audit sinks are
  // caller-owned and may be null.  Everything here is observational — no
  // RNG draw or event ordering depends on it.
  MetricRegistry registry;
  std::array<Counter*, kNumEventTypes> events_dispatched{};
  for (std::size_t t = 0; t < kNumEventTypes; ++t) {
    events_dispatched[t] = &registry.counter(
        std::string("sim.events.") + to_string(static_cast<EventType>(t)));
  }
  Counter& jobs_admitted_count = registry.counter("sim.jobs.admitted");
  Counter& jobs_shed_count = registry.counter("sim.jobs.shed");
  TraceCollector* trace = kTracingCompiledIn ? options.trace : nullptr;
  cluster.set_trace(trace);

  // Fault injection: armed before the first event so background failure
  // clocks start at t = 0.  Seed 0 derives from the dispatch seed, keeping
  // replications (which re-seed the spec) on independent fault histories.
  std::optional<FaultInjector> injector;
  if (options.faults.enabled()) {
    const std::uint64_t fault_seed =
        options.faults.seed != 0
            ? options.faults.seed
            : cluster_options.dispatch_seed ^ 0xfa7a17f00dULL;
    injector.emplace(options.faults, cluster.num_servers(), fault_seed);
    cluster.set_fault_injector(&*injector);
    injector->arm(queue);
  }

  // Admission control draws from its own stream; with shedding never
  // triggered the run is event-for-event identical to admission disabled.
  AdmissionController admission(
      options.admission, options.t_ref_s,
      Rng(cluster_options.dispatch_seed, /*stream=*/7));

  // Control-plane degradation (DESIGN.md §8): the management network, the
  // ack/retry actuator and the controller fail-stop process.  Everything
  // here follows the draw-only-when-needed discipline, so leaving all
  // three at defaults (or enabling them with zero loss/latency and no
  // outages) is bit-identical to the legacy synchronous path.
  const std::uint64_t control_seed =
      cluster_options.dispatch_seed ^ 0x5ca1ab1ec0ffeeULL;
  ControlChannel channel(options.channel, control_seed);
  const bool chan_on = options.channel.enabled;
  // The controller box itself — policy, observation store, estimator,
  // ack/retry actuator — is the transport-agnostic ControlPlane facade
  // (cp/control_plane.h); this loop is only driver (a) of three.  The
  // facade's actuator takes over the sim's historical RNG stream 14, so
  // jitter draws are bit-identical to the pre-extraction loop.
  ControlPlaneOptions cp_options;
  cp_options.actuator = options.actuator;
  // The facade lives in an optional so the crash-recovery modes (DESIGN.md
  // §13.4) can tear it down and rebuild it mid-run; emplace() reuses the
  // same storage, so the reference everything below captures stays valid
  // across a rebuild (C++20 transparent replacement — ControlPlane has no
  // const or reference members).
  std::optional<ControlPlane> cp_box;
  cp_box.emplace(controller, cp_options, Rng(control_seed, /*stream=*/14));
  ControlPlane& cp = *cp_box;
  // Commands take the generation-stamped path whenever the channel or the
  // ack/retry protocol is on; otherwise they apply in place.
  const bool cmd_path = chan_on || options.actuator.enabled;
  // Lifecycle tracker wiring (cp/lifecycle.h): this driver can see the
  // fleet, so it reports command applies back, and it lends the facade the
  // run's trace sink for per-command async spans.  Re-applied after every
  // facade rebuild — a crashed controller's in-memory observability dies
  // with it (the restart itself shows up as lifecycle late_events).
  const auto configure_lifecycle = [&]() {
    cp.lifecycle().set_trace(trace);
    cp.lifecycle().set_expect_applies(true);
  };
  configure_lifecycle();

  const ControllerFaultOptions& cf = options.controller_faults;
  cf.validate();
  Rng outage_rng(cf.seed != 0 ? cf.seed : control_seed, /*stream=*/15);
  if (cf.enabled()) {
    for (std::size_t i = 0; i < cf.script.size(); ++i) {
      queue.schedule(cf.script[i].start_s, EventType::kControllerFail,
                     static_cast<std::uint32_t>(i));
    }
    if (cf.mtbf_s > 0.0) {
      const double ttf = -cf.mtbf_s * std::log(outage_rng.uniform01_open_left());
      queue.schedule(ttf, EventType::kControllerFail, kRandomOutage);
    }
  }
  // Outages may overlap (scripted windows + the random process), so the
  // controller is down while the depth is positive.
  unsigned controller_down_depth = 0;
  unsigned missed_short_ticks = 0;  // consecutive; the watchdog's counter
  bool in_safe_mode = false;
  double safe_mode_entered_at = 0.0;
  // Controller incarnation: the facade stamps cp.era() into every command
  // and bumps it on recovery.  Safe mode rejects commands stamped by a
  // dead incarnation (they were planned against a world the outage
  // invalidated).
  std::uint32_t safe_min_era = 0;

  // In-flight channel payloads (the event subject is the store slot).
  SlotStore<TelemetryFrame> telemetry_in_flight;
  SlotStore<Command> commands_in_flight;
  SlotStore<AckMsg> acks_in_flight;
  // Fleet-side dedup: a delivered command applies only when its generation
  // beats the last applied one per kind.
  std::uint64_t last_applied_gen[kNumCommandKinds] = {0, 0};
  std::uint64_t cmd_duplicates = 0;
  std::uint64_t cmd_rejected_era = 0;
  std::uint64_t ticks_missed_count = 0;

  // Pending arrival: exactly one kArrival event is outstanding at a time.
  std::optional<JobArrival> pending = workload.next();
  std::uint64_t next_job_id = 1;
  if (pending) queue.schedule(pending->time, EventType::kArrival);

  // Ticks: long scheduled before short at t = 0 so the provisioning
  // decision precedes the frequency decision on ties.
  queue.schedule(0.0, EventType::kLongTick);
  queue.schedule(0.0, EventType::kShortTick);
  if (options.record_interval_s > 0.0) {
    queue.schedule(options.record_interval_s, EventType::kRecord);
  }
  if (options.warmup_s > 0.0) queue.schedule(options.warmup_s, EventType::kWarmupEnd);

  // Rate measurement between short ticks.
  std::uint64_t arrivals_in_window = 0;
  double last_short_tick = 0.0;
  double last_long_tick = 0.0;  // control-period trace spans only
  // Rate measurement between record points.
  std::uint64_t arrivals_in_record = 0;
  double last_record = 0.0;
  // Jobs past admission control (routed or dropped); offered = admitted + shed.
  std::uint64_t admitted_total = 0;
  // Control ticks and how many of them reported infeasibility.
  std::uint64_t ticks_total = 0;
  std::uint64_t infeasible_ticks = 0;
  std::uint64_t warmup_ticks = 0;
  std::uint64_t warmup_infeasible = 0;

  // Time-weighted serving count / speed / queue length / availability.
  TimeWeightedAccumulator serving_avg(0.0);
  TimeWeightedAccumulator speed_avg(0.0);
  TimeWeightedAccumulator jobs_avg(0.0);
  TimeWeightedAccumulator available_avg(0.0);

  // Warmup snapshots.
  EnergyBreakdown warmup_energy;
  double measure_start = 0.0;
  std::uint64_t warmup_completed = 0;
  std::uint64_t warmup_dropped = 0;
  std::uint64_t warmup_boots = 0;
  std::uint64_t warmup_shutdowns = 0;
  std::uint64_t warmup_shed = 0;
  std::uint64_t warmup_failures = 0;
  std::uint64_t warmup_repairs = 0;
  std::uint64_t warmup_boot_timeouts = 0;
  std::uint64_t warmup_redispatched = 0;
  std::uint64_t warmup_lost = 0;
  std::uint64_t warmup_admitted = 0;
  bool in_warmup = options.warmup_s > 0.0;
  MeanVarAccumulator response_post;  // post-warmup responses
  P2Quantile p95_post(0.95), p99_post(0.99);
  RatioAccumulator violations_post;
  RatioAccumulator window_violations;
  LogHistogram response_hist_post;  // post-warmup mergeable distribution

  // Time-series recorder (null = off).  Strictly observational like the
  // trace/audit sinks: it reads fleet state on the control grid and never
  // touches the queue, the RNG streams or the energy meters.  Cumulative
  // energy is a recorder-side left-rule integral of instantaneous power
  // sampled at ticks (flushing the per-server meters mid-run would split
  // their integration intervals and perturb the bit-exact goldens).
  TimeSeriesRecorder* const ts = options.timeseries;
  if (ts != nullptr) metrics.enable_period_window();
  double ts_energy_j = 0.0;
  double ts_last_power_w = 0.0;
  double ts_last_power_t = 0.0;
  double ts_target_m = static_cast<double>(cluster.committed_count());
  struct TsPrevCounters {
    std::uint64_t telemetry_dropped = 0;
    std::uint64_t commands_dropped = 0;
    std::uint64_t acks_dropped = 0;
    std::uint64_t retries = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t ticks_missed = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t boots = 0;
    std::uint64_t shutdowns = 0;
  } ts_prev;

  // Reliability readout (core/reliability.h; observational only).  The
  // wear model charges the cluster's transition counters against the
  // configured cycles-to-failure budget; the controller-reported plan
  // scalars (solved spares / closed-form availability / binding
  // constraint) hold their last value between long ticks so every
  // time-series row and audit record carries the standing plan.
  options.reliability.validate();
  const WearModel wear(options.reliability);
  double ts_solved_spares = 0.0;
  double ts_availability_est = 0.0;
  double reliab_avail_sum = 0.0;
  double reliab_spares_sum = 0.0;
  std::uint64_t reliab_plan_ticks = 0;
  // Fleet-mean wear fraction from whole-run totals (uniform budget; the
  // per-server/per-class split is finalized into SimResult at the end).
  auto fleet_wear_mean = [&]() -> double {
    const unsigned n = cluster.num_servers();
    if (n == 0) return 0.0;
    return wear.wear_fraction(cluster.boots_started(),
                              cluster.shutdowns_started()) /
           static_cast<double>(n);
  };

  SimResult result;
  double now = 0.0;
  bool workload_done = !pending.has_value();

  auto record_timeline = [&](double t) {
    TimelinePoint point;
    point.time = t;
    const double dt = t - last_record;
    point.arrival_rate = dt > 0.0 ? static_cast<double>(arrivals_in_record) / dt : 0.0;
    arrivals_in_record = 0;
    last_record = t;
    point.serving = cluster.serving_count();
    point.powered = cluster.powered_count();
    point.available = cluster.available_count();
    point.speed = cluster.current_speed();
    point.power_watts = cluster.instantaneous_power();
    point.jobs_in_system = static_cast<double>(cluster.jobs_in_system());
    point.window_mean_response_s = metrics.take_window_mean_response();
    point.admit_probability = admission.admit_probability();
    result.timeline.push_back(point);
  };

  // One audit record + trace span per control tick.  `period_start` is the
  // previous tick of the same kind, so the span tiles the timeline.
  auto observe_control = [&](bool long_tick, const ControlContext& ctx,
                             const ControlAction& action, double period_start) {
    if (options.audit != nullptr) {
      AuditRecord rec;
      rec.time_s = ctx.now;
      rec.long_tick = long_tick;
      rec.observed_rate = ctx.measured_rate;
      rec.serving = ctx.serving;
      rec.committed = ctx.committed;
      rec.powered = ctx.powered;
      rec.available = ctx.available;
      rec.jobs_in_system = ctx.jobs_in_system;
      rec.predicted_rate = action.explain.predicted_rate;
      rec.planning_rate = action.explain.planning_rate;
      rec.safety_margin = action.explain.safety_margin;
      rec.planned_servers = action.explain.planned_servers;
      rec.detected_available = action.explain.detected_available;
      rec.target_set = action.active_target.has_value();
      if (action.active_target) {
        rec.target_servers = *action.active_target;
        rec.delta_servers = static_cast<int>(*action.active_target) -
                            static_cast<int>(ctx.committed);
      }
      rec.speed_set = action.speed.has_value();
      if (action.speed) rec.speed = *action.speed;
      rec.infeasible = action.infeasible;
      rec.admit_probability = admission.admit_probability();
      rec.obs_age_s = ctx.obs_age_s;
      rec.safe_mode = ctx.safe_mode;
      rec.solved_spares = action.explain.solved_spares;
      rec.availability_est = action.explain.availability_est;
      rec.binding_constraint = action.explain.binding_constraint;
      options.audit->append(rec);
    }
    if (trace != nullptr) {
      const std::uint32_t tid = long_tick ? 2u : 1u;
      trace_complete(trace, period_start, ctx.now - period_start, "control",
                     long_tick ? "long-period" : "short-period", tid);
      TraceRecord solver;
      solver.ts_s = ctx.now;
      solver.cat = "solver";
      solver.name = long_tick ? "plan-servers" : "plan-speed";
      solver.phase = TracePhase::kInstant;
      solver.tid = tid;
      solver.nargs = 2;
      solver.arg_name[0] = "planning_rate";
      solver.arg_value[0] = action.explain.planning_rate;
      if (long_tick) {
        solver.arg_name[1] = "planned_servers";
        solver.arg_value[1] = static_cast<double>(action.explain.planned_servers);
      } else {
        solver.arg_name[1] = "speed";
        solver.arg_value[1] = action.speed ? *action.speed : 0.0;
      }
      trace_emit(trace, solver);
      if (action.infeasible) trace_instant(trace, ctx.now, "control", "infeasible", tid);
      // Counter series sampled on the control grid (post-action state).
      trace_counter(trace, ctx.now, "rate", "jobs_per_s", ctx.measured_rate);
      trace_counter(trace, ctx.now, "serving", "servers",
                    static_cast<double>(cluster.serving_count()));
      trace_counter(trace, ctx.now, "jobs_in_system", "jobs",
                    static_cast<double>(cluster.jobs_in_system()));
      trace_counter(trace, ctx.now, "speed", "s", cluster.current_speed());
      if (admission.enabled()) {
        trace_counter(trace, ctx.now, "admit_probability", "p",
                      admission.admit_probability());
      }
    }
  };

  // The controller's fleet view lives in the facade.  Seeded from the
  // t = 0 ground truth so a dropped first sample still leaves the
  // controller something coherent to look at.
  {
    TelemetryFrame boot_view;
    boot_view.serving = cluster.serving_count();
    boot_view.committed = cluster.committed_count();
    boot_view.powered = cluster.powered_count();
    boot_view.available = cluster.available_count();
    boot_view.jobs_in_system = cluster.jobs_in_system();
    cp.seed_observation(boot_view);
  }
  // Pristine t = 0 image for cold restarts: the facade before the first
  // tick, boot observation already seeded.  Captured only when that mode
  // is in play so the default path serializes nothing.
  std::string pristine_snapshot;
  if (cf.enabled() && cf.recovery == ControllerRecoveryMode::kColdRestart) {
    pristine_snapshot = cp.snapshot();
  }

  auto ship_telemetry = [&](double t, const TelemetryFrame& snap) {
    // Telemetry lifecycle id: send-site monotone sequence (DESIGN.md §14.1).
    const std::uint64_t frame_id =
        cp.lifecycle().next_frame_id(FrameClass::kTelemetry);
    if (!chan_on) {
      cp.accept_telemetry(snap);
      return;
    }
    if (const auto delay = channel.telemetry_delay()) {
      if (*delay > 0.0) {
        queue.schedule(t + *delay, EventType::kTelemetryDeliver,
                       telemetry_in_flight.put(snap));
      } else {
        // Zero latency: deliver synchronously, never touching the queue
        // (event interleaving stays identical to no channel at all).
        cp.accept_telemetry(snap);
      }
    } else {
      cp.lifecycle().on_frame_dropped(FrameClass::kTelemetry,
                                      DropCause::kChannel);
      trace_instant1(trace, t, "channel", "telemetry-drop", "id",
                     static_cast<double>(frame_id));
    }
  };

  auto send_ack = [&](double t, const Command& cmd) {
    if (!cp.actuator().enabled()) return;  // fire-and-forget: no ack protocol
    const std::uint64_t frame_id = cp.lifecycle().next_frame_id(FrameClass::kAck);
    if (!chan_on) {
      cp.on_ack(t, cmd.kind, cmd.gen);
      return;
    }
    if (const auto delay = channel.ack_delay()) {
      if (*delay > 0.0) {
        queue.schedule(t + *delay, EventType::kAckDeliver,
                       acks_in_flight.put(AckMsg{cmd.kind, cmd.gen}));
      } else {
        cp.on_ack(t, cmd.kind, cmd.gen);
      }
    } else {
      cp.lifecycle().on_frame_dropped(FrameClass::kAck, DropCause::kChannel);
      trace_instant1(trace, t, "channel", "ack-drop", "id",
                     static_cast<double>(frame_id));
    }
  };

  auto exit_safe_mode = [&](double t) {
    in_safe_mode = false;
    result.safe_mode_time_s += t - safe_mode_entered_at;
    trace_instant(trace, t, "control", "safe-mode-exit");
  };

  // Fleet-side command application: era gate (safe mode), generation
  // dedup, then the actual cluster call, then the ack.
  auto apply_command = [&](double t, const Command& cmd) {
    if (in_safe_mode) {
      if (cmd.era < safe_min_era) {
        // Planned by the incarnation whose death tripped the watchdog;
        // nobody is waiting for an ack.
        ++cmd_rejected_era;
        return;
      }
      // First live command after recovery: hand control back to the policy.
      exit_safe_mode(t);
    }
    const int kind = static_cast<int>(cmd.kind);
    if (cmd.gen <= last_applied_gen[kind]) {
      // Retransmitted or reordered duplicate: idempotent — detected, not
      // re-applied, but re-acked (the original ack may be the casualty).
      ++cmd_duplicates;
      send_ack(t, cmd);
      return;
    }
    last_applied_gen[kind] = cmd.gen;
    if (cmd.kind == CommandKind::kTarget) {
      cluster.set_active_target(t, static_cast<unsigned>(cmd.value));
    } else {
      cluster.set_all_speeds(t, cmd.value);
    }
    // Fleet-side apply observed: closes the decision→apply stage of the
    // command's lifecycle (before the ack ships, matching real causality).
    cp.on_command_applied(t, cmd.kind, cmd.gen);
    send_ack(t, cmd);
  };

  auto transmit = [&](double t, const Command& cmd) {
    if (!chan_on) {
      // Actuator without a channel: delivery and ack are synchronous (the
      // protocol runs, but nothing can be lost).
      apply_command(t, cmd);
      return;
    }
    if (const auto delay = channel.command_delay()) {
      if (*delay > 0.0) {
        queue.schedule(t + *delay, EventType::kCommandDeliver,
                       commands_in_flight.put(cmd));
      } else {
        apply_command(t, cmd);
      }
    } else {
      cp.lifecycle().on_command_frame_dropped(t, cmd, DropCause::kChannel);
      trace_instant1(trace, t, "channel", "command-drop", "id",
                     static_cast<double>(command_lifecycle_id(cmd.kind, cmd.gen)));
    }
  };

  // Transmits one facade decision.  The facade already consulted the
  // policy, stamped the fresh commands and collected due retransmissions
  // (in transmit order); the driver's only job is delivery.
  auto dispatch_decision = [&](double t, const ControlPlane::Decision& decision) {
    if (!cmd_path) {
      // Legacy synchronous path.  A live controller acting again also
      // ends safe mode (relevant when only controller faults are on).
      if (in_safe_mode) exit_safe_mode(t);
      apply_action(cluster, t, decision.action);
      // The whole action applied in place: report each freshly stamped
      // command as applied so even fire-and-forget runs carry complete
      // issued→applied lifecycle timelines (latency 0 by construction).
      for (const ControlPlane::Outbound& out : decision.commands) {
        if (!out.retransmit) cp.on_command_applied(t, out.frame.kind, out.frame.gen);
      }
      return;
    }
    for (const ControlPlane::Outbound& out : decision.commands) {
      if (out.retransmit) trace_instant(trace, t, "channel", "command-retry");
      transmit(t, out.frame);
    }
  };

  // A control tick that fires while the controller is down: telemetry has
  // already been shipped, the policy is not consulted, and (on short
  // ticks) the watchdog counts toward the safe-mode trip.
  auto miss_tick = [&](double t, double local_rate, bool short_tick) {
    ++ticks_missed_count;
    trace_instant(trace, t, "control", "tick-missed");
    if (short_tick) {
      ++missed_short_ticks;
      if (cf.safe_mode && !in_safe_mode &&
          missed_short_ticks >= cf.watchdog_ticks) {
        // Watchdog trip: safe static fallback — everything on at nominal
        // frequency — until a post-recovery command arrives.
        in_safe_mode = true;
        safe_mode_entered_at = t;
        safe_min_era = cp.era() + 1;
        ++result.safe_mode_entries;
        cluster.set_active_target(t, cluster.num_servers());
        cluster.set_all_speeds(t, 1.0);
        trace_instant(trace, t, "control", "safe-mode-enter");
      }
    }
    // Admission control is fleet-local (data plane): it keeps protecting
    // the SLA from the true local rate even with the controller dark.
    admission.update(local_rate, cluster.serving_count(), cluster.current_speed());
  };

  // One time-series sample per control instant (normal and missed ticks;
  // `action` is null for the latter).  Runs after the tick's side effects
  // so the sample shows the post-decision fleet.  Read-only except for the
  // recorder itself and the metrics period window it drains.
  auto record_ts = [&](double t, bool long_tick, double local_rate,
                       const ControlContext& ctx, const ControlAction* action) {
    if (action != nullptr && action->active_target) {
      ts_target_m = static_cast<double>(*action->active_target);
    }
    const double power = cluster.instantaneous_power();
    ts_energy_j += ts_last_power_w * (t - ts_last_power_t);
    ts_last_power_w = power;
    ts_last_power_t = t;
    const PeriodWindowStats win = metrics.take_period_window();
    TimeSeriesSample s;
    s.time = t;
    s.long_tick = long_tick;
    s.measured = !in_warmup;
    s.observed_rate = ctx.measured_rate;
    s.local_rate = local_rate;
    if (action != nullptr) {
      s.predicted_rate = action->explain.predicted_rate;
      s.planning_rate = action->explain.planning_rate;
      s.infeasible = action->infeasible;
    }
    // While the watchdog's fallback is active the de-facto target is the
    // whole fleet, whatever the (dead) controller last asked for.
    s.target_m = in_safe_mode ? static_cast<double>(cluster.num_servers())
                              : ts_target_m;
    s.serving = cluster.serving_count();
    s.committed = cluster.committed_count();
    s.powered = cluster.powered_count();
    s.available = cluster.available_count();
    s.speed = cluster.current_speed();
    s.power_w = power;
    s.energy_j = ts_energy_j;
    s.queue_depth = cluster.jobs_in_system();
    s.window_completed = win.completed;
    s.window_mean_response_s = win.mean_s;
    s.window_p95_response_s = win.p95_s;
    s.window_p99_response_s = win.p99_s;
    s.window_violation_fraction = win.violation_fraction;
    s.window_violated = win.completed > 0 && win.mean_s > options.t_ref_s;
    s.d_admitted = admitted_total - ts_prev.admitted;
    s.d_shed = admission.shed() - ts_prev.shed;
    ts_prev.admitted = admitted_total;
    ts_prev.shed = admission.shed();
    s.admit_probability = admission.admit_probability();
    s.obs_age_s = ctx.obs_age_s;
    s.safe_mode = in_safe_mode;
    const std::uint64_t telemetry_dropped = channel.telemetry_counters().dropped;
    const std::uint64_t commands_dropped = channel.command_counters().dropped;
    const std::uint64_t acks_dropped = channel.ack_counters().dropped;
    const std::uint64_t retries = cp.actuator().retries();
    s.d_telemetry_dropped = telemetry_dropped - ts_prev.telemetry_dropped;
    s.d_commands_dropped = commands_dropped - ts_prev.commands_dropped;
    s.d_acks_dropped = acks_dropped - ts_prev.acks_dropped;
    s.d_command_retries = retries - ts_prev.retries;
    s.d_command_duplicates = cmd_duplicates - ts_prev.duplicates;
    s.d_ticks_missed = ticks_missed_count - ts_prev.ticks_missed;
    ts_prev.telemetry_dropped = telemetry_dropped;
    ts_prev.commands_dropped = commands_dropped;
    ts_prev.acks_dropped = acks_dropped;
    ts_prev.retries = retries;
    ts_prev.duplicates = cmd_duplicates;
    ts_prev.ticks_missed = ticks_missed_count;
    const std::uint64_t boots_now = cluster.boots_started();
    const std::uint64_t shutdowns_now = cluster.shutdowns_started();
    s.d_boots = boots_now - ts_prev.boots;
    s.d_shutdowns = shutdowns_now - ts_prev.shutdowns;
    ts_prev.boots = boots_now;
    ts_prev.shutdowns = shutdowns_now;
    s.solved_spares = ts_solved_spares;
    s.availability_est = ts_availability_est;
    s.wear_fraction = fleet_wear_mean();
    ts->append(s);
  };

  while (auto event = queue.pop()) {
    // The run is over once the workload is exhausted and every job has
    // departed; pending ticks/completions past that point would only
    // stretch the horizon with idle time.
    if (workload_done && !pending && cluster.jobs_in_system() == 0 &&
        event->type != EventType::kDeparture && event->type != EventType::kArrival) {
      break;
    }
    now = event->time;
    if (options.hard_stop_s > 0.0 && now > options.hard_stop_s) break;

    serving_avg.advance(now, static_cast<double>(cluster.serving_count()));
    speed_avg.advance(now, cluster.current_speed());
    jobs_avg.advance(now, static_cast<double>(cluster.jobs_in_system()));
    available_avg.advance(now, static_cast<double>(cluster.available_count()));

    events_dispatched[static_cast<std::size_t>(event->type)]->inc();

    switch (event->type) {
      case EventType::kArrival: {
        GC_CHECK(pending.has_value(), "arrival event without pending job");
        // Rate measurements see the *offered* load (before shedding) so the
        // controller keeps planning against true demand and scales back up
        // when capacity returns.
        ++arrivals_in_window;
        ++arrivals_in_record;
        if (admission.admit()) {
          Job job;
          job.id = next_job_id++;
          job.arrival_time = pending->time;
          job.size = pending->size;
          job.remaining = pending->size;
          cluster.route_job(now, job);
          ++admitted_total;
          jobs_admitted_count.inc();
        } else {
          jobs_shed_count.inc();
          trace_instant(trace, now, "admission", "shed");
        }
        pending = workload.next();
        if (pending) {
          GC_CHECK(pending->time >= now, "workload produced non-monotone arrivals");
          queue.schedule(pending->time, EventType::kArrival);
        } else {
          workload_done = true;
        }
        break;
      }
      case EventType::kDeparture: {
        const Job finished = cluster.handle_departure(now, event->subject);
        metrics.on_job_completed(now, finished);
        if (!in_warmup) {
          const double response = now - finished.arrival_time;
          response_post.add(response);
          p95_post.add(response);
          p99_post.add(response);
          violations_post.add(response > options.t_ref_s);
          response_hist_post.add(response);
        }
        break;
      }
      case EventType::kBootComplete:
        cluster.handle_boot_complete(now, event->subject);
        break;
      case EventType::kShutdownComplete:
        cluster.handle_shutdown_complete(now, event->subject);
        break;
      case EventType::kServerFail:
        GC_CHECK(injector.has_value(), "fail event without an injector");
        (void)injector->on_fail_event(now, event->subject, cluster, queue);
        trace_instant(trace, now, "fault", "server-fail");
        break;
      case EventType::kServerRepair:
        GC_CHECK(injector.has_value(), "repair event without an injector");
        injector->on_repair_event(now, event->subject, cluster, queue);
        trace_instant(trace, now, "fault", "server-repair");
        break;
      case EventType::kBootTimeout:
        GC_CHECK(injector.has_value(), "boot timeout without an injector");
        injector->on_boot_timeout(now, event->subject, cluster, queue);
        trace_instant(trace, now, "fault", "boot-timeout");
        break;
      case EventType::kShortTick: {
        const double elapsed = now - last_short_tick;
        // The rate is measured at the fleet (ground truth) and *shipped*
        // to the controller; what the controller sees is the newest
        // sample the telemetry link delivered.
        const double local_rate =
            elapsed > 0.0 ? static_cast<double>(arrivals_in_window) / elapsed : 0.0;
        arrivals_in_window = 0;
        last_short_tick = now;
        TelemetryFrame snap;
        snap.sample_time = now;
        snap.rate = local_rate;
        snap.serving = cluster.serving_count();
        snap.committed = cluster.committed_count();
        snap.powered = cluster.powered_count();
        snap.available = cluster.available_count();
        snap.jobs_in_system = cluster.jobs_in_system();
        ship_telemetry(now, snap);
        if (controller_down_depth > 0) {
          miss_tick(now, local_rate, /*short_tick=*/true);
          if (ts != nullptr) {
            record_ts(now, /*long_tick=*/false, local_rate,
                      cp.make_context(now, in_safe_mode), nullptr);
          }
          if (!workload_done || cluster.jobs_in_system() > 0) {
            queue.schedule(now + t_short, EventType::kShortTick);
          }
          break;
        }
        missed_short_ticks = 0;
        const ControlPlane::Decision decision =
            cp.on_tick(now, /*long_tick=*/false, in_safe_mode);
        const ControlAction& action = decision.action;
        dispatch_decision(now, decision);
        ++ticks_total;
        if (action.infeasible) ++infeasible_ticks;
        if (action.explain.solved_spares >= 0) {
          // Standing reliability plan re-reported on the short grid.
          ts_solved_spares = static_cast<double>(action.explain.solved_spares);
          ts_availability_est = action.explain.availability_est;
        }
        admission.update(local_rate, cluster.serving_count(),
                         cluster.current_speed());
        observe_control(/*long_tick=*/false, decision.ctx, action, now - elapsed);
        if (ts != nullptr) {
          record_ts(now, /*long_tick=*/false, local_rate, decision.ctx, &action);
        }
        // Keep ticking while there is anything left to happen.
        if (!workload_done || cluster.jobs_in_system() > 0) {
          queue.schedule(now + t_short, EventType::kShortTick);
        }
        break;
      }
      case EventType::kLongTick: {
        const double elapsed = now - last_short_tick;
        const double local_rate =
            elapsed > 0.0 ? static_cast<double>(arrivals_in_window) / elapsed : 0.0;
        TelemetryFrame snap;
        snap.sample_time = now;
        snap.rate = local_rate;
        snap.serving = cluster.serving_count();
        snap.committed = cluster.committed_count();
        snap.powered = cluster.powered_count();
        snap.available = cluster.available_count();
        snap.jobs_in_system = cluster.jobs_in_system();
        ship_telemetry(now, snap);
        if (controller_down_depth > 0) {
          miss_tick(now, local_rate, /*short_tick=*/false);
          if (ts != nullptr) {
            record_ts(now, /*long_tick=*/true, local_rate,
                      cp.make_context(now, in_safe_mode), nullptr);
          }
          if (!workload_done || cluster.jobs_in_system() > 0) {
            queue.schedule(now + t_long, EventType::kLongTick);
          }
          break;
        }
        const ControlPlane::Decision decision =
            cp.on_tick(now, /*long_tick=*/true, in_safe_mode);
        const ControlAction& action = decision.action;
        dispatch_decision(now, decision);
        ++ticks_total;
        if (action.infeasible) ++infeasible_ticks;
        if (action.explain.solved_spares >= 0) {
          // Fresh reliability plan: update the sticky scalars and the
          // whole-run means (long-tick plans only — short ticks re-report).
          ts_solved_spares = static_cast<double>(action.explain.solved_spares);
          ts_availability_est = action.explain.availability_est;
          reliab_avail_sum += action.explain.availability_est;
          reliab_spares_sum += ts_solved_spares;
          ++reliab_plan_ticks;
        }
        admission.update(local_rate, cluster.serving_count(),
                         cluster.current_speed());
        observe_control(/*long_tick=*/true, decision.ctx, action, last_long_tick);
        if (ts != nullptr) {
          record_ts(now, /*long_tick=*/true, local_rate, decision.ctx, &action);
        }
        last_long_tick = now;
        if (!workload_done || cluster.jobs_in_system() > 0) {
          queue.schedule(now + t_long, EventType::kLongTick);
        }
        break;
      }
      case EventType::kTelemetryDeliver:
        cp.accept_telemetry(telemetry_in_flight.take(event->subject));
        break;
      case EventType::kCommandDeliver:
        apply_command(now, commands_in_flight.take(event->subject));
        break;
      case EventType::kAckDeliver: {
        const AckMsg ack = acks_in_flight.take(event->subject);
        cp.on_ack(now, ack.kind, ack.gen);
        break;
      }
      case EventType::kControllerFail: {
        ++controller_down_depth;
        double duration;
        if (event->subject == kRandomOutage) {
          duration = -cf.mttr_s * std::log(outage_rng.uniform01_open_left());
        } else {
          duration = cf.script[event->subject].duration_s;
        }
        queue.schedule(now + duration, EventType::kControllerRecover,
                       event->subject);
        trace_instant(trace, now, "control", "controller-fail");
        break;
      }
      case EventType::kControllerRecover: {
        GC_CHECK(controller_down_depth > 0, "recover without an outage");
        --controller_down_depth;
        if (controller_down_depth == 0) {
          switch (cf.recovery) {
            case ControllerRecoveryMode::kPreserve:
              break;
            case ControllerRecoveryMode::kWarmRestart: {
              // Crash + restart from durable state: serialize, tear the
              // facade down, rebuild it empty, restore.  The snapshot
              // bit-identity contract (cp/snapshot.h) makes this a state
              // transplant — the command stream must match kPreserve
              // exactly, and tests/test_recovery holds it to that.
              const std::string snap = cp.snapshot();
              cp_box.emplace(controller, cp_options,
                             Rng(control_seed, /*stream=*/14));
              cp.restore(snap);
              configure_lifecycle();
              break;
            }
            case ControllerRecoveryMode::kColdRestart: {
              // Durable state lost: restart from the pristine t = 0 image.
              // The era must not regress with it — safe mode rejects
              // commands from dead incarnations, and in a real deployment
              // the incarnation number lives in a coordination service,
              // not on the lost disk — so it is re-derived here.
              const std::uint32_t prev_era = cp.era();
              cp_box.emplace(controller, cp_options,
                             Rng(control_seed, /*stream=*/14));
              cp.restore(pristine_snapshot);
              while (cp.era() < prev_era) cp.bump_era();
              configure_lifecycle();
              break;
            }
          }
          // New incarnation: its commands outrank anything the dead one
          // left in flight, and the watchdog starts from a clean slate.
          cp.bump_era();
          missed_short_ticks = 0;
        }
        if (event->subject == kRandomOutage && cf.mtbf_s > 0.0) {
          const double ttf =
              -cf.mtbf_s * std::log(outage_rng.uniform01_open_left());
          queue.schedule(now + ttf, EventType::kControllerFail, kRandomOutage);
        }
        trace_instant(trace, now, "control", "controller-recover");
        break;
      }
      case EventType::kRecord: {
        record_timeline(now);
        if (!workload_done || cluster.jobs_in_system() > 0) {
          queue.schedule(now + options.record_interval_s, EventType::kRecord);
        }
        break;
      }
      case EventType::kWarmupEnd: {
        in_warmup = false;
        serving_avg = TimeWeightedAccumulator(now);
        speed_avg = TimeWeightedAccumulator(now);
        jobs_avg = TimeWeightedAccumulator(now);
        available_avg = TimeWeightedAccumulator(now);
        cluster.flush_energy(now);
        warmup_energy = cluster.energy();
        measure_start = now;
        warmup_completed = metrics.completed();
        warmup_dropped = cluster.jobs_dropped();
        warmup_boots = cluster.boots_started();
        warmup_shutdowns = cluster.shutdowns_started();
        warmup_shed = admission.shed();
        warmup_failures = cluster.failures();
        warmup_repairs = cluster.repairs();
        warmup_boot_timeouts = cluster.boot_timeouts();
        warmup_redispatched = cluster.jobs_redispatched();
        warmup_lost = cluster.jobs_lost();
        warmup_admitted = admitted_total;
        warmup_ticks = ticks_total;
        warmup_infeasible = infeasible_ticks;
        break;
      }
    }
  }

  cluster.flush_energy(now);
  if (in_warmup) {
    // The workload drained before the warmup ended: there is no measured
    // interval at all.  Report an empty (not a warmup-polluted) result.
    warmup_energy = cluster.energy();
    warmup_completed = metrics.completed();
    warmup_dropped = cluster.jobs_dropped();
    warmup_boots = cluster.boots_started();
    warmup_shutdowns = cluster.shutdowns_started();
    warmup_shed = admission.shed();
    warmup_failures = cluster.failures();
    warmup_repairs = cluster.repairs();
    warmup_boot_timeouts = cluster.boot_timeouts();
    warmup_redispatched = cluster.jobs_redispatched();
    warmup_lost = cluster.jobs_lost();
    warmup_admitted = admitted_total;
    warmup_ticks = ticks_total;
    warmup_infeasible = infeasible_ticks;
    measure_start = now;
  }
  const EnergyBreakdown total = cluster.energy();
  result.energy.busy_j = total.busy_j - warmup_energy.busy_j;
  result.energy.idle_j = total.idle_j - warmup_energy.idle_j;
  result.energy.transition_j = total.transition_j - warmup_energy.transition_j;
  result.energy.off_j = total.off_j - warmup_energy.off_j;

  result.sim_time_s = now - measure_start;
  result.completed_jobs = metrics.completed() - warmup_completed;
  result.dropped_jobs = cluster.jobs_dropped() - warmup_dropped;
  result.boots = cluster.boots_started() - warmup_boots;
  result.shutdowns = cluster.shutdowns_started() - warmup_shutdowns;
  result.shed_jobs = admission.shed() - warmup_shed;
  result.failures = cluster.failures() - warmup_failures;
  result.repairs = cluster.repairs() - warmup_repairs;
  result.boot_timeouts = cluster.boot_timeouts() - warmup_boot_timeouts;
  result.jobs_redispatched = cluster.jobs_redispatched() - warmup_redispatched;
  result.jobs_lost = cluster.jobs_lost() - warmup_lost;
  const std::uint64_t offered =
      (admitted_total - warmup_admitted) + result.shed_jobs;
  result.shed_ratio =
      offered > 0 ? static_cast<double>(result.shed_jobs) / static_cast<double>(offered)
                  : 0.0;
  result.infeasible_ticks = infeasible_ticks - warmup_infeasible;
  const std::uint64_t measured_ticks = ticks_total - warmup_ticks;
  result.infeasible_ratio =
      measured_ticks > 0 ? static_cast<double>(result.infeasible_ticks) /
                               static_cast<double>(measured_ticks)
                         : 0.0;

  result.response_hist = response_hist_post;
  if (options.warmup_s > 0.0) {
    result.mean_response_s = response_post.mean();
    result.p95_response_s = p95_post.value();
    result.p99_response_s = p99_post.value();
    result.max_response_s = response_post.count() > 0 ? response_post.max() : 0.0;
    result.job_violation_ratio = violations_post.ratio();
  } else {
    result.mean_response_s = metrics.response().mean();
    result.p95_response_s = metrics.p95();
    result.p99_response_s = metrics.p99();
    result.max_response_s = metrics.response().count() > 0 ? metrics.response().max() : 0.0;
    result.job_violation_ratio = metrics.job_violation_ratio();
  }
  // Window violations from the recorded timeline (mean response per window
  // vs the guarantee); without a timeline this stays 0.
  for (const TimelinePoint& p : result.timeline) {
    if (p.time <= measure_start) continue;
    window_violations.add(p.window_mean_response_s > options.t_ref_s);
  }
  result.window_violation_ratio = window_violations.ratio();

  result.mean_power_w =
      result.sim_time_s > 0.0 ? result.energy.total_j() / result.sim_time_s : 0.0;
  result.mean_serving = serving_avg.time_average();
  result.mean_speed = speed_avg.time_average();
  result.mean_jobs_in_system = jobs_avg.time_average();
  result.mean_available = available_avg.time_average();
  result.unavailability =
      available_avg.elapsed() > 0.0
          ? 1.0 - result.mean_available / static_cast<double>(cluster.num_servers())
          : 0.0;

  // Whole-run totals (including warmup, unlike the deltas above) for the
  // counters snapshot.  Registered at the end so the hot loop only touches
  // the per-event counters above.
  registry.counter("sim.jobs.completed").inc(metrics.completed());
  registry.counter("sim.jobs.dropped").inc(cluster.jobs_dropped());
  registry.counter("sim.jobs.redispatched").inc(cluster.jobs_redispatched());
  registry.counter("sim.jobs.lost").inc(cluster.jobs_lost());
  registry.counter("cluster.boots").inc(cluster.boots_started());
  registry.counter("cluster.shutdowns").inc(cluster.shutdowns_started());
  registry.counter("cluster.failures").inc(cluster.failures());
  registry.counter("cluster.repairs").inc(cluster.repairs());
  registry.counter("cluster.boot_timeouts").inc(cluster.boot_timeouts());
  registry.counter("control.ticks").inc(ticks_total);
  registry.counter("control.infeasible_ticks").inc(infeasible_ticks);
  registry.gauge("sim.time_s").set(now);

  // Control-plane degradation accounting.  Result fields are whole-run
  // (the management path degrades during warmup too); counters are
  // registered only when the respective subsystem was on, so disabled
  // runs keep their historical counter set.
  if (in_safe_mode) result.safe_mode_time_s += now - safe_mode_entered_at;
  result.telemetry_dropped = channel.telemetry_counters().dropped;
  result.commands_dropped = channel.command_counters().dropped;
  result.acks_dropped = channel.ack_counters().dropped;
  result.command_retries = cp.actuator().retries();
  result.command_duplicates = cmd_duplicates;
  result.commands_exhausted = cp.actuator().exhausted();
  result.ticks_missed = ticks_missed_count;
  if (chan_on) {
    registry.counter("chan.telemetry.sent").inc(channel.telemetry_counters().sent);
    registry.counter("chan.telemetry.dropped").inc(result.telemetry_dropped);
    registry.counter("chan.telemetry.stale_discarded")
        .inc(cp.telemetry_stale_discarded());
    registry.counter("chan.command.sent").inc(channel.command_counters().sent);
    registry.counter("chan.command.dropped").inc(result.commands_dropped);
    registry.counter("chan.ack.sent").inc(channel.ack_counters().sent);
    registry.counter("chan.ack.dropped").inc(result.acks_dropped);
  }
  if (cmd_path) {
    registry.counter("act.retries").inc(cp.actuator().retries());
    registry.counter("act.acked").inc(cp.actuator().acked());
    registry.counter("act.stale_acks").inc(cp.actuator().stale_acks());
    registry.counter("act.exhausted").inc(cp.actuator().exhausted());
    registry.counter("act.duplicates").inc(cmd_duplicates);
    registry.counter("act.rejected_era").inc(cmd_rejected_era);
  }
  if (cf.enabled()) {
    registry.counter("control.ticks_missed").inc(ticks_missed_count);
    registry.counter("control.safe_mode_entries").inc(result.safe_mode_entries);
  }
  if (options.audit != nullptr) {
    registry.counter("obs.audit.records").inc(options.audit->size());
  }
  if (trace != nullptr) {
    // These differ between tracing on and off by construction; determinism
    // comparisons must skip the "obs." namespace (tests/test_obs_determinism).
    registry.counter("obs.trace.emitted").inc(trace->emitted());
    registry.counter("obs.trace.dropped").inc(trace->dropped());
  }
  if (ts != nullptr) {
    registry.counter("obs.timeseries.periods").inc(ts->periods());
    registry.counter("obs.timeseries.rows").inc(ts->size());
  }

  // Reliability readout.  The fleet.* transition counters are registered
  // unconditionally so wear stays observable with the reliability policy
  // off (they duplicate cluster.boots/cluster.shutdowns under the names
  // the wear tooling gates on); the wear/availability gauges appear only
  // when the model or a reliability-aware policy was active.
  registry.counter("fleet.boot_count").inc(cluster.boots_started());
  registry.counter("fleet.shutdown_count").inc(cluster.shutdowns_started());
  const auto server_boots = cluster.server_boots();
  const auto server_shutdowns = cluster.server_shutdowns();
  result.server_cycles.resize(server_boots.size());
  double wear_sum = 0.0;
  for (std::size_t i = 0; i < server_boots.size(); ++i) {
    result.server_cycles[i] = server_boots[i] + server_shutdowns[i];
    const double frac =
        wear.wear_fraction(server_boots[i], server_shutdowns[i],
                           cluster.server_class_of(static_cast<unsigned>(i)));
    wear_sum += frac;
    result.wear_fraction_max = std::max(result.wear_fraction_max, frac);
  }
  result.wear_fraction_mean =
      server_boots.empty() ? 0.0 : wear_sum / static_cast<double>(server_boots.size());
  if (reliab_plan_ticks > 0) {
    result.availability_estimate =
        reliab_avail_sum / static_cast<double>(reliab_plan_ticks);
    result.mean_solved_spares =
        reliab_spares_sum / static_cast<double>(reliab_plan_ticks);
  }
  if (options.reliability.enabled() || reliab_plan_ticks > 0) {
    registry.gauge("fleet.wear_fraction_mean").set(result.wear_fraction_mean);
    registry.gauge("fleet.wear_fraction_max").set(result.wear_fraction_max);
    // Ground-truth availability over the measured horizon, alongside the
    // closed-form estimate the controller planned with.
    registry.gauge("fleet.availability_observed").set(1.0 - result.unavailability);
    if (reliab_plan_ticks > 0) {
      registry.gauge("reliability.availability_estimate")
          .set(result.availability_estimate);
      registry.gauge("reliability.solved_spares_mean")
          .set(result.mean_solved_spares);
    }
  }
  result.counters = registry.snapshot();
  // Close every still-open lifecycle record and export the per-stage
  // latency histograms + per-command timelines.  Like response_hist, these
  // are purely observational and excluded from the determinism checksums.
  cp.lifecycle().finalize_all(now);
  result.lifecycle_ack_hist = cp.lifecycle().ack_latency();
  result.lifecycle_apply_hist = cp.lifecycle().apply_latency();
  result.lifecycle_e2e_hist = cp.lifecycle().e2e_latency();
  result.lifecycle_obs_age_hist = cp.lifecycle().obs_age();
  result.command_lifecycles = cp.lifecycle().records();
  // The facade keeps its own cp.* instruments (it has no registry — the
  // other drivers surface them through gcreplay); merge them so a sim run
  // exposes the same namespace.  Goldens exclude counters, so this is
  // observational.
  const CountersSnapshot cp_snap = cp.counters_snapshot();
  for (const auto& [name, value] : cp_snap.counters) {
    result.counters.add_counter(name, value);
  }
  for (const auto& [name, value] : cp_snap.gauges) {
    result.counters.add_gauge(name, value);
  }
  return result;
}

}  // namespace gc
