// Discrete-event calendar with O(1) generation-stamped cancellation.
//
// Events are ordered by (time, sequence number): ties break in schedule
// order, which makes runs fully deterministic.
//
// Hot-path design (see DESIGN.md "Performance engineering"):
//
//   * EventIds are generation-stamped slot handles: the low 32 bits hold
//     `slot + 1` (so 0 stays kInvalidEventId), the high 32 bits the slot's
//     generation at schedule time.  Cancel validates the generation, then
//     bumps it and returns the slot to a free list — O(1) lookup, no
//     hashing.  A recycled slot hands out a fresh generation, so cancelling
//     a stale id (fired, cancelled, or recycled) is always a detected
//     no-op, never a false hit.  (A slot's generation would have to wrap
//     all 2^32 values *and* land back on a live duplicate to confuse it.)
//   * Heap entries are 16 bytes — the time bit-cast to an integer (valid
//     for the non-negative times the schedule precondition guarantees, and
//     branch-free to compare) and a packed (seq, slot) key — so sift
//     compares touch half the cache lines a naive layout would;
//     type/subject/generation live in a per-slot side array read only at
//     pop and cancel.
//   * Cancellation is indexed, not lazy: each slot records its entry's
//     heap position (maintained by the sift loops), so cancel splices the
//     entry out in O(log n).  The heap holds exactly the live events — no
//     tombstones inflating its depth, and pop never has to shed stale
//     entries.  This matters because cancellation is hot: every speed
//     change cancels and reschedules the server's pending departure.
//   * The heap is 4-ary: half the depth of a binary heap and four children
//     per cache line of entries, which is where the per-event constant
//     factor goes at cluster sizes in the hundreds.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

namespace gc {

enum class EventType : int {
  kArrival = 0,          // subject: unused (job data lives in the simulation)
  kDeparture = 1,        // subject: server index
  kBootComplete = 2,     // subject: server index
  kShutdownComplete = 3, // subject: server index
  kShortTick = 4,
  kLongTick = 5,
  kRecord = 6,
  kWarmupEnd = 7,
  // Fault injection (sim/fault_injector.h).
  kServerFail = 8,     // subject: server index (background fault process / script)
  kServerRepair = 9,   // subject: server index
  kBootTimeout = 10,   // subject: server index (a boot that hung instead of completing)
  // Control-plane degradation (sim/control_channel.h).  Subjects for the
  // deliveries are SlotStore payload slots, not server indices.
  kTelemetryDeliver = 11,   // a fleet-state sample reaches the controller
  kCommandDeliver = 12,     // a target-m / speed command reaches the fleet
  kAckDeliver = 13,         // a command ack reaches the actuator
  kControllerFail = 14,     // subject: outage script index (or ~0 = random)
  kControllerRecover = 15,
};
[[nodiscard]] const char* to_string(EventType type) noexcept;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

struct Event {
  double time = 0.0;
  EventType type = EventType::kArrival;
  std::uint32_t subject = 0;
  EventId id = kInvalidEventId;
};

class EventQueue {
 public:
  EventQueue() = default;

  // Pre-sizes the heap, the slot table and the free list for `capacity`
  // concurrently pending events (SimulationOptions::expected_events_hint):
  // the hot loop then runs reallocation-free as long as the live set stays
  // within the hint.  A hint, not a cap — exceeding it just grows normally.
  void reserve(std::size_t capacity);

  // `time` must be >= now() (the time of the last popped event); enforced
  // with GC_CHECK — a violation aborts rather than corrupting causality.
  EventId schedule(double time, EventType type, std::uint32_t subject = 0);

  // Cancels a pending event; cancelling an already-fired, already-cancelled
  // or recycled id is a no-op (returns false).
  bool cancel(EventId id);

  // Next live event, or nullopt when drained.
  [[nodiscard]] std::optional<Event> pop();

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  // Time of the earliest pending event without popping it (the sharded
  // engine's window loop drains events up to a barrier).  empty() must be
  // false.
  [[nodiscard]] double next_time() const noexcept {
    return std::bit_cast<double>(heap_.front().time_bits);
  }
  // Time of the last popped event (0 before any pop).
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t scheduled_total() const noexcept { return next_seq_; }
  // Storage growths (vector reallocations across the heap, slot table and
  // free list) since construction; flat in steady state once reserve()d
  // (asserted by bench/perf_smoke).
  [[nodiscard]] std::uint64_t reallocations() const noexcept { return reallocations_; }

 private:
  // Heap entry: 16 bytes.  `time_bits` is the event time bit-cast to an
  // integer — valid because times are non-negative (enforced by the
  // schedule precondition from now() = 0), where IEEE-754 doubles order
  // identically to their bit patterns — so the heap predicate is pure
  // integer arithmetic the compiler lowers branch-free.  `key` packs the
  // schedule sequence number (high bits) over the slot index (low
  // kSlotBits); comparing keys compares sequence numbers (unique), so the
  // heap order is (time, seq) and the slot rides along for free.
  struct Entry {
    std::uint64_t time_bits;
    std::uint64_t key;
  };
  static constexpr unsigned kSlotBits = 22;  // up to ~4M concurrently pending
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

  // Per-slot metadata, read at cancel and pop.  `pos` is the heap index of
  // the slot's entry, kept current by the sift loops so cancel can splice
  // the entry out directly.
  struct Slot {
    std::uint64_t seq = 0;  // seq of the current tenant (kNoTenant if none)
    std::uint32_t gen = 0;  // bumped on every fire/cancel
    std::uint32_t pos = 0;  // heap index of the current tenant's entry
    EventType type = EventType::kArrival;
    std::uint32_t subject = 0;
  };
  static constexpr std::uint64_t kNoTenant = ~0ULL;

  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    return a.time_bits < b.time_bits ||
           (a.time_bits == b.time_bits && a.key < b.key);
  }
  void place(std::size_t index, const Entry& entry) noexcept {
    heap_[index] = entry;
    slots_[entry.key & kSlotMask].pos = static_cast<std::uint32_t>(index);
  }
  void sift_up(std::size_t index);
  void sift_down(std::size_t index);
  // Splices the entry at `index` out of the heap (fills the hole with the
  // last entry and restores heap order around it).
  void erase_at(std::size_t index);
  // Marks the slot's current event dead and recycles the slot.
  void retire_slot(std::uint32_t slot);

  // Counts an imminent push_back that will grow `vec`'s storage.
  template <typename V>
  void note_growth(const V& vec) noexcept {
    if (vec.size() == vec.capacity()) ++reallocations_;
  }

  std::vector<Entry> heap_;  // 4-ary min-heap on (time, key), live events only
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t reallocations_ = 0;
  double now_ = 0.0;
};

}  // namespace gc
