// Discrete-event calendar with lazy cancellation.
//
// Events are ordered by (time, sequence number): ties break in schedule
// order, which makes runs fully deterministic.  Cancellation is lazy — a
// cancelled id is skipped at pop — because the dominant pattern (a server's
// pending departure being invalidated by a speed change) cancels events
// near the head of the heap.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace gc {

enum class EventType : int {
  kArrival = 0,          // subject: unused (job data lives in the simulation)
  kDeparture = 1,        // subject: server index
  kBootComplete = 2,     // subject: server index
  kShutdownComplete = 3, // subject: server index
  kShortTick = 4,
  kLongTick = 5,
  kRecord = 6,
  kWarmupEnd = 7,
  // Fault injection (sim/fault_injector.h).
  kServerFail = 8,     // subject: server index (background fault process / script)
  kServerRepair = 9,   // subject: server index
  kBootTimeout = 10,   // subject: server index (a boot that hung instead of completing)
};
[[nodiscard]] const char* to_string(EventType type) noexcept;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

struct Event {
  double time = 0.0;
  EventType type = EventType::kArrival;
  std::uint32_t subject = 0;
  EventId id = kInvalidEventId;
};

class EventQueue {
 public:
  EventQueue() = default;

  // `time` must be >= the time of the last popped event.
  EventId schedule(double time, EventType type, std::uint32_t subject = 0);

  // Cancels a pending event; cancelling an already-fired or unknown id is a
  // no-op (returns false).
  bool cancel(EventId id);

  // Next live event, or nullopt when drained.
  [[nodiscard]] std::optional<Event> pop();

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }
  // Time of the last popped event (0 before any pop).
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t scheduled_total() const noexcept { return next_seq_; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    EventType type;
    std::uint32_t subject;
    EventId id;
    [[nodiscard]] bool operator>(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> pending_;  // scheduled, not yet fired/cancelled
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace gc
