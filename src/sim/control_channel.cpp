#include "sim/control_channel.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace gc {

void ChannelLinkOptions::validate(const char* link_name) const {
  const std::string prefix = std::string("ChannelLinkOptions(") + link_name + "): ";
  if (!(drop_prob >= 0.0 && drop_prob < 1.0)) {
    // drop_prob == 1 would sever the link entirely; that is a broken
    // configuration (the controller could never act), not a degraded one.
    throw std::invalid_argument(prefix + "drop_prob must be in [0, 1)");
  }
  if (!(latency_base_s >= 0.0) || !std::isfinite(latency_base_s)) {
    throw std::invalid_argument(prefix + "latency_base_s must be finite and >= 0");
  }
  if (!(latency_jitter_s >= 0.0) || !std::isfinite(latency_jitter_s)) {
    throw std::invalid_argument(prefix + "latency_jitter_s must be finite and >= 0");
  }
}

void ControlChannelOptions::validate() const {
  telemetry.validate("telemetry");
  command.validate("command");
  ack.validate("ack");
}

ControlChannel::ControlChannel(const ControlChannelOptions& options,
                               std::uint64_t derived_seed) {
  options.validate();
  links_[kTelemetry].options = options.telemetry;
  links_[kCommand].options = options.command;
  links_[kAck].options = options.ack;
  const std::uint64_t seed = options.seed != 0 ? options.seed : derived_seed;
  // Streams 11..13: disjoint from the dispatcher (3), cluster group RNG
  // (5) and admission control (7) streams drawn from the same seed.
  for (int i = 0; i < kNumLinks; ++i) {
    links_[i].rng = Rng(seed, /*stream=*/11 + static_cast<std::uint64_t>(i));
  }
}

std::optional<double> ControlChannel::sample(LinkIndex which) {
  Link& link = links_[which];
  ++link.counters.sent;
  // Draw-only-when-needed: a perfect link consumes no randomness, so a
  // zero-loss/zero-jitter channel is bit-identical to no channel at all.
  if (link.options.drop_prob > 0.0 &&
      link.rng.uniform01() < link.options.drop_prob) {
    ++link.counters.dropped;
    return std::nullopt;
  }
  double delay = link.options.latency_base_s;
  if (link.options.latency_jitter_s > 0.0) {
    delay += link.options.latency_jitter_s * link.rng.uniform01();
  }
  return delay;
}

void ControllerFaultOptions::validate() const {
  for (const ControllerOutage& outage : script) {
    if (!(outage.start_s >= 0.0) || !std::isfinite(outage.start_s)) {
      throw std::invalid_argument(
          "ControllerFaultOptions: outage start_s must be finite and >= 0");
    }
    if (!(outage.duration_s > 0.0) || !std::isfinite(outage.duration_s)) {
      throw std::invalid_argument(
          "ControllerFaultOptions: outage duration_s must be finite and > 0");
    }
  }
  if (!(mtbf_s >= 0.0) || !std::isfinite(mtbf_s)) {
    throw std::invalid_argument(
        "ControllerFaultOptions: mtbf_s must be finite and >= 0");
  }
  if (mtbf_s > 0.0 && (!(mttr_s > 0.0) || !std::isfinite(mttr_s))) {
    throw std::invalid_argument(
        "ControllerFaultOptions: mttr_s must be finite and > 0 when mtbf_s > 0");
  }
  if (watchdog_ticks == 0) {
    throw std::invalid_argument(
        "ControllerFaultOptions: watchdog_ticks must be >= 1");
  }
}

}  // namespace gc
