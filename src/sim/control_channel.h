// The controller <-> fleet management network (DESIGN.md §8).
//
// Today's simulator hands the controller a perfect, instant view of the
// fleet and applies its commands in the same instruction.  Real
// provisioning loops sit behind a management network: telemetry arrives
// late or not at all, power-state commands are lost, delayed or
// reordered, and acks can vanish on the way back.  ControlChannel models
// that path as three independent unidirectional links —
//
//   * telemetry — fleet state samples travelling controller-ward;
//   * command   — target-m / frequency commands travelling fleet-ward;
//   * ack       — per-command acknowledgements travelling controller-ward
//                 (only used when the actuator's ack/retry protocol is on,
//                 control/actuator.h);
//
// each with an independent per-message drop probability and a latency of
// `latency_base_s` plus a uniform jitter in [0, latency_jitter_s).
// Reordering is emergent: two messages whose jittered latencies cross
// arrive out of order, and the receivers detect it (sample timestamps for
// telemetry, generation numbers for commands/acks).
//
// Determinism contract (the reason this type exists instead of three
// inline coin flips): every link draws from its own dedicated RNG stream,
// and draws *only* when the outcome could differ from the perfect channel
// — no draw when drop_prob == 0, no draw when latency_jitter_s == 0.  A
// zero-loss / zero-latency channel therefore consumes no randomness and
// schedules no events (delay 0.0 means "deliver synchronously"), so
// enabling it is bit-identical to today's pinned determinism goldens
// (tests/test_obs_determinism.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "stats/rng.h"

namespace gc {

struct ChannelLinkOptions {
  // Probability an individual message is silently lost.
  double drop_prob = 0.0;
  // Fixed propagation delay for every delivered message.
  double latency_base_s = 0.0;
  // Uniform extra delay in [0, latency_jitter_s); > 0 enables reordering.
  double latency_jitter_s = 0.0;

  // Throws std::invalid_argument on out-of-range settings.
  void validate(const char* link_name) const;
  [[nodiscard]] bool perfect() const noexcept {
    return drop_prob == 0.0 && latency_base_s == 0.0 && latency_jitter_s == 0.0;
  }
};

struct ControlChannelOptions {
  // Master switch; when false the simulation keeps the legacy synchronous
  // path and none of the link options are consulted.
  bool enabled = false;
  ChannelLinkOptions telemetry;
  ChannelLinkOptions command;
  ChannelLinkOptions ack;
  // 0 derives from the cluster's dispatch seed, keeping replications on
  // independent channel histories (same scheme as FaultOptions::seed).
  std::uint64_t seed = 0;

  // Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

// Per-link outcome sampler.  `sample()` returns the delivery delay, or
// nullopt when the message was dropped.  Counters are cumulative over the
// channel's lifetime (one simulation run).
class ControlChannel {
 public:
  ControlChannel(const ControlChannelOptions& options, std::uint64_t derived_seed);

  [[nodiscard]] std::optional<double> telemetry_delay() {
    return sample(kTelemetry);
  }
  [[nodiscard]] std::optional<double> command_delay() { return sample(kCommand); }
  [[nodiscard]] std::optional<double> ack_delay() { return sample(kAck); }

  struct LinkCounters {
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;
  };
  [[nodiscard]] const LinkCounters& telemetry_counters() const noexcept {
    return links_[kTelemetry].counters;
  }
  [[nodiscard]] const LinkCounters& command_counters() const noexcept {
    return links_[kCommand].counters;
  }
  [[nodiscard]] const LinkCounters& ack_counters() const noexcept {
    return links_[kAck].counters;
  }

 private:
  enum LinkIndex { kTelemetry = 0, kCommand = 1, kAck = 2, kNumLinks = 3 };
  struct Link {
    ChannelLinkOptions options;
    Rng rng{0, 0};
    LinkCounters counters;
  };

  [[nodiscard]] std::optional<double> sample(LinkIndex which);

  Link links_[kNumLinks];
};

// Payload store for in-flight channel messages: the EventQueue carries
// only a 32-bit subject, so messages park here and the subject is the
// slot index.  Slots are recycled through a free list; the simulation
// never has more than a handful in flight (bounded by ticks x latency).
template <typename T>
class SlotStore {
 public:
  [[nodiscard]] std::uint32_t put(const T& value) {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      slots_[slot] = value;
      return slot;
    }
    slots_.push_back(value);
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  [[nodiscard]] T take(std::uint32_t slot) {
    T value = slots_[slot];
    free_.push_back(slot);
    return value;
  }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return slots_.size() - free_.size();
  }

 private:
  std::vector<T> slots_;
  std::vector<std::uint32_t> free_;
};

// Scripted controller fail-stop windows plus an optional random outage
// process, and the watchdog that guards the fleet while the controller is
// dark (DESIGN.md §8.3).  While down, control ticks still fire (time
// keeps passing at the fleet) but the controller is not consulted; after
// `watchdog_ticks` consecutive missed short ticks the fleet falls back to
// a safe static policy — every server on at nominal frequency — and hands
// control back to the policy once a post-recovery command arrives.
struct ControllerOutage {
  double start_s = 0.0;
  double duration_s = 0.0;
};

// What the controller process remembers when it comes back from an outage
// (DESIGN.md §13.4).
enum class ControllerRecoveryMode {
  // The controller's in-memory state survived the outage (a process pause
  // or a network partition, not a crash).  Historical behavior, and the
  // default: every pinned golden was recorded under it.
  kPreserve = 0,
  // Crash + restart from durable state: at the recovery instant the facade
  // is serialized (cp/snapshot.h), torn down, rebuilt empty and restored.
  // By the snapshot bit-identity contract this must not change a single
  // command relative to kPreserve — tests/test_recovery asserts it.
  kWarmRestart = 1,
  // Crash with durable state lost: the facade restarts from the pristine
  // t = 0 image (boot observation, empty actuator lanes, zeroed
  // estimator).  The policy re-learns the operating point from scratch,
  // which is exactly the degradation bench/fig17_recovery measures.
  kColdRestart = 2,
};

struct ControllerFaultOptions {
  std::vector<ControllerOutage> script;
  // Random fail-stop process for the controller itself: exponential time
  // to failure (mean mtbf_s) and repair (mean mttr_s).  0 disables.
  double mtbf_s = 0.0;
  double mttr_s = 60.0;
  // Consecutive missed *short* ticks before the fleet declares the
  // controller dead and enters safe mode.
  unsigned watchdog_ticks = 3;
  // When false the watchdog only counts (no safe-mode fallback); lost
  // ticks then leave the fleet frozen in its last commanded state.
  bool safe_mode = true;
  // What the controller remembers once the outage ends (see enum above).
  ControllerRecoveryMode recovery = ControllerRecoveryMode::kPreserve;
  // 0 derives from the dispatch seed (random outage process only).
  std::uint64_t seed = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return !script.empty() || mtbf_s > 0.0;
  }
  // Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

}  // namespace gc
