// The simulation loop: wires a Workload, a Cluster and a Controller
// together over one EventQueue and produces a SimResult.
//
// Event choreography per step:
//   * kArrival        — route the pending job, pull the next one from the
//                       workload and schedule it;
//   * kDeparture      — complete the job on its server, record metrics;
//   * kShortTick      — measure the arrival rate over the elapsed short
//                       period, ask the controller, apply speed changes;
//   * kLongTick       — ask the controller, apply server-count changes
//                       (scheduled before the short tick at equal times so
//                       a long decision wins the tie);
//   * kRecord         — sample the timeline;
//   * kWarmupEnd      — reset metrics and snapshot energy so reported
//                       numbers exclude the transient;
//   * kTelemetryDeliver / kCommandDeliver / kAckDeliver — delayed
//                       control-plane messages (sim/control_channel.h;
//                       zero-latency messages are delivered synchronously
//                       and never reach the queue);
//   * kControllerFail / kControllerRecover — controller outage edges; a
//                       watchdog counts missed short ticks while down and
//                       drops the fleet into a safe static fallback
//                       (all-on, nominal frequency) when it trips.
//
// The run ends when the workload is exhausted AND all jobs have departed,
// or at `hard_stop_s` if configured (overload protection).
#pragma once

#include <memory>
#include <optional>

#include "control/actuator.h"
#include "core/reliability.h"
#include "obs/audit.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/admission.h"
#include "sim/cluster.h"
#include "sim/control_channel.h"
#include "sim/event_queue.h"
#include "sim/fault_injector.h"
#include "sim/metrics.h"
#include "workload/workload.h"

namespace gc {

// What the controller observes at a tick.  With the control channel
// disabled this is the instantaneous ground truth; with it enabled the
// fleet fields come from the newest *delivered* telemetry sample, which
// may be stale (see obs_age_s) or missing updates the channel dropped.
struct ControlContext {
  double now = 0.0;
  // Arrivals / elapsed time since the previous short tick (as sampled at
  // the telemetry source; see obs_age_s for how old that sample is).
  double measured_rate = 0.0;
  unsigned serving = 0;
  unsigned committed = 0;  // serving + booting
  unsigned powered = 0;
  // Ground-truth servers not FAILED; failure-aware controllers run their
  // own (delayed) detector over this signal.
  unsigned available = 0;
  std::size_t jobs_in_system = 0;
  // Age of the newest delivered telemetry sample (now - sample time); 0
  // when the channel is disabled or perfect.
  double obs_age_s = 0.0;
  // The fleet is currently running the watchdog's safe static fallback.
  bool safe_mode = false;
  // Last fleet state confirmed by the actuator's ack protocol; unset
  // before the first ack or when the actuator is disabled.  This is what
  // "re-plan from acked state" plans against.
  std::optional<unsigned> acked_target;
  std::optional<double> acked_speed;
};

// Planning internals behind a ControlAction, filled by the controllers for
// the decision audit log (obs/audit.h).  Purely observational: the
// simulation never branches on these.  Fields a policy has no notion of
// stay 0 (e.g. NPM has no predictor, only failure-aware has a detector).
struct ControlExplain {
  double predicted_rate = 0.0;   // predictor output over the planning horizon
  double planning_rate = 0.0;    // rate handed to the solver (after margin)
  double safety_margin = 0.0;    // margin applied (after any spare relief)
  unsigned planned_servers = 0;  // solver m before hysteresis/retry gating
  unsigned detected_available = 0;  // failure detector's fleet view
  // -- reliability-constrained provisioning (appended fields) ----------------
  // Solved spare count of the standing ReliablePlan; -1 for policies with
  // no notion of solved spares (everything but dcp-reliability).
  int solved_spares = -1;
  // Closed-form fleet availability A(planned m, spares) of that plan.
  double availability_est = 0.0;
  // core/reliability.h BindingConstraint as an integer (0 none, 1 latency,
  // 2 availability, 3 capacity): which constraint pinned the plan.
  unsigned binding_constraint = 0;
};

// What the controller requests.  Unset fields mean "leave unchanged".
struct ControlAction {
  std::optional<unsigned> active_target;
  std::optional<double> speed;
  // The policy determined the guarantee is unachievable at the current
  // capacity (solver infeasibility); recorded in SimResult and used to
  // drive admission control.
  bool infeasible = false;
  ControlExplain explain;
};

// Implemented by the policies in control/policies.h.  Kept here so the
// simulator does not depend on the solver modules.
class Controller {
 public:
  virtual ~Controller() = default;
  [[nodiscard]] virtual double short_period_s() const = 0;
  [[nodiscard]] virtual double long_period_s() const = 0;
  [[nodiscard]] virtual ControlAction on_short_tick(const ControlContext& ctx) = 0;
  [[nodiscard]] virtual ControlAction on_long_tick(const ControlContext& ctx) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

struct SimulationOptions {
  double t_ref_s = 0.10;
  double warmup_s = 0.0;
  // 0 disables timeline recording.
  double record_interval_s = 0.0;
  // Safety stop even if jobs are still in flight (0 = run to drain).
  double hard_stop_s = 0.0;
  // Expected upper bound on concurrently pending events.  The event queue
  // reserve()s this up front so the hot loop never reallocates its heap,
  // slot table or free list while the live set stays within the hint
  // (bench/perf_smoke asserts flatness in steady state).  A hint, not a
  // cap; 0 keeps default growth.  The sharded engine divides it across
  // shards.
  std::size_t expected_events_hint = 0;
  // Fault injection; inert unless faults.enabled().
  FaultOptions faults;
  // Graceful degradation via probabilistic shedding; inert unless enabled.
  AdmissionOptions admission;
  // Control-plane degradation (DESIGN.md §8).  A zero-loss/zero-latency
  // channel — even with the actuator and watchdog enabled — is
  // bit-identical to all three left at defaults (pinned goldens hold).
  ControlChannelOptions channel;          // lossy/latent management network
  ActuatorOptions actuator;               // ack/retry command protocol
  ControllerFaultOptions controller_faults;  // fail-stop controller + watchdog
  // Observational reliability readout (core/reliability.h, header-only —
  // no solver dependency): wear fractions from the cluster's transition
  // counters and availability gauges in the end-of-run registry.  Inert at
  // defaults; never feeds back into control decisions, so the pinned
  // determinism goldens hold whether or not it is set.
  ReliabilityOptions reliability;
  // Observability sinks (non-owning; must outlive the run).  Null = off.
  // Both are strictly observational: attaching them never changes event
  // order, RNG draws or any SimResult field (tests/test_obs_determinism).
  // Do not share one sink across concurrent runs (exp/runner parallelism).
  TraceCollector* trace = nullptr;
  DecisionAuditLog* audit = nullptr;
  // Per-control-period time series (obs/timeseries.h): one sample on every
  // short/long/missed tick.  Attaching it additionally enables the
  // MetricsCollector period window.  Its energy_j column is a left-rule
  // integral of instantaneous power on the control grid — an observability
  // estimate; SimResult::energy (the per-server EnergyMeter) stays the
  // authoritative number.  Same contract as the other sinks: observational,
  // non-owning, not shared across concurrent runs.
  TimeSeriesRecorder* timeseries = nullptr;
};

// Runs one simulation.  The workload is consumed (reset it to reuse).
[[nodiscard]] SimResult run_simulation(Workload& workload, const ClusterOptions& cluster,
                                       Controller& controller,
                                       const SimulationOptions& options);

}  // namespace gc
