// The simulation loop: wires a Workload, a Cluster and a Controller
// together over one EventQueue and produces a SimResult.
//
// Event choreography per step:
//   * kArrival        — route the pending job, pull the next one from the
//                       workload and schedule it;
//   * kDeparture      — complete the job on its server, record metrics;
//   * kShortTick      — measure the arrival rate over the elapsed short
//                       period, ask the controller, apply speed changes;
//   * kLongTick       — ask the controller, apply server-count changes
//                       (scheduled before the short tick at equal times so
//                       a long decision wins the tie);
//   * kRecord         — sample the timeline;
//   * kWarmupEnd      — reset metrics and snapshot energy so reported
//                       numbers exclude the transient;
//   * kTelemetryDeliver / kCommandDeliver / kAckDeliver — delayed
//                       control-plane messages (sim/control_channel.h;
//                       zero-latency messages are delivered synchronously
//                       and never reach the queue);
//   * kControllerFail / kControllerRecover — controller outage edges; a
//                       watchdog counts missed short ticks while down and
//                       drops the fleet into a safe static fallback
//                       (all-on, nominal frequency) when it trips.
//
// The run ends when the workload is exhausted AND all jobs have departed,
// or at `hard_stop_s` if configured (overload protection).
#pragma once

#include <memory>
#include <optional>

#include "control/actuator.h"
#include "core/reliability.h"
#include "cp/controller.h"
#include "obs/audit.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/admission.h"
#include "sim/cluster.h"
#include "sim/control_channel.h"
#include "sim/event_queue.h"
#include "sim/fault_injector.h"
#include "sim/metrics.h"
#include "workload/workload.h"

namespace gc {

// ControlContext / ControlExplain / ControlAction / Controller moved to
// cp/controller.h (the transport-agnostic control-plane layer); included
// above so existing simulator-facing code keeps compiling unchanged.

struct SimulationOptions {
  double t_ref_s = 0.10;
  double warmup_s = 0.0;
  // 0 disables timeline recording.
  double record_interval_s = 0.0;
  // Safety stop even if jobs are still in flight (0 = run to drain).
  double hard_stop_s = 0.0;
  // Expected upper bound on concurrently pending events.  The event queue
  // reserve()s this up front so the hot loop never reallocates its heap,
  // slot table or free list while the live set stays within the hint
  // (bench/perf_smoke asserts flatness in steady state).  A hint, not a
  // cap; 0 keeps default growth.  The sharded engine divides it across
  // shards.
  std::size_t expected_events_hint = 0;
  // Fault injection; inert unless faults.enabled().
  FaultOptions faults;
  // Graceful degradation via probabilistic shedding; inert unless enabled.
  AdmissionOptions admission;
  // Control-plane degradation (DESIGN.md §8).  A zero-loss/zero-latency
  // channel — even with the actuator and watchdog enabled — is
  // bit-identical to all three left at defaults (pinned goldens hold).
  ControlChannelOptions channel;          // lossy/latent management network
  ActuatorOptions actuator;               // ack/retry command protocol
  ControllerFaultOptions controller_faults;  // fail-stop controller + watchdog
  // Observational reliability readout (core/reliability.h, header-only —
  // no solver dependency): wear fractions from the cluster's transition
  // counters and availability gauges in the end-of-run registry.  Inert at
  // defaults; never feeds back into control decisions, so the pinned
  // determinism goldens hold whether or not it is set.
  ReliabilityOptions reliability;
  // Observability sinks (non-owning; must outlive the run).  Null = off.
  // Both are strictly observational: attaching them never changes event
  // order, RNG draws or any SimResult field (tests/test_obs_determinism).
  // Do not share one sink across concurrent runs (exp/runner parallelism).
  TraceCollector* trace = nullptr;
  DecisionAuditLog* audit = nullptr;
  // Per-control-period time series (obs/timeseries.h): one sample on every
  // short/long/missed tick.  Attaching it additionally enables the
  // MetricsCollector period window.  Its energy_j column is a left-rule
  // integral of instantaneous power on the control grid — an observability
  // estimate; SimResult::energy (the per-server EnergyMeter) stays the
  // authoritative number.  Same contract as the other sinks: observational,
  // non-owning, not shared across concurrent runs.
  TimeSeriesRecorder* timeseries = nullptr;
};

// Runs one simulation.  The workload is consumed (reset it to reuse).
[[nodiscard]] SimResult run_simulation(Workload& workload, const ClusterOptions& cluster,
                                       Controller& controller,
                                       const SimulationOptions& options);

}  // namespace gc
