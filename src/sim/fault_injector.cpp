#include "sim/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/cluster.h"
#include "util/assert.h"
#include "util/format.h"

namespace gc {

void FaultOptions::validate() const {
  if (!(mtbf_s >= 0.0) || !std::isfinite(mtbf_s)) {
    throw std::invalid_argument("FaultOptions: mtbf_s must be finite and >= 0");
  }
  if (!(mttr_s > 0.0) || !std::isfinite(mttr_s)) {
    throw std::invalid_argument("FaultOptions: mttr_s must be finite and > 0");
  }
  if (!(boot_hang_prob >= 0.0 && boot_hang_prob <= 1.0)) {
    throw std::invalid_argument("FaultOptions: boot_hang_prob out of [0,1]");
  }
  if (!(boot_timeout_s >= 0.0) || !std::isfinite(boot_timeout_s)) {
    throw std::invalid_argument("FaultOptions: boot_timeout_s must be finite and >= 0");
  }
  for (const ScriptedFault& f : script) {
    if (!(f.time >= 0.0) || !std::isfinite(f.time)) {
      throw std::invalid_argument("FaultOptions: scripted fault time must be >= 0");
    }
    if (!(f.repair_after_s > 0.0)) {  // infinity is fine
      throw std::invalid_argument("FaultOptions: scripted repair_after_s must be > 0");
    }
  }
}

FaultInjector::FaultInjector(const FaultOptions& options, unsigned num_servers,
                             std::uint64_t seed)
    : options_(options), num_servers_(num_servers),
      boot_rng_(Rng(seed, /*stream=*/0).split(0xb007)) {
  options_.validate();
  GC_CHECK(num_servers > 0, "FaultInjector: empty cluster");
  server_rngs_.reserve(num_servers);
  Rng root(seed, /*stream=*/0);
  for (unsigned i = 0; i < num_servers; ++i) {
    server_rngs_.push_back(root.split(i + 1));
  }
  scripted_repairs_.resize(num_servers);
  scripted_times_.resize(num_servers);
  scripted_cursor_.assign(num_servers, 0);
  background_pending_.assign(num_servers, false);

  std::vector<ScriptedFault> script = options_.script;
  std::stable_sort(script.begin(), script.end(),
                   [](const ScriptedFault& a, const ScriptedFault& b) {
                     return a.time < b.time;
                   });
  for (const ScriptedFault& f : script) {
    if (f.server >= num_servers) {
      throw std::invalid_argument(
          format("FaultOptions: scripted fault targets server {} of {}",
                 f.server, num_servers));
    }
    scripted_times_[f.server].push_back(f.time);
    scripted_repairs_[f.server].push_back(f.repair_after_s);
  }
  options_.script = std::move(script);
}

double FaultInjector::sample_ttf(std::uint32_t server) {
  GC_DCHECK(options_.mtbf_s > 0.0, "sample_ttf without a background process");
  return -options_.mtbf_s * std::log(server_rngs_[server].uniform01_open_left());
}

double FaultInjector::sample_ttr(std::uint32_t server) {
  return -options_.mttr_s * std::log(server_rngs_[server].uniform01_open_left());
}

void FaultInjector::arm(EventQueue& queue) {
  if (options_.mtbf_s > 0.0) {
    for (std::uint32_t i = 0; i < num_servers_; ++i) {
      queue.schedule(queue.now() + sample_ttf(i), EventType::kServerFail, i);
      background_pending_[i] = true;
    }
  }
  for (const ScriptedFault& f : options_.script) {
    queue.schedule(std::max(f.time, queue.now()), EventType::kServerFail, f.server);
  }
}

bool FaultInjector::on_fail_event(double now, std::uint32_t server, Cluster& cluster,
                                  EventQueue& queue) {
  GC_CHECK(server < num_servers_, "on_fail_event: unknown server");
  // Scripted entries fire in schedule order, so a fail event at (or past)
  // the next scripted time for this server is that scripted entry; anything
  // earlier is the background process.
  double scripted_repair = 0.0;
  bool scripted = false;
  std::size_t& cursor = scripted_cursor_[server];
  if (cursor < scripted_times_[server].size() &&
      now >= scripted_times_[server][cursor] - 1e-9) {
    scripted = true;
    scripted_repair = scripted_repairs_[server][cursor];
    ++cursor;
  } else {
    background_pending_[server] = false;
  }

  const bool crashed = cluster.fail_server(now, server);
  if (crashed) {
    if (scripted) {
      if (std::isfinite(scripted_repair)) {
        queue.schedule(now + scripted_repair, EventType::kServerRepair, server);
      }
      // else: down for the rest of the run.
    } else {
      queue.schedule(now + sample_ttr(server), EventType::kServerRepair, server);
    }
  } else if (!scripted && options_.mtbf_s > 0.0) {
    // The failure clock ticked while the server was OFF or already FAILED:
    // nothing crashes, but the background chain must continue.
    queue.schedule(now + sample_ttf(server), EventType::kServerFail, server);
    background_pending_[server] = true;
  }
  // A scripted fault on a non-powered server is simply dropped; a crashed
  // server's background chain resumes from its repair.
  return crashed;
}

void FaultInjector::on_boot_timeout(double now, std::uint32_t server, Cluster& cluster,
                                    EventQueue& queue) {
  GC_CHECK(server < num_servers_, "on_boot_timeout: unknown server");
  cluster.timeout_boot(now, server);
  queue.schedule(now + sample_ttr(server), EventType::kServerRepair, server);
}

void FaultInjector::on_repair_event(double now, std::uint32_t server, Cluster& cluster,
                                    EventQueue& queue) {
  GC_CHECK(server < num_servers_, "on_repair_event: unknown server");
  cluster.repair_server(now, server);
  // Restart the failure clock unless this server's background chain already
  // has a pending event (a background fail can tick while FAILED).
  if (options_.mtbf_s > 0.0 && !background_pending_[server]) {
    queue.schedule(now + sample_ttf(server), EventType::kServerFail, server);
    background_pending_[server] = true;
  }
}

std::optional<double> FaultInjector::sample_boot_hang(double boot_delay_s) {
  if (options_.boot_hang_prob <= 0.0) return std::nullopt;
  if (boot_rng_.uniform01() >= options_.boot_hang_prob) return std::nullopt;
  const double timeout =
      options_.boot_timeout_s > 0.0 ? options_.boot_timeout_s : 3.0 * boot_delay_s;
  return timeout;
}

}  // namespace gc
