// Admission control for graceful degradation under capacity shortfall.
//
// When failures (or an infeasible offered load) leave the cluster unable to
// meet the mean-response-time guarantee T_ref, running every arrival just
// pushes *all* response times past the SLA.  Probabilistic shedding instead
// thins the admitted stream to the largest rate the surviving capacity can
// serve within T_ref, keeping admitted jobs fast at the cost of an explicit,
// metered shed fraction.
//
// Per M/M/1 with service rate s*mu per server, the largest per-server
// arrival rate meeting E[T] = 1/(s*mu - lambda) <= T_ref is
// s*mu - 1/T_ref, so the cluster-wide admittable rate is
//
//   lambda_adm = serving * max(s * mu_max - 1/T_ref, 0) * target_fraction
//
// and each arrival is admitted with probability
// p = min(1, lambda_adm / measured_rate).  Poisson thinning keeps the
// admitted stream Poisson, so the M/M/1 bound genuinely holds for it.
//
// Determinism: shedding draws from its own RNG stream, and draws *only*
// when p < 1, so runs that never shed are event-for-event identical to runs
// with admission control disabled.
#pragma once

#include <cstdint>

#include "stats/rng.h"

namespace gc {

struct AdmissionOptions {
  bool enabled = false;
  // Full-speed service rate of one server (jobs/s); must be set when
  // enabled (the sim layer cannot see the solver's ClusterConfig).
  double mu_max = 0.0;
  // Scales the admittable rate: < 1 adds headroom, 1 = shed exactly to the
  // T_ref boundary.
  double target_fraction = 1.0;

  // Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

class AdmissionController {
 public:
  AdmissionController(const AdmissionOptions& options, double t_ref_s, Rng rng);

  // Recomputes the admit probability from the current capacity; call on
  // every control tick (capacity or load estimate changed).
  void update(double measured_rate, unsigned serving, double speed);

  // Per-arrival draw: true = admit, false = shed (counted).
  [[nodiscard]] bool admit();

  [[nodiscard]] bool enabled() const noexcept { return options_.enabled; }
  [[nodiscard]] double admit_probability() const noexcept { return p_admit_; }
  [[nodiscard]] std::uint64_t shed() const noexcept { return shed_; }

 private:
  AdmissionOptions options_;
  double t_ref_s_;
  Rng rng_;
  double p_admit_ = 1.0;
  std::uint64_t shed_ = 0;
};

}  // namespace gc
