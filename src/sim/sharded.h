// Sharded deterministic simulation core: conservative parallel DES
// (DESIGN.md §11).
//
// The cluster is partitioned into K contiguous shards, each owning its own
// EventQueue, Server vector, per-server RNG streams and per-server metric
// accumulators, executed on a fixed thread pool.  Synchronization is
// conservative: the DCP structure gives a natural lookahead window — no
// cross-shard interaction (provisioning commands, telemetry aggregation,
// admission updates) happens between control-period barriers — so each
// shard advances independently to the next barrier and the orchestrator
// thread runs the control plane (controller, channel, actuator, admission)
// between windows.
//
// Determinism contract: the output is a pure function of the inputs and
// *independent of K* — every RNG stream is derived per global server index,
// arrivals map to servers through a frozen round-robin assignment fixed at
// each window start, and every floating-point reduction folds per-server
// partials in canonical (global server index) order.  The shard-determinism
// property test pins checksums at K ∈ {1, 2, 4, 7} against each other and
// against committed goldens.
//
// This is a distinct simulation model from run_simulation(), not a parallel
// re-implementation of it: the sequential loop's global JSQ dispatcher (one
// shared decision per arrival) and shared fault/boot-hang streams are
// inherently order-dependent across the whole fleet and cannot be sharded
// bit-exactly (see DESIGN.md §11.1 for the argument).  The sharded engine
// therefore uses trace-based round-robin dispatch over the frozen serving
// set, per-server fault streams, and histogram-derived tail quantiles.
// Anything unsupported in this model is rejected loudly (GC_CHECK), never
// silently approximated: heterogeneous groups and controller outages are
// sequential-only for now.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulation.h"
#include "stats/distributions.h"
#include "util/thread_pool.h"
#include "workload/trace.h"

namespace gc {

// Wall-clock self-profile of one sharded run: per-shard busy time inside
// the barrier-to-barrier advances versus the orchestrator's wall time
// across those advances.  Filled only when ShardedOptions::profile points
// here, and written *outside* SimResult on purpose — wall-clock readings
// are machine noise, and SimResult (counters included) must stay a pure,
// K-invariant function of the inputs.  bench/perf_smoke surfaces the
// derived gauges (busy fraction, imbalance) in BENCH_core.json.
struct ShardProfile {
  // Seconds each shard spent inside Shard::advance_to, indexed by shard.
  // Resized to the effective shard count by the engine.
  std::vector<double> shard_busy_s;
  // Orchestrator wall seconds spent across all advance barriers (issue to
  // last-shard completion — includes the barrier wait on the slowest
  // shard) and the number of barriers executed.
  double barrier_wall_s = 0.0;
  std::uint64_t barriers = 0;

  [[nodiscard]] double busy_total_s() const noexcept {
    double sum = 0.0;
    for (const double b : shard_busy_s) sum += b;
    return sum;
  }
  [[nodiscard]] double busy_max_s() const noexcept {
    double mx = 0.0;
    for (const double b : shard_busy_s) mx = b > mx ? b : mx;
    return mx;
  }
  // Fraction of the workers' aggregate barrier budget (K * wall) actually
  // spent advancing shards; the remainder is barrier wait + fan-out
  // overhead.  1.0 means perfectly packed.
  [[nodiscard]] double busy_fraction() const noexcept {
    const double denom =
        barrier_wall_s * static_cast<double>(shard_busy_s.size());
    return denom > 0.0 ? busy_total_s() / denom : 0.0;
  }
  // Load imbalance: slowest shard over mean shard busy time, minus 1.
  // 0 means all shards carried equal work; 1 means the critical shard was
  // twice the mean (half the fleet idles at every barrier).
  [[nodiscard]] double imbalance() const noexcept {
    const double total = busy_total_s();
    if (shard_busy_s.empty() || total <= 0.0) return 0.0;
    const double mean = total / static_cast<double>(shard_busy_s.size());
    return mean > 0.0 ? busy_max_s() / mean - 1.0 : 0.0;
  }
};

struct ShardedOptions {
  // Number of shards K (>= 1; clamped to the fleet size).  K = 1 runs the
  // same model single-threaded and produces byte-identical output to any
  // other K.
  unsigned num_shards = 1;
  // Worker pool for the barrier-to-barrier shard advances; nullptr uses
  // util/thread_pool's process-wide pool.
  ThreadPool* pool = nullptr;
  // Optional wall-clock self-profile sink (see ShardProfile).  nullptr
  // skips the timing reads entirely; the simulated output is identical
  // either way.
  ShardProfile* profile = nullptr;
};

// Runs one sharded simulation over a concrete arrival trace.  `job_size`
// is sampled from per-server streams derived from `workload_seed`, so the
// draw sequence each server sees is independent of K.  The controller, the
// observability sinks inside `options` and the returned SimResult follow
// the same contracts as run_simulation().
[[nodiscard]] SimResult run_sharded_simulation(const Trace& trace,
                                               const Distribution& job_size,
                                               std::uint64_t workload_seed,
                                               const ClusterOptions& cluster,
                                               Controller& controller,
                                               const SimulationOptions& options,
                                               const ShardedOptions& sharded);

}  // namespace gc
