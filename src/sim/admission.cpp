#include "sim/admission.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.h"

namespace gc {

void AdmissionOptions::validate() const {
  if (!enabled) return;
  if (!(mu_max > 0.0) || !std::isfinite(mu_max)) {
    throw std::invalid_argument("AdmissionOptions: mu_max must be finite and > 0");
  }
  if (!(target_fraction > 0.0 && target_fraction <= 1.0)) {
    throw std::invalid_argument("AdmissionOptions: target_fraction out of (0,1]");
  }
}

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         double t_ref_s, Rng rng)
    : options_(options), t_ref_s_(t_ref_s), rng_(rng) {
  options_.validate();
  GC_CHECK(t_ref_s > 0.0, "AdmissionController: t_ref must be positive");
}

void AdmissionController::update(double measured_rate, unsigned serving,
                                 double speed) {
  if (!options_.enabled) return;
  const double per_server =
      std::max(speed * options_.mu_max - 1.0 / t_ref_s_, 0.0);
  const double admittable =
      static_cast<double>(serving) * per_server * options_.target_fraction;
  if (measured_rate <= admittable || measured_rate <= 0.0) {
    p_admit_ = 1.0;
  } else {
    p_admit_ = admittable / measured_rate;
  }
}

bool AdmissionController::admit() {
  if (!options_.enabled || p_admit_ >= 1.0) return true;
  if (rng_.uniform01() < p_admit_) return true;
  ++shed_;
  return false;
}

}  // namespace gc
