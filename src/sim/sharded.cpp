// Conservative parallel DES over K cluster shards (sim/sharded.h,
// DESIGN.md §11).
//
// Execution model: the orchestrator thread owns a small EventQueue holding
// only control-plane events (ticks, record/warmup marks, delayed channel
// deliveries).  Before handling the events at barrier time t it advances
// every shard — in parallel — through all shard-local events with time <= t
// and all owned arrivals with time < t (a queue event wins a tie against an
// arrival at the same instant).  Between barriers shards never communicate,
// which is exactly the conservative-synchronization lookahead the DCP
// control structure guarantees: commands, telemetry and admission updates
// only happen at ticks.
//
// K-invariance (the determinism contract in the header) rests on three
// mechanisms, each tested by tests/test_sharded_determinism.cpp:
//   1. per-*server* RNG streams derived from (seed, global index) — never
//      per-shard or shared streams;
//   2. the frozen window assignment: arrival i maps to rank i mod m over
//      the serving set frozen at the window start, so every shard computes
//      its share of a global round-robin without seeing the other shards;
//   3. canonical reductions: every floating-point aggregate is folded from
//      per-server partials in ascending global-server-index order on the
//      orchestrator thread (integer totals commute and merge freely).
#include "sim/sharded.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "control/actuator.h"
#include "cp/lifecycle.h"
#include "obs/audit.h"
#include "obs/counters.h"
#include "obs/timeseries.h"
#include "power/power_model.h"
#include "sim/admission.h"
#include "sim/control_channel.h"
#include "sim/server.h"
#include "stats/accumulators.h"
#include "stats/log_histogram.h"
#include "stats/rng.h"
#include "util/assert.h"

namespace gc {
namespace {

constexpr double kInfTime = std::numeric_limits<double>::infinity();
constexpr std::size_t kNumEventTypes =
    static_cast<std::size_t>(EventType::kControllerRecover) + 1;

// -- RNG stream derivation (DESIGN.md §11.4) --------------------------------
// Every stochastic draw belongs to a stream addressed by (base seed, global
// server index), so the sequence any one server consumes is independent of
// how the fleet is sharded.  The control-plane seeds reuse the sequential
// engine's salts; the admission salt is sharded-only (the sequential engine
// sheds from one global stream, which is inherently order-dependent).
constexpr std::uint64_t kControlSeedSalt = 0x5ca1ab1ec0ffeeULL;  // = run_simulation
constexpr std::uint64_t kFaultSeedSalt = 0xfa7a17f00dULL;        // = run_simulation
constexpr std::uint64_t kAdmitSeedSalt = 0xad317755ULL;          // sharded-only
constexpr std::uint64_t kActuatorRngStream = 14;                 // = run_simulation
constexpr std::uint64_t kAdmissionRngStream = 7;                 // = run_simulation

// Index of the first arrival in block b*m + [rank0, rank0 + width) at or
// after `i`, where m is the frozen global serving count and [rank0,
// rank0 + width) this shard's frozen rank range.  A shard's owned arrivals
// form one contiguous run per m-aligned block, so iteration is O(owned),
// not O(all arrivals).
[[nodiscard]] std::size_t first_owned_at_or_after(std::size_t i, std::size_t m,
                                                  std::size_t rank0,
                                                  std::size_t width) {
  const std::size_t block = i / m;
  const std::size_t pos = i - block * m;
  if (pos < rank0) return block * m + rank0;
  if (pos < rank0 + width) return i;
  return (block + 1) * m + rank0;
}

[[nodiscard]] std::size_t next_owned(std::size_t i, std::size_t m,
                                     std::size_t rank0, std::size_t width) {
  const std::size_t pos = i % m;
  return pos + 1 == rank0 + width ? i + m - width + 1 : i + 1;
}

// Per-server metric partials.  Floating-point members are folded in
// canonical global-index order at barriers/end-of-run; never summed into
// shard-level floats on the worker threads.
struct PerServerStats {
  // Post-warmup response aggregate.
  std::uint64_t completed = 0;
  double response_sum = 0.0;
  double response_max = 0.0;
  // Lazy time-integrals of jobs-in-system / serving / not-FAILED, advanced
  // only when the underlying signal is about to change (and at flushes).
  double anchor = 0.0;
  double jobs_integral = 0.0;
  double serving_integral = 0.0;
  double available_integral = 0.0;
  // Per-window response partials: the timeseries tick window and the
  // timeline record window (reset by their respective canonical folds).
  double window_sum = 0.0;
  std::uint64_t window_count = 0;
  double record_sum = 0.0;
  std::uint64_t record_count = 0;
};

// One shard: a contiguous global-server-index range with its own event
// queue, servers, RNG streams, serving-set index and accumulators.  All
// methods run either on the shard's worker (between barriers) or on the
// orchestrator thread (at barriers) — never both concurrently.
struct Shard {
  // -- static configuration ------------------------------------------------
  std::uint32_t first = 0;  // global index range [first, last)
  std::uint32_t last = 0;
  PowerModel power_model{};  // shard-local copy: stable address for Servers
  TransitionModel transition_model{};
  const Distribution* job_size = nullptr;
  const FaultOptions* faults = nullptr;  // null when fault injection is off
  double t_ref_s = 0.1;
  double boot_timeout_s = 0.0;  // resolved (option 0 -> 3x boot delay)
  bool track_window = false;    // timeseries sink attached
  bool track_record = false;    // timeline recording on

  // -- simulation state -----------------------------------------------------
  EventQueue queue;
  std::vector<Server> servers;
  std::vector<Rng> size_rng;   // per server
  std::vector<Rng> admit_rng;  // per server; sized only when admission is on
  std::vector<Rng> fault_rng;  // per server; sized only when faults are on
  std::vector<std::vector<double>> scripted_times;   // per server, ascending
  std::vector<std::vector<double>> scripted_repair;  // parallel to the above
  std::vector<std::size_t> scripted_next;
  std::vector<char> background_armed;  // one background failure chain/server

  // O(1) fleet accounting (the sharded analogue of Cluster's
  // apply_transition bookkeeping).
  std::vector<std::uint32_t> serving_index;  // serving servers, ascending
  unsigned booting = 0;
  unsigned powered = 0;
  unsigned failed = 0;
  std::size_t jobs = 0;

  // Frozen round-robin assignment for the current window (copy-on-dirty:
  // refreshed at a barrier only when the serving set changed).
  bool serving_dirty = true;
  std::vector<std::uint32_t> frozen;

  // Commanded control state, broadcast by the orchestrator at barriers.
  unsigned target = 0;
  double commanded_speed = 1.0;
  double p_admit = 1.0;
  bool admission_on = false;
  bool measuring = false;

  // -- per-server statistics (canonical folds read these) -------------------
  std::vector<PerServerStats> stats;
  std::vector<EnergyBreakdown> warm_energy;
  std::vector<std::uint32_t> server_boots;
  std::vector<std::uint32_t> server_shutdowns;

  // -- shard integer totals (merge exactly in any order) --------------------
  std::array<std::uint64_t, kNumEventTypes> events{};
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t lost = 0;
  std::uint64_t failures = 0;
  std::uint64_t repairs = 0;
  std::uint64_t boot_timeouts = 0;
  std::uint64_t boots = 0;
  std::uint64_t shutdowns = 0;
  std::uint64_t violations = 0;  // post-warmup per-job tail violations
  LogHistogram response_hist;    // post-warmup

  // Per-control-period window (maintained only when track_window).
  LogHistogram window_hist;
  std::uint64_t window_completed = 0;
  std::uint64_t window_violations = 0;
  std::vector<std::uint32_t> window_touched;  // global indices, unsorted
  std::vector<std::uint32_t> record_touched;

  [[nodiscard]] unsigned size() const noexcept { return last - first; }
  [[nodiscard]] Server& server(std::uint32_t gi) noexcept {
    return servers[gi - first];
  }
  [[nodiscard]] unsigned serving_count() const noexcept {
    return static_cast<unsigned>(serving_index.size());
  }
  [[nodiscard]] unsigned committed_count() const noexcept {
    return serving_count() + booting;
  }
  [[nodiscard]] unsigned available_count() const noexcept {
    return size() - failed;
  }

  // Advances server gi's lazy time-integrals to `now` using its *current*
  // state; must run before any mutation of that state.
  void sync_stats(double now, std::uint32_t gi) {
    PerServerStats& ps = stats[gi - first];
    const double dt = now - ps.anchor;
    if (dt <= 0.0) return;
    const Server& s = servers[gi - first];
    ps.jobs_integral += dt * static_cast<double>(s.queue_length());
    if (s.serving()) ps.serving_integral += dt;
    if (!s.failed()) ps.available_integral += dt;
    ps.anchor = now;
  }

  void serving_insert(std::uint32_t gi) {
    serving_index.insert(
        std::lower_bound(serving_index.begin(), serving_index.end(), gi), gi);
    serving_dirty = true;
  }
  void serving_erase(std::uint32_t gi) {
    const auto it =
        std::lower_bound(serving_index.begin(), serving_index.end(), gi);
    GC_DCHECK(it != serving_index.end() && *it == gi,
              "sharded: serving index out of sync");
    serving_index.erase(it);
    serving_dirty = true;
  }

  // Runs a power-state mutation keeping the O(1) counters and the serving
  // index in sync (the shard-side mirror of Cluster::apply_transition).
  template <typename Fn>
  void transition(double now, std::uint32_t gi, Fn&& mutate) {
    Server& s = server(gi);
    sync_stats(now, gi);
    const PowerState before = s.state();
    const bool was_serving = s.serving();
    mutate(s);
    const PowerState after = s.state();
    if (before != after) {
      const bool was_powered = before != PowerState::kOff;
      const bool is_powered = after != PowerState::kOff;
      if (was_powered != is_powered) is_powered ? ++powered : --powered;
      const bool was_booting = before == PowerState::kBooting;
      const bool is_booting = after == PowerState::kBooting;
      if (was_booting != is_booting) is_booting ? ++booting : --booting;
      const bool was_failed = before == PowerState::kFailed;
      const bool is_failed = after == PowerState::kFailed;
      if (was_failed != is_failed) is_failed ? ++failed : --failed;
    }
    const bool is_serving = s.serving();
    if (was_serving != is_serving) {
      is_serving ? serving_insert(gi) : serving_erase(gi);
    }
  }

  [[nodiscard]] double sample_ttf(std::uint32_t li) {
    return -faults->mtbf_s * std::log(fault_rng[li].uniform01_open_left());
  }
  [[nodiscard]] double sample_ttr(std::uint32_t li) {
    return -faults->mttr_s * std::log(fault_rng[li].uniform01_open_left());
  }

  void boot_server(double now, std::uint32_t gi) {
    transition(now, gi, [&](Server& s) { s.start_boot(now); });
    ++boots;
    ++server_boots[gi - first];
    Server& s = server(gi);
    // Boot-hang draw from the server's own fault stream (the sequential
    // engine uses one shared stream; see DESIGN.md §11.1).  Drawn only when
    // the outcome can differ from a clean boot.
    if (faults != nullptr && faults->boot_hang_prob > 0.0 &&
        fault_rng[gi - first].uniform01() < faults->boot_hang_prob) {
      s.pending_transition =
          queue.schedule(now + boot_timeout_s, EventType::kBootTimeout, gi);
    } else {
      s.pending_transition = queue.schedule(
          now + transition_model.boot_delay_s, EventType::kBootComplete, gi);
    }
  }

  void start_drain(double now, std::uint32_t gi) {
    transition(now, gi, [&](Server& s) { s.set_draining(now, true); });
    maybe_begin_shutdown(now, gi);
  }

  void maybe_begin_shutdown(double now, std::uint32_t gi) {
    Server& s = server(gi);
    if (s.state() != PowerState::kOn || !s.draining() || s.queue_length() != 0) {
      return;
    }
    transition(now, gi, [&](Server& sv) { sv.begin_shutdown(now); });
    ++shutdowns;
    ++server_shutdowns[gi - first];
    s.pending_transition = queue.schedule(
        now + transition_model.shutdown_delay_s, EventType::kShutdownComplete, gi);
  }

  void on_boot_complete(double now, std::uint32_t gi) {
    transition(now, gi, [&](Server& s) { s.finish_boot(now); });
    server(gi).pending_transition = kInvalidEventId;
    // The target may have moved below gi while this boot was in flight.
    if (gi >= target) start_drain(now, gi);
  }

  void on_shutdown_complete(double now, std::uint32_t gi) {
    transition(now, gi, [&](Server& s) { s.finish_shutdown(now); });
    server(gi).pending_transition = kInvalidEventId;
    if (gi < target) boot_server(now, gi);
  }

  // Fail-stop crash: cancel the server's pending events, orphan its jobs
  // (lost — the sharded model never re-dispatches across the frozen
  // assignment) and count the failure.
  void crash(double now, std::uint32_t gi, bool from_boot_timeout) {
    Server& s = server(gi);
    queue.cancel(s.pending_departure);
    s.pending_departure = kInvalidEventId;
    queue.cancel(s.pending_transition);
    s.pending_transition = kInvalidEventId;
    std::vector<Job> orphans;
    transition(now, gi, [&](Server& sv) { orphans = sv.fail(now); });
    jobs -= orphans.size();
    lost += orphans.size();
    ++failures;
    if (from_boot_timeout) ++boot_timeouts;
  }

  void on_fail_event(double now, std::uint32_t gi) {
    const std::uint32_t li = gi - first;
    // Scripted kServerFail events carry their exact scripted time; matched
    // FIFO per server against the background failure chain.
    bool scripted = false;
    double repair_after = 0.0;
    if (scripted_next[li] < scripted_times[li].size() &&
        scripted_times[li][scripted_next[li]] == now) {
      scripted = true;
      repair_after = scripted_repair[li][scripted_next[li]];
      ++scripted_next[li];
    } else {
      background_armed[li] = 0;
    }
    const PowerState st = server(gi).state();
    const bool can_crash = st == PowerState::kBooting || st == PowerState::kOn ||
                           st == PowerState::kShuttingDown;
    if (scripted) {
      if (!can_crash) return;  // already OFF/FAILED: the script misses
      crash(now, gi, /*from_boot_timeout=*/false);
      if (std::isfinite(repair_after)) {
        queue.schedule(now + repair_after, EventType::kServerRepair, gi);
      }
      return;
    }
    if (!can_crash) {
      // Unpowered when the clock fired: restart the background clock.
      queue.schedule(now + sample_ttf(li), EventType::kServerFail, gi);
      background_armed[li] = 1;
      return;
    }
    crash(now, gi, /*from_boot_timeout=*/false);
    queue.schedule(now + sample_ttr(li), EventType::kServerRepair, gi);
  }

  void on_repair_event(double now, std::uint32_t gi) {
    Server& s = server(gi);
    if (s.state() != PowerState::kFailed) return;
    transition(now, gi, [&](Server& sv) { sv.finish_repair(now); });
    ++repairs;
    const std::uint32_t li = gi - first;
    if (faults != nullptr && faults->mtbf_s > 0.0 && !background_armed[li]) {
      queue.schedule(now + sample_ttf(li), EventType::kServerFail, gi);
      background_armed[li] = 1;
    }
    if (gi < target) boot_server(now, gi);
  }

  void on_boot_timeout(double now, std::uint32_t gi) {
    Server& s = server(gi);
    if (s.state() != PowerState::kBooting) return;
    s.pending_transition = kInvalidEventId;  // this event
    crash(now, gi, /*from_boot_timeout=*/true);
    queue.schedule(now + sample_ttr(gi - first), EventType::kServerRepair, gi);
  }

  // Reconciles towards the committed prefix [0, new_target): ascending scan
  // of the shard's range (deterministic order), booting OFF servers below
  // the target, reviving draining ones, draining serving ones at or above.
  void reconcile(double now, unsigned new_target) {
    target = new_target;
    for (std::uint32_t gi = first; gi < last; ++gi) {
      Server& s = server(gi);
      if (gi < target) {
        if (s.state() == PowerState::kOff) {
          boot_server(now, gi);
        } else if (s.state() == PowerState::kOn && s.draining()) {
          transition(now, gi, [&](Server& sv) { sv.set_draining(now, false); });
        }
        // BOOTING / SHUTTING_DOWN / FAILED catch up from their completion
        // events; an ON serving server is already where it should be.
      } else if (s.serving()) {
        start_drain(now, gi);
      }
    }
  }

  void set_speed_all(double now, double speed) {
    commanded_speed = speed;
    for (std::uint32_t gi = first; gi < last; ++gi) {
      Server& s = server(gi);
      const auto eta = s.set_speed(now, speed);
      if (eta) {
        queue.cancel(s.pending_departure);
        s.pending_departure = queue.schedule(*eta, EventType::kDeparture, gi);
      }
    }
  }

  void on_arrival(double now, std::size_t index, std::size_t window_m,
                  std::size_t rank0) {
    ++events[static_cast<std::size_t>(EventType::kArrival)];
    const std::uint32_t gi =
        frozen[static_cast<std::size_t>(index % window_m) - rank0];
    const std::uint32_t li = gi - first;
    if (admission_on && p_admit < 1.0) {
      // Shed draw from the assigned server's admission stream; drawn only
      // when the outcome is in doubt (p == 1 admits draw-free).
      if (admit_rng[li].uniform01() >= p_admit) {
        ++shed;
        return;
      }
    }
    ++admitted;
    Server& s = servers[li];
    if (!s.serving()) {
      // Frozen assignments outlive mid-window crashes/drains; arrivals to a
      // server that stopped serving are dropped, mirroring a stale routing
      // table.
      ++dropped;
      return;
    }
    sync_stats(now, gi);
    Job job;
    job.id = static_cast<std::uint64_t>(index);
    job.arrival_time = now;
    job.size = job.remaining = job_size->sample(size_rng[li]);
    ++jobs;
    const auto eta = s.enqueue(now, job);
    if (eta) {
      s.pending_departure = queue.schedule(*eta, EventType::kDeparture, gi);
    }
  }

  void on_departure(double now, std::uint32_t gi) {
    Server& s = server(gi);
    sync_stats(now, gi);
    const auto completion = s.complete_current(now);
    s.pending_departure =
        completion.next_eta
            ? queue.schedule(*completion.next_eta, EventType::kDeparture, gi)
            : kInvalidEventId;
    --jobs;
    const double response = now - completion.finished.arrival_time;
    if (measuring) {
      PerServerStats& ps = stats[gi - first];
      ++ps.completed;
      ps.response_sum += response;
      if (response > ps.response_max) ps.response_max = response;
      if (response > t_ref_s) ++violations;
      response_hist.add(response);
      if (track_window) {
        window_hist.add(response);
        ++window_completed;
        if (response > t_ref_s) ++window_violations;
        if (ps.window_count == 0) window_touched.push_back(gi);
        ps.window_sum += response;
        ++ps.window_count;
      }
      if (track_record) {
        if (ps.record_count == 0) record_touched.push_back(gi);
        ps.record_sum += response;
        ++ps.record_count;
      }
    }
    if (!completion.next_eta) maybe_begin_shutdown(now, gi);
  }

  void dispatch(const Event& event) {
    ++events[static_cast<std::size_t>(event.type)];
    switch (event.type) {
      case EventType::kDeparture: on_departure(event.time, event.subject); break;
      case EventType::kBootComplete:
        on_boot_complete(event.time, event.subject);
        break;
      case EventType::kShutdownComplete:
        on_shutdown_complete(event.time, event.subject);
        break;
      case EventType::kServerFail: on_fail_event(event.time, event.subject); break;
      case EventType::kServerRepair:
        on_repair_event(event.time, event.subject);
        break;
      case EventType::kBootTimeout:
        on_boot_timeout(event.time, event.subject);
        break;
      default: GC_CHECK(false, "sharded: unexpected shard-local event type");
    }
  }

  // Advances the shard through one lookahead window: every queued event
  // with time <= barrier and every owned arrival in [lo, hi) — arrival
  // times are < barrier by construction.  A queue event at an arrival's
  // exact time runs first.
  void advance_to(double barrier, const std::vector<double>& arrivals,
                  std::size_t lo, std::size_t hi, std::size_t window_m,
                  std::size_t rank0) {
    const std::size_t width = frozen.size();
    std::size_t next_arrival = hi;
    if (window_m > 0 && width > 0 && lo < hi) {
      next_arrival = first_owned_at_or_after(lo, window_m, rank0, width);
    }
    for (;;) {
      const double ta = next_arrival < hi ? arrivals[next_arrival] : kInfTime;
      const double tq = queue.empty() ? kInfTime : queue.next_time();
      if (tq <= ta && tq <= barrier) {
        const auto event = queue.pop();
        dispatch(*event);
        continue;
      }
      if (next_arrival < hi) {
        on_arrival(arrivals[next_arrival], next_arrival, window_m, rank0);
        next_arrival = next_owned(next_arrival, window_m, rank0, width);
        continue;
      }
      break;
    }
  }

  // Warmup barrier: flush and snapshot energy, zero the time-integrals, and
  // start recording response statistics.
  void begin_measuring(double now) {
    for (std::uint32_t gi = first; gi < last; ++gi) {
      sync_stats(now, gi);
      const std::uint32_t li = gi - first;
      Server& s = servers[li];
      s.flush_energy(now);
      warm_energy[li] =
          EnergyBreakdown{s.meter().joules_busy(), s.meter().joules_idle(),
                          s.meter().joules_transition(), s.meter().joules_off()};
      PerServerStats& ps = stats[li];
      ps.anchor = now;
      ps.jobs_integral = 0.0;
      ps.serving_integral = 0.0;
      ps.available_integral = 0.0;
    }
    measuring = true;
  }

  void finalize(double now) {
    for (std::uint32_t gi = first; gi < last; ++gi) {
      sync_stats(now, gi);
      server(gi).flush_energy(now);
    }
  }
};

struct TelemetrySnapshot {
  double sample_time = 0.0;
  double rate = 0.0;
  unsigned serving = 0;
  unsigned committed = 0;
  unsigned powered = 0;
  unsigned available = 0;
  std::uint64_t jobs = 0;
};

struct AckMessage {
  CommandKind kind = CommandKind::kTarget;
  std::uint64_t gen = 0;
};

}  // namespace

SimResult run_sharded_simulation(const Trace& trace, const Distribution& job_size,
                                 std::uint64_t workload_seed,
                                 const ClusterOptions& cluster,
                                 Controller& controller,
                                 const SimulationOptions& options,
                                 const ShardedOptions& sharded) {
  // -- validation -----------------------------------------------------------
  GC_CHECK(cluster.num_servers > 0, "sharded: cluster must have servers");
  GC_CHECK(cluster.groups.empty(),
           "sharded: heterogeneous server groups are sequential-only");
  GC_CHECK(!options.controller_faults.enabled(),
           "sharded: controller outages are sequential-only");
  GC_CHECK(sharded.num_shards >= 1, "sharded: num_shards must be >= 1");
  if (options.faults.enabled()) options.faults.validate();
  options.admission.validate();
  options.channel.validate();
  options.actuator.validate();

  const unsigned num_servers = cluster.num_servers;
  const unsigned num_shards = std::min(sharded.num_shards, num_servers);
  if (sharded.profile != nullptr) {
    sharded.profile->shard_busy_s.assign(num_shards, 0.0);
    sharded.profile->barrier_wall_s = 0.0;
    sharded.profile->barriers = 0;
  }
  ThreadPool& pool = sharded.pool != nullptr ? *sharded.pool : global_pool();
  const std::vector<double>& arrivals = trace.timestamps();

  const double t_short = controller.short_period_s();
  const double t_long = controller.long_period_s();
  GC_CHECK(t_short > 0.0 && t_long > 0.0,
           "sharded: controller periods must be positive");

  const std::uint64_t control_seed = cluster.dispatch_seed ^ kControlSeedSalt;
  const std::uint64_t fault_seed = options.faults.seed != 0
                                       ? options.faults.seed
                                       : cluster.dispatch_seed ^ kFaultSeedSalt;
  ControlChannel channel(options.channel, control_seed);
  CommandActuator actuator(options.actuator,
                           Rng(control_seed, kActuatorRngStream));
  // Causal lifecycle tracker (cp/lifecycle.h).  Every transition it records
  // happens on the orchestrator thread between barriers, so its histograms
  // and counters are deterministic and K-invariant — the shard-determinism
  // suite's counters equality across K covers them.
  LifecycleTracker lifecycle;
  lifecycle.set_expect_acks(actuator.enabled());
  lifecycle.set_expect_applies(true);
  // The orchestrator instance only computes the admit probability; the
  // per-arrival draws happen shard-side from per-server streams.
  AdmissionController admission(options.admission, options.t_ref_s,
                                Rng(cluster.dispatch_seed, kAdmissionRngStream));

  const unsigned initial_active = std::min(cluster.initial_active, num_servers);

  // -- shard construction ---------------------------------------------------
  // Contiguous ranges: the first (num_servers % K) shards get one extra.
  const unsigned shard_base = num_servers / num_shards;
  const unsigned shard_extra = num_servers % num_shards;
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(num_shards);
  {
    std::uint32_t next_first = 0;
    for (unsigned k = 0; k < num_shards; ++k) {
      auto shard = std::make_unique<Shard>();
      Shard& s = *shard;
      s.first = next_first;
      s.last = next_first + shard_base + (k < shard_extra ? 1 : 0);
      next_first = s.last;
      s.power_model = PowerModel(cluster.power);
      s.transition_model = cluster.transition;
      s.job_size = &job_size;
      s.t_ref_s = options.t_ref_s;
      s.track_window = options.timeseries != nullptr;
      s.track_record = options.record_interval_s > 0.0;
      s.target = initial_active;
      s.commanded_speed = cluster.initial_speed;
      s.admission_on = options.admission.enabled;
      s.measuring = options.warmup_s <= 0.0;
      if (options.expected_events_hint > 0) {
        s.queue.reserve(options.expected_events_hint / num_shards + 1);
      }
      const unsigned count = s.size();
      s.servers.reserve(count);
      s.size_rng.reserve(count);
      s.stats.resize(count);
      s.warm_energy.resize(count);
      s.server_boots.assign(count, 0);
      s.server_shutdowns.assign(count, 0);
      for (std::uint32_t gi = s.first; gi < s.last; ++gi) {
        const bool initially_on = gi < initial_active;
        s.servers.emplace_back(gi, &s.power_model, cluster.initial_speed,
                               initially_on, 0.0);
        s.size_rng.emplace_back(workload_seed, gi);
        if (initially_on) {
          s.serving_index.push_back(gi);
          ++s.powered;
        }
      }
      if (options.admission.enabled) {
        s.admit_rng.reserve(count);
        for (std::uint32_t gi = s.first; gi < s.last; ++gi) {
          s.admit_rng.emplace_back(workload_seed ^ kAdmitSeedSalt, gi);
        }
      }
      if (options.faults.enabled()) {
        s.faults = &options.faults;
        s.boot_timeout_s = options.faults.boot_timeout_s > 0.0
                               ? options.faults.boot_timeout_s
                               : 3.0 * cluster.transition.boot_delay_s;
        s.fault_rng.reserve(count);
        for (std::uint32_t gi = s.first; gi < s.last; ++gi) {
          s.fault_rng.emplace_back(fault_seed, gi);
        }
        s.scripted_times.resize(count);
        s.scripted_repair.resize(count);
        s.scripted_next.assign(count, 0);
        s.background_armed.assign(count, 0);
        for (const ScriptedFault& f : options.faults.script) {
          if (f.server >= s.first && f.server < s.last) {
            s.scripted_times[f.server - s.first].push_back(f.time);
            s.scripted_repair[f.server - s.first].push_back(f.repair_after_s);
          }
        }
        for (std::uint32_t li = 0; li < count; ++li) {
          // Keep (time, repair) pairs sorted by time so the FIFO match at
          // on_fail_event sees them in firing order.
          auto& times = s.scripted_times[li];
          auto& reps = s.scripted_repair[li];
          std::vector<std::size_t> order(times.size());
          for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
          std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return times[a] < times[b];
          });
          std::vector<double> st(times.size()), sr(times.size());
          for (std::size_t i = 0; i < order.size(); ++i) {
            st[i] = times[order[i]];
            sr[i] = reps[order[i]];
          }
          times = std::move(st);
          reps = std::move(sr);
          for (const double t : times) {
            s.queue.schedule(t, EventType::kServerFail, s.first + li);
          }
          if (options.faults.mtbf_s > 0.0) {
            s.queue.schedule(s.sample_ttf(li), EventType::kServerFail,
                             s.first + li);
            s.background_armed[li] = 1;
          }
        }
      }
      shards.push_back(std::move(shard));
    }
  }

  auto parallel_shards = [&](const std::function<void(std::size_t)>& body) {
    if (num_shards == 1) {
      body(0);
    } else {
      pool.parallel_for_index(num_shards, body);
    }
  };

  // Maps a global server index to its owning shard (contiguous ranges).
  auto shard_of = [&](std::uint32_t gi) -> Shard& {
    const std::uint32_t boundary = shard_extra * (shard_base + 1);
    const std::uint32_t k = gi < boundary
                                ? gi / (shard_base + 1)
                                : shard_extra + (gi - boundary) / shard_base;
    return *shards[k];
  };

  // -- fleet totals (O(K) integer sums; K-invariant) ------------------------
  auto serving_total = [&] {
    unsigned n = 0;
    for (const auto& s : shards) n += s->serving_count();
    return n;
  };
  auto committed_total = [&] {
    unsigned n = 0;
    for (const auto& s : shards) n += s->committed_count();
    return n;
  };
  auto powered_total = [&] {
    unsigned n = 0;
    for (const auto& s : shards) n += s->powered;
    return n;
  };
  auto available_total = [&] {
    unsigned n = 0;
    for (const auto& s : shards) n += s->available_count();
    return n;
  };
  auto jobs_total = [&] {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s->jobs;
    return n;
  };
  auto fold_power = [&] {
    // Canonical order: shards are contiguous ascending ranges, so this is
    // the global-server-index fold.
    double watts = 0.0;
    for (const auto& s : shards) {
      for (const Server& server : s->servers) watts += server.instantaneous_power();
    }
    return watts;
  };

  // -- orchestrator state ---------------------------------------------------
  EventQueue orchestrator;
  std::array<std::uint64_t, kNumEventTypes> orchestrator_events{};
  SlotStore<TelemetrySnapshot> telemetry_store;
  SlotStore<Command> command_store;
  SlotStore<AckMessage> ack_store;

  double now = 0.0;
  std::size_t cursor = 0;  // arrivals consumed (times strictly < now)
  // Arrivals landing in a window with an empty global serving set are
  // dropped at the orchestrator (no per-server stream exists to charge).
  std::uint64_t orphaned_arrivals = 0;

  std::size_t window_m = 0;
  std::vector<std::size_t> window_rank0(num_shards, 0);

  // Advances every shard to `barrier` behind a freshly frozen assignment.
  auto advance_barrier = [&](double barrier) {
    if (barrier <= now) return;
    std::size_t rank = 0;
    for (unsigned k = 0; k < num_shards; ++k) {
      Shard& s = *shards[k];
      if (s.serving_dirty) {
        s.frozen = s.serving_index;
        s.serving_dirty = false;
      }
      window_rank0[k] = rank;
      rank += s.frozen.size();
    }
    window_m = rank;
    const std::size_t lo = cursor;
    const std::size_t hi = static_cast<std::size_t>(
        std::lower_bound(arrivals.begin() + static_cast<std::ptrdiff_t>(lo),
                         arrivals.end(), barrier) -
        arrivals.begin());
    if (window_m == 0) orphaned_arrivals += hi - lo;
    const std::size_t arrivals_hi = window_m == 0 ? lo : hi;
    if (ShardProfile* prof = sharded.profile; prof != nullptr) {
      // Self-profiled path: per-shard busy time is read inside the worker
      // (each shard writes its own slot — no contention), the wall reading
      // brackets the whole fan-out-to-last-completion span.  Wall-clock
      // readings never feed the simulation or SimResult.
      using clock = std::chrono::steady_clock;
      const auto wall0 = clock::now();
      parallel_shards([&](std::size_t k) {
        const auto t0 = clock::now();
        shards[k]->advance_to(barrier, arrivals, lo, arrivals_hi, window_m,
                              window_rank0[k]);
        prof->shard_busy_s[k] +=
            std::chrono::duration<double>(clock::now() - t0).count();
      });
      prof->barrier_wall_s +=
          std::chrono::duration<double>(clock::now() - wall0).count();
      ++prof->barriers;
    } else {
      parallel_shards([&](std::size_t k) {
        shards[k]->advance_to(barrier, arrivals, lo, arrivals_hi, window_m,
                              window_rank0[k]);
      });
    }
    cursor = hi;
    now = barrier;
  };

  // Telemetry acceptance: newest-sample-wins, reordered samples discarded.
  // Seeded from the t = 0 ground truth so a dropped first sample still
  // leaves the controller something coherent to look at.
  TelemetrySnapshot latest;
  latest.serving = serving_total();
  latest.committed = committed_total();
  latest.powered = powered_total();
  latest.available = available_total();
  std::uint64_t telemetry_stale = 0;
  auto accept_telemetry = [&](const TelemetrySnapshot& snap) {
    if (snap.sample_time >= latest.sample_time) {
      latest = snap;
    } else {
      ++telemetry_stale;
    }
  };

  // Command application: generation-deduped, fanned out to all shards.
  std::array<std::uint64_t, kNumCommandKinds> last_applied_gen{};
  unsigned commanded_target = initial_active;
  double commanded_speed = cluster.initial_speed;
  std::uint64_t command_duplicates = 0;
  TimeWeightedAccumulator speed_avg(0.0);

  // Every ack delivery funnels through here so the lifecycle tracker sees
  // the arrival before the actuator clears the lane.
  auto deliver_ack = [&](double t, CommandKind kind, std::uint64_t gen) {
    lifecycle.on_acked(t, kind, gen);
    actuator.on_ack(t, kind, gen);
  };

  auto send_ack = [&](double t, const Command& cmd) {
    if (!actuator.enabled()) return;
    if (!options.channel.enabled) {
      deliver_ack(t, cmd.kind, cmd.gen);
      return;
    }
    (void)lifecycle.next_frame_id(FrameClass::kAck);
    const auto delay = channel.ack_delay();
    if (!delay) {
      // Dropped; channel counters account for the loss, the attribution
      // matrix charges it to the lossy link.
      lifecycle.on_frame_dropped(FrameClass::kAck, DropCause::kChannel);
      return;
    }
    if (*delay == 0.0) {
      deliver_ack(t, cmd.kind, cmd.gen);
    } else {
      orchestrator.schedule(t + *delay, EventType::kAckDeliver,
                            ack_store.put(AckMessage{cmd.kind, cmd.gen}));
    }
  };

  auto apply_command = [&](double t, const Command& cmd) {
    const auto lane = static_cast<std::size_t>(cmd.kind);
    if (cmd.gen <= last_applied_gen[lane]) {
      // Reordered or retransmitted: dedup, but re-ack (the original ack may
      // have been the casualty).
      ++command_duplicates;
      send_ack(t, cmd);
      return;
    }
    last_applied_gen[lane] = cmd.gen;
    if (cmd.kind == CommandKind::kTarget) {
      const unsigned target =
          std::clamp(static_cast<unsigned>(cmd.value), 1u, num_servers);
      commanded_target = target;
      parallel_shards([&](std::size_t k) { shards[k]->reconcile(t, target); });
    } else {
      speed_avg.advance(t, commanded_speed);
      commanded_speed = cmd.value;
      parallel_shards(
          [&](std::size_t k) { shards[k]->set_speed_all(t, cmd.value); });
    }
    lifecycle.on_applied(t, cmd.kind, cmd.gen);
    send_ack(t, cmd);
  };

  auto ship_command = [&](double t, const Command& cmd) {
    if (!options.channel.enabled) {
      apply_command(t, cmd);
      return;
    }
    const auto delay = channel.command_delay();
    if (!delay) {  // dropped
      lifecycle.on_command_frame_dropped(t, cmd, DropCause::kChannel);
      return;
    }
    if (*delay == 0.0) {
      apply_command(t, cmd);
    } else {
      orchestrator.schedule(t + *delay, EventType::kCommandDeliver,
                            command_store.put(cmd));
    }
  };

  // -- observability state --------------------------------------------------
  std::vector<TimelinePoint> timeline;
  bool measuring = options.warmup_s <= 0.0;
  double measure_start = 0.0;
  double local_rate = 0.0;
  double last_short_time = 0.0;
  std::size_t last_short_cursor = 0;
  double last_record_time = 0.0;
  std::size_t last_record_cursor = 0;
  std::uint64_t ticks_total = 0;
  std::uint64_t infeasible_total = 0;
  double reliab_avail_sum = 0.0;
  double reliab_spares_sum = 0.0;
  std::uint64_t reliab_plan_ticks = 0;
  double ts_target_sticky = static_cast<double>(initial_active);
  double ts_spares_sticky = 0.0;
  double ts_avail_sticky = 0.0;
  double ts_energy = 0.0;
  double ts_last_power = 0.0;
  double ts_last_time = 0.0;
  bool ts_have_sample = false;
  struct WarmSnapshot {
    std::uint64_t admitted = 0, shed = 0, dropped = 0, lost = 0;
    std::uint64_t failures = 0, repairs = 0, boot_timeouts = 0;
    std::uint64_t boots = 0, shutdowns = 0;
    std::uint64_t ticks = 0, infeasible = 0;
  } warm;
  struct TsPrev {
    std::uint64_t admitted = 0, shed = 0;
    std::uint64_t telemetry_dropped = 0, commands_dropped = 0, acks_dropped = 0;
    std::uint64_t retries = 0, duplicates = 0;
    std::uint64_t boots = 0, shutdowns = 0;
  } ts_prev;

  auto admitted_total = [&] {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s->admitted;
    return n + orphaned_arrivals;
  };
  auto shed_total = [&] {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s->shed;
    return n;
  };
  auto dropped_total = [&] {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s->dropped;
    return n + orphaned_arrivals;
  };
  auto boots_total = [&] {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s->boots;
    return n;
  };
  auto shutdowns_total = [&] {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s->shutdowns;
    return n;
  };

  const WearModel wear(options.reliability);

  std::vector<std::uint32_t> touched_scratch;
  LogHistogram window_hist_merged;

  // Fold + reset the per-tick response window across shards.  The mean is
  // folded from per-server sums in ascending global-index order.
  struct WindowStats {
    std::uint64_t completed = 0;
    std::uint64_t violations = 0;
    double mean = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  auto take_window = [&]() -> WindowStats {
    WindowStats w;
    window_hist_merged.clear();
    touched_scratch.clear();
    for (const auto& s : shards) {
      w.completed += s->window_completed;
      w.violations += s->window_violations;
      window_hist_merged.merge(s->window_hist);
      touched_scratch.insert(touched_scratch.end(), s->window_touched.begin(),
                             s->window_touched.end());
      s->window_hist.clear();
      s->window_completed = 0;
      s->window_violations = 0;
      s->window_touched.clear();
    }
    std::sort(touched_scratch.begin(), touched_scratch.end());
    double sum = 0.0;
    for (const std::uint32_t gi : touched_scratch) {
      Shard& s = shard_of(gi);
      PerServerStats& ps = s.stats[gi - s.first];
      sum += ps.window_sum;
      ps.window_sum = 0.0;
      ps.window_count = 0;
    }
    if (w.completed > 0) {
      w.mean = sum / static_cast<double>(w.completed);
      w.p95 = window_hist_merged.quantile(0.95);
      w.p99 = window_hist_merged.quantile(0.99);
    }
    return w;
  };

  auto take_record_window = [&]() -> double {
    touched_scratch.clear();
    for (const auto& s : shards) {
      touched_scratch.insert(touched_scratch.end(), s->record_touched.begin(),
                             s->record_touched.end());
      s->record_touched.clear();
    }
    std::sort(touched_scratch.begin(), touched_scratch.end());
    double sum = 0.0;
    std::uint64_t count = 0;
    for (const std::uint32_t gi : touched_scratch) {
      Shard& s = shard_of(gi);
      PerServerStats& ps = s.stats[gi - s.first];
      sum += ps.record_sum;
      count += ps.record_count;
      ps.record_sum = 0.0;
      ps.record_count = 0;
    }
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  };

  // -- control tick ---------------------------------------------------------
  std::vector<Command> retransmit_buffer;
  auto handle_tick = [&](double t, bool long_tick) {
    // The rate is measured at the fleet (ground truth) and *shipped* to
    // the controller.  Long ticks sample the partial short window without
    // resetting it (same as the sequential loop).
    const double elapsed = t - last_short_time;
    local_rate = elapsed > 0.0
                     ? static_cast<double>(cursor - last_short_cursor) / elapsed
                     : 0.0;
    if (!long_tick) {
      last_short_time = t;
      last_short_cursor = cursor;
    }
    TelemetrySnapshot snap;
    snap.sample_time = t;
    snap.rate = local_rate;
    snap.serving = serving_total();
    snap.committed = committed_total();
    snap.powered = powered_total();
    snap.available = available_total();
    snap.jobs = jobs_total();
    if (!options.channel.enabled) {
      latest = snap;
    } else {
      (void)lifecycle.next_frame_id(FrameClass::kTelemetry);
      if (const auto delay = channel.telemetry_delay()) {
        if (*delay == 0.0) {
          accept_telemetry(snap);
        } else {
          orchestrator.schedule(t + *delay, EventType::kTelemetryDeliver,
                                telemetry_store.put(snap));
        }
      } else {
        lifecycle.on_frame_dropped(FrameClass::kTelemetry, DropCause::kChannel);
      }
    }

    ControlContext ctx;
    ctx.now = t;
    ctx.measured_rate = latest.rate;
    ctx.serving = latest.serving;
    ctx.committed = latest.committed;
    ctx.powered = latest.powered;
    ctx.available = latest.available;
    ctx.jobs_in_system = latest.jobs;
    ctx.obs_age_s = t - latest.sample_time;
    ctx.safe_mode = false;
    if (actuator.enabled()) {
      if (const auto v = actuator.acked_value(CommandKind::kTarget)) {
        ctx.acked_target = static_cast<unsigned>(*v);
      }
      if (const auto v = actuator.acked_value(CommandKind::kSpeed)) {
        ctx.acked_speed = *v;
      }
    }

    const ControlAction action =
        long_tick ? controller.on_long_tick(ctx) : controller.on_short_tick(ctx);
    if (action.active_target) {
      ts_target_sticky = static_cast<double>(*action.active_target);
      const Command cmd =
          actuator.issue(t, CommandKind::kTarget,
                         static_cast<double>(*action.active_target), 0);
      lifecycle.on_issued(t, cmd, ctx.obs_age_s);
      ship_command(t, cmd);
    }
    if (action.speed) {
      const Command cmd = actuator.issue(t, CommandKind::kSpeed, *action.speed, 0);
      lifecycle.on_issued(t, cmd, ctx.obs_age_s);
      ship_command(t, cmd);
    }
    if (actuator.enabled()) {
      retransmit_buffer.clear();
      actuator.poll(t, retransmit_buffer);
      for (const Command& cmd : retransmit_buffer) {
        lifecycle.on_retransmit(t, cmd);
        ship_command(t, cmd);
      }
      // A lane with nothing outstanding whose newest tracked command never
      // got an ack just reconciled (retry budget exhausted).
      for (int k = 0; k < kNumCommandKinds; ++k) {
        const auto kind = static_cast<CommandKind>(k);
        if (!actuator.outstanding(kind)) lifecycle.on_lane_reconciled(t, kind);
      }
    }
    ++ticks_total;
    if (action.infeasible) ++infeasible_total;
    if (action.explain.solved_spares >= 0) {
      ts_spares_sticky = action.explain.solved_spares;
      ts_avail_sticky = action.explain.availability_est;
      if (long_tick) {
        // Fresh reliability plan (short ticks only re-report it).
        ++reliab_plan_ticks;
        reliab_spares_sum += action.explain.solved_spares;
        reliab_avail_sum += action.explain.availability_est;
      }
    }
    if (admission.enabled()) {
      // Admission is fleet-local (data plane): it protects the SLA from
      // the true local rate and the post-command fleet state.
      admission.update(local_rate, serving_total(), commanded_speed);
      const double p = admission.admit_probability();
      for (const auto& s : shards) s->p_admit = p;
    }
    const double p_admit = admission.enabled() ? admission.admit_probability() : 1.0;

    if (options.timeseries != nullptr) {
      TimeSeriesSample sample;
      sample.time = t;
      sample.long_tick = long_tick;
      sample.measured = measuring;
      sample.observed_rate = ctx.measured_rate;
      sample.local_rate = local_rate;
      sample.predicted_rate = action.explain.predicted_rate;
      sample.planning_rate = action.explain.planning_rate;
      sample.target_m = ts_target_sticky;
      sample.serving = serving_total();
      sample.committed = committed_total();
      sample.powered = powered_total();
      sample.available = available_total();
      sample.speed = commanded_speed;
      sample.power_w = fold_power();
      if (ts_have_sample) ts_energy += ts_last_power * (t - ts_last_time);
      ts_last_power = sample.power_w;
      ts_last_time = t;
      ts_have_sample = true;
      sample.energy_j = ts_energy;
      sample.queue_depth = jobs_total();
      const WindowStats window = take_window();
      sample.window_completed = window.completed;
      sample.window_mean_response_s = window.mean;
      sample.window_p95_response_s = window.p95;
      sample.window_p99_response_s = window.p99;
      sample.window_violation_fraction =
          window.completed > 0
              ? static_cast<double>(window.violations) /
                    static_cast<double>(window.completed)
              : 0.0;
      sample.window_violated =
          window.completed > 0 && window.mean > options.t_ref_s;
      const std::uint64_t admitted_now = admitted_total();
      const std::uint64_t shed_now = shed_total();
      sample.d_admitted = admitted_now - ts_prev.admitted;
      sample.d_shed = shed_now - ts_prev.shed;
      ts_prev.admitted = admitted_now;
      ts_prev.shed = shed_now;
      sample.admit_probability = p_admit;
      sample.obs_age_s = ctx.obs_age_s;
      sample.safe_mode = false;
      sample.infeasible = action.infeasible;
      const std::uint64_t tele_drop = channel.telemetry_counters().dropped;
      const std::uint64_t cmd_drop = channel.command_counters().dropped;
      const std::uint64_t ack_drop = channel.ack_counters().dropped;
      sample.d_telemetry_dropped = tele_drop - ts_prev.telemetry_dropped;
      sample.d_commands_dropped = cmd_drop - ts_prev.commands_dropped;
      sample.d_acks_dropped = ack_drop - ts_prev.acks_dropped;
      sample.d_command_retries = actuator.retries() - ts_prev.retries;
      sample.d_command_duplicates = command_duplicates - ts_prev.duplicates;
      ts_prev.telemetry_dropped = tele_drop;
      ts_prev.commands_dropped = cmd_drop;
      ts_prev.acks_dropped = ack_drop;
      ts_prev.retries = actuator.retries();
      ts_prev.duplicates = command_duplicates;
      sample.d_ticks_missed = 0;
      const std::uint64_t boots_now = boots_total();
      const std::uint64_t shutdowns_now = shutdowns_total();
      sample.d_boots = boots_now - ts_prev.boots;
      sample.d_shutdowns = shutdowns_now - ts_prev.shutdowns;
      ts_prev.boots = boots_now;
      ts_prev.shutdowns = shutdowns_now;
      sample.solved_spares = ts_spares_sticky;
      sample.availability_est = ts_avail_sticky;
      if (wear.enabled()) {
        double wear_sum = 0.0;
        for (const auto& s : shards) {
          for (std::uint32_t li = 0; li < s->size(); ++li) {
            wear_sum += wear.wear_fraction(s->server_boots[li],
                                           s->server_shutdowns[li]);
          }
        }
        sample.wear_fraction = wear_sum / static_cast<double>(num_servers);
      }
      options.timeseries->append(sample);
    }

    if (options.audit != nullptr) {
      AuditRecord record;
      record.time_s = t;
      record.long_tick = long_tick;
      record.observed_rate = ctx.measured_rate;
      record.serving = ctx.serving;
      record.committed = ctx.committed;
      record.powered = ctx.powered;
      record.available = ctx.available;
      record.jobs_in_system = ctx.jobs_in_system;
      record.predicted_rate = action.explain.predicted_rate;
      record.planning_rate = action.explain.planning_rate;
      record.safety_margin = action.explain.safety_margin;
      record.planned_servers = action.explain.planned_servers;
      record.detected_available = action.explain.detected_available;
      record.target_set = action.active_target.has_value();
      if (action.active_target) {
        record.target_servers = *action.active_target;
        record.delta_servers = static_cast<int>(*action.active_target) -
                               static_cast<int>(ctx.committed);
      }
      record.speed_set = action.speed.has_value();
      if (action.speed) record.speed = *action.speed;
      record.infeasible = action.infeasible;
      record.admit_probability = p_admit;
      record.obs_age_s = ctx.obs_age_s;
      record.safe_mode = false;
      record.solved_spares = action.explain.solved_spares;
      record.availability_est = action.explain.availability_est;
      record.binding_constraint = action.explain.binding_constraint;
      options.audit->append(record);
    }

    orchestrator.schedule(t + (long_tick ? t_long : t_short),
                          long_tick ? EventType::kLongTick : EventType::kShortTick,
                          0);
  };

  auto handle_record = [&](double t) {
    TimelinePoint point;
    point.time = t;
    const double elapsed = t - last_record_time;
    point.arrival_rate =
        elapsed > 0.0
            ? static_cast<double>(cursor - last_record_cursor) / elapsed
            : 0.0;
    last_record_time = t;
    last_record_cursor = cursor;
    point.serving = serving_total();
    point.powered = powered_total();
    point.available = available_total();
    point.speed = commanded_speed;
    point.power_watts = fold_power();
    point.jobs_in_system = static_cast<double>(jobs_total());
    point.window_mean_response_s = take_record_window();
    point.admit_probability =
        admission.enabled() ? admission.admit_probability() : 1.0;
    timeline.push_back(point);
    orchestrator.schedule(t + options.record_interval_s, EventType::kRecord, 0);
  };

  // -- initial schedule -----------------------------------------------------
  // Long before short at t = 0: at coincident ticks the long (VOVF)
  // decision wins the tie, and because T_long >= T_short the rescheduling
  // order preserves that at every later coincidence.
  orchestrator.schedule(0.0, EventType::kLongTick, 0);
  orchestrator.schedule(0.0, EventType::kShortTick, 0);
  if (options.record_interval_s > 0.0) {
    orchestrator.schedule(options.record_interval_s, EventType::kRecord, 0);
  }
  if (options.warmup_s > 0.0) {
    orchestrator.schedule(options.warmup_s, EventType::kWarmupEnd, 0);
  }

  // -- main barrier loop ----------------------------------------------------
  double end_time;
  for (;;) {
    const auto event = orchestrator.pop();
    GC_CHECK(event.has_value(), "sharded: orchestrator queue drained");
    const double t = event->time;
    if (options.hard_stop_s > 0.0 && t > options.hard_stop_s) {
      advance_barrier(options.hard_stop_s);
      end_time = options.hard_stop_s;
      break;
    }
    advance_barrier(t);
    ++orchestrator_events[static_cast<std::size_t>(event->type)];
    bool done = false;
    switch (event->type) {
      case EventType::kShortTick:
      case EventType::kLongTick:
        handle_tick(t, event->type == EventType::kLongTick);
        done = cursor == arrivals.size() && jobs_total() == 0;
        break;
      case EventType::kRecord: handle_record(t); break;
      case EventType::kWarmupEnd: {
        parallel_shards([&](std::size_t k) { shards[k]->begin_measuring(t); });
        measuring = true;
        measure_start = t;
        warm.admitted = admitted_total();
        warm.shed = shed_total();
        warm.dropped = dropped_total();
        warm.boots = boots_total();
        warm.shutdowns = shutdowns_total();
        for (const auto& s : shards) {
          warm.lost += s->lost;
          warm.failures += s->failures;
          warm.repairs += s->repairs;
          warm.boot_timeouts += s->boot_timeouts;
        }
        warm.ticks = ticks_total;
        warm.infeasible = infeasible_total;
        speed_avg.advance(t, commanded_speed);
        speed_avg = TimeWeightedAccumulator(t);
        break;
      }
      case EventType::kTelemetryDeliver:
        accept_telemetry(telemetry_store.take(event->subject));
        break;
      case EventType::kCommandDeliver:
        apply_command(t, command_store.take(event->subject));
        break;
      case EventType::kAckDeliver: {
        const AckMessage ack = ack_store.take(event->subject);
        deliver_ack(t, ack.kind, ack.gen);
        break;
      }
      default: GC_CHECK(false, "sharded: unexpected orchestrator event type");
    }
    if (done) {
      end_time = t;
      break;
    }
  }

  parallel_shards([&](std::size_t k) { shards[k]->finalize(end_time); });
  lifecycle.finalize_all(end_time);
  speed_avg.advance(end_time, commanded_speed);
  if (!measuring) measure_start = end_time;
  const double sim_time = end_time - measure_start;

  // -- canonical fold into SimResult ---------------------------------------
  SimResult result;
  std::uint64_t completed = 0;
  std::uint64_t violations = 0;
  double response_sum = 0.0;
  double response_max = 0.0;
  double jobs_integral = 0.0;
  double serving_integral = 0.0;
  double available_integral = 0.0;
  EnergyBreakdown energy;
  LogHistogram response_hist;
  result.server_cycles.resize(num_servers);
  double wear_sum = 0.0;
  for (const auto& sp : shards) {
    const Shard& s = *sp;
    violations += s.violations;
    response_hist.merge(s.response_hist);
    for (std::uint32_t li = 0; li < s.size(); ++li) {
      const PerServerStats& ps = s.stats[li];
      completed += ps.completed;
      response_sum += ps.response_sum;
      if (ps.response_max > response_max) response_max = ps.response_max;
      jobs_integral += ps.jobs_integral;
      serving_integral += ps.serving_integral;
      available_integral += ps.available_integral;
      const EnergyMeter& meter = s.servers[li].meter();
      energy.busy_j += meter.joules_busy() - s.warm_energy[li].busy_j;
      energy.idle_j += meter.joules_idle() - s.warm_energy[li].idle_j;
      energy.transition_j +=
          meter.joules_transition() - s.warm_energy[li].transition_j;
      energy.off_j += meter.joules_off() - s.warm_energy[li].off_j;
      result.server_cycles[s.first + li] =
          s.server_boots[li] + s.server_shutdowns[li];
      const double frac =
          wear.wear_fraction(s.server_boots[li], s.server_shutdowns[li]);
      wear_sum += frac;
      if (frac > result.wear_fraction_max) result.wear_fraction_max = frac;
    }
  }

  result.completed_jobs = completed;
  result.dropped_jobs = dropped_total() - warm.dropped;
  result.shed_jobs = shed_total() - warm.shed;
  std::uint64_t lost_whole = 0, failures_whole = 0, repairs_whole = 0,
                boot_timeouts_whole = 0;
  for (const auto& s : shards) {
    lost_whole += s->lost;
    failures_whole += s->failures;
    repairs_whole += s->repairs;
    boot_timeouts_whole += s->boot_timeouts;
  }
  result.failures = failures_whole - warm.failures;
  result.repairs = repairs_whole - warm.repairs;
  result.boot_timeouts = boot_timeouts_whole - warm.boot_timeouts;
  result.jobs_redispatched = 0;  // the sharded model drops, never re-routes
  result.jobs_lost = lost_whole - warm.lost;
  result.sim_time_s = sim_time;
  result.mean_response_s =
      completed > 0 ? response_sum / static_cast<double>(completed) : 0.0;
  result.p95_response_s = completed > 0 ? response_hist.quantile(0.95) : 0.0;
  result.p99_response_s = completed > 0 ? response_hist.quantile(0.99) : 0.0;
  result.max_response_s = response_max;
  result.job_violation_ratio =
      completed > 0 ? static_cast<double>(violations) /
                          static_cast<double>(completed)
                    : 0.0;
  {
    std::uint64_t windows = 0, violated = 0;
    for (const TimelinePoint& p : timeline) {
      if (p.time <= measure_start) continue;
      ++windows;
      if (p.window_mean_response_s > options.t_ref_s) ++violated;
    }
    result.window_violation_ratio =
        windows > 0
            ? static_cast<double>(violated) / static_cast<double>(windows)
            : 0.0;
  }
  result.energy = energy;
  result.mean_power_w = sim_time > 0.0 ? energy.total_j() / sim_time : 0.0;
  result.boots = boots_total() - warm.boots;
  result.shutdowns = shutdowns_total() - warm.shutdowns;
  result.mean_serving = sim_time > 0.0 ? serving_integral / sim_time : 0.0;
  result.mean_speed = speed_avg.time_average();
  result.mean_jobs_in_system = sim_time > 0.0 ? jobs_integral / sim_time : 0.0;
  result.mean_available = sim_time > 0.0 ? available_integral / sim_time : 0.0;
  result.unavailability =
      sim_time > 0.0
          ? 1.0 - result.mean_available / static_cast<double>(num_servers)
          : 0.0;
  {
    const std::uint64_t shed_delta = result.shed_jobs;
    const std::uint64_t offered = (admitted_total() - warm.admitted) + shed_delta;
    result.shed_ratio =
        offered > 0
            ? static_cast<double>(shed_delta) / static_cast<double>(offered)
            : 0.0;
  }
  result.infeasible_ticks = infeasible_total - warm.infeasible;
  const std::uint64_t measured_ticks = ticks_total - warm.ticks;
  result.infeasible_ratio =
      measured_ticks > 0 ? static_cast<double>(result.infeasible_ticks) /
                               static_cast<double>(measured_ticks)
                         : 0.0;
  result.telemetry_dropped = channel.telemetry_counters().dropped;
  result.commands_dropped = channel.command_counters().dropped;
  result.acks_dropped = channel.ack_counters().dropped;
  result.command_retries = actuator.retries();
  result.command_duplicates = command_duplicates;
  result.commands_exhausted = actuator.exhausted();
  result.wear_fraction_mean =
      num_servers > 0 ? wear_sum / static_cast<double>(num_servers) : 0.0;
  if (reliab_plan_ticks > 0) {
    result.availability_estimate =
        reliab_avail_sum / static_cast<double>(reliab_plan_ticks);
    result.mean_solved_spares =
        reliab_spares_sum / static_cast<double>(reliab_plan_ticks);
  }
  result.response_hist = std::move(response_hist);
  result.lifecycle_ack_hist = lifecycle.ack_latency();
  result.lifecycle_apply_hist = lifecycle.apply_latency();
  result.lifecycle_e2e_hist = lifecycle.e2e_latency();
  result.lifecycle_obs_age_hist = lifecycle.obs_age();
  result.command_lifecycles = lifecycle.records();
  result.timeline = std::move(timeline);

  // -- counters registry (names mirror run_simulation) ----------------------
  MetricRegistry registry;
  for (std::size_t type = 0; type < kNumEventTypes; ++type) {
    std::uint64_t count = orchestrator_events[type];
    for (const auto& s : shards) count += s->events[type];
    if (type == static_cast<std::size_t>(EventType::kArrival)) {
      count += orphaned_arrivals;
    }
    registry
        .counter(std::string("sim.events.") +
                 to_string(static_cast<EventType>(type)))
        .inc(count);
  }
  registry.counter("sim.jobs.admitted").inc(admitted_total());
  registry.counter("sim.jobs.shed").inc(shed_total());
  registry.counter("sim.jobs.completed").inc(completed);
  registry.counter("sim.jobs.dropped").inc(dropped_total());
  registry.counter("sim.jobs.redispatched").inc(0);
  registry.counter("sim.jobs.lost").inc(lost_whole);
  registry.counter("cluster.boots").inc(boots_total());
  registry.counter("cluster.shutdowns").inc(shutdowns_total());
  registry.counter("cluster.failures").inc(failures_whole);
  registry.counter("cluster.repairs").inc(repairs_whole);
  registry.counter("cluster.boot_timeouts").inc(boot_timeouts_whole);
  registry.counter("control.ticks").inc(ticks_total);
  registry.counter("control.infeasible_ticks").inc(infeasible_total);
  registry.gauge("sim.time_s").set(end_time);
  registry.counter("sharded.num_shards").inc(num_shards);
  {
    std::uint64_t shard_events = 0, reallocations = 0;
    for (const auto& s : shards) {
      shard_events += s->queue.scheduled_total();
      reallocations += s->queue.reallocations();
    }
    registry.counter("sharded.shard_events_scheduled").inc(shard_events);
    registry.counter("sharded.queue_reallocations").inc(reallocations);
  }
  if (options.channel.enabled) {
    registry.counter("chan.telemetry.sent").inc(channel.telemetry_counters().sent);
    registry.counter("chan.telemetry.dropped").inc(result.telemetry_dropped);
    registry.counter("chan.telemetry.stale_discarded").inc(telemetry_stale);
    registry.counter("chan.command.sent").inc(channel.command_counters().sent);
    registry.counter("chan.command.dropped").inc(result.commands_dropped);
    registry.counter("chan.ack.sent").inc(channel.ack_counters().sent);
    registry.counter("chan.ack.dropped").inc(result.acks_dropped);
  }
  if (options.actuator.enabled) {
    registry.counter("act.retries").inc(actuator.retries());
    registry.counter("act.acked").inc(actuator.acked());
    registry.counter("act.stale_acks").inc(actuator.stale_acks());
    registry.counter("act.exhausted").inc(actuator.exhausted());
    registry.counter("act.duplicates").inc(command_duplicates);
    registry.counter("act.rejected_era").inc(0);
  }
  if (options.audit != nullptr) {
    registry.counter("obs.audit.records").inc(options.audit->size());
  }
  if (options.timeseries != nullptr) {
    registry.counter("obs.timeseries.periods").inc(options.timeseries->periods());
    registry.counter("obs.timeseries.rows").inc(options.timeseries->size());
  }
  registry.counter("fleet.boot_count").inc(boots_total());
  registry.counter("fleet.shutdown_count").inc(shutdowns_total());
  if (options.reliability.enabled() || reliab_plan_ticks > 0) {
    registry.gauge("fleet.wear_fraction_mean").set(result.wear_fraction_mean);
    registry.gauge("fleet.wear_fraction_max").set(result.wear_fraction_max);
    registry.gauge("fleet.availability_observed").set(1.0 - result.unavailability);
    if (reliab_plan_ticks > 0) {
      registry.gauge("reliability.availability_estimate")
          .set(result.availability_estimate);
      registry.gauge("reliability.solved_spares_mean")
          .set(result.mean_solved_spares);
    }
  }
  result.counters = registry.snapshot();
  // Lifecycle tracker counters (cp.lifecycle.*, cp.drop.*): every
  // transition was recorded on the orchestrator thread between barriers,
  // so these are identical across K — the shard-determinism suite's
  // counters equality holds with them merged in.
  {
    CountersSnapshot lc;
    lifecycle.counters_into(lc);
    for (const auto& [name, value] : lc.counters) {
      result.counters.add_counter(name, value);
    }
    for (const auto& [name, value] : lc.gauges) {
      result.counters.add_gauge(name, value);
    }
  }
  return result;
}

}  // namespace gc
