#include "sim/metrics.h"

#include "util/assert.h"

namespace gc {

MetricsCollector::MetricsCollector(double t_ref_s)
    : t_ref_(t_ref_s), p95_(0.95), p99_(0.99) {
  GC_CHECK(t_ref_s > 0.0, "MetricsCollector: t_ref must be positive");
}

void MetricsCollector::on_job_completed(double now, const Job& job) {
  const double response = now - job.arrival_time;
  GC_DCHECK(response >= 0.0, "negative response time");
  response_.add(response);
  window_response_.add(response);
  p95_.add(response);
  p99_.add(response);
  violations_.add(response > t_ref_);
  response_hist_.add(response);
  if (period_window_on_) {
    period_hist_.add(response);
    ++period_completed_;
    if (response > t_ref_) ++period_violations_;
  }
}

PeriodWindowStats MetricsCollector::take_period_window() noexcept {
  PeriodWindowStats stats;
  if (!period_window_on_ || period_completed_ == 0) {
    period_hist_.clear();
    period_completed_ = 0;
    period_violations_ = 0;
    return stats;
  }
  stats.completed = period_completed_;
  stats.mean_s = period_hist_.mean();
  stats.p95_s = period_hist_.quantile(0.95);
  stats.p99_s = period_hist_.quantile(0.99);
  stats.violation_fraction = static_cast<double>(period_violations_) /
                             static_cast<double>(period_completed_);
  period_hist_.clear();
  period_completed_ = 0;
  period_violations_ = 0;
  return stats;
}

double MetricsCollector::take_window_mean_response() noexcept {
  const double mean = window_response_.count() > 0 ? window_response_.mean() : 0.0;
  window_response_ = MeanVarAccumulator();
  return mean;
}

}  // namespace gc
