// The joint DVFS + VOVF solver — the paper's core contribution.
//
// Problem: given arrival rate λ, pick the number of active servers m and a
// common normalized speed s minimizing expected cluster power subject to
// the mean-response-time guarantee E[T] <= t_ref.
//
// Structure exploited (DESIGN.md §1.1): for any feasible m, expected power
// is increasing in s, so the optimum runs at the *minimal feasible speed*
//
//     s_min(m) = (λ/m + 1/t_ref) / μ_max          (M/M/1 model)
//
// leaving a one-dimensional problem over m whose continuous relaxation is
// convex.  Three solvers are provided and cross-checked by property tests:
//
//   * solve()            — exact linear scan over m (the reference),
//   * solve_fast()       — ternary search on the relaxation + local exact
//                          refinement (O(log M) evaluations),
//   * solve_continuous() — the continuous relaxation itself (analysis).
//
// Discrete frequency ladders are handled by rounding s_min up to the next
// level before costing (round-up preserves feasibility; power
// monotonicity in s makes it optimal among ladder points for that m).
//
// Memoization: solve() / solve_capped() / best_speed_for() consult a
// direct-mapped cache keyed on (λ, m, operation).  λ is quantized only to
// choose the slot; a hit additionally requires the stored λ to compare
// *exactly* equal, so cached answers are bit-identical to recomputation
// (zero approximation error — see DESIGN.md §"Performance engineering").
// Controllers re-solve the same measured rates constantly (integer arrival
// counts over fixed tick periods), which is what makes the cache pay.
//
// Thread-safety: the cache mutates under const solver calls, so a
// Provisioner must not be shared across threads without external
// synchronization (the experiment runner builds one per run).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cluster_config.h"
#include "core/operating_point.h"
#include "core/reliability.h"

namespace gc {

struct SolverCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct ContinuousSolution {
  double servers = 0.0;  // relaxed m*
  double speed = 0.0;    // s_min(m*)
  double power_watts = 0.0;
  bool feasible = false;
};

class Provisioner {
 public:
  // Validates the config (throws std::invalid_argument on bad settings).
  explicit Provisioner(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

  // Replaces the configuration (validated) and invalidates the memo cache:
  // cached operating points are only meaningful against the config that
  // produced them.
  void set_config(ClusterConfig config);

  // Drops every memoized operating point (hit/miss stats survive).
  void invalidate_cache() noexcept;

  [[nodiscard]] const SolverCacheStats& cache_stats() const noexcept {
    return cache_stats_;
  }
  void reset_cache_stats() noexcept { cache_stats_ = {}; }

  // Minimal continuous speed for m active servers to meet t_ref under the
  // configured performance model; nullopt if infeasible even at s = 1.
  [[nodiscard]] std::optional<double> min_speed(double lambda, unsigned m) const;

  // Smallest m that is feasible at s = 1 (respecting config.min_servers).
  // nullopt if even m = max_servers cannot meet the guarantee.
  [[nodiscard]] std::optional<unsigned> min_feasible_servers(double lambda) const;

  // Predicted steady state at a given (m, s); `feasible` reflects both
  // stability and the t_ref guarantee.  Power includes the off draw of the
  // (M - m) inactive servers.
  [[nodiscard]] OperatingPoint evaluate(double lambda, unsigned m, double s) const;

  // Cheapest feasible speed (on the ladder) for a *fixed* m — the
  // short-period DVFS step.  If no feasible speed exists the point is
  // returned with s = 1 and feasible = false (best effort under overload).
  [[nodiscard]] OperatingPoint best_speed_for(double lambda, unsigned m) const;

  // Exact solver: scans every m in [m_min, M].  Falls back to the
  // best-effort point (all servers, s = 1) when λ exceeds cluster
  // feasibility.
  [[nodiscard]] OperatingPoint solve(double lambda) const;

  // Exact solver restricted to m <= m_cap active servers: failure-aware
  // control plans within the fleet its detector believes is alive.  When
  // the guarantee cannot be met inside the cap the best-effort point is
  // (m_cap, s = 1) with feasible = false — degraded, not over-committed.
  [[nodiscard]] OperatingPoint solve_capped(double lambda, unsigned m_cap) const;

  // O(log M) solver; agrees with solve() (see tests/test_provisioner.cpp).
  [[nodiscard]] OperatingPoint solve_fast(double lambda) const;

  // Reliability-constrained solver (DESIGN.md §10): minimize power plus
  // the amortized wear cost of moving the committed pool, subject to
  // E[T] <= t_ref certified with the base m alone AND
  // fleet_availability(m, spares) >= availability_target, with
  // m + spares <= m_cap.  `m_committed` anchors the wear deadband and
  // `horizon_s` (the long control period) amortizes cycle_cost_j into
  // watts.  When the availability target is unreachable inside the cap
  // the plan carries the best-effort spare pool with binding = kCapacity.
  // Memoized like solve(): exact-hit on (λ, m_cap, m_committed), with the
  // knob set + horizon acting as a cache generation — changing any knob
  // drops only the reliable entries, never the plain ones.
  [[nodiscard]] ReliablePlan solve_reliable(double lambda, unsigned m_cap,
                                            unsigned m_committed, double horizon_s,
                                            const ReliabilityOptions& reliability) const;

  // Continuous relaxation over real-valued m (M/M/1 model only; the MMC
  // model has no smooth relaxation and falls back to the scan result).
  [[nodiscard]] ContinuousSolution solve_continuous(double lambda) const;

  // Expected cluster power at the relaxed objective, exposed for tests.
  [[nodiscard]] double relaxed_power(double lambda, double m_real) const;

 private:
  [[nodiscard]] double response_time(double lambda, unsigned m, double s) const;
  [[nodiscard]] OperatingPoint best_effort(double lambda) const;
  [[nodiscard]] OperatingPoint scan_range(double lambda, unsigned lo, unsigned hi) const;

  // Uncached solver bodies (the public entry points wrap them in `cached`).
  [[nodiscard]] OperatingPoint solve_uncached(double lambda) const;
  [[nodiscard]] OperatingPoint solve_capped_uncached(double lambda, unsigned m_cap) const;
  [[nodiscard]] OperatingPoint best_speed_for_uncached(double lambda, unsigned m) const;
  [[nodiscard]] ReliablePlan solve_reliable_uncached(
      double lambda, unsigned m_cap, unsigned m_committed, double horizon_s,
      const ReliabilityOptions& reliability) const;

  // -- memo cache -----------------------------------------------------------
  // Operation tag disambiguating entries that share (λ, m).
  enum class CacheOp : std::uint8_t { kEmpty = 0, kSolve, kSolveCapped, kBestSpeedFor };
  struct CacheEntry {
    double lambda = 0.0;
    std::uint32_t m = 0;
    CacheOp op = CacheOp::kEmpty;
    OperatingPoint point;
  };
  [[nodiscard]] std::size_t cache_slot(double lambda, unsigned m, CacheOp op) const;
  template <typename Fn>
  [[nodiscard]] OperatingPoint cached(double lambda, unsigned m, CacheOp op,
                                      Fn&& compute) const;

  // Reliable-plan memo table, separate from the OperatingPoint cache so a
  // reliability run never evicts plain-solver entries (and vice versa).
  // One knob generation at a time: solve_reliable purges these entries
  // whenever (reliability options, horizon) differ from the stored set,
  // so a hit is exact in every input.
  struct ReliableCacheEntry {
    double lambda = 0.0;
    std::uint32_t m_cap = 0;
    std::uint32_t m_committed = 0;
    bool valid = false;
    ReliablePlan plan;
  };
  [[nodiscard]] std::size_t reliable_slot(double lambda, unsigned m_cap,
                                          unsigned m_committed) const;

  ClusterConfig config_;
  PowerModel power_model_;
  double cache_quantum_ = 1.0;  // λ quantum for slot hashing only
  mutable std::vector<CacheEntry> cache_;
  mutable std::vector<ReliableCacheEntry> reliable_cache_;  // lazily sized
  mutable ReliabilityOptions reliable_knobs_;
  mutable double reliable_horizon_s_ = -1.0;  // -1: no generation stored yet
  mutable SolverCacheStats cache_stats_;
};

}  // namespace gc
