#include "core/dcp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.h"

namespace gc {

void DcpParams::validate() const {
  if (!(long_period_s > 0.0 && short_period_s > 0.0)) {
    throw std::invalid_argument("DcpParams: periods must be positive");
  }
  if (short_period_s > long_period_s) {
    throw std::invalid_argument("DcpParams: short period must not exceed long period");
  }
  if (!(safety_margin >= 1.0) || !std::isfinite(safety_margin)) {
    throw std::invalid_argument("DcpParams: safety_margin must be >= 1");
  }
  if (scale_down_patience == 0) {
    throw std::invalid_argument("DcpParams: scale_down_patience must be >= 1");
  }
}

DcpPlanner::DcpPlanner(const Provisioner* provisioner, DcpParams params)
    : provisioner_(provisioner), params_(params) {
  GC_CHECK(provisioner_ != nullptr, "DcpPlanner: null provisioner");
  params_.validate();
}

double DcpPlanner::prediction_horizon() const noexcept {
  return params_.long_period_s + provisioner_->config().transition.boot_delay_s;
}

OperatingPoint DcpPlanner::plan_point(double predicted_rate) const {
  GC_CHECK(predicted_rate >= 0.0 && std::isfinite(predicted_rate),
           "plan_point: bad predicted rate");
  const double padded = predicted_rate * params_.safety_margin;
  return provisioner_->solve(padded);
}

unsigned DcpPlanner::plan_servers(double predicted_rate) const {
  return plan_point(predicted_rate).servers;
}

OperatingPoint DcpPlanner::plan_speed(double current_rate, unsigned serving) const {
  GC_CHECK(current_rate >= 0.0 && std::isfinite(current_rate),
           "plan_speed: bad current rate");
  const unsigned m = std::clamp(serving, 1u, provisioner_->config().max_servers);
  return provisioner_->best_speed_for(current_rate, m);
}

OperatingPoint DcpPlanner::plan_speed_with_backlog(double current_rate, unsigned serving,
                                                   double jobs_in_system,
                                                   double drain_horizon_s) const {
  GC_CHECK(jobs_in_system >= 0.0, "plan_speed_with_backlog: negative job count");
  GC_CHECK(drain_horizon_s > 0.0, "plan_speed_with_backlog: horizon must be positive");
  const double on_target = current_rate * provisioner_->config().t_ref_s;
  const double excess = std::max(jobs_in_system - on_target, 0.0);
  return plan_speed(current_rate + excess / drain_horizon_s, serving);
}

unsigned effective_patience(const DcpParams& params, const TransitionModel& transition,
                            const PowerModel& power_model) {
  params.validate();
  if (!params.auto_patience_from_break_even) return params.scale_down_patience;
  const double t_be = transition.break_even_time_s(power_model);
  if (!std::isfinite(t_be)) return params.scale_down_patience;
  const double periods = std::ceil(t_be / params.long_period_s);
  return std::max(params.scale_down_patience,
                  static_cast<unsigned>(std::max(periods, 1.0)));
}

HysteresisGate::HysteresisGate(unsigned patience) : patience_(patience) {
  if (patience == 0) throw std::invalid_argument("HysteresisGate: patience must be >= 1");
}

unsigned HysteresisGate::propose(unsigned current, unsigned target) {
  if (target >= current) {
    streak_ = 0;
    return target;
  }
  ++streak_;
  if (streak_ >= patience_) {
    streak_ = 0;
    return target;
  }
  return current;
}

}  // namespace gc
