#include "core/hetero.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/assert.h"

namespace gc {

void HeteroConfig::validate() const {
  if (classes.empty()) throw std::invalid_argument("HeteroConfig: no classes");
  if (!(t_ref_s > 0.0) || !std::isfinite(t_ref_s)) {
    throw std::invalid_argument("HeteroConfig: t_ref must be > 0");
  }
  bool any_servers = false;
  for (const ServerClass& sc : classes) {
    if (!(sc.mu_max > 0.0)) throw std::invalid_argument("HeteroConfig: mu_max must be > 0");
    if (1.0 / sc.mu_max >= t_ref_s) {
      throw std::invalid_argument(
          "HeteroConfig: t_ref must exceed 1/mu_max for every class");
    }
    (void)PowerModel(sc.power);  // throws on inconsistency
    any_servers = any_servers || sc.count > 0;
  }
  if (!any_servers) throw std::invalid_argument("HeteroConfig: zero servers overall");
}

unsigned HeteroConfig::total_servers() const noexcept {
  unsigned total = 0;
  for (const ServerClass& sc : classes) total += sc.count;
  return total;
}

double HeteroConfig::max_feasible_arrival_rate() const {
  double total = 0.0;
  for (const ServerClass& sc : classes) {
    const double per_server = sc.mu_max - 1.0 / t_ref_s;
    if (per_server > 0.0) total += static_cast<double>(sc.count) * per_server;
  }
  return total;
}

unsigned HeteroOperatingPoint::total_active() const noexcept {
  unsigned total = 0;
  for (const ClassAllocation& a : allocations) total += a.servers;
  return total;
}

HeteroProvisioner::HeteroProvisioner(HeteroConfig config) : config_(std::move(config)) {
  config_.validate();
  power_models_.reserve(config_.classes.size());
  for (const ServerClass& sc : config_.classes) power_models_.emplace_back(sc.power);
}

double HeteroProvisioner::class_capacity(std::size_t c, unsigned n) const {
  const double per_server = config_.classes[c].mu_max - 1.0 / config_.t_ref_s;
  return per_server > 0.0 ? static_cast<double>(n) * per_server : 0.0;
}

std::optional<ClassAllocation> HeteroProvisioner::class_allocation(std::size_t c,
                                                                   unsigned n,
                                                                   double load) const {
  const ServerClass& sc = config_.classes[c];
  const PowerModel& pm = power_models_[c];
  ClassAllocation alloc;
  alloc.servers = n;
  alloc.load = load;
  if (n == 0) {
    if (load > 0.0) return std::nullopt;
    alloc.speed = 0.0;
    alloc.power_watts = static_cast<double>(sc.count) * pm.off_power();
    alloc.response_time_s = 0.0;
    return alloc;
  }
  const double s_cont =
      (load / static_cast<double>(n) + 1.0 / config_.t_ref_s) / sc.mu_max;
  if (s_cont > 1.0 + 1e-12) return std::nullopt;
  const double s = sc.ladder.round_up(std::min(s_cont, 1.0));
  const double mu = s * sc.mu_max;
  const double per_server_load = load / static_cast<double>(n);
  if (!(mu > per_server_load)) return std::nullopt;
  const double util = per_server_load / mu;
  alloc.speed = s;
  alloc.response_time_s = 1.0 / (mu - per_server_load);
  alloc.power_watts = static_cast<double>(n) * pm.expected_power(s, util) +
                      static_cast<double>(sc.count - n) * pm.off_power();
  if (alloc.response_time_s > config_.t_ref_s * (1.0 + 1e-9)) return std::nullopt;
  return alloc;
}

std::optional<double> HeteroProvisioner::split_cost(double lambda,
                                                    const std::vector<unsigned>& counts,
                                                    std::vector<double>* loads) const {
  const std::size_t k = config_.classes.size();
  GC_CHECK(counts.size() == k, "split_cost: counts size mismatch");

  // Enumerate one ladder level per active class.  Given levels, per-class
  // cost is affine in the routed load (see hetero.h), so the optimal split
  // fills classes in increasing marginal-cost order — exact.
  struct LevelChoice {
    double speed = 0.0;
    double fixed = 0.0;     // cost at x = 0 for the active servers
    double slope = 0.0;     // dW / d(load)
    double capacity = 0.0;  // max SLA-feasible load at this level
  };

  std::vector<std::vector<LevelChoice>> options(k);
  for (std::size_t c = 0; c < k; ++c) {
    const ServerClass& sc = config_.classes[c];
    const double n = static_cast<double>(counts[c]);
    if (counts[c] == 0) {
      options[c].push_back({0.0, 0.0, 0.0, 0.0});
      continue;
    }
    const std::size_t levels =
        sc.ladder.is_continuous() ? 0 : sc.ladder.num_levels();
    GC_CHECK(levels > 0, "hetero solver requires discrete per-class ladders");
    for (std::size_t i = 0; i < levels; ++i) {
      const double s = sc.ladder.speed_of_level(i);
      const double slack = s * sc.mu_max - 1.0 / config_.t_ref_s;
      if (!(slack > 0.0)) continue;
      LevelChoice choice;
      choice.speed = s;
      choice.capacity = n * slack;
      const double dyn = sc.power.p_max_watts - sc.power.p_idle_watts;
      if (sc.power.utilization_gated) {
        choice.fixed = n * sc.power.p_idle_watts;
        choice.slope = dyn * std::pow(s, sc.power.alpha - 1.0) / sc.mu_max;
      } else {
        choice.fixed = n * (sc.power.p_idle_watts + dyn * std::pow(s, sc.power.alpha));
        choice.slope = 0.0;
      }
      options[c].push_back(choice);
    }
    if (options[c].empty()) return std::nullopt;
  }

  // Product over per-class level choices (k and level counts are small).
  std::vector<std::size_t> index(k, 0);
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<double> best_loads;
  std::vector<std::size_t> order(k);
  for (;;) {
    double total_capacity = 0.0;
    for (std::size_t c = 0; c < k; ++c) total_capacity += options[c][index[c]].capacity;
    if (total_capacity + 1e-9 >= lambda) {
      // Fill in increasing slope order.
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return options[a][index[a]].slope < options[b][index[b]].slope;
      });
      double remaining = lambda;
      double cost = 0.0;
      std::vector<double> loads_here(k, 0.0);
      for (const std::size_t c : order) {
        const LevelChoice& choice = options[c][index[c]];
        const double take = std::min(remaining, choice.capacity);
        loads_here[c] = take;
        cost += choice.fixed + choice.slope * take;
        remaining -= take;
      }
      // Off-server draw of every class (constant given counts).
      for (std::size_t c = 0; c < k; ++c) {
        cost += static_cast<double>(config_.classes[c].count - counts[c]) *
                power_models_[c].off_power();
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_loads = loads_here;
      }
    }
    // Advance the mixed-radix index.
    std::size_t c = 0;
    while (c < k) {
      if (++index[c] < options[c].size()) break;
      index[c] = 0;
      ++c;
    }
    if (c == k) break;
  }
  if (!std::isfinite(best_cost)) return std::nullopt;
  if (loads != nullptr) *loads = best_loads;
  return best_cost;
}

std::optional<HeteroOperatingPoint> HeteroProvisioner::evaluate_counts(
    double lambda, const std::vector<unsigned>& counts) const {
  GC_CHECK(lambda >= 0.0 && std::isfinite(lambda), "evaluate_counts: bad lambda");
  GC_CHECK(counts.size() == config_.classes.size(), "evaluate_counts: counts size");
  for (std::size_t c = 0; c < counts.size(); ++c) {
    GC_CHECK(counts[c] <= config_.classes[c].count, "evaluate_counts: count > class size");
  }
  std::vector<double> loads;
  const auto cost = split_cost(lambda, counts, &loads);
  if (!cost) return std::nullopt;

  HeteroOperatingPoint point;
  point.feasible = true;
  point.power_watts = 0.0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    auto alloc = class_allocation(c, counts[c], loads[c]);
    GC_CHECK(alloc.has_value(), "split produced an infeasible class allocation");
    point.power_watts += alloc->power_watts;
    point.allocations.push_back(std::move(*alloc));
  }
  return point;
}

HeteroOperatingPoint HeteroProvisioner::best_effort(double lambda) const {
  HeteroOperatingPoint point;
  point.feasible = false;
  for (std::size_t c = 0; c < config_.classes.size(); ++c) {
    const ServerClass& sc = config_.classes[c];
    ClassAllocation alloc;
    alloc.servers = sc.count;
    alloc.speed = 1.0;
    // Pro-rata share by raw capacity.
    double total_mu = 0.0;
    for (const ServerClass& other : config_.classes) {
      total_mu += static_cast<double>(other.count) * other.mu_max;
    }
    alloc.load = total_mu > 0.0
                     ? lambda * static_cast<double>(sc.count) * sc.mu_max / total_mu
                     : 0.0;
    const double n = std::max<double>(sc.count, 1);
    const double util =
        std::min(alloc.load / (n * sc.mu_max), 1.0);
    alloc.power_watts =
        static_cast<double>(sc.count) * power_models_[c].expected_power(1.0, util);
    alloc.response_time_s = std::numeric_limits<double>::infinity();
    point.power_watts += alloc.power_watts;
    point.allocations.push_back(alloc);
  }
  return point;
}

HeteroOperatingPoint HeteroProvisioner::solve(double lambda) const {
  GC_CHECK(lambda >= 0.0 && std::isfinite(lambda), "solve: bad lambda");
  const std::size_t k = config_.classes.size();

  if (lambda > config_.max_feasible_arrival_rate() * (1.0 + 1e-12)) {
    return best_effort(lambda);
  }

  std::optional<HeteroOperatingPoint> best;
  auto consider = [&](const std::vector<unsigned>& counts) {
    const auto point = evaluate_counts(lambda, counts);
    if (point && (!best || point->power_watts < best->power_watts)) best = point;
  };

  if (k <= 2) {
    // Exhaustive over count vectors (pod-scale class sizes).
    std::vector<unsigned> counts(k, 0);
    if (k == 1) {
      for (unsigned n = 0; n <= config_.classes[0].count; ++n) {
        counts[0] = n;
        consider(counts);
      }
    } else {
      for (unsigned a = 0; a <= config_.classes[0].count; ++a) {
        for (unsigned b = 0; b <= config_.classes[1].count; ++b) {
          counts[0] = a;
          counts[1] = b;
          consider(counts);
        }
      }
    }
  } else {
    // Greedy descent from everything-on: repeatedly apply the single count
    // decrement that lowers power most, until no decrement helps.
    std::vector<unsigned> counts;
    counts.reserve(k);
    for (const ServerClass& sc : config_.classes) counts.push_back(sc.count);
    consider(counts);
    bool improved = true;
    while (improved && best) {
      improved = false;
      std::vector<unsigned> next = counts;
      double next_power = best->power_watts;
      for (std::size_t c = 0; c < k; ++c) {
        if (counts[c] == 0) continue;
        std::vector<unsigned> candidate = counts;
        --candidate[c];
        const auto point = evaluate_counts(lambda, candidate);
        if (point && point->power_watts < next_power) {
          next = candidate;
          next_power = point->power_watts;
          improved = true;
        }
      }
      if (improved) {
        counts = next;
        consider(counts);
      }
    }
  }
  if (!best) return best_effort(lambda);
  return *best;
}

HeteroOperatingPoint HeteroProvisioner::solve_wear(
    double lambda, const std::vector<unsigned>& committed, double horizon_s,
    const ReliabilityOptions& reliability) const {
  GC_CHECK(lambda >= 0.0 && std::isfinite(lambda), "solve_wear: bad lambda");
  GC_CHECK(committed.size() == config_.classes.size(),
           "solve_wear: committed size mismatch");
  GC_CHECK(horizon_s > 0.0 && std::isfinite(horizon_s),
           "solve_wear: bad horizon");
  const std::size_t k = config_.classes.size();
  const WearModel wear(reliability);

  if (lambda > config_.max_feasible_arrival_rate() * (1.0 + 1e-12)) {
    return best_effort(lambda);
  }

  // Amortized wear rate of moving the committed fleet to `counts`: each
  // class charges its budget-scaled per-transition cost, spread over the
  // planning horizon so it is commensurable with watts.
  const auto wear_rate_w = [&](const std::vector<unsigned>& counts) {
    double joules = 0.0;
    for (std::size_t c = 0; c < counts.size(); ++c) {
      const unsigned delta = counts[c] > committed[c] ? counts[c] - committed[c]
                                                      : committed[c] - counts[c];
      joules += wear.class_transition_cost_j(c, delta);
    }
    return joules / horizon_s;
  };

  // Same enumeration as solve(), selecting on power + wear instead of
  // power alone (the reported power_watts stays physical).
  std::optional<HeteroOperatingPoint> best;
  double best_objective = std::numeric_limits<double>::infinity();
  auto consider = [&](const std::vector<unsigned>& counts) {
    const auto point = evaluate_counts(lambda, counts);
    if (!point) return;
    const double objective = point->power_watts + wear_rate_w(counts);
    if (!best || objective < best_objective) {
      best = point;
      best_objective = objective;
    }
  };

  if (k <= 2) {
    std::vector<unsigned> counts(k, 0);
    if (k == 1) {
      for (unsigned n = 0; n <= config_.classes[0].count; ++n) {
        counts[0] = n;
        consider(counts);
      }
    } else {
      for (unsigned a = 0; a <= config_.classes[0].count; ++a) {
        for (unsigned b = 0; b <= config_.classes[1].count; ++b) {
          counts[0] = a;
          counts[1] = b;
          consider(counts);
        }
      }
    }
  } else {
    // Greedy descent from everything-on on the combined objective.
    std::vector<unsigned> counts;
    counts.reserve(k);
    for (const ServerClass& sc : config_.classes) counts.push_back(sc.count);
    consider(counts);
    bool improved = true;
    while (improved && best) {
      improved = false;
      std::vector<unsigned> next = counts;
      double next_objective = best_objective;
      for (std::size_t c = 0; c < k; ++c) {
        if (counts[c] == 0) continue;
        std::vector<unsigned> candidate = counts;
        --candidate[c];
        const auto point = evaluate_counts(lambda, candidate);
        if (!point) continue;
        const double objective = point->power_watts + wear_rate_w(candidate);
        if (objective < next_objective) {
          next = candidate;
          next_objective = objective;
          improved = true;
        }
      }
      if (improved) {
        counts = next;
        consider(counts);
      }
    }
  }
  if (!best) return best_effort(lambda);
  return *best;
}

}  // namespace gc
