// Double Control Periods (DCP) planning math.
//
// VOVF transitions are slow (a server boot takes tens of seconds to
// minutes) and costly (full power, zero service).  The paper's remedy is
// two timescales:
//
//   * every long period T_L: re-provision the server count using the load
//     *predicted* over the next horizon — which must include the boot
//     delay, so capacity ordered now is ready when the load arrives — with
//     a multiplicative safety margin and scale-down hysteresis;
//   * every short period T_S (T_S << T_L): re-fit only the frequency to
//     the currently observed load, with the server count pinned.
//
// `DcpPlanner` is stateless with respect to time; the hysteresis gate and
// period bookkeeping live in the controller (control/policies.h).
#pragma once

#include "core/cluster_config.h"
#include "core/operating_point.h"
#include "core/provisioner.h"

namespace gc {

struct DcpParams {
  double long_period_s = 300.0;
  double short_period_s = 30.0;
  // Predicted load is multiplied by this before solving; absorbs predictor
  // error and the mean-vs-peak gap inside a long period.
  double safety_margin = 1.15;
  // Number of consecutive long periods that must request a smaller m
  // before any server is switched off (1 = shrink immediately).
  unsigned scale_down_patience = 2;
  // When true, the patience is raised (never lowered) to cover the VOVF
  // break-even time ceil(t_be / T_L): a downturn must persist long enough
  // that shutting down actually saves energy (power/power_model.h).
  bool auto_patience_from_break_even = false;

  void validate() const;
};

// The patience a controller should actually use: the configured value,
// optionally raised to the break-even horizon.
[[nodiscard]] unsigned effective_patience(const DcpParams& params,
                                          const TransitionModel& transition,
                                          const PowerModel& power_model);

class DcpPlanner {
 public:
  DcpPlanner(const Provisioner* provisioner, DcpParams params);

  [[nodiscard]] const DcpParams& params() const noexcept { return params_; }

  // The prediction horizon a long-period decision must cover: the period
  // itself plus the boot delay of the capacity it orders.
  [[nodiscard]] double prediction_horizon() const noexcept;

  // Long-period decision: target active-server count for predicted rate
  // `predicted_rate` (already a per-horizon aggregate, e.g. the predictor's
  // max or mean — the caller chooses the predictor).
  [[nodiscard]] unsigned plan_servers(double predicted_rate) const;

  // Same decision with the full solver verdict: controllers that must
  // report infeasibility (ControlAction::infeasible) read `feasible` off
  // the returned point instead of discarding it.
  [[nodiscard]] OperatingPoint plan_point(double predicted_rate) const;

  // Short-period decision: cheapest feasible common speed for the servers
  // that are actually serving right now.
  [[nodiscard]] OperatingPoint plan_speed(double current_rate, unsigned serving) const;

  // Backlog-aware variant: also budgets capacity to drain excess queued
  // work within `drain_horizon_s`.  Under the M/M/1 design model, Little's
  // law puts the on-target job count at rate * t_ref; anything above that
  // is backlog the plain short tick would ignore (it only sees the arrival
  // rate), which is how a reactive controller stays saturated after a
  // burst.  The effective planning rate becomes
  //     rate + max(0, jobs_in_system - rate * t_ref) / drain_horizon_s.
  [[nodiscard]] OperatingPoint plan_speed_with_backlog(double current_rate,
                                                       unsigned serving,
                                                       double jobs_in_system,
                                                       double drain_horizon_s) const;

 private:
  const Provisioner* provisioner_;  // non-owning; outlives the planner
  DcpParams params_;
};

// Scale-down hysteresis: `propose` returns the gated target.  Increases
// pass through immediately (the guarantee is at risk); decreases must be
// proposed `patience` consecutive times.
class HysteresisGate {
 public:
  explicit HysteresisGate(unsigned patience);

  [[nodiscard]] unsigned propose(unsigned current, unsigned target);
  void reset() noexcept { streak_ = 0; }

  // The mutable state, exposed for checkpoint/restore (cp/snapshot.h);
  // core/ stays free of cp/ includes, so the gate serializes via plain
  // accessors rather than save/load methods.
  [[nodiscard]] unsigned streak() const noexcept { return streak_; }
  void set_streak(unsigned streak) noexcept { streak_ = streak; }

 private:
  unsigned patience_;
  unsigned streak_ = 0;
};

}  // namespace gc
