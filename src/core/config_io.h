// ClusterConfig / DcpParams <-> INI files.
//
// Lets operators keep cluster descriptions in version control and feed
// them to the examples (`capacity_planner --config pod.ini`).  Format:
//
//   [cluster]
//   max_servers = 16
//   mu_max = 10.0          ; jobs/s at full speed
//   t_ref_ms = 500
//   min_servers = 1
//   perf_model = mm1       ; mm1 | mmc
//
//   [power]
//   p_idle_w = 150
//   p_max_w = 250
//   p_off_w = 5
//   alpha = 3
//   utilization_gated = false
//
//   [ladder]
//   levels_ghz = 0.6 0.8 1.0 1.2 ...   ; or: continuous_min_speed = 0.1
//
//   [transition]
//   boot_delay_s = 8
//   shutdown_delay_s = 2
//
//   [dcp]
//   long_period_s = 25
//   short_period_s = 5
//   safety_margin = 1.15
//   scale_down_patience = 2
//   auto_patience_from_break_even = false
//
// Missing keys fall back to the in-code defaults; the result is validated.
#pragma once

#include <string>

#include "core/cluster_config.h"
#include "core/dcp.h"
#include "core/hetero.h"
#include "util/ini.h"

namespace gc {

// Throws std::runtime_error / std::invalid_argument on malformed input.
[[nodiscard]] ClusterConfig cluster_config_from_ini(const IniFile& ini);
[[nodiscard]] DcpParams dcp_params_from_ini(const IniFile& ini);

// Serialization (round-trips through the parser).
[[nodiscard]] IniFile to_ini(const ClusterConfig& config, const DcpParams& dcp);

// Heterogeneous fleets: one `[class NAME]` section per server class, with
// count / mu_max / p_idle_w / p_max_w / p_off_w / alpha /
// utilization_gated / levels_ghz; `[cluster] t_ref_ms` applies fleet-wide.
// Throws if no class sections are present.
[[nodiscard]] HeteroConfig hetero_config_from_ini(const IniFile& ini);

}  // namespace gc
