#include "core/config_io.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/hetero.h"
#include "util/format.h"
#include "util/string_util.h"

namespace gc {
namespace {

// Typed INI reads with context in the error: a negative count must not be
// silently cast to a huge unsigned, and a NaN must not leak into the solver
// (where every comparison against it is quietly false).
unsigned get_unsigned(const IniFile& ini, const std::string& section,
                      const std::string& key, unsigned fallback) {
  const long long value =
      ini.get_int_or(section, key, static_cast<long long>(fallback));
  if (value < 0) {
    throw std::runtime_error(
        gc::format("config: [{}] {} must be >= 0 (got {})", section, key, value));
  }
  if (value > static_cast<long long>(std::numeric_limits<unsigned>::max())) {
    throw std::runtime_error(
        gc::format("config: [{}] {} is out of range (got {})", section, key, value));
  }
  return static_cast<unsigned>(value);
}

double get_finite(const IniFile& ini, const std::string& section,
                  const std::string& key, double fallback) {
  const double value = ini.get_double_or(section, key, fallback);
  if (!std::isfinite(value)) {
    throw std::runtime_error(
        gc::format("config: [{}] {} must be finite (got {})", section, key, value));
  }
  return value;
}

double get_positive(const IniFile& ini, const std::string& section,
                    const std::string& key, double fallback) {
  const double value = get_finite(ini, section, key, fallback);
  if (!(value > 0.0)) {
    throw std::runtime_error(
        gc::format("config: [{}] {} must be > 0 (got {})", section, key, value));
  }
  return value;
}

}  // namespace

ClusterConfig cluster_config_from_ini(const IniFile& ini) {
  ClusterConfig config;
  config.max_servers = get_unsigned(ini, "cluster", "max_servers", config.max_servers);
  config.mu_max = get_positive(ini, "cluster", "mu_max", config.mu_max);
  config.t_ref_s = get_positive(ini, "cluster", "t_ref_ms", config.t_ref_s * 1e3) / 1e3;
  config.min_servers = get_unsigned(ini, "cluster", "min_servers", config.min_servers);
  const std::string model = to_lower(ini.get_or("cluster", "perf_model", "mm1"));
  if (model == "mm1") {
    config.perf_model = PerfModel::kMm1PerServer;
  } else if (model == "mmc") {
    config.perf_model = PerfModel::kMmcCluster;
  } else {
    throw std::runtime_error(gc::format("config: unknown perf_model '{}'", model));
  }

  config.power.p_idle_watts =
      get_finite(ini, "power", "p_idle_w", config.power.p_idle_watts);
  config.power.p_max_watts =
      get_finite(ini, "power", "p_max_w", config.power.p_max_watts);
  config.power.p_off_watts =
      get_finite(ini, "power", "p_off_w", config.power.p_off_watts);
  config.power.alpha = get_finite(ini, "power", "alpha", config.power.alpha);
  config.power.utilization_gated =
      ini.get_bool_or("power", "utilization_gated", config.power.utilization_gated);

  if (const auto levels = ini.get("ladder", "levels_ghz")) {
    std::vector<double> ghz;
    for (const auto piece : split(*levels, ' ')) {
      const auto trimmed = trim(piece);
      if (trimmed.empty()) continue;
      const auto value = parse_double(trimmed);
      if (!value || !std::isfinite(*value) || !(*value > 0.0)) {
        throw std::runtime_error(
            gc::format("config: bad ladder level '{}' (need a finite positive "
                       "frequency)",
                       std::string(trimmed)));
      }
      ghz.push_back(*value);
    }
    config.ladder = FrequencyLadder(std::move(ghz));
  } else if (const auto min_speed = ini.get("ladder", "continuous_min_speed")) {
    const auto value = parse_double(*min_speed);
    if (!value || !std::isfinite(*value)) {
      throw std::runtime_error("config: bad continuous_min_speed");
    }
    config.ladder = FrequencyLadder::continuous(*value);
  }

  config.transition.boot_delay_s =
      get_finite(ini, "transition", "boot_delay_s", config.transition.boot_delay_s);
  config.transition.shutdown_delay_s = get_finite(
      ini, "transition", "shutdown_delay_s", config.transition.shutdown_delay_s);

  config.validate();
  return config;
}

DcpParams dcp_params_from_ini(const IniFile& ini) {
  DcpParams dcp;
  dcp.long_period_s = get_positive(ini, "dcp", "long_period_s", dcp.long_period_s);
  dcp.short_period_s = get_positive(ini, "dcp", "short_period_s", dcp.short_period_s);
  dcp.safety_margin = get_finite(ini, "dcp", "safety_margin", dcp.safety_margin);
  dcp.scale_down_patience =
      get_unsigned(ini, "dcp", "scale_down_patience", dcp.scale_down_patience);
  dcp.auto_patience_from_break_even = ini.get_bool_or(
      "dcp", "auto_patience_from_break_even", dcp.auto_patience_from_break_even);
  dcp.validate();
  return dcp;
}

HeteroConfig hetero_config_from_ini(const IniFile& ini) {
  HeteroConfig config;
  config.t_ref_s = get_positive(ini, "cluster", "t_ref_ms", 100.0) / 1e3;
  for (const std::string& section : ini.section_names()) {
    if (!starts_with(section, "class ")) continue;
    ServerClass sc;
    sc.name = std::string(trim(std::string_view(section).substr(6)));
    sc.count = get_unsigned(ini, section, "count", 0);
    sc.mu_max = get_positive(ini, section, "mu_max", sc.mu_max);
    sc.power.p_idle_watts = get_finite(ini, section, "p_idle_w", sc.power.p_idle_watts);
    sc.power.p_max_watts = get_finite(ini, section, "p_max_w", sc.power.p_max_watts);
    sc.power.p_off_watts = get_finite(ini, section, "p_off_w", sc.power.p_off_watts);
    sc.power.alpha = get_finite(ini, section, "alpha", sc.power.alpha);
    sc.power.utilization_gated =
        ini.get_bool_or(section, "utilization_gated", sc.power.utilization_gated);
    if (const auto levels = ini.get(section, "levels_ghz")) {
      std::vector<double> ghz;
      for (const auto piece : split(*levels, ' ')) {
        const auto trimmed = trim(piece);
        if (trimmed.empty()) continue;
        const auto value = parse_double(trimmed);
        if (!value || !std::isfinite(*value) || !(*value > 0.0)) {
          throw std::runtime_error(
              gc::format("config: bad ladder level '{}' (need a finite positive "
                         "frequency)",
                         std::string(trimmed)));
        }
        ghz.push_back(*value);
      }
      sc.ladder = FrequencyLadder(std::move(ghz));
    }
    config.classes.push_back(std::move(sc));
  }
  if (config.classes.empty()) {
    throw std::runtime_error("config: no [class NAME] sections for a hetero fleet");
  }
  config.validate();
  return config;
}

IniFile to_ini(const ClusterConfig& config, const DcpParams& dcp) {
  IniFile ini;
  ini.set("cluster", "max_servers", gc::format("{}", config.max_servers));
  ini.set("cluster", "mu_max", gc::format("{:.9g}", config.mu_max));
  ini.set("cluster", "t_ref_ms", gc::format("{:.9g}", config.t_ref_s * 1e3));
  ini.set("cluster", "min_servers", gc::format("{}", config.min_servers));
  ini.set("cluster", "perf_model",
          config.perf_model == PerfModel::kMm1PerServer ? "mm1" : "mmc");

  ini.set("power", "p_idle_w", gc::format("{:.9g}", config.power.p_idle_watts));
  ini.set("power", "p_max_w", gc::format("{:.9g}", config.power.p_max_watts));
  ini.set("power", "p_off_w", gc::format("{:.9g}", config.power.p_off_watts));
  ini.set("power", "alpha", gc::format("{:.9g}", config.power.alpha));
  ini.set("power", "utilization_gated",
          config.power.utilization_gated ? "true" : "false");

  if (config.ladder.is_continuous()) {
    ini.set("ladder", "continuous_min_speed",
            gc::format("{:.9g}", config.ladder.min_speed()));
  } else {
    std::ostringstream levels;
    for (std::size_t i = 0; i < config.ladder.num_levels(); ++i) {
      if (i != 0) levels << ' ';
      levels << gc::format("{:.9g}", config.ladder.levels_ghz()[i]);
    }
    ini.set("ladder", "levels_ghz", levels.str());
  }

  ini.set("transition", "boot_delay_s",
          gc::format("{:.9g}", config.transition.boot_delay_s));
  ini.set("transition", "shutdown_delay_s",
          gc::format("{:.9g}", config.transition.shutdown_delay_s));

  ini.set("dcp", "long_period_s", gc::format("{:.9g}", dcp.long_period_s));
  ini.set("dcp", "short_period_s", gc::format("{:.9g}", dcp.short_period_s));
  ini.set("dcp", "safety_margin", gc::format("{:.9g}", dcp.safety_margin));
  ini.set("dcp", "scale_down_patience", gc::format("{}", dcp.scale_down_patience));
  ini.set("dcp", "auto_patience_from_break_even",
          dcp.auto_patience_from_break_even ? "true" : "false");
  return ini;
}

}  // namespace gc
