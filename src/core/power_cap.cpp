#include "core/power_cap.h"

#include <cmath>

#include "util/assert.h"

namespace gc {

PowerCapSolver::PowerCapSolver(const Provisioner* provisioner)
    : provisioner_(provisioner) {
  GC_CHECK(provisioner != nullptr, "PowerCapSolver: null provisioner");
}

std::optional<double> PowerCapSolver::min_power_for_rate(double lambda) const {
  const OperatingPoint pt = provisioner_->solve(lambda);
  if (!pt.feasible) return std::nullopt;
  return pt.power_watts;
}

double PowerCapSolver::max_supportable_rate(double cap_watts) const {
  GC_CHECK(cap_watts >= 0.0 && std::isfinite(cap_watts), "bad power cap");
  const double lambda_max = provisioner_->config().max_feasible_arrival_rate();
  const auto fits = [&](double lambda) {
    const OperatingPoint pt = provisioner_->solve(lambda);
    return pt.feasible && pt.power_watts <= cap_watts;
  };
  if (!fits(0.0)) return 0.0;
  if (fits(lambda_max)) return lambda_max;
  // Optimal power is nondecreasing in load (each load's feasible set only
  // shrinks as λ grows), so bisection on λ is exact up to tolerance.
  double lo = 0.0;
  double hi = lambda_max;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (fits(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::optional<OperatingPoint> PowerCapSolver::best_point_under_cap(
    double lambda, double cap_watts) const {
  GC_CHECK(lambda >= 0.0 && std::isfinite(lambda), "bad lambda");
  GC_CHECK(cap_watts >= 0.0 && std::isfinite(cap_watts), "bad power cap");
  const ClusterConfig& config = provisioner_->config();
  std::optional<OperatingPoint> best;
  for (unsigned m = config.min_servers; m <= config.max_servers; ++m) {
    // Candidate speeds: with a discrete ladder, walk levels from fastest
    // down and take the first affordable one (power increasing in s); with
    // a continuous ladder the affordable frontier is found by bisection.
    OperatingPoint candidate;
    bool have = false;
    if (config.ladder.is_continuous()) {
      double lo = config.ladder.min_speed();
      double hi = 1.0;
      if (provisioner_->evaluate(lambda, m, lo).power_watts > cap_watts) continue;
      if (provisioner_->evaluate(lambda, m, hi).power_watts <= cap_watts) {
        candidate = provisioner_->evaluate(lambda, m, hi);
        have = true;
      } else {
        for (int it = 0; it < 60; ++it) {
          const double mid = 0.5 * (lo + hi);
          if (provisioner_->evaluate(lambda, m, mid).power_watts <= cap_watts) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        candidate = provisioner_->evaluate(lambda, m, lo);
        have = true;
      }
    } else {
      for (std::size_t k = config.ladder.num_levels(); k-- > 0;) {
        const double s = config.ladder.speed_of_level(k);
        const OperatingPoint pt = provisioner_->evaluate(lambda, m, s);
        if (pt.power_watts <= cap_watts) {
          candidate = pt;
          have = true;
          break;
        }
      }
    }
    if (!have || !candidate.feasible) continue;
    if (!best || candidate.response_time_s < best->response_time_s ||
        (candidate.response_time_s == best->response_time_s &&
         candidate.power_watts < best->power_watts)) {
      best = candidate;
    }
  }
  return best;
}

}  // namespace gc
