// Cluster-wide configuration shared by the solver, controllers and
// simulator.  This is "Table 1" of the reproduced paper: every default is
// recorded in DESIGN.md / EXPERIMENTS.md and printed by bench/tab1.
#pragma once

#include <cstdint>

#include "power/frequency_ladder.h"
#include "power/power_model.h"

namespace gc {

// Which analytic performance model the solver inverts.
enum class PerfModel : int {
  kMm1PerServer = 0,  // the paper's model: even split, M/M/1 per server
  kMmcCluster = 1,    // M/M/c central-queue bound (less conservative)
};
[[nodiscard]] const char* to_string(PerfModel model) noexcept;

struct ClusterConfig {
  unsigned max_servers = 64;        // M: cluster size
  double mu_max = 40.0;             // jobs/s one server completes at s = 1
  double t_ref_s = 0.10;            // mean-response-time guarantee (100 ms)
  PowerModelParams power = {};      // see power/power_model.h
  FrequencyLadder ladder = FrequencyLadder::default_ladder();
  TransitionModel transition = {};  // boot/shutdown delays
  PerfModel perf_model = PerfModel::kMm1PerServer;
  unsigned min_servers = 1;         // never shut the whole cluster down

  // Validation: throws std::invalid_argument on inconsistent settings.
  void validate() const;

  // Largest arrival rate that is feasible at all (all M servers at s = 1
  // while still meeting t_ref): λ_max = M (μ_max − 1/t_ref) under M/M/1.
  [[nodiscard]] double max_feasible_arrival_rate() const;

  // Shorthand: cluster capacity M·μ_max ignoring the SLA.
  [[nodiscard]] double raw_capacity() const {
    return static_cast<double>(max_servers) * mu_max;
  }
};

}  // namespace gc
