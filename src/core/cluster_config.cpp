#include "core/cluster_config.h"

#include <cmath>
#include <stdexcept>

namespace gc {

const char* to_string(PerfModel model) noexcept {
  switch (model) {
    case PerfModel::kMm1PerServer: return "mm1-per-server";
    case PerfModel::kMmcCluster: return "mmc-cluster";
  }
  return "?";
}

void ClusterConfig::validate() const {
  if (max_servers == 0) throw std::invalid_argument("ClusterConfig: max_servers == 0");
  if (min_servers == 0 || min_servers > max_servers) {
    throw std::invalid_argument("ClusterConfig: need 1 <= min_servers <= max_servers");
  }
  if (!(mu_max > 0.0) || !std::isfinite(mu_max)) {
    throw std::invalid_argument("ClusterConfig: mu_max must be > 0");
  }
  if (!(t_ref_s > 0.0) || !std::isfinite(t_ref_s)) {
    throw std::invalid_argument("ClusterConfig: t_ref_s must be > 0");
  }
  if (1.0 / mu_max >= t_ref_s) {
    // Even an idle server at full speed takes 1/mu_max on average; the SLA
    // must leave some headroom or no operating point exists.
    throw std::invalid_argument("ClusterConfig: t_ref must exceed 1/mu_max");
  }
  if (!(transition.boot_delay_s >= 0.0 && transition.shutdown_delay_s >= 0.0)) {
    throw std::invalid_argument("ClusterConfig: transition delays must be >= 0");
  }
  (void)PowerModel(power);  // throws if inconsistent
}

double ClusterConfig::max_feasible_arrival_rate() const {
  return static_cast<double>(max_servers) * (mu_max - 1.0 / t_ref_s);
}

}  // namespace gc
