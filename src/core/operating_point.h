// The solver's output: a cluster operating point (m active servers, common
// normalized speed s) with its predicted steady-state cost and performance.
#pragma once

namespace gc {

struct OperatingPoint {
  unsigned servers = 0;          // m: active (ON) servers
  double speed = 1.0;            // s = f/f_max, common to all active servers
  double power_watts = 0.0;      // expected cluster power incl. (M-m) off draw
  double response_time_s = 0.0;  // predicted mean response time
  double utilization = 0.0;      // per-server ρ = λ/(m·s·μ_max)
  bool feasible = false;         // meets the t_ref guarantee and stability

  // Strict-weak-order on cost used by the solvers: lower power wins; ties
  // prefer fewer servers (less VOVF churn), then lower speed.
  [[nodiscard]] bool better_than(const OperatingPoint& other) const noexcept {
    if (feasible != other.feasible) return feasible;
    if (power_watts != other.power_watts) return power_watts < other.power_watts;
    if (servers != other.servers) return servers < other.servers;
    return speed < other.speed;
  }
};

}  // namespace gc
