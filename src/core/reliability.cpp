#include "core/reliability.h"

namespace gc {

const char* to_string(BindingConstraint binding) noexcept {
  switch (binding) {
    case BindingConstraint::kNone: return "none";
    case BindingConstraint::kLatency: return "latency";
    case BindingConstraint::kAvailability: return "availability";
    case BindingConstraint::kCapacity: return "capacity";
  }
  return "unknown";
}

}  // namespace gc
