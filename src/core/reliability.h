// Reliability model: wear-out budgets and a closed-form availability
// estimator (DESIGN.md §10).
//
// Two physical effects the energy-only solver ignores:
//
//   * Wear-out.  Every on/off transition consumes component lifetime
//     (thermal cycling, spin-up stress).  A server class is given a
//     cycles-to-failure budget N_cyc; each boot or shutdown charges half
//     a cycle, so the lifetime fraction consumed after B boots and S
//     shutdowns is 0.5 (B + S) / N_cyc.  The solver translates that into
//     an energy-equivalent cost per cycle (`cycle_cost_j`) so wear
//     competes with energy in a single objective.
//
//   * Availability.  With per-server availability a = MTBF/(MTBF+MTTR)
//     (independent exponential fail/repair, the fault injector's model),
//     a fleet of m required servers plus k spares is *up* whenever at
//     least m of the m+k are healthy:
//
//         A(m, k) = P[Binomial(m+k, a) >= m]
//                 = sum_{j=m}^{m+k} C(m+k, j) a^j (1-a)^(m+k-j)
//
//     Only k+1 terms — evaluated with a downward recurrence from the
//     j = m+k term, so no factorials and no overflow for any fleet size.
//     tests/test_reliability.cpp property-tests the closed form against
//     long fault-injected simulation runs.
//
// Everything here is pure arithmetic over the options struct: no RNG, no
// clock, no global state — determinism-golden safe by construction.
// Deliberately header-only (to_string aside): the simulation layer reads
// wear fractions for its observability scalars without taking a link
// dependency on gc_core (sim/ sits below core/ in the module graph).
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/operating_point.h"
#include "util/format.h"

namespace gc {

// Knobs for reliability-constrained provisioning.  Defaults disable every
// effect: mtbf_s = 0 turns the availability model off, cycles_to_failure =
// 0 turns wear accounting off, availability_target = 0 removes the
// constraint.  With the defaults, solve_reliable degenerates to
// solve_capped and the pinned determinism goldens are untouched.
struct ReliabilityOptions {
  double mtbf_s = 0.0;   // per-server mean time between failures; 0 = off
  double mttr_s = 600.0;  // per-server mean time to repair
  // Required steady-state fleet availability A_ref in (0, 1]; 0 disables
  // the constraint (spares are never solved).
  double availability_target = 0.0;
  // Cap on the solved spare count (bounds the constraint search).
  unsigned max_spares = 8;
  // On/off cycles a server survives before wear-out; 0 = wear off.
  double cycles_to_failure = 0.0;
  // Energy-equivalent joules charged per full on/off cycle in the solver
  // objective (amortized over the planning horizon).  0 = wear ignored by
  // the solver even when cycles_to_failure tracks it.
  double cycle_cost_j = 0.0;
  // Heterogeneous fleets: per-class cycles-to-failure overrides, indexed
  // by server class; empty = every class uses `cycles_to_failure`.
  std::vector<double> class_cycles_to_failure;

  [[nodiscard]] bool operator==(const ReliabilityOptions&) const = default;

  // True when any reliability effect is active.
  [[nodiscard]] bool enabled() const noexcept {
    return mtbf_s > 0.0 || cycles_to_failure > 0.0;
  }
  // True when the solver must honor availability >= availability_target.
  [[nodiscard]] bool availability_constrained() const noexcept {
    return availability_target > 0.0 && mtbf_s > 0.0;
  }
  // True when transitions are charged in the solver objective.
  [[nodiscard]] bool wear_costed() const noexcept { return cycle_cost_j > 0.0; }

  // Steady-state per-server availability MTBF/(MTBF+MTTR); 1 when the
  // failure model is disabled (a fault-free server is always up).
  [[nodiscard]] double server_availability() const noexcept {
    if (!(mtbf_s > 0.0)) return 1.0;
    return mtbf_s / (mtbf_s + mttr_s);
  }

  // Throws std::invalid_argument on non-finite/negative MTBF or MTTR, a
  // target outside [0, 1], or negative wear knobs — bad values must fail
  // loudly, not clamp (a NaN MTBF silently disables every comparison).
  void validate() const {
    if (!std::isfinite(mtbf_s) || mtbf_s < 0.0) {
      throw std::invalid_argument(gc::format(
          "reliability: mtbf_s must be finite and >= 0 (got {})", mtbf_s));
    }
    if (!std::isfinite(mttr_s) || mttr_s < 0.0) {
      throw std::invalid_argument(gc::format(
          "reliability: mttr_s must be finite and >= 0 (got {})", mttr_s));
    }
    if (mtbf_s > 0.0 && !(mttr_s > 0.0)) {
      throw std::invalid_argument(
          "reliability: mttr_s must be > 0 when mtbf_s enables the failure "
          "model");
    }
    if (!(availability_target >= 0.0) || availability_target > 1.0) {
      throw std::invalid_argument(gc::format(
          "reliability: availability_target must be in [0, 1] (got {})",
          availability_target));
    }
    if (!std::isfinite(cycles_to_failure) || cycles_to_failure < 0.0) {
      throw std::invalid_argument(gc::format(
          "reliability: cycles_to_failure must be finite and >= 0 (got {})",
          cycles_to_failure));
    }
    if (!std::isfinite(cycle_cost_j) || cycle_cost_j < 0.0) {
      throw std::invalid_argument(gc::format(
          "reliability: cycle_cost_j must be finite and >= 0 (got {})",
          cycle_cost_j));
    }
    for (std::size_t i = 0; i < class_cycles_to_failure.size(); ++i) {
      const double cycles = class_cycles_to_failure[i];
      if (!std::isfinite(cycles) || cycles < 0.0) {
        throw std::invalid_argument(gc::format(
            "reliability: class {} cycles_to_failure must be finite and >= 0 "
            "(got {})",
            i, cycles));
      }
    }
  }
};

// P[at least `required` of `required + spares` servers are healthy] given
// per-server availability a.  Pure function; the boundaries short-circuit
// (a <= 0 -> fleet is down unless nothing is required, a >= 1 -> always up).
[[nodiscard]] inline double fleet_availability(unsigned required, unsigned spares,
                                               double server_availability) noexcept {
  if (required == 0) return 1.0;
  if (server_availability >= 1.0) return 1.0;
  if (server_availability <= 0.0) return 0.0;
  const unsigned n = required + spares;
  const double a = server_availability;
  const double ratio = (1.0 - a) / a;
  // Downward recurrence over the binomial pmf from j = n:
  //   term(n)   = a^n
  //   term(j-1) = term(j) * (j / (n - j + 1)) * (1-a)/a
  // Only the top k+1 terms (j = n .. required) are summed — no factorials,
  // numerically stable for any fleet size.
  double term = std::pow(a, static_cast<double>(n));
  double sum = term;
  for (unsigned j = n; j > required; --j) {
    term *= static_cast<double>(j) / static_cast<double>(n - j + 1) * ratio;
    sum += term;
  }
  return sum > 1.0 ? 1.0 : sum;
}

// Smallest spare count k <= max_spares with A(required, k) >= target;
// nullopt when even max_spares cannot reach the target.  A(m, k) is
// non-decreasing in k, so the first k clearing the target is minimal.
[[nodiscard]] inline std::optional<unsigned> min_spares_for(
    unsigned required, double server_availability, double target,
    unsigned max_spares) noexcept {
  for (unsigned k = 0; k <= max_spares; ++k) {
    if (fleet_availability(required, k, server_availability) >= target) return k;
  }
  return std::nullopt;
}

// Wear accounting: lifetime fractions from transition counts.
class WearModel {
 public:
  // Validates the options (throws std::invalid_argument).
  explicit WearModel(const ReliabilityOptions& options) : options_(options) {
    options_.validate();
  }

  [[nodiscard]] bool enabled() const noexcept {
    if (options_.cycles_to_failure > 0.0) return true;
    for (const double cycles : options_.class_cycles_to_failure) {
      if (cycles > 0.0) return true;
    }
    return false;
  }

  // Lifetime fraction one server of `server_class` has consumed after the
  // given transition counts (0 when wear tracking is off).  Uncapped: a
  // value above 1 means the budget is exhausted.
  [[nodiscard]] double wear_fraction(std::uint64_t boots, std::uint64_t shutdowns,
                                     std::size_t server_class = 0) const noexcept {
    const double cycles = cycles_for(server_class);
    if (!(cycles > 0.0)) return 0.0;
    // A boot or a shutdown is each half of one full on/off cycle.
    return 0.5 * static_cast<double>(boots + shutdowns) / cycles;
  }

  // Energy-equivalent cost of changing the committed fleet size by
  // `delta` servers: each change is half an on/off cycle per server.
  [[nodiscard]] double transition_cost_j(unsigned delta) const noexcept {
    return 0.5 * options_.cycle_cost_j * static_cast<double>(delta);
  }

  // The budget `cycle_cost_j` is calibrated against: the global
  // cycles_to_failure when set, otherwise the largest per-class budget.
  // A class at the reference budget pays exactly cycle_cost_j per full
  // cycle; tighter classes pay proportionally more (each of their cycles
  // consumes proportionally more lifetime fraction).
  [[nodiscard]] double reference_cycles() const noexcept {
    double reference = options_.cycles_to_failure;
    for (const double cycles : options_.class_cycles_to_failure) {
      if (cycles > reference) reference = cycles;
    }
    return reference;
  }

  // Per-class transition cost: transition_cost_j scaled by how much of
  // `server_class`'s lifetime each cycle consumes relative to the
  // reference budget.  Classes without a budget (wear untracked) pay the
  // unscaled cost, so enabling per-class budgets only ever differentiates
  // classes, never silently exempts one.
  [[nodiscard]] double class_transition_cost_j(std::size_t server_class,
                                               unsigned delta) const noexcept {
    const double cycles = cycles_for(server_class);
    const double reference = reference_cycles();
    const double scale =
        (cycles > 0.0 && reference > 0.0) ? reference / cycles : 1.0;
    return scale * transition_cost_j(delta);
  }

 private:
  [[nodiscard]] double cycles_for(std::size_t server_class) const noexcept {
    if (server_class < options_.class_cycles_to_failure.size()) {
      const double cycles = options_.class_cycles_to_failure[server_class];
      if (cycles > 0.0) return cycles;
    }
    return options_.cycles_to_failure;
  }

  ReliabilityOptions options_;
};

// Which constraint pinned the solved operating point (audit `explain`).
enum class BindingConstraint : std::uint8_t {
  kNone = 0,          // no reliability solve ran
  kLatency = 1,       // E[T] <= t_ref alone fixed (m, s); spares free
  kAvailability = 2,  // spare pool forced by availability >= A_ref
  kCapacity = 3,      // fleet cap: latency or availability target unmet
};
[[nodiscard]] const char* to_string(BindingConstraint binding) noexcept;

// Result of Provisioner::solve_reliable: the energy-optimal base point
// plus the solved spare pool and the constraint that bound the search.
struct ReliablePlan {
  OperatingPoint base;       // latency-feasible (m, s) operating point
  unsigned spares = 0;       // solved spare count (idle, powered servers)
  double availability = 1.0;  // closed-form A(base.servers, spares)
  double objective_w = 0.0;  // power + spare power + amortized wear cost
  BindingConstraint binding = BindingConstraint::kNone;
};

}  // namespace gc
