// Heterogeneous-cluster provisioning — the natural extension of the
// paper's homogeneous model to a fleet of mixed server generations.
//
// The cluster consists of a few *classes*; class c has N_c identical
// servers with full-speed service rate μ_c, its own power curve and its
// own frequency ladder.  The joint problem becomes: pick per-class active
// counts n_c, speeds s_c, and a load split x_c (Σ x_c = λ) minimizing
// total power subject to the per-class mean-response-time guarantee
// T_c <= t_ref (which implies the overall mean meets t_ref for any split).
//
// Structure exploited:
//   * for fixed (n, x) each class behaves exactly like the homogeneous
//     problem, so s_c = s_min(x_c / n_c) as before (power increasing in s);
//   * for fixed counts, total power is convex in the split x (sum of
//     per-class convex functions of x_c), so the 2-class split reduces to
//     a 1-D golden-section search and k classes to a recursive split;
//   * counts are enumerated exactly for 2 classes (N_1 × N_2 pairs are
//     tiny at data-center-pod scale) and greedily refined for k > 2.
//
// The homogeneous Provisioner remains the fast path; HeteroProvisioner
// reduces to it bit-for-bit when all classes are identical
// (tests/test_hetero.cpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/cluster_config.h"
#include "core/provisioner.h"
#include "core/reliability.h"

namespace gc {

struct ServerClass {
  std::string name = "class";
  unsigned count = 0;           // N_c
  double mu_max = 40.0;         // jobs/s at s = 1
  PowerModelParams power = {};
  FrequencyLadder ladder = FrequencyLadder::default_ladder();
};

struct HeteroConfig {
  std::vector<ServerClass> classes;
  double t_ref_s = 0.10;

  void validate() const;
  [[nodiscard]] unsigned total_servers() const noexcept;
  // Σ_c N_c (μ_c − 1/t_ref)+ — the SLA-feasible ceiling.
  [[nodiscard]] double max_feasible_arrival_rate() const;
};

// One class's share of a heterogeneous operating point.
struct ClassAllocation {
  unsigned servers = 0;   // n_c
  double speed = 1.0;     // s_c
  double load = 0.0;      // x_c (jobs/s routed to the class)
  double power_watts = 0.0;  // class total incl. its off servers
  double response_time_s = 0.0;
};

struct HeteroOperatingPoint {
  std::vector<ClassAllocation> allocations;
  double power_watts = 0.0;  // cluster total
  bool feasible = false;

  [[nodiscard]] unsigned total_active() const noexcept;
};

class HeteroProvisioner {
 public:
  explicit HeteroProvisioner(HeteroConfig config);

  [[nodiscard]] const HeteroConfig& config() const noexcept { return config_; }

  // Minimal-power allocation serving `lambda` under the SLA.  When the
  // load is infeasible, returns everything-on-at-full-speed with
  // feasible = false (best effort), mirroring Provisioner::solve.
  [[nodiscard]] HeteroOperatingPoint solve(double lambda) const;

  // Cost of a *given* count vector with the split optimized (exposed for
  // tests and for the greedy refinement): nullopt if the counts cannot
  // carry `lambda`.
  [[nodiscard]] std::optional<HeteroOperatingPoint> evaluate_counts(
      double lambda, const std::vector<unsigned>& counts) const;

  // Wear-aware solve: minimizes power *plus* the amortized per-class
  // transition cost of moving from the `committed` count vector — classes
  // with tighter cycles-to-failure budgets
  // (ReliabilityOptions::class_cycles_to_failure) pay proportionally more
  // per boot/shutdown (WearModel::class_transition_cost_j), so required
  // growth and shrinkage land on the classes with lifetime to spare.  The
  // returned power_watts stays physical (the wear term only steers the
  // search).  With cycle_cost_j = 0 this is solve() exactly; infeasible
  // load degrades to the same best-effort point.
  [[nodiscard]] HeteroOperatingPoint solve_wear(
      double lambda, const std::vector<unsigned>& committed, double horizon_s,
      const ReliabilityOptions& reliability) const;

 private:
  // Cheapest power for class c carrying `load` on `n` servers (speed
  // rounded up on the class ladder); nullopt if infeasible.
  [[nodiscard]] std::optional<ClassAllocation> class_allocation(std::size_t c,
                                                                unsigned n,
                                                                double load) const;
  // Max SLA-feasible load for n servers of class c.
  [[nodiscard]] double class_capacity(std::size_t c, unsigned n) const;

  [[nodiscard]] HeteroOperatingPoint best_effort(double lambda) const;

  // Optimal split of `lambda` across the first `k` classes given counts;
  // recursive golden-section on the convex per-class costs.
  [[nodiscard]] std::optional<double> split_cost(double lambda,
                                                 const std::vector<unsigned>& counts,
                                                 std::vector<double>* loads) const;

  HeteroConfig config_;
  std::vector<PowerModel> power_models_;
};

}  // namespace gc
