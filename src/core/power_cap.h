// Power-capped operation — the dual of the energy-minimization problem.
//
// The paper promises "controllable and predictable quantitative control of
// power consumption".  Provisioner::solve answers "cheapest power for a
// load"; this module answers the converse questions an operator with a
// power budget (rack breaker, brownout response, carbon cap) asks:
//
//   * max_supportable_rate(cap)  — the largest arrival rate whose optimal
//     operating point fits under `cap` watts while still meeting t_ref
//     (monotone in cap; solved by bisection against the exact solver);
//   * best_point_under_cap(λ, cap) — the operating point that *minimizes
//     mean response time* subject to cluster power <= cap.  For a fixed m,
//     response is decreasing in s and power increasing, so the best s is
//     the largest affordable level; the outer loop over m is exact.
#pragma once

#include <optional>

#include "core/operating_point.h"
#include "core/provisioner.h"

namespace gc {

class PowerCapSolver {
 public:
  // `provisioner` must outlive the solver.
  explicit PowerCapSolver(const Provisioner* provisioner);

  // Largest λ such that solve(λ) is feasible and fits under `cap_watts`.
  // Returns 0 if even an idle minimal cluster exceeds the cap.
  [[nodiscard]] double max_supportable_rate(double cap_watts) const;

  // Response-time-optimal point with power <= cap.  nullopt when no
  // SLA-feasible point fits under the cap (the load must be shed instead).
  [[nodiscard]] std::optional<OperatingPoint> best_point_under_cap(
      double lambda, double cap_watts) const;

  // Cheapest power at which `lambda` is servable at all (the y-value of
  // the capacity curve): solve(λ).power for feasible λ, nullopt otherwise.
  [[nodiscard]] std::optional<double> min_power_for_rate(double lambda) const;

 private:
  const Provisioner* provisioner_;  // non-owning
};

}  // namespace gc
