#include "core/provisioner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "queueing/mm1.h"
#include "queueing/mmc.h"
#include "util/assert.h"

namespace gc {
namespace {

// Direct-mapped memo table: large enough that one DCP run's distinct
// measured rates rarely collide, small enough (~512 KiB) to build per run.
constexpr std::size_t kCacheSlots = 8192;

// Reliable-plan table: one controller re-solves far fewer distinct
// (λ, cap, committed) triples per run, so a smaller table suffices.
constexpr std::size_t kReliableCacheSlots = 2048;

}  // namespace

Provisioner::Provisioner(ClusterConfig config)
    : config_(std::move(config)), power_model_(config_.power) {
  config_.validate();
  cache_quantum_ =
      std::max(config_.max_feasible_arrival_rate(), 1.0) / 65536.0;
  cache_.resize(kCacheSlots);
}

void Provisioner::set_config(ClusterConfig config) {
  config_ = std::move(config);
  config_.validate();
  power_model_ = PowerModel(config_.power);
  cache_quantum_ =
      std::max(config_.max_feasible_arrival_rate(), 1.0) / 65536.0;
  invalidate_cache();
}

void Provisioner::invalidate_cache() noexcept {
  for (CacheEntry& entry : cache_) entry.op = CacheOp::kEmpty;
  for (ReliableCacheEntry& entry : reliable_cache_) entry.valid = false;
}

std::size_t Provisioner::cache_slot(double lambda, unsigned m, CacheOp op) const {
  // λ enters the slot hash *quantized*: nearby rates that round to the
  // same bucket compete for one slot, exact equality is still required to
  // hit (checked by the caller), so quantization never changes a result.
  const auto bucket =
      static_cast<std::uint64_t>(std::llround(lambda / cache_quantum_));
  std::uint64_t h = bucket * 0x9e3779b97f4a7c15ULL;
  h ^= (static_cast<std::uint64_t>(m) << 8) | static_cast<std::uint64_t>(op);
  h *= 0xc2b2ae3d27d4eb4fULL;
  h ^= h >> 29;
  return static_cast<std::size_t>(h % kCacheSlots);
}

template <typename Fn>
OperatingPoint Provisioner::cached(double lambda, unsigned m, CacheOp op,
                                   Fn&& compute) const {
  CacheEntry& entry = cache_[cache_slot(lambda, m, op)];
  if (entry.op == op && entry.m == m && entry.lambda == lambda) {
    ++cache_stats_.hits;
    return entry.point;
  }
  ++cache_stats_.misses;
  const OperatingPoint point = compute();
  entry = CacheEntry{lambda, m, op, point};
  return point;
}

double Provisioner::response_time(double lambda, unsigned m, double s) const {
  const double mu = s * config_.mu_max;
  switch (config_.perf_model) {
    case PerfModel::kMm1PerServer: {
      const double per_server = lambda / static_cast<double>(m);
      if (!mm1::stable(per_server, mu)) return std::numeric_limits<double>::infinity();
      return mm1::mean_response_time(per_server, mu);
    }
    case PerfModel::kMmcCluster: {
      if (!mmc::stable(lambda, mu, m)) return std::numeric_limits<double>::infinity();
      return mmc::mean_response_time(lambda, mu, m);
    }
  }
  return std::numeric_limits<double>::infinity();
}

std::optional<double> Provisioner::min_speed(double lambda, unsigned m) const {
  GC_CHECK(m >= 1 && m <= config_.max_servers, "min_speed: m out of range");
  GC_CHECK(lambda >= 0.0, "min_speed: negative arrival rate");
  switch (config_.perf_model) {
    case PerfModel::kMm1PerServer: {
      // Closed form: s ≥ (λ/m + 1/t_ref) / μ_max.
      const double s = (lambda / static_cast<double>(m) + 1.0 / config_.t_ref_s) /
                       config_.mu_max;
      if (s > 1.0 + 1e-12) return std::nullopt;
      return std::min(s, 1.0);
    }
    case PerfModel::kMmcCluster: {
      // Response time is strictly decreasing in s; bisect.
      if (response_time(lambda, m, 1.0) > config_.t_ref_s) return std::nullopt;
      double lo = 0.0;
      double hi = 1.0;
      for (int it = 0; it < 64; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (mid <= 0.0) break;
        if (response_time(lambda, m, mid) <= config_.t_ref_s) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      return hi;
    }
  }
  return std::nullopt;
}

std::optional<unsigned> Provisioner::min_feasible_servers(double lambda) const {
  unsigned lo = config_.min_servers;
  if (config_.perf_model == PerfModel::kMm1PerServer) {
    // Closed form start: m ≥ λ / (μ_max − 1/t_ref).
    const double denom = config_.mu_max - 1.0 / config_.t_ref_s;
    const double m_real = lambda / denom;
    lo = std::max(lo, static_cast<unsigned>(std::ceil(m_real - 1e-9)));
  }
  for (unsigned m = std::max(lo, 1u); m <= config_.max_servers; ++m) {
    if (min_speed(lambda, m).has_value()) return m;
  }
  return std::nullopt;
}

OperatingPoint Provisioner::evaluate(double lambda, unsigned m, double s) const {
  GC_CHECK(m >= 1 && m <= config_.max_servers, "evaluate: m out of range");
  GC_CHECK(s > 0.0 && s <= 1.0 + 1e-12, "evaluate: speed out of (0,1]");
  OperatingPoint pt;
  pt.servers = m;
  pt.speed = std::min(s, 1.0);
  const double capacity = static_cast<double>(m) * pt.speed * config_.mu_max;
  pt.utilization = capacity > 0.0 ? std::min(lambda / capacity, 1.0) : 1.0;
  pt.response_time_s = response_time(lambda, m, pt.speed);
  pt.feasible = std::isfinite(pt.response_time_s) &&
                pt.response_time_s <= config_.t_ref_s * (1.0 + 1e-9);
  const double active = static_cast<double>(m) *
                        power_model_.expected_power(pt.speed, pt.utilization);
  const double off = static_cast<double>(config_.max_servers - m) *
                     power_model_.off_power();
  pt.power_watts = active + off;
  return pt;
}

OperatingPoint Provisioner::best_speed_for(double lambda, unsigned m) const {
  GC_CHECK(m >= 1 && m <= config_.max_servers, "best_speed_for: m out of range");
  GC_CHECK(lambda >= 0.0 && std::isfinite(lambda), "best_speed_for: bad lambda");
  return cached(lambda, m, CacheOp::kBestSpeedFor,
                [&] { return best_speed_for_uncached(lambda, m); });
}

OperatingPoint Provisioner::best_speed_for_uncached(double lambda, unsigned m) const {
  const auto s_cont = min_speed(lambda, m);
  if (!s_cont) {
    OperatingPoint pt = evaluate(lambda, m, 1.0);
    pt.feasible = false;
    return pt;
  }
  return evaluate(lambda, m, config_.ladder.round_up(*s_cont));
}

OperatingPoint Provisioner::best_effort(double lambda) const {
  OperatingPoint pt = evaluate(lambda, config_.max_servers, 1.0);
  pt.feasible = false;
  return pt;
}

OperatingPoint Provisioner::scan_range(double lambda, unsigned lo, unsigned hi) const {
  OperatingPoint best;
  bool have_best = false;
  for (unsigned m = lo; m <= hi; ++m) {
    const auto s = min_speed(lambda, m);
    if (!s) continue;
    const OperatingPoint pt = evaluate(lambda, m, config_.ladder.round_up(*s));
    if (!pt.feasible) continue;  // ladder floor can overshoot only upward, but guard
    if (!have_best || pt.better_than(best)) {
      best = pt;
      have_best = true;
    }
  }
  if (!have_best) return best_effort(lambda);
  return best;
}

OperatingPoint Provisioner::solve(double lambda) const {
  GC_CHECK(lambda >= 0.0 && std::isfinite(lambda), "solve: bad lambda");
  return cached(lambda, 0, CacheOp::kSolve, [&] { return solve_uncached(lambda); });
}

OperatingPoint Provisioner::solve_uncached(double lambda) const {
  const auto m_min = min_feasible_servers(lambda);
  if (!m_min) return best_effort(lambda);
  return scan_range(lambda, *m_min, config_.max_servers);
}

OperatingPoint Provisioner::solve_capped(double lambda, unsigned m_cap) const {
  GC_CHECK(lambda >= 0.0 && std::isfinite(lambda), "solve_capped: bad lambda");
  GC_CHECK(m_cap >= 1, "solve_capped: need at least one server in the cap");
  // Clamp before the lookup so caps beyond the fleet share one entry.
  m_cap = std::min(m_cap, config_.max_servers);
  return cached(lambda, m_cap, CacheOp::kSolveCapped,
                [&] { return solve_capped_uncached(lambda, m_cap); });
}

OperatingPoint Provisioner::solve_capped_uncached(double lambda, unsigned m_cap) const {
  const auto m_min = min_feasible_servers(lambda);
  if (!m_min || *m_min > m_cap) {
    OperatingPoint pt = evaluate(lambda, m_cap, 1.0);
    pt.feasible = false;
    return pt;
  }
  OperatingPoint pt = scan_range(lambda, *m_min, m_cap);
  if (!pt.feasible || pt.servers > m_cap) {
    // scan_range's fallback is the *uncapped* best effort; re-cap it.
    pt = evaluate(lambda, m_cap, 1.0);
    pt.feasible = false;
  }
  return pt;
}

std::size_t Provisioner::reliable_slot(double lambda, unsigned m_cap,
                                       unsigned m_committed) const {
  // Same quantized-λ slot hashing as cache_slot; exact equality on every
  // key component is still required to hit.
  const auto bucket =
      static_cast<std::uint64_t>(std::llround(lambda / cache_quantum_));
  std::uint64_t h = bucket * 0x9e3779b97f4a7c15ULL;
  h ^= (static_cast<std::uint64_t>(m_cap) << 32) |
       static_cast<std::uint64_t>(m_committed);
  h *= 0xc2b2ae3d27d4eb4fULL;
  h ^= h >> 29;
  return static_cast<std::size_t>(h % kReliableCacheSlots);
}

ReliablePlan Provisioner::solve_reliable(double lambda, unsigned m_cap,
                                         unsigned m_committed, double horizon_s,
                                         const ReliabilityOptions& reliability) const {
  GC_CHECK(lambda >= 0.0 && std::isfinite(lambda), "solve_reliable: bad lambda");
  GC_CHECK(m_cap >= 1, "solve_reliable: need at least one server in the cap");
  GC_CHECK(horizon_s >= 0.0 && std::isfinite(horizon_s),
           "solve_reliable: bad horizon");
  // Clamp before the lookup so caps beyond the fleet share one entry.
  m_cap = std::min(m_cap, config_.max_servers);
  m_committed = std::min(m_committed, config_.max_servers);
  if (reliable_cache_.empty()) reliable_cache_.resize(kReliableCacheSlots);
  if (reliable_horizon_s_ != horizon_s || !(reliable_knobs_ == reliability)) {
    // New knob generation: cached plans answer a different objective, so
    // they must all go (plain OperatingPoint entries are untouched).
    reliability.validate();
    for (ReliableCacheEntry& entry : reliable_cache_) entry.valid = false;
    reliable_knobs_ = reliability;
    reliable_horizon_s_ = horizon_s;
  }
  ReliableCacheEntry& entry =
      reliable_cache_[reliable_slot(lambda, m_cap, m_committed)];
  if (entry.valid && entry.lambda == lambda && entry.m_cap == m_cap &&
      entry.m_committed == m_committed) {
    ++cache_stats_.hits;
    return entry.plan;
  }
  ++cache_stats_.misses;
  const ReliablePlan plan =
      solve_reliable_uncached(lambda, m_cap, m_committed, horizon_s, reliability);
  entry = ReliableCacheEntry{lambda, m_cap, m_committed, true, plan};
  return plan;
}

ReliablePlan Provisioner::solve_reliable_uncached(
    double lambda, unsigned m_cap, unsigned m_committed, double horizon_s,
    const ReliabilityOptions& reliability) const {
  const double a = reliability.server_availability();
  const bool constrained = reliability.availability_constrained();
  const double wear_w_per_server =
      reliability.wear_costed() && horizon_s > 0.0
          ? 0.5 * reliability.cycle_cost_j / horizon_s
          : 0.0;

  ReliablePlan plan;
  const auto m_min = min_feasible_servers(lambda);
  if (!m_min || *m_min > m_cap) {
    // Latency-infeasible inside the cap: degraded best effort, no spares
    // (every cap slot goes to serving capacity).
    plan.base = evaluate(lambda, m_cap, 1.0);
    plan.base.feasible = false;
    plan.availability = fleet_availability(m_cap, 0, a);
    plan.objective_w = plan.base.power_watts;
    plan.binding = BindingConstraint::kCapacity;
    return plan;
  }

  bool have_best = false;
  bool best_avail_ok = false;
  double best_objective = std::numeric_limits<double>::infinity();
  unsigned best_total = 0;
  for (unsigned m = *m_min; m <= m_cap; ++m) {
    const auto s_cont = min_speed(lambda, m);
    if (!s_cont) continue;
    const OperatingPoint base =
        evaluate(lambda, m, config_.ladder.round_up(*s_cont));
    if (!base.feasible) continue;
    // Spare pool: smallest k meeting the availability target within the
    // room the cap leaves; if unreachable, best effort with all the room.
    const unsigned spare_room = std::min(reliability.max_spares, m_cap - m);
    unsigned k = 0;
    bool avail_ok = true;
    if (constrained) {
      if (const auto solved =
              min_spares_for(m, a, reliability.availability_target, spare_room)) {
        k = *solved;
      } else {
        k = spare_room;
        avail_ok = false;
      }
    }
    // The dispatcher spreads load across every serving server, so the
    // committed pool of m + k runs at the base speed with diluted
    // utilization — cost that, while the t_ref guarantee stays certified
    // with the base m alone (spares may be down).
    const OperatingPoint pool = k > 0 ? evaluate(lambda, m + k, base.speed) : base;
    const unsigned total = m + k;
    const unsigned delta =
        total > m_committed ? total - m_committed : m_committed - total;
    const double objective =
        pool.power_watts + wear_w_per_server * static_cast<double>(delta);
    bool better = false;
    if (!have_best) {
      better = true;
    } else if (avail_ok != best_avail_ok) {
      better = avail_ok;  // meeting the availability target dominates cost
    } else if (objective < best_objective) {
      better = true;
    } else if (objective == best_objective && total < best_total) {
      better = true;
    }
    if (better) {
      have_best = true;
      best_avail_ok = avail_ok;
      best_objective = objective;
      best_total = total;
      plan.base = base;
      plan.spares = k;
      plan.availability = fleet_availability(m, k, a);
      plan.objective_w = objective;
    }
  }
  if (!have_best) {
    // Ladder round-up overshot t_ref for every m in range (same guard as
    // solve_capped_uncached): degraded best effort at the cap.
    plan.base = evaluate(lambda, m_cap, 1.0);
    plan.base.feasible = false;
    plan.spares = 0;
    plan.availability = fleet_availability(m_cap, 0, a);
    plan.objective_w = plan.base.power_watts;
    plan.binding = BindingConstraint::kCapacity;
    return plan;
  }
  plan.binding = !best_avail_ok ? BindingConstraint::kCapacity
                 : plan.spares > 0 ? BindingConstraint::kAvailability
                                   : BindingConstraint::kLatency;
  return plan;
}

double Provisioner::relaxed_power(double lambda, double m_real) const {
  GC_CHECK(config_.perf_model == PerfModel::kMm1PerServer,
           "relaxed_power: M/M/1 model only");
  GC_CHECK(m_real > 0.0, "relaxed_power: m must be positive");
  const double s =
      std::clamp((lambda / m_real + 1.0 / config_.t_ref_s) / config_.mu_max,
                 config_.ladder.min_speed(), 1.0);
  const PowerModelParams& p = config_.power;
  const double dyn_range = p.p_max_watts - p.p_idle_watts;
  double active;
  if (p.utilization_gated) {
    // m · [P_idle + ΔP s^α ρ] with ρ = λ/(m s μ):
    //   = m P_idle + ΔP (λ/μ) s^(α-1).
    active = m_real * p.p_idle_watts +
             dyn_range * (lambda / config_.mu_max) * std::pow(s, p.alpha - 1.0);
  } else {
    active = m_real * (p.p_idle_watts + dyn_range * std::pow(s, p.alpha));
  }
  const double off = (static_cast<double>(config_.max_servers) - m_real) * p.p_off_watts;
  return active + off;
}

ContinuousSolution Provisioner::solve_continuous(double lambda) const {
  ContinuousSolution sol;
  if (config_.perf_model != PerfModel::kMm1PerServer) {
    const OperatingPoint pt = solve(lambda);
    sol.servers = static_cast<double>(pt.servers);
    sol.speed = pt.speed;
    sol.power_watts = pt.power_watts;
    sol.feasible = pt.feasible;
    return sol;
  }
  // Feasible m range in the reals: s_min(m) <= 1 requires
  // m >= λ / (μ_max − 1/t_ref); cap at M.
  const double denom = config_.mu_max - 1.0 / config_.t_ref_s;
  const double m_lo = std::max(lambda / denom, static_cast<double>(config_.min_servers));
  const double m_hi = static_cast<double>(config_.max_servers);
  if (m_lo > m_hi + 1e-9) {
    sol.feasible = false;
    const OperatingPoint pt = best_effort(lambda);
    sol.servers = static_cast<double>(pt.servers);
    sol.speed = pt.speed;
    sol.power_watts = pt.power_watts;
    return sol;
  }
  // The relaxation is convex in m (DESIGN.md §1.1): golden-section search.
  constexpr double kPhi = 0.6180339887498949;
  double a = std::min(m_lo, m_hi);
  double b = m_hi;
  double x1 = b - kPhi * (b - a);
  double x2 = a + kPhi * (b - a);
  double f1 = relaxed_power(lambda, x1);
  double f2 = relaxed_power(lambda, x2);
  for (int it = 0; it < 200 && (b - a) > 1e-10 * std::max(1.0, b); ++it) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kPhi * (b - a);
      f1 = relaxed_power(lambda, x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kPhi * (b - a);
      f2 = relaxed_power(lambda, x2);
    }
  }
  sol.servers = 0.5 * (a + b);
  sol.speed = std::clamp(
      (lambda / sol.servers + 1.0 / config_.t_ref_s) / config_.mu_max,
      config_.ladder.min_speed(), 1.0);
  sol.power_watts = relaxed_power(lambda, sol.servers);
  sol.feasible = true;
  return sol;
}

OperatingPoint Provisioner::solve_fast(double lambda) const {
  GC_CHECK(lambda >= 0.0 && std::isfinite(lambda), "solve_fast: bad lambda");
  const auto m_min = min_feasible_servers(lambda);
  if (!m_min) return best_effort(lambda);
  if (config_.perf_model != PerfModel::kMm1PerServer) {
    // No closed form for m(s) under the Erlang-C model; the full scan is
    // already O(M log M)-ish and M is small in practice.
    return scan_range(lambda, *m_min, config_.max_servers);
  }
  if (config_.ladder.is_continuous()) {
    // Convex relaxation + integer neighborhood (the clamped objective is
    // convex in m, so floor/ceil of the relaxed optimum bracket it; a ±3
    // window also absorbs the golden-section tolerance).
    const ContinuousSolution relaxed = solve_continuous(lambda);
    const auto center = static_cast<long>(std::llround(relaxed.servers));
    const long lo = std::max<long>(static_cast<long>(*m_min), center - 3);
    const long hi = std::min<long>(static_cast<long>(config_.max_servers), center + 3);
    return scan_range(lambda, static_cast<unsigned>(lo), static_cast<unsigned>(hi));
  }
  // Discrete ladder: the optimum runs at some level s_k, and for a fixed
  // speed the cluster cost is increasing in m (both gated and ungated
  // power laws), so the best m for level k is the *smallest* feasible one:
  //     s_min(m) <= s_k  <=>  m >= lambda / (s_k * mu_max - 1/t_ref).
  // Evaluating one candidate per level is exact and O(K).
  OperatingPoint best;
  bool found = false;
  for (std::size_t k = 0; k < config_.ladder.num_levels(); ++k) {
    const double s = config_.ladder.speed_of_level(k);
    const double slack = s * config_.mu_max - 1.0 / config_.t_ref_s;
    unsigned m = config_.min_servers;
    if (lambda > 0.0) {
      if (!(slack > 0.0)) continue;  // this level cannot meet t_ref at any m
      const double m_real = lambda / slack;
      if (m_real > static_cast<double>(config_.max_servers)) continue;
      m = std::max(config_.min_servers,
                   static_cast<unsigned>(std::ceil(m_real - 1e-9)));
    } else if (!(slack >= 0.0)) {
      continue;  // even an empty server misses t_ref at this speed
    }
    if (m > config_.max_servers) continue;
    const OperatingPoint pt = evaluate(lambda, m, s);
    if (!pt.feasible) continue;
    if (!found || pt.better_than(best)) {
      best = pt;
      found = true;
    }
  }
  if (!found) return best_effort(lambda);
  return best;
}

}  // namespace gc
