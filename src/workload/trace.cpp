#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.h"
#include "util/csv.h"
#include "util/format.h"
#include "workload/arrival_process.h"

namespace gc {

Trace::Trace(std::vector<double> timestamps) : ts_(std::move(timestamps)) {
  // NaN must be rejected explicitly: every ordering comparison against it
  // is false, so a NaN-laced trace would sail through the sortedness check
  // and detonate later inside the event queue.
  for (std::size_t i = 0; i < ts_.size(); ++i) {
    if (!std::isfinite(ts_[i])) {
      throw std::invalid_argument(
          gc::format("Trace: timestamp #{} is not finite", i));
    }
  }
  for (std::size_t i = 1; i < ts_.size(); ++i) {
    if (ts_[i] < ts_[i - 1]) throw std::invalid_argument("Trace: timestamps must be sorted");
  }
  if (!ts_.empty() && ts_.front() < 0.0) {
    throw std::invalid_argument("Trace: timestamps must be nonnegative");
  }
}

double Trace::mean_rate() const noexcept {
  if (ts_.size() < 2 || duration() <= 0.0) return 0.0;
  return static_cast<double>(ts_.size()) / duration();
}

Trace Trace::from_profile(const RateProfile& profile, double horizon, std::uint64_t seed) {
  // Own the profile through a non-deleting alias so NhppProcess can share it.
  const std::shared_ptr<const RateProfile> alias(&profile, [](const RateProfile*) {});
  NhppProcess process(alias, horizon, Rng(seed, /*stream=*/1));
  std::vector<double> ts;
  while (const auto t = process.next()) ts.push_back(*t);
  return Trace(std::move(ts));
}

std::shared_ptr<const RateProfile> Trace::to_rate_profile(double bin_s) const {
  GC_CHECK(bin_s > 0.0, "to_rate_profile: bin must be positive");
  GC_CHECK(!ts_.empty(), "to_rate_profile: empty trace");
  const auto num_bins = static_cast<std::size_t>(std::ceil(duration() / bin_s));
  std::vector<std::size_t> counts(std::max<std::size_t>(num_bins, 1), 0);
  for (const double t : ts_) {
    auto b = static_cast<std::size_t>(t / bin_s);
    if (b >= counts.size()) b = counts.size() - 1;
    ++counts[b];
  }
  std::vector<PiecewiseLinearRate::Knot> knots;
  knots.reserve(counts.size());
  for (std::size_t b = 0; b < counts.size(); ++b) {
    knots.push_back({(static_cast<double>(b) + 0.5) * bin_s,
                     static_cast<double>(counts[b]) / bin_s});
  }
  if (knots.size() == 1) {
    // A single bin cannot anchor interpolation; extend it flat.
    knots.push_back({knots[0].time + bin_s, knots[0].rate});
  }
  return std::make_shared<PiecewiseLinearRate>(std::move(knots));
}

void Trace::save_csv(const std::filesystem::path& path) const {
  CsvTable table;
  table.header = {"arrival_s"};
  table.rows.reserve(ts_.size());
  for (const double t : ts_) table.rows.push_back({t});
  write_csv_file(path, table);
}

Trace Trace::load_csv(const std::filesystem::path& path) {
  const CsvTable table = read_csv_file(path);
  const int col = table.column_index("arrival_s");
  if (col < 0) throw std::runtime_error("trace csv: missing 'arrival_s' column");
  std::vector<double> ts;
  ts.reserve(table.rows.size());
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const double t = table.rows[r][static_cast<std::size_t>(col)];
    // Validate before sorting: std::sort on NaN-contaminated data violates
    // strict weak ordering (undefined behavior), and a negative arrival
    // would otherwise only surface deep inside the simulator.
    if (!std::isfinite(t) || t < 0.0) {
      throw std::runtime_error(
          gc::format("trace csv {} row {}: arrival_s must be finite and >= 0 "
                     "(got {})",
                     path.string(), r + 1, t));
    }
    ts.push_back(t);
  }
  std::sort(ts.begin(), ts.end());
  return Trace(std::move(ts));
}

}  // namespace gc
