// A workload = an arrival process + a job-size distribution.
//
// Job sizes are expressed in *work seconds at full speed* (s = 1): a job of
// size w completes after w / s seconds on a server running at constant
// normalized speed s.  With exponential sizes of mean 1/μ_max this makes
// each server an M/M/1 queue with service rate s·μ_max, matching the
// analytic model the optimizer uses.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "stats/distributions.h"
#include "stats/rng.h"
#include "workload/arrival_process.h"
#include "workload/trace.h"

namespace gc {

struct JobArrival {
  double time = 0.0;   // seconds since simulation start
  double size = 0.0;   // work seconds at s = 1
};

class Workload {
 public:
  Workload(std::unique_ptr<ArrivalProcess> arrivals, Distribution job_size, Rng size_rng);

  // Pull the next job; nullopt when the arrival process is exhausted.
  [[nodiscard]] std::optional<JobArrival> next();

  void reset();

  [[nodiscard]] std::string name() const;
  [[nodiscard]] const Distribution& job_size_dist() const noexcept { return job_size_; }

  // -- Factories -----------------------------------------------------------

  // Poisson(λ) arrivals, exp(μ_max) sizes: the M/M/1-per-server workload the
  // solver's model assumes.
  [[nodiscard]] static Workload poisson_exponential(double arrival_rate, double mu_max,
                                                    double horizon, std::uint64_t seed);

  // NHPP over a profile with exp(μ_max) sizes.
  [[nodiscard]] static Workload profile_exponential(
      std::shared_ptr<const RateProfile> profile, double mu_max, double horizon,
      std::uint64_t seed);

  // NHPP over a profile with an arbitrary size distribution (use
  // Distribution::with_mean(1/mu_max) to keep the offered load comparable
  // to the exponential baseline).
  [[nodiscard]] static Workload profile_sized(std::shared_ptr<const RateProfile> profile,
                                              Distribution job_size, double horizon,
                                              std::uint64_t seed);

  // Replay a trace with a given size distribution.
  [[nodiscard]] static Workload trace_replay(const Trace& trace, Distribution job_size,
                                             std::uint64_t seed);

 private:
  std::unique_ptr<ArrivalProcess> arrivals_;
  Distribution job_size_;
  Rng size_rng_, initial_size_rng_;
};

}  // namespace gc
