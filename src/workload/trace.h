// Arrival traces: recorded or synthesized timestamp lists.
//
// Traces bridge the generator and replay worlds: a profile can be sampled
// into a trace (for exact repeatability across policies — every policy sees
// the *same* arrivals), saved to CSV, binned back into an empirical rate
// profile, and replayed through TraceProcess.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "stats/rng.h"
#include "workload/rate_profile.h"

namespace gc {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<double> timestamps);

  [[nodiscard]] const std::vector<double>& timestamps() const noexcept { return ts_; }
  [[nodiscard]] std::size_t size() const noexcept { return ts_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ts_.empty(); }
  [[nodiscard]] double duration() const noexcept { return ts_.empty() ? 0.0 : ts_.back(); }
  [[nodiscard]] double mean_rate() const noexcept;

  // Samples a profile into concrete arrivals via NHPP thinning.
  [[nodiscard]] static Trace from_profile(const RateProfile& profile, double horizon,
                                          std::uint64_t seed);

  // Counts arrivals per `bin_s`-second bin and returns the empirical rate
  // as a piecewise-linear profile through the bin centers.
  [[nodiscard]] std::shared_ptr<const RateProfile> to_rate_profile(double bin_s) const;

  // CSV with a single `arrival_s` column.  Throws on I/O errors.
  void save_csv(const std::filesystem::path& path) const;
  [[nodiscard]] static Trace load_csv(const std::filesystem::path& path);

 private:
  std::vector<double> ts_;
};

}  // namespace gc
