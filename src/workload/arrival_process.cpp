#include "workload/arrival_process.h"

#include <cmath>
#include "util/format.h"
#include <stdexcept>

#include "util/assert.h"

namespace gc {

PoissonProcess::PoissonProcess(double rate, double horizon, Rng rng)
    : rate_(rate), horizon_(horizon), rng_(rng), initial_rng_(rng) {
  if (!(rate > 0.0 && horizon > 0.0)) {
    throw std::invalid_argument("PoissonProcess: need rate>0, horizon>0");
  }
}

std::optional<double> PoissonProcess::next() {
  t_ += -std::log(rng_.uniform01_open_left()) / rate_;
  if (t_ > horizon_) return std::nullopt;
  return t_;
}

std::string PoissonProcess::name() const { return gc::format("poisson({:g}/s)", rate_); }

void PoissonProcess::reset() {
  rng_ = initial_rng_;
  t_ = 0.0;
}

NhppProcess::NhppProcess(std::shared_ptr<const RateProfile> profile, double horizon,
                         Rng rng, double majorant_window_s)
    : profile_(std::move(profile)), horizon_(horizon), rng_(rng), initial_rng_(rng),
      window_(majorant_window_s) {
  GC_CHECK(profile_ != nullptr, "NhppProcess: null profile");
  if (!(horizon > 0.0 && majorant_window_s > 0.0)) {
    throw std::invalid_argument("NhppProcess: need horizon>0, window>0");
  }
}

std::optional<double> NhppProcess::next() {
  // Thinning: propose candidates at the windowed majorant rate, accept
  // with probability λ(t)/majorant.  Windows with zero majorant are skipped.
  while (t_ < horizon_) {
    const double window_start = std::floor(t_ / window_) * window_;
    const double window_end = std::min(window_start + window_, horizon_);
    const double majorant = profile_->max_rate(window_start, window_end);
    if (!(majorant > 0.0)) {
      t_ = window_end;
      continue;
    }
    const double gap = -std::log(rng_.uniform01_open_left()) / majorant;
    const double candidate = t_ + gap;
    if (candidate >= window_end) {
      // No accepted point in this window; restart at its edge with fresh
      // exponential (memorylessness makes this exact).
      t_ = window_end;
      continue;
    }
    t_ = candidate;
    const double lambda = profile_->rate(candidate);
    GC_DCHECK(lambda <= majorant * (1.0 + 1e-9), "profile broke its own majorant");
    if (rng_.uniform01() * majorant < lambda) return candidate;
  }
  return std::nullopt;
}

std::string NhppProcess::name() const { return gc::format("nhpp[{}]", profile_->name()); }

void NhppProcess::reset() {
  rng_ = initial_rng_;
  t_ = 0.0;
}

MmppProcess::MmppProcess(Params params, double horizon, Rng rng)
    : params_(params), horizon_(horizon), rng_(rng), initial_rng_(rng) {
  const bool ok = params.rate0 > 0.0 && params.rate1 > 0.0 && params.switch_rate0 > 0.0 &&
                  params.switch_rate1 > 0.0 && horizon > 0.0;
  if (!ok) throw std::invalid_argument("MmppProcess: all rates and horizon must be > 0");
  roll_phase_end();
}

void MmppProcess::roll_phase_end() {
  const double leave = phase_ == 0 ? params_.switch_rate0 : params_.switch_rate1;
  phase_end_ = t_ + -std::log(rng_.uniform01_open_left()) / leave;
}

std::optional<double> MmppProcess::next() {
  for (;;) {
    const double rate = phase_ == 0 ? params_.rate0 : params_.rate1;
    const double candidate = t_ + -std::log(rng_.uniform01_open_left()) / rate;
    if (candidate < phase_end_) {
      t_ = candidate;
      if (t_ > horizon_) return std::nullopt;
      return t_;
    }
    // Phase switch happened first; jump to it (exponential memorylessness
    // lets us discard the candidate) and flip phase.
    t_ = phase_end_;
    if (t_ > horizon_) return std::nullopt;
    phase_ = 1 - phase_;
    roll_phase_end();
  }
}

std::string MmppProcess::name() const {
  return gc::format("mmpp({:g}/{:g})", params_.rate0, params_.rate1);
}

void MmppProcess::reset() {
  rng_ = initial_rng_;
  t_ = 0.0;
  phase_ = 0;
  roll_phase_end();
}

double MmppProcess::mean_rate() const noexcept {
  // Stationary distribution of the 2-state chain: π0 ∝ 1/leave0 … i.e.
  // π0 = r1 / (r0 + r1) with r_i the switch rates.
  const double pi0 = params_.switch_rate1 / (params_.switch_rate0 + params_.switch_rate1);
  return pi0 * params_.rate0 + (1.0 - pi0) * params_.rate1;
}

DeterministicProcess::DeterministicProcess(double interval, double horizon, double first)
    : interval_(interval), horizon_(horizon), first_(first), t_(first - interval) {
  if (!(interval > 0.0 && horizon > 0.0 && first >= 0.0)) {
    throw std::invalid_argument("DeterministicProcess: invalid parameters");
  }
}

std::optional<double> DeterministicProcess::next() {
  t_ += interval_;
  if (t_ > horizon_) return std::nullopt;
  return t_;
}

std::string DeterministicProcess::name() const {
  return gc::format("det(every {:g}s)", interval_);
}

void DeterministicProcess::reset() { t_ = first_ - interval_; }

TraceProcess::TraceProcess(std::vector<double> timestamps)
    : timestamps_(std::move(timestamps)) {
  for (std::size_t i = 0; i < timestamps_.size(); ++i) {
    const bool ok = timestamps_[i] >= 0.0 &&
                    (i == 0 || timestamps_[i] >= timestamps_[i - 1]);
    if (!ok) throw std::invalid_argument("TraceProcess: timestamps must be nondecreasing");
  }
}

std::optional<double> TraceProcess::next() {
  if (pos_ >= timestamps_.size()) return std::nullopt;
  return timestamps_[pos_++];
}

std::string TraceProcess::name() const {
  return gc::format("trace({} arrivals)", timestamps_.size());
}

void TraceProcess::reset() { pos_ = 0; }

}  // namespace gc
