// Time-varying arrival-rate profiles λ(t).
//
// The controller never sees λ(t) directly — it estimates it — but the
// workload generator (non-homogeneous Poisson via thinning) and the
// experiment harness both need the ground-truth profile.  Profiles must
// report an upper bound over any interval, which thinning requires and the
// DCP long-period planner uses as an oracle predictor in tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace gc {

class RateProfile {
 public:
  virtual ~RateProfile() = default;

  // λ(t) in jobs/second; must be >= 0 and finite for all t >= 0.
  [[nodiscard]] virtual double rate(double t) const = 0;

  // An upper bound of λ over [t0, t1] (need not be tight but must be valid).
  [[nodiscard]] virtual double max_rate(double t0, double t1) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  // Average of λ over [t0, t1], computed numerically unless overridden.
  [[nodiscard]] virtual double average_rate(double t0, double t1) const;
};

// λ(t) = c.
class ConstantRate final : public RateProfile {
 public:
  explicit ConstantRate(double rate_per_s);
  [[nodiscard]] double rate(double /*t*/) const override { return rate_; }
  [[nodiscard]] double max_rate(double, double) const override { return rate_; }
  [[nodiscard]] double average_rate(double, double) const override { return rate_; }
  [[nodiscard]] std::string name() const override;

 private:
  double rate_;
};

// Diurnal sinusoid: base + amplitude * sin(2π (t - phase) / period), clipped
// at `floor` (default 0).  The classic smooth day/night data-center load.
class SinusoidalRate final : public RateProfile {
 public:
  SinusoidalRate(double base, double amplitude, double period_s, double phase_s = 0.0,
                 double floor = 0.0);
  [[nodiscard]] double rate(double t) const override;
  [[nodiscard]] double max_rate(double t0, double t1) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double base_, amplitude_, period_, phase_, floor_;
};

// Piecewise-linear interpolation through (time, rate) knots; constant
// extrapolation outside.  This is how recorded traces are replayed as
// profiles.
class PiecewiseLinearRate final : public RateProfile {
 public:
  struct Knot {
    double time;
    double rate;
  };
  // Knots must be strictly increasing in time, rates >= 0.
  explicit PiecewiseLinearRate(std::vector<Knot> knots);
  [[nodiscard]] double rate(double t) const override;
  [[nodiscard]] double max_rate(double t0, double t1) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] const std::vector<Knot>& knots() const noexcept { return knots_; }

 private:
  std::vector<Knot> knots_;
};

// A base profile plus rectangular "flash crowd" spikes: each spike
// multiplies the base rate by `factor` over [start, start + duration).
class FlashCrowdRate final : public RateProfile {
 public:
  struct Spike {
    double start;
    double duration;
    double factor;  // >= 1
  };
  FlashCrowdRate(std::shared_ptr<const RateProfile> base, std::vector<Spike> spikes);
  [[nodiscard]] double rate(double t) const override;
  [[nodiscard]] double max_rate(double t0, double t1) const override;
  [[nodiscard]] std::string name() const override;

 private:
  [[nodiscard]] double factor_at(double t) const;
  std::shared_ptr<const RateProfile> base_;
  std::vector<Spike> spikes_;
};

// Scales another profile by a constant (used to hit a target utilization).
class ScaledRate final : public RateProfile {
 public:
  ScaledRate(std::shared_ptr<const RateProfile> base, double scale);
  [[nodiscard]] double rate(double t) const override;
  [[nodiscard]] double max_rate(double t0, double t1) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::shared_ptr<const RateProfile> base_;
  double scale_;
};

// Synthetic "WC98-like" web-workload profile: diurnal base with a multi-day
// linear ramp (event build-up), deterministic-seeded flash-crowd spikes and
// smooth noise.  This substitutes for the paper's (unavailable) real trace;
// see DESIGN.md §2 for why the substitution preserves the behaviour under
// test.  `day_s` lets benches compress the diurnal period (the standard
// simulation-time trick; control periods scale with it).
[[nodiscard]] std::shared_ptr<const RateProfile> make_wc98_like_profile(
    double peak_rate, double days, std::uint64_t seed, double day_s = 86400.0);

}  // namespace gc
