#include "workload/workload.h"

#include "util/format.h"

#include "util/assert.h"

namespace gc {

Workload::Workload(std::unique_ptr<ArrivalProcess> arrivals, Distribution job_size,
                   Rng size_rng)
    : arrivals_(std::move(arrivals)), job_size_(std::move(job_size)), size_rng_(size_rng),
      initial_size_rng_(size_rng) {
  GC_CHECK(arrivals_ != nullptr, "Workload: null arrival process");
}

std::optional<JobArrival> Workload::next() {
  const auto t = arrivals_->next();
  if (!t) return std::nullopt;
  return JobArrival{*t, job_size_.sample(size_rng_)};
}

void Workload::reset() {
  arrivals_->reset();
  size_rng_ = initial_size_rng_;
}

std::string Workload::name() const {
  return gc::format("{} x {}", arrivals_->name(), job_size_.name());
}

Workload Workload::poisson_exponential(double arrival_rate, double mu_max, double horizon,
                                       std::uint64_t seed) {
  return Workload(
      std::make_unique<PoissonProcess>(arrival_rate, horizon, Rng(seed, 1)),
      Distribution::exponential(mu_max), Rng(seed, 2));
}

Workload Workload::profile_exponential(std::shared_ptr<const RateProfile> profile,
                                       double mu_max, double horizon, std::uint64_t seed) {
  return Workload(
      std::make_unique<NhppProcess>(std::move(profile), horizon, Rng(seed, 1)),
      Distribution::exponential(mu_max), Rng(seed, 2));
}

Workload Workload::profile_sized(std::shared_ptr<const RateProfile> profile,
                                 Distribution job_size, double horizon,
                                 std::uint64_t seed) {
  return Workload(std::make_unique<NhppProcess>(std::move(profile), horizon, Rng(seed, 1)),
                  std::move(job_size), Rng(seed, 2));
}

Workload Workload::trace_replay(const Trace& trace, Distribution job_size,
                                std::uint64_t seed) {
  return Workload(std::make_unique<TraceProcess>(trace.timestamps()), std::move(job_size),
                  Rng(seed, 2));
}

}  // namespace gc
