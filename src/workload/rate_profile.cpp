#include "workload/rate_profile.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include "util/format.h"
#include <numbers>
#include <stdexcept>

#include "stats/rng.h"
#include "util/assert.h"

namespace gc {

double RateProfile::average_rate(double t0, double t1) const {
  GC_CHECK(t1 > t0, "average_rate: empty interval");
  // Composite midpoint rule; profiles are smooth or piecewise linear, so a
  // fixed 256-point rule is plenty for harness-level accuracy.
  constexpr int kPoints = 256;
  const double h = (t1 - t0) / kPoints;
  double sum = 0.0;
  for (int i = 0; i < kPoints; ++i) sum += rate(t0 + (i + 0.5) * h);
  return sum / kPoints;
}

ConstantRate::ConstantRate(double rate_per_s) : rate_(rate_per_s) {
  if (!(rate_per_s >= 0.0) || !std::isfinite(rate_per_s)) {
    throw std::invalid_argument("ConstantRate: rate must be >= 0");
  }
}

std::string ConstantRate::name() const { return gc::format("const({:g}/s)", rate_); }

SinusoidalRate::SinusoidalRate(double base, double amplitude, double period_s,
                               double phase_s, double floor)
    : base_(base), amplitude_(amplitude), period_(period_s), phase_(phase_s), floor_(floor) {
  if (!(base >= 0.0 && amplitude >= 0.0 && period_s > 0.0 && floor >= 0.0)) {
    throw std::invalid_argument("SinusoidalRate: invalid parameters");
  }
}

double SinusoidalRate::rate(double t) const {
  const double x = base_ + amplitude_ * std::sin(2.0 * std::numbers::pi * (t - phase_) / period_);
  return std::max(x, floor_);
}

double SinusoidalRate::max_rate(double t0, double t1) const {
  // If the interval covers a peak, the bound is base+amplitude; otherwise
  // sample the endpoints (the sinusoid is monotone between extrema).
  if (t1 - t0 >= period_ / 2.0) return std::max(base_ + amplitude_, floor_);
  const double r0 = rate(t0);
  const double r1 = rate(t1);
  // Check whether a crest (phase + period/4 mod period) lies inside.
  const double crest0 = phase_ + period_ / 4.0;
  const double k = std::ceil((t0 - crest0) / period_);
  const double crest = crest0 + k * period_;
  if (crest >= t0 && crest <= t1) return std::max(base_ + amplitude_, floor_);
  return std::max(r0, r1);
}

std::string SinusoidalRate::name() const {
  return gc::format("sine(base={:g},amp={:g},T={:g}s)", base_, amplitude_, period_);
}

PiecewiseLinearRate::PiecewiseLinearRate(std::vector<Knot> knots) : knots_(std::move(knots)) {
  if (knots_.empty()) throw std::invalid_argument("PiecewiseLinearRate: no knots");
  for (std::size_t i = 0; i < knots_.size(); ++i) {
    if (!(knots_[i].rate >= 0.0) || !std::isfinite(knots_[i].rate)) {
      throw std::invalid_argument("PiecewiseLinearRate: rates must be >= 0");
    }
    if (i > 0 && !(knots_[i].time > knots_[i - 1].time)) {
      throw std::invalid_argument("PiecewiseLinearRate: times must be strictly increasing");
    }
  }
}

double PiecewiseLinearRate::rate(double t) const {
  if (t <= knots_.front().time) return knots_.front().rate;
  if (t >= knots_.back().time) return knots_.back().rate;
  const auto it = std::lower_bound(
      knots_.begin(), knots_.end(), t,
      [](const Knot& k, double time) { return k.time < time; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  const double w = (t - lo.time) / (hi.time - lo.time);
  return lo.rate + w * (hi.rate - lo.rate);
}

double PiecewiseLinearRate::max_rate(double t0, double t1) const {
  double best = std::max(rate(t0), rate(t1));
  for (const Knot& k : knots_) {
    if (k.time >= t0 && k.time <= t1) best = std::max(best, k.rate);
  }
  return best;
}

std::string PiecewiseLinearRate::name() const {
  return gc::format("piecewise({} knots)", knots_.size());
}

FlashCrowdRate::FlashCrowdRate(std::shared_ptr<const RateProfile> base,
                               std::vector<Spike> spikes)
    : base_(std::move(base)), spikes_(std::move(spikes)) {
  GC_CHECK(base_ != nullptr, "FlashCrowdRate: null base profile");
  for (const Spike& s : spikes_) {
    if (!(s.duration > 0.0 && s.factor >= 1.0)) {
      throw std::invalid_argument("FlashCrowdRate: need duration>0, factor>=1");
    }
  }
}

double FlashCrowdRate::factor_at(double t) const {
  double f = 1.0;
  for (const Spike& s : spikes_) {
    if (t >= s.start && t < s.start + s.duration) f = std::max(f, s.factor);
  }
  return f;
}

double FlashCrowdRate::rate(double t) const { return base_->rate(t) * factor_at(t); }

double FlashCrowdRate::max_rate(double t0, double t1) const {
  double max_factor = 1.0;
  for (const Spike& s : spikes_) {
    // Closed-interval contract: a spike starting exactly at t1 counts.
    const bool overlaps = s.start <= t1 && s.start + s.duration > t0;
    if (overlaps) max_factor = std::max(max_factor, s.factor);
  }
  return base_->max_rate(t0, t1) * max_factor;
}

std::string FlashCrowdRate::name() const {
  return gc::format("{}+{}spikes", base_->name(), spikes_.size());
}

ScaledRate::ScaledRate(std::shared_ptr<const RateProfile> base, double scale)
    : base_(std::move(base)), scale_(scale) {
  GC_CHECK(base_ != nullptr, "ScaledRate: null base profile");
  if (!(scale >= 0.0) || !std::isfinite(scale)) {
    throw std::invalid_argument("ScaledRate: scale must be >= 0");
  }
}

double ScaledRate::rate(double t) const { return scale_ * base_->rate(t); }

double ScaledRate::max_rate(double t0, double t1) const {
  return scale_ * base_->max_rate(t0, t1);
}

std::string ScaledRate::name() const {
  return gc::format("{:g}x {}", scale_, base_->name());
}

std::shared_ptr<const RateProfile> make_wc98_like_profile(double peak_rate, double days,
                                                          std::uint64_t seed, double day_s) {
  GC_CHECK(peak_rate > 0.0 && days > 0.0 && day_s > 0.0,
           "wc98 profile: need peak_rate>0, days>0, day_s>0");
  const double kDay = day_s;
  const double horizon = days * kDay;

  // Build hourly knots: diurnal shape (two humps like web traffic), a
  // linear multi-day ramp towards the "event", and smooth lognormal-ish
  // jitter.  Everything is derived from `seed` so traces are reproducible.
  std::vector<PiecewiseLinearRate::Knot> knots;
  const int hours = static_cast<int>(days * 24.0) + 1;
  const double hour_s = kDay / 24.0;
  knots.reserve(static_cast<std::size_t>(hours));
  Rng jitter_rng(seed, 7);
  for (int h = 0; h < hours; ++h) {
    const double t = h * hour_s;
    const double day_frac = std::fmod(t, kDay) / kDay;
    // Two-hump diurnal: morning and evening peaks, deep night trough.
    const double diurnal = 0.35 + 0.4 * std::exp(-std::pow((day_frac - 0.45) / 0.13, 2)) +
                           0.55 * std::exp(-std::pow((day_frac - 0.80) / 0.10, 2));
    const double ramp = 0.6 + 0.4 * (t / horizon);  // interest builds up
    const double noise = 0.92 + 0.16 * jitter_rng.uniform01();
    knots.push_back({t, peak_rate * diurnal * ramp * noise});
  }
  auto base = std::make_shared<PiecewiseLinearRate>(std::move(knots));

  // Flash crowds: 2 per day on average, 10–30 minutes, 1.5–2.5x.
  std::vector<FlashCrowdRate::Spike> spikes;
  Rng spike_rng(seed, 11);
  const int num_spikes = std::max(1, static_cast<int>(days * 2.0));
  for (int i = 0; i < num_spikes; ++i) {
    FlashCrowdRate::Spike s;
    s.start = spike_rng.uniform01() * (horizon * 0.95);
    s.duration = (600.0 + 1200.0 * spike_rng.uniform01()) * (kDay / 86400.0);
    s.factor = 1.5 + spike_rng.uniform01();
    spikes.push_back(s);
  }
  return std::make_shared<FlashCrowdRate>(std::move(base), std::move(spikes));
}

}  // namespace gc
