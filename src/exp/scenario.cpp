#include "exp/scenario.h"

#include <stdexcept>
#include <vector>

#include "util/assert.h"
#include "util/format.h"

namespace gc {

const char* to_string(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kConstant: return "constant";
    case ScenarioKind::kDiurnal: return "diurnal";
    case ScenarioKind::kFlashCrowd: return "flash-crowd";
    case ScenarioKind::kWc98Like: return "wc98-like";
  }
  return "?";
}

Workload Scenario::make_workload(const ClusterConfig& config, std::uint64_t seed) const {
  GC_CHECK(profile != nullptr, "Scenario: null profile");
  return Workload::profile_exponential(profile, config.mu_max, horizon_s, seed);
}

Workload Scenario::make_workload_sized(Distribution job_size, std::uint64_t seed) const {
  GC_CHECK(profile != nullptr, "Scenario: null profile");
  return Workload::profile_sized(profile, std::move(job_size), horizon_s, seed);
}

Scenario make_scenario(ScenarioKind kind, const ClusterConfig& config, double level,
                       std::uint64_t seed, double day_s) {
  if (!(level > 0.0 && level <= 1.0)) {
    throw std::invalid_argument("make_scenario: level must be in (0,1]");
  }
  if (!(day_s > 0.0)) throw std::invalid_argument("make_scenario: day_s must be > 0");
  const double peak = level * config.max_feasible_arrival_rate();
  const double kDay = day_s;

  Scenario scenario;
  switch (kind) {
    case ScenarioKind::kConstant: {
      scenario.profile = std::make_shared<ConstantRate>(peak);
      scenario.horizon_s = kDay / 4.0;
      break;
    }
    case ScenarioKind::kDiurnal: {
      // Swings between ~10% and `level` of feasible capacity over a day.
      const double lo = 0.1 * config.max_feasible_arrival_rate();
      const double base = 0.5 * (peak + lo);
      const double amplitude = 0.5 * (peak - lo);
      // Phase T/4 puts sin(2π(0 - T/4)/T) = -1: the run starts at the
      // trough (night) and climbs towards the midday peak.
      scenario.profile = std::make_shared<SinusoidalRate>(
          base, amplitude, kDay, /*phase_s=*/kDay * 0.25, /*floor=*/lo * 0.5);
      scenario.horizon_s = kDay;
      break;
    }
    case ScenarioKind::kFlashCrowd: {
      const double lo = 0.1 * config.max_feasible_arrival_rate();
      // Base sized so a 2.2x spike still stays near feasibility.
      const double base_peak = peak / 2.2;
      auto base = std::make_shared<SinusoidalRate>(
          0.5 * (base_peak + lo), 0.5 * (base_peak - lo), kDay, kDay * 0.25, lo * 0.5);
      std::vector<FlashCrowdRate::Spike> spikes;
      Rng rng(seed, 21);
      const double scale = kDay / 86400.0;
      for (int i = 0; i < 3; ++i) {
        FlashCrowdRate::Spike s;
        s.start = (0.2 + 0.25 * i) * kDay + 600.0 * scale * rng.uniform01();
        s.duration = (900.0 + 900.0 * rng.uniform01()) * scale;
        s.factor = 2.2;
        spikes.push_back(s);
      }
      scenario.profile = std::make_shared<FlashCrowdRate>(std::move(base), std::move(spikes));
      scenario.horizon_s = kDay;
      break;
    }
    case ScenarioKind::kWc98Like: {
      scenario.profile = make_wc98_like_profile(peak, /*days=*/3.0, seed, kDay);
      scenario.horizon_s = 3.0 * kDay;
      break;
    }
  }
  scenario.name = gc::format("{}@{:.0f}%", to_string(kind), level * 100.0);
  return scenario;
}

ClusterConfig bench_cluster_config() {
  ClusterConfig config;
  config.max_servers = 16;
  config.mu_max = 10.0;     // jobs/s at full speed
  config.t_ref_s = 0.5;     // mean-response-time guarantee
  config.min_servers = 1;
  // The paper's power law: an ON server clocked at f draws c0 + c1·f^alpha
  // regardless of instantaneous utilization (2010-era servers did not gate
  // the clock).  Utilization-gated power is the F10 ablation.
  config.power.utilization_gated = false;
  // Transitions scaled with the compressed day (7200 s "day"): a 90 s boot
  // on a real day corresponds to ~8 s here.
  config.transition.boot_delay_s = 8.0;
  config.transition.shutdown_delay_s = 2.0;
  return config;
}

DcpParams bench_dcp_params() {
  DcpParams dcp;
  // 300 s / 30 s on a real day scale to 25 s / 5 s on the 7200 s day.
  dcp.long_period_s = 25.0;
  dcp.short_period_s = 5.0;
  dcp.safety_margin = 1.15;
  dcp.scale_down_patience = 2;
  return dcp;
}

}  // namespace gc
