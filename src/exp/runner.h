// Experiment runner: one simulation per (scenario, policy) cell, with
// parallel execution over the process thread pool and deterministic
// seeding per cell.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "control/policies.h"
#include "core/cluster_config.h"
#include "exp/scenario.h"
#include "sim/simulation.h"

namespace gc {

struct RunSpec {
  ClusterConfig config = {};
  PolicyKind policy = PolicyKind::kCombinedDcp;
  PolicyOptions policy_options = {};
  DispatchPolicy dispatch = DispatchPolicy::kJoinShortestQueue;
  SimulationOptions sim = {};
  std::uint64_t seed = 1;
  // Job-size law override (default: exponential with mean 1/mu_max, the
  // solver's design model).  Renormalize heavy-tailed laws with
  // Distribution::with_mean(1/config.mu_max) to keep offered load equal.
  std::optional<Distribution> job_size;

  // Convenience: default warmup of two long periods unless set explicitly.
  [[nodiscard]] SimulationOptions effective_sim_options() const;
};

// Runs one simulation of `scenario` under `spec`.
[[nodiscard]] SimResult run_one(const Scenario& scenario, const RunSpec& spec);

// Runs one *sharded* simulation of `scenario` under `spec` with K shards
// (sim/sharded.h): the scenario profile is sampled into a concrete arrival
// trace with the cell seed and replayed through run_sharded_simulation.
// Output is independent of `num_shards`; note the sharded engine is a
// distinct model from run_one (round-robin trace dispatch — spec.dispatch
// is ignored; DESIGN.md §11.1), so cells from the two runners are not
// directly comparable.
[[nodiscard]] SimResult run_one_sharded(const Scenario& scenario,
                                        const RunSpec& spec,
                                        unsigned num_shards);

// Runs all specs (each against its paired scenario) in parallel; results
// are positionally aligned with the inputs and independent of thread count.
struct Cell {
  Scenario scenario;
  RunSpec spec;
};
[[nodiscard]] std::vector<SimResult> run_all(const std::vector<Cell>& cells);

// Replications: runs `n` copies of the cell with derived seeds and returns
// all results (callers aggregate).
[[nodiscard]] std::vector<SimResult> run_replicated(const Scenario& scenario,
                                                    const RunSpec& spec, unsigned n);

}  // namespace gc
