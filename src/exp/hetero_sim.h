// Simulation validation for the heterogeneous provisioner.
//
// Pins a HeteroOperatingPoint on a grouped simulated cluster — per-class
// counts, per-class speeds, load split by weighted-random routing (the
// random split keeps every class-c server an exact M/M/1 with rate
// x_c / n_c, matching the solver's model) — and measures what the solver
// only predicted: per-class mean response time and cluster power.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hetero.h"
#include "sim/metrics.h"

namespace gc {

struct HeteroClassResult {
  std::uint64_t completed = 0;
  double mean_response_s = 0.0;
  double predicted_response_s = 0.0;
  double mean_power_w = 0.0;      // measured, including the class's off servers
  double predicted_power_w = 0.0;
};

struct HeteroSimResult {
  std::vector<HeteroClassResult> classes;
  double mean_response_s = 0.0;   // overall
  double mean_power_w = 0.0;      // cluster
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
  double sim_time_s = 0.0;
};

// Runs Poisson(λ) arrivals against the pinned operating point for
// `horizon_s` seconds (after `warmup_s`).  `point` must be a feasible
// solve(λ) result for `config`.
[[nodiscard]] HeteroSimResult run_hetero_validation(const HeteroConfig& config,
                                                    const HeteroOperatingPoint& point,
                                                    double lambda, double horizon_s,
                                                    double warmup_s, std::uint64_t seed);

}  // namespace gc
