#include "exp/runner.h"

#include "sim/sharded.h"
#include "util/assert.h"
#include "util/thread_pool.h"
#include "workload/trace.h"

namespace gc {

SimulationOptions RunSpec::effective_sim_options() const {
  SimulationOptions options = sim;
  options.t_ref_s = config.t_ref_s;
  if (options.warmup_s == 0.0) {
    options.warmup_s = 2.0 * policy_options.dcp.long_period_s;
  }
  return options;
}

SimResult run_one(const Scenario& scenario, const RunSpec& spec) {
  spec.config.validate();
  Provisioner provisioner(spec.config);
  const auto controller =
      spec.policy == PolicyKind::kOracle
          ? make_oracle_policy(&provisioner, spec.policy_options, scenario.profile)
          : make_policy(spec.policy, &provisioner, spec.policy_options);

  ClusterOptions cluster;
  cluster.num_servers = spec.config.max_servers;
  cluster.power = spec.config.power;
  cluster.transition = spec.config.transition;
  cluster.dispatch = spec.dispatch;
  cluster.initial_active = spec.config.max_servers;  // all on; warmup settles it
  cluster.initial_speed = 1.0;
  cluster.dispatch_seed = spec.seed ^ 0x9e3779b97f4a7c15ULL;

  Workload workload = spec.job_size
                          ? scenario.make_workload_sized(*spec.job_size, spec.seed)
                          : scenario.make_workload(spec.config, spec.seed);
  SimResult result =
      run_simulation(workload, cluster, *controller, spec.effective_sim_options());
  const SolverCacheStats& cache = provisioner.cache_stats();
  result.solver_cache_hits = cache.hits;
  result.solver_cache_misses = cache.misses;
  result.solver_cache_hit_rate = cache.hit_rate();
  // Fold the solver-side counters into the run's snapshot so one JSON dump
  // carries the whole observability picture (DESIGN.md §7).
  result.counters.add_counter("solver.cache.hits", cache.hits);
  result.counters.add_counter("solver.cache.misses", cache.misses);
  result.counters.add_gauge("solver.cache.hit_rate", cache.hit_rate());
  return result;
}

SimResult run_one_sharded(const Scenario& scenario, const RunSpec& spec,
                          unsigned num_shards) {
  spec.config.validate();
  Provisioner provisioner(spec.config);
  const auto controller =
      spec.policy == PolicyKind::kOracle
          ? make_oracle_policy(&provisioner, spec.policy_options, scenario.profile)
          : make_policy(spec.policy, &provisioner, spec.policy_options);

  ClusterOptions cluster;
  cluster.num_servers = spec.config.max_servers;
  cluster.power = spec.config.power;
  cluster.transition = spec.config.transition;
  cluster.initial_active = spec.config.max_servers;
  cluster.initial_speed = 1.0;
  cluster.dispatch_seed = spec.seed ^ 0x9e3779b97f4a7c15ULL;

  const Trace trace =
      Trace::from_profile(*scenario.profile, scenario.horizon_s, spec.seed);
  const Distribution job_size =
      spec.job_size ? *spec.job_size
                    : Distribution::exponential(spec.config.mu_max);
  ShardedOptions sharded;
  sharded.num_shards = num_shards;
  SimResult result =
      run_sharded_simulation(trace, job_size, spec.seed, cluster, *controller,
                             spec.effective_sim_options(), sharded);
  const SolverCacheStats& cache = provisioner.cache_stats();
  result.solver_cache_hits = cache.hits;
  result.solver_cache_misses = cache.misses;
  result.solver_cache_hit_rate = cache.hit_rate();
  result.counters.add_counter("solver.cache.hits", cache.hits);
  result.counters.add_counter("solver.cache.misses", cache.misses);
  result.counters.add_gauge("solver.cache.hit_rate", cache.hit_rate());
  return result;
}

std::vector<SimResult> run_all(const std::vector<Cell>& cells) {
  std::vector<SimResult> results(cells.size());
  global_pool().parallel_for_index(cells.size(), [&](std::size_t i) {
    results[i] = run_one(cells[i].scenario, cells[i].spec);
  });
  return results;
}

std::vector<SimResult> run_replicated(const Scenario& scenario, const RunSpec& spec,
                                      unsigned n) {
  GC_CHECK(n > 0, "run_replicated: need at least one replication");
  std::vector<Cell> cells;
  cells.reserve(n);
  for (unsigned r = 0; r < n; ++r) {
    Cell cell{scenario, spec};
    cell.spec.seed = spec.seed + 1000003ULL * (r + 1);
    cells.push_back(std::move(cell));
  }
  return run_all(cells);
}

}  // namespace gc
