#include "exp/hetero_sim.h"

#include <algorithm>
#include <cmath>

#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "stats/accumulators.h"
#include "stats/distributions.h"
#include "stats/rng.h"
#include "util/assert.h"

namespace gc {

HeteroSimResult run_hetero_validation(const HeteroConfig& config,
                                      const HeteroOperatingPoint& point, double lambda,
                                      double horizon_s, double warmup_s,
                                      std::uint64_t seed) {
  config.validate();
  GC_CHECK(point.allocations.size() == config.classes.size(),
           "run_hetero_validation: point/config class mismatch");
  GC_CHECK(point.feasible, "run_hetero_validation: infeasible operating point");
  GC_CHECK(lambda > 0.0 && horizon_s > 0.0 && warmup_s >= 0.0,
           "run_hetero_validation: bad parameters");

  // Build the grouped cluster.  Job sizes are exp(mean 1) "work units";
  // a class-c server has rate_scale = mu_c so its service rate at speed s
  // is s * mu_c jobs/s — exactly the solver's model.
  ClusterOptions options;
  options.transition = {};  // static pin: transitions never fire
  for (std::size_t c = 0; c < config.classes.size(); ++c) {
    const ServerClass& sc = config.classes[c];
    const ClassAllocation& alloc = point.allocations[c];
    ServerGroupSpec spec;
    spec.count = std::max(sc.count, 1u);
    spec.power = sc.power;
    spec.rate_scale = sc.mu_max;
    spec.initial_active = alloc.servers;
    spec.initial_speed = alloc.servers > 0 ? alloc.speed : 1.0;
    options.groups.push_back(spec);
  }
  // The cluster requires at least one initially-ON server.
  bool any_on = false;
  for (const auto& g : options.groups) any_on |= g.initial_active > 0;
  GC_CHECK(any_on, "run_hetero_validation: operating point has no active servers");

  EventQueue queue;
  Cluster cluster(options, &queue);

  // Routing weights: P(class c) = x_c / lambda.
  std::vector<double> cumulative;
  double acc = 0.0;
  for (const ClassAllocation& alloc : point.allocations) {
    acc += alloc.load;
    cumulative.push_back(acc);
  }
  GC_CHECK(std::abs(acc - lambda) <= 1e-6 * std::max(lambda, 1.0),
           "run_hetero_validation: split does not sum to lambda");

  Rng arrival_rng(seed, 1);
  Rng size_rng(seed, 2);
  Rng route_rng(seed, 3);
  const Exponential gap(lambda);
  const Exponential size(1.0);

  double next_arrival = gap.sample(arrival_rng);
  if (next_arrival <= horizon_s) queue.schedule(next_arrival, EventType::kArrival);
  bool arrivals_done = next_arrival > horizon_s;
  std::uint64_t next_job_id = 1;

  std::vector<MeanVarAccumulator> responses(config.classes.size());

  HeteroSimResult result;
  double now = 0.0;
  bool in_warmup = warmup_s > 0.0;
  EnergyBreakdown warmup_energy;
  double measure_start = 0.0;
  if (warmup_s > 0.0) queue.schedule(warmup_s, EventType::kWarmupEnd);
  // Per-class energy requires per-server metering; we aggregate by group
  // at the end via Cluster::server(i).meter().

  while (const auto event = queue.pop()) {
    if (arrivals_done && cluster.jobs_in_system() == 0 &&
        event->type != EventType::kArrival && event->type != EventType::kDeparture) {
      break;
    }
    now = event->time;
    switch (event->type) {
      case EventType::kArrival: {
        Job job;
        job.id = next_job_id++;
        job.arrival_time = now;
        job.size = size.sample(size_rng);
        job.remaining = job.size;
        // Weighted class choice.
        const double u = route_rng.uniform01() * lambda;
        std::size_t group = 0;
        while (group + 1 < cumulative.size() && u >= cumulative[group]) ++group;
        if (!cluster.route_job_to_group(now, group, job)) ++result.dropped;
        next_arrival = now + gap.sample(arrival_rng);
        if (next_arrival <= horizon_s) {
          queue.schedule(next_arrival, EventType::kArrival);
        } else {
          arrivals_done = true;
        }
        break;
      }
      case EventType::kDeparture: {
        const Job finished = cluster.handle_departure(now, event->subject);
        if (!in_warmup) {
          const std::uint32_t group = cluster.group_of(event->subject);
          responses[group].add(now - finished.arrival_time);
        }
        break;
      }
      case EventType::kWarmupEnd: {
        in_warmup = false;
        cluster.flush_energy(now);
        warmup_energy = cluster.energy();
        measure_start = now;
        break;
      }
      default:
        break;
    }
  }

  cluster.flush_energy(now);
  const EnergyBreakdown total = cluster.energy();
  result.sim_time_s = now - measure_start;

  // Per-class aggregation.
  MeanVarAccumulator overall;
  double cluster_energy = total.total_j() - warmup_energy.total_j();
  for (std::size_t c = 0; c < config.classes.size(); ++c) {
    HeteroClassResult cls;
    cls.completed = responses[c].count();
    cls.mean_response_s = responses[c].mean();
    cls.predicted_response_s = point.allocations[c].response_time_s;
    cls.predicted_power_w = point.allocations[c].power_watts;
    overall.merge(responses[c]);
    result.classes.push_back(cls);
  }
  // Measured per-class power: integrate per-server meters by group.
  {
    std::vector<double> group_joules(config.classes.size(), 0.0);
    for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
      group_joules[cluster.group_of(i)] += cluster.server(i).meter().total_joules();
    }
    // Subtract the warmup share proportionally (warmup is steady-state
    // here — the pin never changes — so the per-group rate is constant).
    const double warmup_fraction =
        total.total_j() > 0.0 ? warmup_energy.total_j() / total.total_j() : 0.0;
    for (std::size_t c = 0; c < config.classes.size(); ++c) {
      const double measured = group_joules[c] * (1.0 - warmup_fraction);
      result.classes[c].mean_power_w =
          result.sim_time_s > 0.0 ? measured / result.sim_time_s : 0.0;
    }
  }
  result.completed = overall.count();
  result.mean_response_s = overall.mean();
  result.mean_power_w = result.sim_time_s > 0.0 ? cluster_energy / result.sim_time_s : 0.0;
  return result;
}

}  // namespace gc
