// Policy-comparison aggregation: turns SimResults into the rows the
// paper-style tables report (energy, savings vs NPM, SLA compliance).
#pragma once

#include <string>
#include <vector>

#include "control/policies.h"
#include "exp/runner.h"
#include "sim/metrics.h"
#include "util/table.h"

namespace gc {

struct ComparisonRow {
  std::string scenario;
  PolicyKind policy = PolicyKind::kNpm;
  double energy_kwh = 0.0;
  double savings_vs_npm_pct = 0.0;  // 0 for NPM itself
  double mean_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double job_violation_pct = 0.0;
  bool sla_met = false;
  double mean_serving = 0.0;
  double mean_speed = 0.0;
  double boots_per_hour = 0.0;
  double shed_pct = 0.0;           // offered jobs turned away by admission control
  double unavailability_pct = 0.0; // time-averaged fraction of the fleet failed
};

// Runs every policy in `policies` on `scenario` (same seed: every policy
// sees an identically distributed workload stream) and computes savings
// against the NPM row, which is added automatically if absent.
[[nodiscard]] std::vector<ComparisonRow> compare_policies(
    const Scenario& scenario, const RunSpec& base_spec,
    const std::vector<PolicyKind>& policies);

// Renders rows into the standard comparison table.
[[nodiscard]] TablePrinter comparison_table(std::string title,
                                            const std::vector<ComparisonRow>& rows);

[[nodiscard]] ComparisonRow make_row(const std::string& scenario_name, PolicyKind policy,
                                     const SimResult& result, double npm_energy_j,
                                     double t_ref_s);

}  // namespace gc
