#include "exp/comparison.h"

#include <algorithm>

#include "util/assert.h"

namespace gc {

ComparisonRow make_row(const std::string& scenario_name, PolicyKind policy,
                       const SimResult& result, double npm_energy_j, double t_ref_s) {
  ComparisonRow row;
  row.scenario = scenario_name;
  row.policy = policy;
  row.energy_kwh = result.energy.total_j() / 3.6e6;
  row.savings_vs_npm_pct =
      npm_energy_j > 0.0
          ? (1.0 - result.energy.total_j() / npm_energy_j) * 100.0
          : 0.0;
  row.mean_response_ms = result.mean_response_s * 1e3;
  row.p95_response_ms = result.p95_response_s * 1e3;
  row.job_violation_pct = result.job_violation_ratio * 100.0;
  row.sla_met = result.sla_met(t_ref_s);
  row.mean_serving = result.mean_serving;
  row.mean_speed = result.mean_speed;
  row.boots_per_hour =
      result.sim_time_s > 0.0
          ? static_cast<double>(result.boots) / (result.sim_time_s / 3600.0)
          : 0.0;
  row.shed_pct = result.shed_ratio * 100.0;
  row.unavailability_pct = result.unavailability * 100.0;
  return row;
}

std::vector<ComparisonRow> compare_policies(const Scenario& scenario,
                                            const RunSpec& base_spec,
                                            const std::vector<PolicyKind>& policies) {
  std::vector<PolicyKind> all = policies;
  if (std::find(all.begin(), all.end(), PolicyKind::kNpm) == all.end()) {
    all.insert(all.begin(), PolicyKind::kNpm);
  }
  std::vector<Cell> cells;
  cells.reserve(all.size());
  for (const PolicyKind policy : all) {
    Cell cell{scenario, base_spec};
    cell.spec.policy = policy;
    cells.push_back(std::move(cell));
  }
  const std::vector<SimResult> results = run_all(cells);

  double npm_energy = 0.0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i] == PolicyKind::kNpm) npm_energy = results[i].energy.total_j();
  }

  std::vector<ComparisonRow> rows;
  rows.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    rows.push_back(make_row(scenario.name, all[i], results[i], npm_energy,
                            base_spec.config.t_ref_s));
  }
  return rows;
}

TablePrinter comparison_table(std::string title, const std::vector<ComparisonRow>& rows) {
  TablePrinter table(std::move(title));
  table.column("scenario")
      .column("policy")
      .column("energy", {.precision = 2, .unit = "kWh"})
      .column("savings", {.precision = 1, .unit = "% vs NPM"})
      .column("mean T", {.precision = 1, .unit = "ms"})
      .column("p95 T", {.precision = 1, .unit = "ms"})
      .column("viol", {.precision = 2, .unit = "% jobs"})
      .column("SLA")
      .column("avg m", {.precision = 1})
      .column("avg s", {.precision = 2})
      .column("boots", {.precision = 1, .unit = "/h"})
      .column("shed", {.precision = 2, .unit = "%"})
      .column("unavail", {.precision = 2, .unit = "%"});
  for (const ComparisonRow& row : rows) {
    table.row()
        .cell(row.scenario)
        .cell(to_string(row.policy))
        .cell(row.energy_kwh)
        .cell(row.savings_vs_npm_pct)
        .cell(row.mean_response_ms)
        .cell(row.p95_response_ms)
        .cell(row.job_violation_pct)
        .cell(row.sla_met ? "yes" : "NO")
        .cell(row.mean_serving)
        .cell(row.mean_speed)
        .cell(row.boots_per_hour)
        .cell(row.shed_pct)
        .cell(row.unavailability_pct);
  }
  return table;
}

}  // namespace gc
