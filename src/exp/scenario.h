// Named workload scenarios used across the evaluation benches.
//
// Rates are expressed relative to the cluster's maximum feasible arrival
// rate (ClusterConfig::max_feasible_arrival_rate) so that one scenario
// definition works for any cluster size.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/cluster_config.h"
#include "core/dcp.h"
#include "workload/rate_profile.h"
#include "workload/workload.h"

namespace gc {

enum class ScenarioKind : int {
  kConstant = 0,    // flat load at `level` of feasible capacity
  kDiurnal = 1,     // sinusoidal day: swings between ~10% and `level`
  kFlashCrowd = 2,  // diurnal base plus 2x flash-crowd spikes
  kWc98Like = 3,    // synthetic World-Cup-98-style multi-day trace
};
[[nodiscard]] const char* to_string(ScenarioKind kind) noexcept;

struct Scenario {
  std::string name;
  std::shared_ptr<const RateProfile> profile;
  double horizon_s = 0.0;

  // Builds the NHPP-over-profile workload with exponential job sizes of
  // rate config.mu_max (the model workload).
  [[nodiscard]] Workload make_workload(const ClusterConfig& config,
                                       std::uint64_t seed) const;

  // Same arrivals, arbitrary job-size law (renormalized by the caller;
  // usually Distribution::with_mean(1 / config.mu_max)).
  [[nodiscard]] Workload make_workload_sized(Distribution job_size,
                                             std::uint64_t seed) const;
};

// `level` in (0, 1]: peak load as a fraction of the maximum feasible rate.
// `day_s` compresses the diurnal period (simulation-time scaling: control
// periods and transition delays are scaled consistently by the bench
// configs, so the dynamics are preserved while runs stay laptop-sized).
[[nodiscard]] Scenario make_scenario(ScenarioKind kind, const ClusterConfig& config,
                                     double level = 0.7, std::uint64_t seed = 1234,
                                     double day_s = 7200.0);

// The cluster configuration the bench harnesses use: 16 servers at
// mu_max = 10 jobs/s with a 500 ms mean-response guarantee.  Small enough
// that a compressed day simulates in seconds on one core; the *shapes* of
// all results are scale-free (see EXPERIMENTS.md).
[[nodiscard]] ClusterConfig bench_cluster_config();

// DCP parameters matched to the compressed day of `make_scenario`.
[[nodiscard]] DcpParams bench_dcp_params();

}  // namespace gc
