// Aligned ASCII table printer used by every bench harness.
//
// The bench binaries regenerate the paper's tables/figures as text; a single
// shared printer keeps their output uniform and machine-diffable.  Columns
// are declared once with a format; rows are then appended as doubles /
// strings and rendered right-aligned.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace gc {

// How a numeric cell is rendered.
struct ColumnFormat {
  int precision = 3;       // digits after the decimal point
  bool fixed = true;       // fixed vs general formatting
  std::string unit;        // appended to the header as " [unit]"
};

class TablePrinter {
 public:
  // `title` is printed once above the header, prefixed with "== ".
  explicit TablePrinter(std::string title = {});

  // Declares the next column.  All columns must be declared before rows are
  // added.  Returns *this for chaining.
  TablePrinter& column(std::string name, ColumnFormat fmt = {});

  // Starts a new row; subsequent cell() calls fill it left to right.
  TablePrinter& row();
  TablePrinter& cell(double value);
  TablePrinter& cell(std::string_view text);
  TablePrinter& cell(long long value);

  // Convenience: add a full row of doubles at once.
  TablePrinter& row_values(const std::vector<double>& values);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept { return columns_.size(); }

  // Renders the table.  Also usable via operator<<.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  // Renders the same data as CSV (header + rows), for plotting scripts.
  [[nodiscard]] std::string to_csv() const;

 private:
  using Cell = std::variant<double, long long, std::string>;

  [[nodiscard]] std::string render_cell(std::size_t col, const Cell& cell) const;

  std::string title_;
  struct Column {
    std::string name;
    ColumnFormat fmt;
  };
  std::vector<Column> columns_;
  std::vector<std::vector<Cell>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TablePrinter& table);

}  // namespace gc
