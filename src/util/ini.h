// Minimal INI parsing: `[section]` headers, `key = value` pairs, `#`/`;`
// comments.  Used by core/config_io.h so cluster descriptions can live in
// version-controlled files instead of code.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gc {

class IniFile {
 public:
  // Parses INI text.  Throws std::runtime_error on malformed lines
  // (content outside a section, '[' without ']', missing '=').
  [[nodiscard]] static IniFile parse(const std::string& text);
  [[nodiscard]] static IniFile load(const std::string& path);

  [[nodiscard]] bool has_section(const std::string& section) const noexcept;
  [[nodiscard]] std::vector<std::string> section_names() const;
  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& section, const std::string& key,
                                   const std::string& fallback) const;
  // Typed accessors; throw std::runtime_error when present but malformed.
  [[nodiscard]] double get_double_or(const std::string& section, const std::string& key,
                                     double fallback) const;
  [[nodiscard]] long long get_int_or(const std::string& section, const std::string& key,
                                     long long fallback) const;
  [[nodiscard]] bool get_bool_or(const std::string& section, const std::string& key,
                                 bool fallback) const;

  void set(const std::string& section, const std::string& key, const std::string& value);

  // Serializes back to INI text (sections and keys in sorted order).
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::map<std::string, std::string>> sections_;
};

}  // namespace gc
