// Fixed-size worker pool for data-parallel sweeps.
//
// The discrete-event simulator is inherently sequential (one global clock),
// so all parallelism in this project is *across* simulations: replications,
// sweep points, policy × trace grids.  `parallel_for_index` hands out chunk
// indices; determinism is preserved because every task owns its output slot
// and derives its RNG stream from the task index, never from the thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gc {

class ThreadPool {
 public:
  // `num_threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  // Runs body(i) for i in [0, count).  Blocks until all iterations finish.
  // Iterations may run in any order and on any thread, including the caller;
  // the body must only write state owned by iteration i.  If any iteration
  // throws, one of the exceptions is rethrown after all iterations complete.
  void parallel_for_index(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::jthread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
};

// Shared process-wide pool (lazily constructed with default size).
[[nodiscard]] ThreadPool& global_pool();

}  // namespace gc
