#include "util/thread_pool.h"

#include <atomic>
#include <exception>

#include "util/assert.h"

namespace gc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Join explicitly: workers_ is declared before mutex_/cv_/tasks_, so its
  // implicit (last) destruction would let workers touch already-destroyed
  // members.
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_index(std::size_t count,
                                    const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Shared work-stealing counter: tasks grab the next index.  One queue
  // entry per worker is enough; the caller also participates.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  const std::size_t total = count;

  auto drain = [state, total, &body] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1);
      if (i >= total) break;
      try {
        body(i);
      } catch (...) {
        const std::scoped_lock lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->done.fetch_add(1) + 1 == total) {
        const std::scoped_lock lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), count - 1);
  {
    const std::scoped_lock lock(mutex_);
    GC_CHECK(!stopping_, "parallel_for_index on a stopped pool");
    for (std::size_t i = 0; i < helpers; ++i) tasks_.emplace(drain);
  }
  cv_.notify_all();

  drain();  // caller participates

  std::unique_lock lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == total; });
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gc
