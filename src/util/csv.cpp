#include "util/csv.h"

#include "util/format.h"
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace gc {

int CsvTable::column_index(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = split(trimmed, ',');
    if (!have_header) {
      for (const auto f : fields) table.header.emplace_back(trim(f));
      have_header = true;
      continue;
    }
    if (fields.size() != table.header.size()) {
      throw std::runtime_error(gc::format(
          "csv line {}: {} fields, expected {}", line_no, fields.size(), table.header.size()));
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto f : fields) {
      const auto value = parse_double(f);
      if (!value) {
        throw std::runtime_error(
            gc::format("csv line {}: non-numeric cell '{}'", line_no, std::string(f)));
      }
      row.push_back(*value);
    }
    table.rows.push_back(std::move(row));
  }
  if (!have_header) throw std::runtime_error("csv: no header line");
  return table;
}

CsvTable read_csv_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(gc::format("cannot open '{}'", path.string()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

std::string to_csv_text(const CsvTable& table) {
  std::ostringstream os;
  for (std::size_t i = 0; i < table.header.size(); ++i) {
    if (i != 0) os << ',';
    os << table.header[i];
  }
  os << '\n';
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      os << gc::format("{:.15g}", row[i]);
    }
    os << '\n';
  }
  return os.str();
}

void write_csv_file(const std::filesystem::path& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error(gc::format("cannot write '{}'", path.string()));
  out << to_csv_text(table);
  if (!out) throw std::runtime_error(gc::format("write failed for '{}'", path.string()));
}

}  // namespace gc
