// Tiny CSV reader/writer.
//
// Only what the trace layer needs: comma separation, '#' comment lines,
// numeric cells, a single header line.  Not a general CSV implementation
// (no quoting) — traces are machine-generated.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace gc {

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  // Index of a header column, or -1.
  [[nodiscard]] int column_index(const std::string& name) const noexcept;
};

// Parses CSV text.  Throws std::runtime_error on malformed numeric cells or
// ragged rows.  Lines starting with '#' and blank lines are skipped; the
// first remaining line is the header.
[[nodiscard]] CsvTable parse_csv(const std::string& text);

// Reads a file and parses it.  Throws std::runtime_error if unreadable.
[[nodiscard]] CsvTable read_csv_file(const std::filesystem::path& path);

// Serializes and writes.  Throws std::runtime_error on I/O failure.
[[nodiscard]] std::string to_csv_text(const CsvTable& table);
void write_csv_file(const std::filesystem::path& path, const CsvTable& table);

}  // namespace gc
