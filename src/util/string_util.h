// Small string helpers used by the CSV layer and table printer.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gc {

// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

// Splits on `sep`; keeps empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

// Locale-independent numeric parsing; nullopt on any trailing garbage.
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;
[[nodiscard]] std::optional<long long> parse_int(std::string_view s) noexcept;

// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

// Joins pieces with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces, std::string_view sep);

// Lower-cases ASCII.
[[nodiscard]] std::string to_lower(std::string_view s);

}  // namespace gc
