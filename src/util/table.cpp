#include "util/table.h"

#include <algorithm>
#include "util/format.h"
#include <sstream>

#include "util/assert.h"

namespace gc {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

TablePrinter& TablePrinter::column(std::string name, ColumnFormat fmt) {
  GC_CHECK(rows_.empty(), "declare all columns before adding rows");
  columns_.push_back(Column{std::move(name), std::move(fmt)});
  return *this;
}

TablePrinter& TablePrinter::row() {
  GC_CHECK(!columns_.empty(), "declare columns before adding rows");
  GC_CHECK(rows_.empty() || rows_.back().size() == columns_.size(),
           "previous row is incomplete");
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

TablePrinter& TablePrinter::cell(double value) {
  GC_CHECK(!rows_.empty() && rows_.back().size() < columns_.size(),
           "cell() without room in the current row");
  rows_.back().emplace_back(value);
  return *this;
}

TablePrinter& TablePrinter::cell(std::string_view text) {
  GC_CHECK(!rows_.empty() && rows_.back().size() < columns_.size(),
           "cell() without room in the current row");
  rows_.back().emplace_back(std::string(text));
  return *this;
}

TablePrinter& TablePrinter::cell(long long value) {
  GC_CHECK(!rows_.empty() && rows_.back().size() < columns_.size(),
           "cell() without room in the current row");
  rows_.back().emplace_back(value);
  return *this;
}

TablePrinter& TablePrinter::row_values(const std::vector<double>& values) {
  GC_CHECK(values.size() == columns_.size(), "row_values size mismatch");
  row();
  for (const double v : values) cell(v);
  return *this;
}

std::string TablePrinter::render_cell(std::size_t col, const Cell& cell) const {
  const ColumnFormat& fmt = columns_[col].fmt;
  if (const auto* d = std::get_if<double>(&cell)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt.fixed ? "%.*f" : "%.*g", fmt.precision, *d);
    return buf;
  }
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  return std::get<std::string>(cell);
}

void TablePrinter::print(std::ostream& os) const { os << to_string(); }

std::string TablePrinter::to_string() const {
  GC_CHECK(rows_.empty() || rows_.back().size() == columns_.size(),
           "last row is incomplete");
  std::vector<std::string> headers;
  headers.reserve(columns_.size());
  for (const Column& c : columns_) {
    headers.push_back(c.fmt.unit.empty() ? c.name : c.name + " [" + c.fmt.unit + "]");
  }

  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = headers[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(c, row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      if (cells[c].size() < widths[c]) os << std::string(widths[c] - cells[c].size(), ' ');
      os << cells[c];
    }
    os << '\n';
  };
  emit_row(headers);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& cells : rendered) emit_row(cells);
  return os.str();
}

std::string TablePrinter::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) os << ',';
    os << columns_[c].name;
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << render_cell(c, row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TablePrinter& table) {
  table.print(os);
  return os;
}

}  // namespace gc
