#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace gc {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < g_level.load()) return;
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace gc
