// Always-on invariant checks.
//
// The simulator and solver maintain nontrivial invariants (event ordering,
// energy conservation, feasibility).  These checks stay enabled in release
// builds: a silently corrupted simulation is worse than an abort, and the
// cost is negligible next to the floating-point work around them.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gc {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "GC_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace gc

// Check `cond`; on failure print `msg` and abort.  Enabled in all builds.
#define GC_CHECK(cond, msg)                                 \
  do {                                                      \
    if (!(cond)) [[unlikely]] {                             \
      ::gc::assert_fail(#cond, __FILE__, __LINE__, (msg));  \
    }                                                       \
  } while (false)

// Debug-only variant for hot paths.
#ifdef NDEBUG
#define GC_DCHECK(cond, msg) \
  do {                       \
  } while (false)
#else
#define GC_DCHECK(cond, msg) GC_CHECK(cond, msg)
#endif
