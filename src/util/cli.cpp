#include "util/cli.h"

#include <algorithm>
#include <stdexcept>

#include "util/string_util.h"

namespace gc {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (!starts_with(token, "--")) {
      positional_.push_back(token);
      continue;
    }
    std::string body = token.substr(2);
    if (body.empty()) throw std::invalid_argument("cli: bare '--' is not a flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" if the next token exists and is not itself a flag;
    // otherwise a bare boolean flag.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool CliArgs::has(const std::string& key) const noexcept {
  return flags_.find(key) != flags_.end();
}

std::optional<std::string> CliArgs::get(const std::string& key) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& key, const std::string& fallback) const {
  const auto value = get(key);
  return value ? *value : fallback;
}

double CliArgs::get_double_or(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  const auto parsed = parse_double(*value);
  if (!parsed) throw std::invalid_argument("cli: --" + key + " expects a number");
  return *parsed;
}

long long CliArgs::get_int_or(const std::string& key, long long fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  const auto parsed = parse_int(*value);
  if (!parsed) throw std::invalid_argument("cli: --" + key + " expects an integer");
  return *parsed;
}

bool CliArgs::get_bool_or(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  if (value->empty() || *value == "true" || *value == "1" || *value == "yes") return true;
  if (*value == "false" || *value == "0" || *value == "no") return false;
  throw std::invalid_argument("cli: --" + key + " expects a boolean");
}

std::vector<std::string> CliArgs::unknown_flags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : flags_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      unknown.push_back(key);
    }
  }
  return unknown;
}

}  // namespace gc
