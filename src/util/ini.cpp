#include "util/ini.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/format.h"
#include "util/string_util.h"

namespace gc {

IniFile IniFile::parse(const std::string& text) {
  IniFile ini;
  std::istringstream in(text);
  std::string line;
  std::string section;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view view = trim(line);
    if (view.empty() || view.front() == '#' || view.front() == ';') continue;
    if (view.front() == '[') {
      if (view.back() != ']') {
        throw std::runtime_error(gc::format("ini line {}: unterminated section", line_no));
      }
      section = std::string(trim(view.substr(1, view.size() - 2)));
      if (section.empty()) {
        throw std::runtime_error(gc::format("ini line {}: empty section name", line_no));
      }
      ini.sections_[section];  // section may be empty but present
      continue;
    }
    const auto eq = view.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error(gc::format("ini line {}: expected key = value", line_no));
    }
    if (section.empty()) {
      throw std::runtime_error(
          gc::format("ini line {}: key outside any [section]", line_no));
    }
    const std::string key(trim(view.substr(0, eq)));
    const std::string value(trim(view.substr(eq + 1)));
    if (key.empty()) {
      throw std::runtime_error(gc::format("ini line {}: empty key", line_no));
    }
    ini.sections_[section][key] = value;
  }
  return ini;
}

IniFile IniFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(gc::format("cannot open '{}'", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool IniFile::has_section(const std::string& section) const noexcept {
  return sections_.find(section) != sections_.end();
}

std::vector<std::string> IniFile::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, keys] : sections_) names.push_back(name);
  return names;
}

std::optional<std::string> IniFile::get(const std::string& section,
                                        const std::string& key) const {
  const auto sit = sections_.find(section);
  if (sit == sections_.end()) return std::nullopt;
  const auto kit = sit->second.find(key);
  if (kit == sit->second.end()) return std::nullopt;
  return kit->second;
}

std::string IniFile::get_or(const std::string& section, const std::string& key,
                            const std::string& fallback) const {
  const auto value = get(section, key);
  return value ? *value : fallback;
}

double IniFile::get_double_or(const std::string& section, const std::string& key,
                              double fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  const auto parsed = parse_double(*value);
  if (!parsed) {
    throw std::runtime_error(
        gc::format("ini: [{}] {} = '{}' is not a number", section, key, *value));
  }
  return *parsed;
}

long long IniFile::get_int_or(const std::string& section, const std::string& key,
                              long long fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  const auto parsed = parse_int(*value);
  if (!parsed) {
    throw std::runtime_error(
        gc::format("ini: [{}] {} = '{}' is not an integer", section, key, *value));
  }
  return *parsed;
}

bool IniFile::get_bool_or(const std::string& section, const std::string& key,
                          bool fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  const std::string lower = to_lower(*value);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") return false;
  throw std::runtime_error(
      gc::format("ini: [{}] {} = '{}' is not a boolean", section, key, *value));
}

void IniFile::set(const std::string& section, const std::string& key,
                  const std::string& value) {
  if (section.empty() || key.empty()) {
    throw std::runtime_error("ini: section and key must be non-empty");
  }
  sections_[section][key] = value;
}

std::string IniFile::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [section, keys] : sections_) {
    if (!first) os << '\n';
    first = false;
    os << '[' << section << "]\n";
    for (const auto& [key, value] : keys) os << key << " = " << value << '\n';
  }
  return os.str();
}

}  // namespace gc
