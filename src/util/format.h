// Minimal std::format stand-in for GCC 12 (no <format> in libstdc++ 12).
//
// Supports the subset this project uses:
//   * "{}"          — default rendering (%g for floating point, decimal for
//                     integers, "true"/"false" for bool, pass-through for
//                     strings)
//   * "{:SPEC}"     — SPEC is handed to snprintf as "%SPEC" for arithmetic
//                     arguments (e.g. "{:g}", "{:.3f}", "{:.9g}", "{:x}");
//                     for strings, ">N" / "<N" pads to width N.
//
// This is cold-path code (logs, table rendering, names); clarity over
// speed.  Errors (too few/many args, bad spec) throw std::invalid_argument
// so tests catch misuse immediately.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace gc {
namespace detail {

[[nodiscard]] std::string printf_spec(std::string_view spec, std::string_view length_mod,
                                      char default_conv);

template <typename T>
[[nodiscard]] std::string render_arg(const T& value, std::string_view spec) {
  char buf[128];
  if constexpr (std::is_same_v<T, bool>) {
    return value ? "true" : "false";
  } else if constexpr (std::is_floating_point_v<T>) {
    const std::string f = printf_spec(spec, "", 'g');
    std::snprintf(buf, sizeof buf, f.c_str(), static_cast<double>(value));
    return buf;
  } else if constexpr (std::is_integral_v<T>) {
    if (!spec.empty() && (spec.back() == 'f' || spec.back() == 'g' || spec.back() == 'e')) {
      // Integer formatted with a float spec: promote.
      const std::string f = printf_spec(spec, "", 'g');
      std::snprintf(buf, sizeof buf, f.c_str(), static_cast<double>(value));
      return buf;
    }
    if constexpr (std::is_signed_v<T>) {
      const std::string f = printf_spec(spec, "ll", 'd');
      std::snprintf(buf, sizeof buf, f.c_str(), static_cast<long long>(value));
    } else {
      const std::string f = printf_spec(spec, "ll", 'u');
      std::snprintf(buf, sizeof buf, f.c_str(), static_cast<unsigned long long>(value));
    }
    return buf;
  } else {
    // String-like.
    std::string text;
    if constexpr (std::is_convertible_v<T, std::string_view>) {
      text = std::string(std::string_view(value));
    } else {
      static_assert(std::is_convertible_v<T, std::string>,
                    "gc::format: unsupported argument type");
      text = std::string(value);
    }
    if (spec.empty()) return text;
    if (spec.front() == '>' || spec.front() == '<') {
      const std::size_t width = static_cast<std::size_t>(
          std::strtoul(std::string(spec.substr(1)).c_str(), nullptr, 10));
      if (text.size() >= width) return text;
      const std::string pad(width - text.size(), ' ');
      return spec.front() == '>' ? pad + text : text + pad;
    }
    throw std::invalid_argument("gc::format: bad string spec '" + std::string(spec) + "'");
  }
}

[[nodiscard]] std::string format_impl(
    std::string_view fmt,
    const std::vector<std::function<std::string(std::string_view)>>& renderers);

}  // namespace detail

template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, const Args&... args) {
  std::vector<std::function<std::string(std::string_view)>> renderers;
  renderers.reserve(sizeof...(Args));
  (renderers.emplace_back(
       [&args](std::string_view spec) { return detail::render_arg(args, spec); }),
   ...);
  return detail::format_impl(fmt, renderers);
}

}  // namespace gc
