// Minimal leveled logger.
//
// The library itself logs nothing above `kWarn` by default so that bench
// harnesses produce clean, machine-diffable tables.  Examples raise the
// level to `kInfo` to narrate what they do.
#pragma once

#include <string_view>

#include "util/format.h"

namespace gc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level (not thread-safe to *change* concurrently with
// logging; set it once at startup).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

// Writes "[level] message\n" to stderr if `level` passes the filter.
void log_message(LogLevel level, std::string_view message);

template <typename... Args>
void log_debug(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, gc::format(fmt, args...));
}

template <typename... Args>
void log_info(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::kInfo) log_message(LogLevel::kInfo, gc::format(fmt, args...));
}

template <typename... Args>
void log_warn(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::kWarn) log_message(LogLevel::kWarn, gc::format(fmt, args...));
}

template <typename... Args>
void log_error(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, gc::format(fmt, args...));
}

}  // namespace gc
