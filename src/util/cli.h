// Minimal command-line flag parsing for the example programs.
//
// Supports `--key=value`, `--key value`, bare `--flag` (boolean true) and
// positional arguments.  Unknown-flag detection is the caller's job via
// `unknown_flags`, so examples can print their own usage text.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gc {

class CliArgs {
 public:
  // Parses argv (argv[0] is skipped).  Throws std::invalid_argument on a
  // malformed token such as "--" with nothing after it.
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const noexcept;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_double_or(const std::string& key, double fallback) const;
  [[nodiscard]] long long get_int_or(const std::string& key, long long fallback) const;
  [[nodiscard]] bool get_bool_or(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  // Flags present on the command line but not in `known` (for usage errors).
  [[nodiscard]] std::vector<std::string> unknown_flags(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;  // value "" means bare flag
  std::vector<std::string> positional_;
};

}  // namespace gc
