#include "util/format.h"

namespace gc {
namespace detail {

std::string printf_spec(std::string_view spec, std::string_view length_mod,
                        char default_conv) {
  // Validate: optional flags/width/precision digits and '.', '-', '+', then
  // an optional conversion letter.
  std::string body;
  char conv = 0;
  for (const char c : spec) {
    const bool digit = c >= '0' && c <= '9';
    if (digit || c == '.' || c == '-' || c == '+' || c == ' ') {
      body += c;
    } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
      if (conv != 0) throw std::invalid_argument("gc::format: bad spec");
      conv = c;
    } else {
      throw std::invalid_argument("gc::format: bad spec char");
    }
  }
  if (conv == 0) conv = default_conv;
  std::string out = "%";
  out += body;
  // Length modifier only applies to integer conversions.
  if (conv == 'd' || conv == 'u' || conv == 'x' || conv == 'X' || conv == 'o') {
    out += length_mod;
  }
  out += conv;
  return out;
}

std::string format_impl(
    std::string_view fmt,
    const std::vector<std::function<std::string(std::string_view)>>& renderers) {
  std::string out;
  out.reserve(fmt.size() + renderers.size() * 8);
  std::size_t arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out += '{';
        ++i;
        continue;
      }
      const std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) {
        throw std::invalid_argument("gc::format: unterminated '{'");
      }
      std::string_view spec = fmt.substr(i + 1, close - i - 1);
      if (!spec.empty() && spec.front() == ':') spec.remove_prefix(1);
      if (arg >= renderers.size()) {
        throw std::invalid_argument("gc::format: more placeholders than arguments");
      }
      out += renderers[arg++](spec);
      i = close;
    } else if (c == '}') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '}') ++i;
      out += '}';
    } else {
      out += c;
    }
  }
  if (arg != renderers.size()) {
    throw std::invalid_argument("gc::format: unused arguments");
  }
  return out;
}

}  // namespace detail
}  // namespace gc
