#include "stats/quantile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/assert.h"

namespace gc {

P2Quantile::P2Quantile(double p) : p_(p) {
  if (!(p > 0.0 && p < 1.0)) throw std::invalid_argument("P2Quantile: p must be in (0,1)");
  desired_ = {1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0};
  increments_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
    }
    return;
  }
  ++count_;

  int k;  // cell index of the new observation
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers with the piecewise-parabolic formula.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Parabolic prediction.
      const double qi = heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) *
                   (heights_[i + 1] - heights_[i]) / right_gap +
               (positions_[i + 1] - positions_[i] - sign) *
                   (heights_[i] - heights_[i - 1]) / (-left_gap));
      if (heights_[i - 1] < qi && qi < heights_[i + 1]) {
        heights_[i] = qi;
      } else {
        // Fall back to linear prediction toward the neighbor.
        const int j = i + (sign > 0 ? 1 : -1);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]) * sign;
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::array<double, 5> sorted = heights_;
    // GCC 12 under -fsanitize instrumentation emits a bogus -Warray-bounds
    // from std::sort's insertion-sort specialization here (count_ < 5 bounds
    // the range inside the array).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
#pragma GCC diagnostic pop
    const double h = p_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(h);
    const std::size_t hi = std::min<std::size_t>(lo + 1, count_ - 1);
    return sorted[lo] + (h - static_cast<double>(lo)) * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

double exact_quantile(std::span<const double> samples, double p) {
  GC_CHECK(!samples.empty(), "exact_quantile: empty sample");
  GC_CHECK(p >= 0.0 && p <= 1.0, "exact_quantile: p out of range");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (h - static_cast<double>(lo)) * (sorted[hi] - sorted[lo]);
}

}  // namespace gc
