// Random variate generators over gc::Rng.
//
// We implement our own (instead of <random>) because libstdc++ makes no
// cross-version reproducibility promise for its distributions, and the
// experiment harness wants traces that are stable across toolchains.
#pragma once

#include <memory>
#include <string>

#include "stats/rng.h"

namespace gc {

// Exponential with rate `lambda` (mean 1/lambda).
class Exponential {
 public:
  explicit Exponential(double lambda);
  [[nodiscard]] double sample(Rng& rng) const noexcept;
  [[nodiscard]] double mean() const noexcept { return 1.0 / lambda_; }
  [[nodiscard]] double rate() const noexcept { return lambda_; }

 private:
  double lambda_;
};

// Uniform on [lo, hi).
class Uniform {
 public:
  Uniform(double lo, double hi);
  [[nodiscard]] double sample(Rng& rng) const noexcept;
  [[nodiscard]] double mean() const noexcept { return 0.5 * (lo_ + hi_); }

 private:
  double lo_, hi_;
};

// Normal(mu, sigma) via the polar (Marsaglia) method.
class Normal {
 public:
  Normal(double mu, double sigma);
  [[nodiscard]] double sample(Rng& rng) const noexcept;
  [[nodiscard]] double mean() const noexcept { return mu_; }
  [[nodiscard]] double stddev() const noexcept { return sigma_; }

 private:
  double mu_, sigma_;
};

// LogNormal: exp(Normal(mu, sigma)).
class LogNormal {
 public:
  LogNormal(double mu, double sigma);
  [[nodiscard]] double sample(Rng& rng) const noexcept;
  [[nodiscard]] double mean() const noexcept;  // exp(mu + sigma^2/2)

 private:
  Normal normal_;
  double mu_, sigma_;
};

// Bounded Pareto on [lo, hi] with tail index `alpha` — the classic model of
// heavy-tailed web request sizes (Crovella & Bestavros).
class BoundedPareto {
 public:
  BoundedPareto(double alpha, double lo, double hi);
  [[nodiscard]] double sample(Rng& rng) const noexcept;
  [[nodiscard]] double mean() const noexcept;

 private:
  double alpha_, lo_, hi_;
};

// Degenerate point mass (deterministic service).
class Deterministic {
 public:
  explicit Deterministic(double value);
  [[nodiscard]] double sample(Rng& /*rng*/) const noexcept { return value_; }
  [[nodiscard]] double mean() const noexcept { return value_; }

 private:
  double value_;
};

// Type-erased positive-valued distribution used for job sizes.
class Distribution {
 public:
  template <typename D>
  explicit Distribution(D dist, std::string name)
      : impl_(std::make_shared<Model<D>>(std::move(dist))), name_(std::move(name)) {}

  [[nodiscard]] double sample(Rng& rng) const { return impl_->sample(rng); }
  [[nodiscard]] double mean() const { return impl_->mean(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // Factory helpers with canonical names.
  [[nodiscard]] static Distribution exponential(double rate);
  [[nodiscard]] static Distribution deterministic(double value);
  [[nodiscard]] static Distribution uniform(double lo, double hi);
  [[nodiscard]] static Distribution lognormal(double mu, double sigma);
  [[nodiscard]] static Distribution bounded_pareto(double alpha, double lo, double hi);

  // This distribution with every sample multiplied by `factor` (> 0) —
  // e.g. renormalizing a heavy-tailed law to a target mean.
  [[nodiscard]] Distribution scaled(double factor) const;
  [[nodiscard]] Distribution with_mean(double target_mean) const;

 private:
  struct Concept {
    virtual ~Concept() = default;
    [[nodiscard]] virtual double sample(Rng& rng) const = 0;
    [[nodiscard]] virtual double mean() const = 0;
  };
  template <typename D>
  struct Model final : Concept {
    explicit Model(D d) : dist(std::move(d)) {}
    [[nodiscard]] double sample(Rng& rng) const override { return dist.sample(rng); }
    [[nodiscard]] double mean() const override { return dist.mean(); }
    D dist;
  };

  std::shared_ptr<const Concept> impl_;
  std::string name_;
};

}  // namespace gc
