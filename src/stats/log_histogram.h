// Log2-bucketed latency histogram with bounded relative error — the
// mergeable complement to the P² streaming quantiles (stats/quantile.h).
//
// Layout (HdrHistogram-style): the positive reals are covered by octaves
// [2^o, 2^(o+1)), each subdivided linearly into S = 2^sub_bucket_bits
// sub-buckets of width 2^o / S.  A value is indexed by extracting its
// binary exponent (std::frexp) and the top `sub_bucket_bits` of its
// mantissa — no loops, no float log.  quantile() returns the midpoint of
// the bucket holding the target rank, so any reported quantile q is within
//
//     |q - x| <= relative_error_bound() * x,   bound = 1 / (2 S)
//
// of the true order statistic x in that bucket (0.78% at the default 6
// bits).  Unlike P², two histograms over disjoint samples merge *exactly*:
// bucket counts add, so pooling replications (bench/tab4) or sharded runs
// loses nothing.  Serialization (to_json/from_json) round-trips bit-exactly
// and stores only the non-zero buckets.
//
// Values below 2^min_exponent (including zero and negatives) land in an
// underflow counter; values at or above 2^max_exponent are clamped into the
// top bucket and tallied in saturated() — quantiles over clamped mass lose
// the relative-error bound, so pick the range to cover the data (the
// default spans ~1 µs to ~4096 s, every plausible response time here).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gc {

struct LogHistogramOptions {
  // Sub-buckets per octave = 2^sub_bucket_bits; relative error 1/2^(bits+1).
  unsigned sub_bucket_bits = 6;
  // Octave range [min_exponent, max_exponent): lowest trackable value is
  // 2^min_exponent, values >= 2^max_exponent saturate the top bucket.
  int min_exponent = -20;
  int max_exponent = 12;

  void validate() const;  // throws std::invalid_argument
};

class LogHistogram {
 public:
  explicit LogHistogram(LogHistogramOptions options = {});

  void add(double x, std::uint64_t n = 1) noexcept;

  // Forgets every sample, keeping the geometry (bucket storage is reused).
  void clear() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t saturated() const noexcept { return saturated_; }
  // Exact accompaniments (not bucketed): sum/mean/min/max over added values.
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept;  // 0 when empty
  [[nodiscard]] double max() const noexcept;  // 0 when empty

  // Bucket-midpoint estimate of the p-quantile (p in [0, 1]); 0 when empty.
  // p <= 0 returns the exact min, p >= 1 the exact max.
  [[nodiscard]] double quantile(double p) const noexcept;
  // Advertised bound: 1 / (2 * sub-buckets-per-octave).
  [[nodiscard]] double relative_error_bound() const noexcept;

  [[nodiscard]] const LogHistogramOptions& options() const noexcept { return options_; }
  [[nodiscard]] bool same_geometry(const LogHistogram& other) const noexcept;

  // Exact pooling: afterwards *this is indistinguishable from having seen
  // both sample streams.  Throws std::invalid_argument on geometry mismatch.
  void merge(const LogHistogram& other);

  // Non-empty buckets in value order (for exposition/export).
  struct Bucket {
    double lower = 0.0;
    double upper = 0.0;
    std::uint64_t count = 0;
  };
  [[nodiscard]] std::vector<Bucket> nonzero_buckets() const;

  // Compact JSON: geometry + exact scalars + sparse {"index": count} map.
  // from_json(to_json(h)) == h bit-exactly.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static LogHistogram from_json(std::string_view text);

  // Equality over the order-independent state: geometry, bucket counts,
  // count/underflow/saturated, min, max.  `sum` is excluded — it is a
  // floating-point running total whose bits depend on addition order, so a
  // merged histogram and its pooled equivalent agree on everything else.
  friend bool operator==(const LogHistogram& a, const LogHistogram& b);

 private:
  [[nodiscard]] std::size_t num_buckets() const noexcept;
  // Index of the bucket holding x (clamps to the top bucket); x must be
  // >= 2^min_exponent.
  [[nodiscard]] std::size_t bucket_index(double x) const noexcept;
  [[nodiscard]] double bucket_lower(std::size_t index) const noexcept;
  [[nodiscard]] double bucket_upper(std::size_t index) const noexcept;

  LogHistogramOptions options_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t saturated_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;  // valid only when count_ > 0
  double max_ = 0.0;
};

}  // namespace gc
