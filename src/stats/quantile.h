// Quantile estimation.
//
// `P2Quantile` is the Jain–Chlamtac P² streaming estimator: O(1) memory,
// good for p50/p95/p99 over millions of response times.  `exact_quantile`
// is the reference implementation used by tests and small samples.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace gc {

class P2Quantile {
 public:
  // `p` in (0, 1), e.g. 0.95.
  explicit P2Quantile(double p);

  void add(double x) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  // Current estimate; for fewer than 5 samples falls back to the exact
  // value over the samples seen so far.
  [[nodiscard]] double value() const noexcept;

 private:
  double p_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increments_{};
};

// Exact quantile with linear interpolation (type-7, the numpy default).
// `p` in [0, 1].  The input need not be sorted; it is copied.
[[nodiscard]] double exact_quantile(std::span<const double> samples, double p);

}  // namespace gc
