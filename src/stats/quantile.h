// Quantile estimation.
//
// `P2Quantile` is the Jain–Chlamtac P² streaming estimator: O(1) memory,
// good for p50/p95/p99 over millions of response times.  `exact_quantile`
// is the reference implementation used by tests and small samples.
//
// Approximation error: P² keeps only five markers and adjusts them with a
// piecewise-parabolic (hence the name) height formula, so its estimate is
// a *heuristic* — it carries no distribution-free error bound.  In practice
// it converges well for smooth unimodal distributions (the M/M/m response
// times here), but it can be materially off for multimodal or heavy-tailed
// data, early in a stream (the first few hundred samples), or at extreme
// quantiles (p beyond ~0.99 leaves the outer markers data-starved).  Two
// estimators over the *same* stream also cannot be combined: P² state does
// not merge.  When a bounded error or exact cross-run pooling matters, use
// stats/log_histogram.h instead — it guarantees every quantile to within
// 1/(2S) relative error (0.78% at the default geometry) and merges
// exactly; P² remains the cheaper choice for a single in-loop p95/p99.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace gc {

class P2Quantile {
 public:
  // `p` in (0, 1), e.g. 0.95.
  explicit P2Quantile(double p);

  void add(double x) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  // Current estimate; for fewer than 5 samples falls back to the exact
  // value over the samples seen so far.
  [[nodiscard]] double value() const noexcept;

 private:
  double p_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increments_{};
};

// Exact quantile with linear interpolation (type-7, the numpy default).
// `p` in [0, 1].  The input need not be sorted; it is copied.
[[nodiscard]] double exact_quantile(std::span<const double> samples, double p);

}  // namespace gc
