#include "stats/accumulators.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace gc {

void MeanVarAccumulator::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void MeanVarAccumulator::merge(const MeanVarAccumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel variance combination.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double MeanVarAccumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double MeanVarAccumulator::stddev() const noexcept { return std::sqrt(variance()); }

double MeanVarAccumulator::sem() const noexcept {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

void TimeWeightedAccumulator::advance(double now, double value_since_last) noexcept {
  GC_DCHECK(now >= last_time_, "time must be nondecreasing");
  integral_ += (now - last_time_) * value_since_last;
  last_time_ = now;
}

}  // namespace gc
