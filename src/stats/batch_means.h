// Batch-means confidence intervals for steady-state simulation output.
//
// Response times from one simulation run are autocorrelated, so the naive
// SEM understates the error.  The classic remedy (Law & Kelton) is to chop
// the run into `k` contiguous batches, treat batch means as i.i.d., and
// build a t-interval over them.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/accumulators.h"

namespace gc {

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  [[nodiscard]] double lower() const noexcept { return mean - half_width; }
  [[nodiscard]] double upper() const noexcept { return mean + half_width; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lower() && x <= upper();
  }
};

class BatchMeans {
 public:
  // `batch_size` observations per batch; `num_batches` capped (older
  // batches are merged pairwise when the cap is hit, doubling batch size).
  explicit BatchMeans(std::size_t batch_size = 1024, std::size_t max_batches = 64);

  void add(double x);

  [[nodiscard]] std::size_t completed_batches() const noexcept { return batch_means_.size(); }
  [[nodiscard]] double grand_mean() const noexcept;

  // Two-sided CI at the given confidence level (0.90, 0.95 or 0.99 use
  // exact-ish t quantiles; anything else falls back to the normal quantile).
  [[nodiscard]] ConfidenceInterval interval(double confidence = 0.95) const;

 private:
  void finish_batch();

  std::size_t batch_size_;
  std::size_t max_batches_;
  MeanVarAccumulator current_;
  std::vector<double> batch_means_;
  MeanVarAccumulator all_;  // grand mean over every observation
};

// Student-t upper quantile for two-sided `confidence`, df degrees of
// freedom; exposed for tests.
[[nodiscard]] double t_quantile(double confidence, std::size_t df) noexcept;

}  // namespace gc
