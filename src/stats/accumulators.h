// Streaming statistics.
//
// Welford's algorithm keeps mean/variance numerically stable over millions
// of samples; accumulators are mergeable so parallel replications can be
// combined without storing raw samples.
#pragma once

#include <cstdint>
#include <limits>

namespace gc {

class MeanVarAccumulator {
 public:
  void add(double x) noexcept;
  void merge(const MeanVarAccumulator& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  // Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Time-weighted average of a piecewise-constant signal, e.g. number of busy
// servers or instantaneous power.  `advance(t, value)` means: the signal
// held `value` from the previous timestamp up to `t`.
class TimeWeightedAccumulator {
 public:
  explicit TimeWeightedAccumulator(double start_time = 0.0) noexcept
      : last_time_(start_time), start_time_(start_time) {}

  void advance(double now, double value_since_last) noexcept;

  [[nodiscard]] double elapsed() const noexcept { return last_time_ - start_time_; }
  // Integral of the signal over [start, last].
  [[nodiscard]] double integral() const noexcept { return integral_; }
  [[nodiscard]] double time_average() const noexcept {
    const double e = elapsed();
    return e > 0.0 ? integral_ / e : 0.0;
  }
  [[nodiscard]] double last_time() const noexcept { return last_time_; }

 private:
  double last_time_;
  double start_time_;
  double integral_ = 0.0;
};

// Fraction of events satisfying a predicate (e.g. SLA violations).
class RatioAccumulator {
 public:
  void add(bool hit) noexcept {
    ++total_;
    if (hit) ++hits_;
  }
  void merge(const RatioAccumulator& other) noexcept {
    total_ += other.total_;
    hits_ += other.hits_;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] double ratio() const noexcept {
    return total_ == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total_);
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace gc
