#include "stats/log_histogram.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace gc {

void LogHistogramOptions::validate() const {
  if (sub_bucket_bits < 1 || sub_bucket_bits > 12) {
    throw std::invalid_argument(
        "LogHistogramOptions: sub_bucket_bits must be in [1, 12]");
  }
  if (min_exponent >= max_exponent) {
    throw std::invalid_argument(
        "LogHistogramOptions: min_exponent must be < max_exponent");
  }
  if (min_exponent < -64 || max_exponent > 64) {
    throw std::invalid_argument(
        "LogHistogramOptions: exponent range must stay within [-64, 64]");
  }
}

LogHistogram::LogHistogram(LogHistogramOptions options) : options_(options) {
  options_.validate();
  counts_.assign(num_buckets(), 0);
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

std::size_t LogHistogram::num_buckets() const noexcept {
  const auto octaves =
      static_cast<std::size_t>(options_.max_exponent - options_.min_exponent);
  return octaves << options_.sub_bucket_bits;
}

std::size_t LogHistogram::bucket_index(double x) const noexcept {
  int exp = 0;
  const double mantissa = std::frexp(x, &exp);  // x = mantissa * 2^exp, m in [0.5, 1)
  const int octave = exp - 1;                   // x in [2^octave, 2^(octave+1))
  if (octave >= options_.max_exponent) return num_buckets() - 1;
  const auto sub_buckets = std::size_t{1} << options_.sub_bucket_bits;
  // Position of x inside its octave, in [0, 1); top bits pick the sub-bucket.
  auto sub = static_cast<std::size_t>((2.0 * mantissa - 1.0) *
                                      static_cast<double>(sub_buckets));
  if (sub >= sub_buckets) sub = sub_buckets - 1;  // guard fp round-up at 1.0
  const auto row = static_cast<std::size_t>(octave - options_.min_exponent);
  return (row << options_.sub_bucket_bits) + sub;
}

double LogHistogram::bucket_lower(std::size_t index) const noexcept {
  const auto sub_buckets = std::size_t{1} << options_.sub_bucket_bits;
  const int octave =
      options_.min_exponent + static_cast<int>(index >> options_.sub_bucket_bits);
  const auto sub = index & (sub_buckets - 1);
  return std::ldexp(1.0 + static_cast<double>(sub) / static_cast<double>(sub_buckets),
                    octave);
}

double LogHistogram::bucket_upper(std::size_t index) const noexcept {
  const auto sub_buckets = std::size_t{1} << options_.sub_bucket_bits;
  const int octave =
      options_.min_exponent + static_cast<int>(index >> options_.sub_bucket_bits);
  const auto sub = index & (sub_buckets - 1);
  return std::ldexp(
      1.0 + static_cast<double>(sub + 1) / static_cast<double>(sub_buckets), octave);
}

void LogHistogram::clear() noexcept {
  counts_.assign(counts_.size(), 0);
  count_ = 0;
  underflow_ = 0;
  saturated_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void LogHistogram::add(double x, std::uint64_t n) noexcept {
  if (n == 0 || std::isnan(x)) return;
  count_ += n;
  sum_ += x * static_cast<double>(n);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
  if (x < std::ldexp(1.0, options_.min_exponent)) {
    underflow_ += n;
    return;
  }
  const std::size_t index = bucket_index(x);
  if (x >= std::ldexp(1.0, options_.max_exponent)) saturated_ += n;
  counts_[index] += n;
}

double LogHistogram::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double LogHistogram::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

double LogHistogram::relative_error_bound() const noexcept {
  return 1.0 / static_cast<double>(std::size_t{2} << options_.sub_bucket_bits);
}

double LogHistogram::quantile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 1.0) return max_;
  // Rank of the target order statistic, 1-based.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  // Underflow mass sorts below every bucket; its best representative is the
  // exact minimum.
  if (rank <= underflow_) return min_;
  std::uint64_t cumulative = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      return 0.5 * (bucket_lower(i) + bucket_upper(i));
    }
  }
  return max_;  // unreachable unless counts drifted; max is always safe
}

bool LogHistogram::same_geometry(const LogHistogram& other) const noexcept {
  return options_.sub_bucket_bits == other.options_.sub_bucket_bits &&
         options_.min_exponent == other.options_.min_exponent &&
         options_.max_exponent == other.options_.max_exponent;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (!same_geometry(other)) {
    throw std::invalid_argument("LogHistogram::merge: geometry mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  underflow_ += other.underflow_;
  saturated_ += other.saturated_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

std::vector<LogHistogram::Bucket> LogHistogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) {
      out.push_back(Bucket{bucket_lower(i), bucket_upper(i), counts_[i]});
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_number(std::string& out, double v) {
  char buf[40];
  // %.17g survives a strtod round trip bit-exactly for any finite double.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

// Same tiny-parser shape as CountersSnapshot::from_json (obs/counters.cpp):
// exactly the grammar to_json emits, nothing more.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("LogHistogram::from_json: " + std::string(what) +
                             " at offset " + std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  [[nodiscard]] char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos;
  }
  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') out += text[pos++];
    if (pos >= text.size()) fail("unterminated string");
    ++pos;
    return out;
  }
  [[nodiscard]] std::string parse_number_token() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' ||
          c == 'E') {
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) fail("expected a number");
    return std::string(text.substr(start, pos - start));
  }
  [[nodiscard]] double parse_double() {
    return std::strtod(parse_number_token().c_str(), nullptr);
  }
  [[nodiscard]] std::uint64_t parse_u64() {
    return std::strtoull(parse_number_token().c_str(), nullptr, 10);
  }
};

}  // namespace

std::string LogHistogram::to_json() const {
  std::string out = "{\"sub_bucket_bits\": ";
  append_number(out, std::uint64_t{options_.sub_bucket_bits});
  out += ", \"min_exponent\": ";
  append_number(out, static_cast<double>(options_.min_exponent));
  out += ", \"max_exponent\": ";
  append_number(out, static_cast<double>(options_.max_exponent));
  out += ", \"count\": ";
  append_number(out, count_);
  out += ", \"underflow\": ";
  append_number(out, underflow_);
  out += ", \"saturated\": ";
  append_number(out, saturated_);
  out += ", \"sum\": ";
  append_number(out, sum_);
  out += ", \"min\": ";
  append_number(out, min());
  out += ", \"max\": ";
  append_number(out, max());
  out += ", \"buckets\": {";
  bool first = true;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_number(out, static_cast<std::uint64_t>(i));
    out += "\": ";
    append_number(out, counts_[i]);
  }
  out += "}}";
  return out;
}

LogHistogram LogHistogram::from_json(std::string_view text) {
  Parser p{text};
  LogHistogramOptions options;
  std::uint64_t count = 0, underflow = 0, saturated = 0;
  double sum = 0.0, min_v = 0.0, max_v = 0.0;
  std::vector<std::pair<std::size_t, std::uint64_t>> sparse;
  p.expect('{');
  bool first = true;
  while (p.peek() != '}') {
    if (!first) p.expect(',');
    first = false;
    const std::string key = p.parse_string();
    p.expect(':');
    if (key == "sub_bucket_bits") {
      options.sub_bucket_bits = static_cast<unsigned>(p.parse_u64());
    } else if (key == "min_exponent") {
      options.min_exponent = static_cast<int>(p.parse_double());
    } else if (key == "max_exponent") {
      options.max_exponent = static_cast<int>(p.parse_double());
    } else if (key == "count") {
      count = p.parse_u64();
    } else if (key == "underflow") {
      underflow = p.parse_u64();
    } else if (key == "saturated") {
      saturated = p.parse_u64();
    } else if (key == "sum") {
      sum = p.parse_double();
    } else if (key == "min") {
      min_v = p.parse_double();
    } else if (key == "max") {
      max_v = p.parse_double();
    } else if (key == "buckets") {
      p.expect('{');
      bool first_bucket = true;
      while (p.peek() != '}') {
        if (!first_bucket) p.expect(',');
        first_bucket = false;
        const std::string index = p.parse_string();
        p.expect(':');
        sparse.emplace_back(std::strtoull(index.c_str(), nullptr, 10), p.parse_u64());
      }
      p.expect('}');
    } else {
      p.fail("unknown key");
    }
  }
  p.expect('}');
  LogHistogram out(options);
  for (const auto& [index, value] : sparse) {
    if (index >= out.counts_.size()) {
      throw std::runtime_error("LogHistogram::from_json: bucket index out of range");
    }
    out.counts_[index] = value;
  }
  out.count_ = count;
  out.underflow_ = underflow;
  out.saturated_ = saturated;
  out.sum_ = sum;
  if (count > 0) {
    out.min_ = min_v;
    out.max_ = max_v;
  }
  return out;
}

bool operator==(const LogHistogram& a, const LogHistogram& b) {
  if (!a.same_geometry(b)) return false;
  if (a.count_ != b.count_ || a.underflow_ != b.underflow_ ||
      a.saturated_ != b.saturated_) {
    return false;
  }
  // sum is deliberately excluded: it is an fp convenience aggregate whose
  // value depends on addition order (merge vs. sequential add), while the
  // bucketed state below is exactly order-independent.
  if (a.min() != b.min() || a.max() != b.max()) return false;
  return a.counts_ == b.counts_;
}

}  // namespace gc
