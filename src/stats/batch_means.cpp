#include "stats/batch_means.h"

#include <cmath>
#include <stdexcept>

#include "util/assert.h"

namespace gc {

BatchMeans::BatchMeans(std::size_t batch_size, std::size_t max_batches)
    : batch_size_(batch_size), max_batches_(max_batches) {
  if (batch_size == 0 || max_batches < 2) {
    throw std::invalid_argument("BatchMeans: need batch_size>0, max_batches>=2");
  }
}

void BatchMeans::add(double x) {
  all_.add(x);
  current_.add(x);
  if (current_.count() >= batch_size_) finish_batch();
}

void BatchMeans::finish_batch() {
  batch_means_.push_back(current_.mean());
  current_ = MeanVarAccumulator();
  if (batch_means_.size() >= max_batches_) {
    // Halve: merge adjacent batches, double the batch size.
    std::vector<double> merged;
    merged.reserve(batch_means_.size() / 2);
    for (std::size_t i = 0; i + 1 < batch_means_.size(); i += 2) {
      merged.push_back(0.5 * (batch_means_[i] + batch_means_[i + 1]));
    }
    batch_means_ = std::move(merged);
    batch_size_ *= 2;
  }
}

double BatchMeans::grand_mean() const noexcept { return all_.mean(); }

ConfidenceInterval BatchMeans::interval(double confidence) const {
  ConfidenceInterval ci;
  ci.mean = grand_mean();
  const std::size_t k = batch_means_.size();
  if (k < 2) {
    ci.half_width = std::numeric_limits<double>::infinity();
    return ci;
  }
  MeanVarAccumulator acc;
  for (const double m : batch_means_) acc.add(m);
  const double se = acc.stddev() / std::sqrt(static_cast<double>(k));
  ci.half_width = t_quantile(confidence, k - 1) * se;
  return ci;
}

double t_quantile(double confidence, std::size_t df) noexcept {
  // Small lookup for the common levels, then a large-df normal fallback
  // with the Cornish–Fisher-style df correction t ≈ z + (z^3+z)/(4 df).
  struct Entry {
    std::size_t df;
    double t90, t95, t99;
  };
  static constexpr Entry kTable[] = {
      {1, 6.314, 12.706, 63.657}, {2, 2.920, 4.303, 9.925}, {3, 2.353, 3.182, 5.841},
      {4, 2.132, 2.776, 4.604},   {5, 2.015, 2.571, 4.032}, {6, 1.943, 2.447, 3.707},
      {7, 1.895, 2.365, 3.499},   {8, 1.860, 2.306, 3.355}, {9, 1.833, 2.262, 3.250},
      {10, 1.812, 2.228, 3.169},  {15, 1.753, 2.131, 2.947},
      {20, 1.725, 2.086, 2.845},  {30, 1.697, 2.042, 2.750},
      {60, 1.671, 2.000, 2.660},  {120, 1.658, 1.980, 2.617}};

  const double z = confidence >= 0.989 ? 2.5758 : (confidence >= 0.949 ? 1.9600 : 1.6449);
  auto pick = [&](const Entry& e) {
    return confidence >= 0.989 ? e.t99 : (confidence >= 0.949 ? e.t95 : e.t90);
  };
  const Entry* below = nullptr;
  for (const Entry& e : kTable) {
    if (e.df == df) return pick(e);
    if (e.df < df) below = &e;
    if (e.df > df && below != nullptr) {
      // Interpolate in 1/df, which is nearly linear for t quantiles.
      const double x = 1.0 / static_cast<double>(df);
      const double x0 = 1.0 / static_cast<double>(below->df);
      const double x1 = 1.0 / static_cast<double>(e.df);
      const double w = (x - x0) / (x1 - x0);
      return pick(*below) * (1.0 - w) + pick(e) * w;
    }
  }
  const double d = static_cast<double>(df);
  return z + (z * z * z + z) / (4.0 * d);
}

}  // namespace gc
