#include "stats/distributions.h"

#include <cmath>
#include "util/format.h"
#include <stdexcept>

namespace gc {
namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

}  // namespace

Exponential::Exponential(double lambda) : lambda_(lambda) {
  require(lambda > 0.0 && std::isfinite(lambda), "Exponential: rate must be positive");
}

double Exponential::sample(Rng& rng) const noexcept {
  return -std::log(rng.uniform01_open_left()) / lambda_;
}

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  require(lo < hi && std::isfinite(lo) && std::isfinite(hi), "Uniform: need lo < hi");
}

double Uniform::sample(Rng& rng) const noexcept {
  return lo_ + (hi_ - lo_) * rng.uniform01();
}

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(sigma >= 0.0 && std::isfinite(mu) && std::isfinite(sigma),
          "Normal: sigma must be >= 0");
}

double Normal::sample(Rng& rng) const noexcept {
  // Polar method; expected ~1.27 iterations.
  for (;;) {
    const double u = 2.0 * rng.uniform01() - 1.0;
    const double v = 2.0 * rng.uniform01() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return mu_ + sigma_ * u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

LogNormal::LogNormal(double mu, double sigma) : normal_(mu, sigma), mu_(mu), sigma_(sigma) {}

double LogNormal::sample(Rng& rng) const noexcept { return std::exp(normal_.sample(rng)); }

double LogNormal::mean() const noexcept { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

BoundedPareto::BoundedPareto(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
  require(alpha > 0.0 && lo > 0.0 && hi > lo, "BoundedPareto: need alpha>0, 0<lo<hi");
}

double BoundedPareto::sample(Rng& rng) const noexcept {
  // Inverse-CDF for the truncated Pareto.
  const double u = rng.uniform01();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

double BoundedPareto::mean() const noexcept {
  if (alpha_ == 1.0) {
    return (std::log(hi_) - std::log(lo_)) * lo_ * hi_ / (hi_ - lo_);
  }
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return la / (1.0 - la / ha) * (alpha_ / (alpha_ - 1.0)) *
         (1.0 / std::pow(lo_, alpha_ - 1.0) - 1.0 / std::pow(hi_, alpha_ - 1.0));
}

Deterministic::Deterministic(double value) : value_(value) {
  require(value >= 0.0 && std::isfinite(value), "Deterministic: value must be >= 0");
}

Distribution Distribution::exponential(double rate) {
  return Distribution(Exponential(rate), gc::format("exp(rate={:g})", rate));
}

Distribution Distribution::deterministic(double value) {
  return Distribution(Deterministic(value), gc::format("det({:g})", value));
}

Distribution Distribution::uniform(double lo, double hi) {
  return Distribution(Uniform(lo, hi), gc::format("uniform[{:g},{:g})", lo, hi));
}

Distribution Distribution::lognormal(double mu, double sigma) {
  return Distribution(LogNormal(mu, sigma), gc::format("lognormal({:g},{:g})", mu, sigma));
}

Distribution Distribution::bounded_pareto(double alpha, double lo, double hi) {
  return Distribution(BoundedPareto(alpha, lo, hi),
                      gc::format("bpareto(a={:g},[{:g},{:g}])", alpha, lo, hi));
}

namespace {

// Multiplies every sample of a base distribution by a constant.
struct ScaledDistribution {
  Distribution base;
  double factor;
  [[nodiscard]] double sample(Rng& rng) const { return base.sample(rng) * factor; }
  [[nodiscard]] double mean() const { return base.mean() * factor; }
};

}  // namespace

Distribution Distribution::scaled(double factor) const {
  require(factor > 0.0 && std::isfinite(factor), "Distribution::scaled: factor > 0");
  return Distribution(ScaledDistribution{*this, factor},
                      gc::format("{:g}x {}", factor, name()));
}

Distribution Distribution::with_mean(double target_mean) const {
  require(target_mean > 0.0 && std::isfinite(target_mean),
          "Distribution::with_mean: target > 0");
  const double current = mean();
  require(current > 0.0, "Distribution::with_mean: base mean must be positive");
  return scaled(target_mean / current);
}

}  // namespace gc
