// Deterministic, splittable random number generation.
//
// Everything stochastic in GreenCluster is seeded explicitly.  SplitMix64
// turns a (seed, stream) pair into independent xoshiro256** states, so a
// parallel sweep can give task i stream i and be bitwise reproducible no
// matter how many worker threads execute it.
//
// References: Blackman & Vigna, "Scrambled linear pseudorandom number
// generators" (xoshiro256**); Steele et al. (SplitMix64).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace gc {

// SplitMix64 step: used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Derives the full state from (seed, stream) via SplitMix64 so that any
  // two distinct pairs give statistically independent sequences.
  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL,
               std::uint64_t stream = 0) noexcept {
    std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in (0, 1] — safe as an argument to log().
  [[nodiscard]] double uniform01_open_left() noexcept {
    return 1.0 - uniform01();
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  // The raw xoshiro256** state, for checkpoint/restore of deterministic
  // components (cp/snapshot.h).  A generator rebuilt via set_state()
  // continues the exact sequence the saved one would have produced.
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] const State& state() const noexcept { return state_; }
  void set_state(const State& s) noexcept { state_ = s; }

  // A child generator with an independent stream; `label` distinguishes
  // multiple children of the same parent.
  [[nodiscard]] Rng split(std::uint64_t label) noexcept {
    std::uint64_t sm = state_[0] ^ (0xd1342543de82ef95ULL * (label + 1));
    const std::uint64_t seed = splitmix64(sm);
    return Rng(seed, label);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

inline std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection loop has expected < 2 iterations for any bound.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace gc
