// Fixed-width histogram with under/overflow bins.
//
// Used for response-time distributions in reports and for goodness-of-fit
// style property tests of the variate generators.
#pragma once

#include <cstdint>
#include <vector>

namespace gc {

class Histogram {
 public:
  // Bins of equal width over [lo, hi); values outside land in the
  // underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t num_bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t num_bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lower(std::size_t i) const;
  [[nodiscard]] double bin_upper(std::size_t i) const;
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  // Fraction of in-range mass at or below the upper edge of bin i.
  [[nodiscard]] double cdf_at_bin(std::size_t i) const;

  // Approximate quantile by linear interpolation inside the bin containing
  // the target mass.  Requires total() > 0.
  [[nodiscard]] double quantile(double p) const;

  void merge(const Histogram& other);

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace gc
