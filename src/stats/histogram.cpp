#include "stats/histogram.h"

#include <cmath>
#include <stdexcept>

#include "util/assert.h"

namespace gc {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(num_bins)),
      counts_(num_bins, 0) {
  if (!(lo < hi) || num_bins == 0) {
    throw std::invalid_argument("Histogram: need lo < hi and num_bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge case at hi
  ++counts_[idx];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  GC_CHECK(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double Histogram::bin_lower(std::size_t i) const {
  GC_CHECK(i < counts_.size(), "bin index out of range");
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::bin_upper(std::size_t i) const { return bin_lower(i) + width_; }

double Histogram::cdf_at_bin(std::size_t i) const {
  GC_CHECK(i < counts_.size(), "bin index out of range");
  const std::uint64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b <= i; ++b) cum += counts_[b];
  return static_cast<double>(cum) / static_cast<double>(in_range);
}

double Histogram::quantile(double p) const {
  GC_CHECK(total_ > 0, "quantile of empty histogram");
  GC_CHECK(p >= 0.0 && p <= 1.0, "quantile: p out of range");
  const double target = p * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cum + static_cast<double>(counts_[b]);
    if (target <= next && counts_[b] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[b]);
      return bin_lower(b) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

void Histogram::merge(const Histogram& other) {
  GC_CHECK(counts_.size() == other.counts_.size() && lo_ == other.lo_ && hi_ == other.hi_,
           "merging incompatible histograms");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

}  // namespace gc
