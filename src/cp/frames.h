// Control-plane wire messages (DESIGN.md §12.1).
//
// The control plane is transport-agnostic: every driver — the in-process
// simulator adapter (sim/simulation.cpp), the artifact replayer
// (cp/replay.h, tools/gcreplay) and the socket feed (cp/wire.h) — speaks
// exactly two POD message types:
//
//   * TelemetryFrame — one fleet-state sample travelling controller-ward.
//     Over a degraded link it may arrive late, out of order (the facade
//     discards samples older than the newest delivered one) or never.
//   * CommandFrame — one actuation command travelling fleet-ward, stamped
//     with a per-kind generation (reorder/duplicate protection) and the
//     controller incarnation era that issued it (safe mode rejects
//     commands from dead incarnations).
//
// Both are flat PODs with no simulator types: this header must never
// include anything from sim/ (enforced by review; the layering test is
// that gc_cp links without gc_sim).
#pragma once

#include <cstdint>

namespace gc {

// A fleet-state sample as shipped over the telemetry link.  `sample_time`
// is when the fleet measured it, not when it arrives; the receiving facade
// derives the observation age from the difference.
struct TelemetryFrame {
  double sample_time = 0.0;
  // Arrivals / elapsed time over the short period ending at sample_time.
  double rate = 0.0;
  unsigned serving = 0;
  unsigned committed = 0;  // serving + booting
  unsigned powered = 0;
  unsigned available = 0;  // ground-truth servers not FAILED
  std::uint64_t jobs_in_system = 0;
};

// The two independent actuation lanes: the server-count target (VOVF) and
// the fleet frequency (DVFS).
enum class CommandKind : int { kTarget = 0, kSpeed = 1 };
inline constexpr int kNumCommandKinds = 2;
[[nodiscard]] const char* to_string(CommandKind kind) noexcept;

// One in-flight control command.  `gen` increases monotonically per kind;
// the fleet applies a delivered command only when its generation beats the
// last applied one, so retransmitted or reordered frames are idempotent.
// `era` stamps the controller incarnation (bumped on every controller
// recovery); the fleet's safe mode rejects commands from dead eras.
struct CommandFrame {
  CommandKind kind = CommandKind::kTarget;
  double value = 0.0;
  std::uint64_t gen = 0;
  std::uint32_t era = 0;
};

// Historical name used throughout the actuator/simulator pair; the wire
// message and the in-memory command are deliberately the same POD.
using Command = CommandFrame;

}  // namespace gc
