// Length-prefixed wire framing for the control plane (DESIGN.md §12.4).
//
// Driver (c): the same ControlPlane that the simulator and the artifact
// replayer drive in-process, fed over a byte stream — a UNIX socket in
// tools/gcreplay --serve, a socketpair in the tests.  The protocol is the
// proof that cp/ is genuinely transport-agnostic: nothing below this line
// knows it exists.
//
// Frame layout (all integers little-endian, doubles as IEEE-754 bit
// patterns in little-endian u64):
//
//   [u32 length][u8 type][payload]
//
// `length` counts the type byte plus the payload.  Four message types:
//
//   kTelemetry (1), fleet -> controller: one TelemetryFrame
//       f64 sample_time | f64 rate | u32 serving | u32 committed
//       | u32 powered | u32 available | u64 jobs_in_system          (40 B)
//   kTick (2), fleet -> controller: "run a control tick now"
//       f64 now | u8 long_tick | u8 safe_mode                       (10 B)
//   kCommand (3), controller -> fleet: one CommandFrame
//       u8 kind | f64 value | u64 gen | u32 era                     (21 B)
//   kAck (4), fleet -> controller: command acknowledgement
//       f64 now | u8 kind | u64 gen                                 (17 B)
//
// Since the CRC revision every frame may carry a 4-byte CRC-32 trailer
// over the type byte + payload:
//
//   [u32 length][u8 type][payload][u32 crc32]
//
// with `length` counting type + payload + trailer.  The decoder
// distinguishes the two layouts by length alone — each type has exactly
// two legal lengths (1+payload legacy, 1+payload+4 checksummed) — so old
// recordings replay unchanged while new traffic is integrity-checked.
// Encoders emit the trailer by default; pass WireCrc::kNone to produce
// legacy frames (compatibility tests, corpus generation).
//
// Decoding is strict by contract (same discipline as the config/trace
// parsers fuzzed in tests/test_config_fuzz): an unknown type, a length
// that does not match the type's fixed payload size, a length beyond
// kMaxFrameBytes, a non-finite double, an out-of-range enum, a non-0/1
// boolean byte or a CRC mismatch all throw WireError (WireCrcError for
// the checksum case, so transports can count it separately as
// cp.wire.crc_errors).  Malformed input is rejected, never clamped or
// skipped — and a throw never leaves the decoder mid-frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>

#include "cp/frames.h"
#include "obs/counters.h"

namespace gc {

class ControlPlane;

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// A frame whose CRC-32 trailer does not match its contents.  Subclass of
// WireError so strict callers need no new catch sites; transports that
// meter integrity separately catch this first.
class WireCrcError : public WireError {
 public:
  using WireError::WireError;
};

// Whether an encoder appends the CRC-32 trailer.  kCrc32 is the default
// everywhere; kNone exists for legacy-compatibility tests and for
// generating pre-CRC corpus artifacts.
enum class WireCrc { kNone, kCrc32 };

enum class WireMsgType : std::uint8_t {
  kTelemetry = 1,
  kTick = 2,
  kCommand = 3,
  kAck = 4,
};

// Largest legal frame (length prefix excluded).  Anything bigger is a
// corrupt or hostile stream and is rejected before buffering.
inline constexpr std::uint32_t kMaxFrameBytes = 64;

struct TickMsg {
  double now = 0.0;
  bool long_tick = false;
  bool safe_mode = false;
};

struct AckWireMsg {
  double now = 0.0;
  CommandKind kind = CommandKind::kTarget;
  std::uint64_t gen = 0;
};

// One decoded message; `type` selects the live member.
struct WireMessage {
  WireMsgType type = WireMsgType::kTelemetry;
  TelemetryFrame telemetry;
  TickMsg tick;
  CommandFrame command;
  AckWireMsg ack;
};

// -- Encoding ----------------------------------------------------------------

void append_telemetry_frame(std::string& buf, const TelemetryFrame& frame,
                            WireCrc crc = WireCrc::kCrc32);
void append_tick_frame(std::string& buf, const TickMsg& tick,
                       WireCrc crc = WireCrc::kCrc32);
void append_command_frame(std::string& buf, const CommandFrame& cmd,
                          WireCrc crc = WireCrc::kCrc32);
void append_ack_frame(std::string& buf, const AckWireMsg& ack,
                      WireCrc crc = WireCrc::kCrc32);

// -- Decoding ----------------------------------------------------------------

// Incremental decoder over an arbitrary chunking of the byte stream: feed()
// appends raw bytes, next() yields complete messages until the buffer runs
// dry.  Throws WireError on any malformed frame; the decoder is then
// poisoned (every later call throws) — a corrupt stream has no trustworthy
// resynchronization point in a length-prefixed protocol.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t n);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  // Next complete message, or nullopt when the buffer holds only a partial
  // frame (feed more).  Throws WireError on malformed input.
  [[nodiscard]] std::optional<WireMessage> next();

  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
  // Frames decoded with a verified CRC trailer since construction.
  [[nodiscard]] std::uint64_t crc_frames() const noexcept { return crc_frames_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  std::uint64_t crc_frames_ = 0;
  bool poisoned_ = false;
};

// -- The socket feed ---------------------------------------------------------

struct WireServeStats {
  std::uint64_t telemetry = 0;
  std::uint64_t ticks = 0;
  std::uint64_t acks = 0;
  std::uint64_t commands_sent = 0;  // fresh + retransmissions
  std::uint64_t crc_errors = 0;     // frames rejected by the CRC trailer
  // Frames rejected for any other malformation (bad length/type/enum/
  // boolean, non-finite double, mid-frame EOF, a command arriving
  // controller-ward).  crc_errors and decode_errors are disjoint; together
  // they are every rejected frame this connection saw.
  std::uint64_t decode_errors = 0;

  // The serve loop's accept/reject ledger as registry-style counters
  // (`cp.wire.accepted.<type>`, `cp.wire.commands_sent`,
  // `cp.wire.crc_errors`, `cp.wire.decode_errors`) for merging into a
  // run's counter snapshot next to the facade's cp.* namespace.
  [[nodiscard]] CountersSnapshot counters_snapshot() const;
};

// Observation points on the serve loop, used by durable transports: the
// chaos harness appends every accepted inbound message to its WAL and cuts
// snapshots on tick boundaries from here, without the wire layer knowing
// what durability is.
struct WireHooks {
  // After an inbound message is routed into the facade (telemetry
  // delivered, tick run, ack applied).  For ticks the hook fires *after*
  // the decision's commands were written back.
  std::function<void(const WireMessage&)> on_accepted;
};

// Serves one connection on a byte-stream fd (UNIX socket, socketpair,
// pipe): reads frames, routes kTelemetry -> accept_telemetry, kTick ->
// on_tick (writing the decision's command frames back), kAck -> on_ack.
// Returns when the peer closes the stream cleanly between frames.  Throws
// WireError on malformed input or a mid-frame EOF, std::runtime_error on
// I/O errors.  A kCommand arriving controller-ward is malformed (commands
// only ever travel fleet-ward).
WireServeStats serve_connection(ControlPlane& cp, int fd);

// In-place variant: `stats` is updated as frames are processed, so the
// counts (including crc_errors) survive a mid-stream throw — the chaos
// harness and the CI drift gate read them after a deliberately poisoned
// connection.  `hooks` may be null.
void serve_connection(ControlPlane& cp, int fd, WireServeStats& stats,
                      const WireHooks* hooks);

}  // namespace gc
