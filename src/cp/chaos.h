// Wire-level chaos harness for the control plane (DESIGN.md §13.4).
//
// The wire feed (cp/wire.h) claims the facade survives a hostile
// transport: duplicated and reordered frames are absorbed by newest-wins
// telemetry and generation-checked acks, corruption is caught by the CRC
// trailer, and a crashed controller comes back bit-identical from its
// checkpoint + WAL.  This harness *proves* it, deterministically: a
// seeded schedule of wire faults is injected into a real socketpair
// serve loop, and the resulting command stream is compared — exact
// doubles, generations and eras — against a clean in-process oracle run.
//
// Fault model, one op per input-record index ("<op>@<index>,..."):
//
//   drop@N      record N is never delivered (semantic loss — the oracle
//               run excludes it too, the *surviving* traffic must agree)
//   dup@N       record N delivered twice back-to-back (telemetry/ack
//               only; duplicating a tick is two ticks, not a wire fault)
//   reorder@N   a stale duplicate of record N arrives after record N+1
//   corrupt@N   record N's frame has one random byte flipped; the CRC
//               trailer rejects it, the connection is torn down and N is
//               resent on a fresh one
//   truncate@N  record N's frame is cut short and the connection closed
//               mid-frame; reconnect and resend N
//   kill@N      the controller process "dies" after record N: the facade
//               is destroyed and rebuilt from its latest snapshot plus
//               WAL replay, then traffic resumes at N+1
//
// Every fault but drop must be invisible in the command stream: the
// harness reports cp.drift.mismatches (gated <= 0 by ci/check.sh chaos)
// plus per-op injection counters under cp.chaos.*.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cp/control_plane.h"
#include "cp/lifecycle.h"
#include "cp/wire.h"
#include "obs/counters.h"

namespace gc {

enum class ChaosOp { kDrop, kDup, kReorder, kCorrupt, kTruncate, kKill };
[[nodiscard]] const char* to_string(ChaosOp op) noexcept;

struct ChaosEvent {
  ChaosOp op = ChaosOp::kDrop;
  std::uint64_t index = 0;  // input-record index the op fires at
};

// Parses "drop@3,kill@10" (ops: drop dup reorder corrupt truncate kill).
// Strict: unknown op, missing '@', non-numeric index or two ops on the
// same index all throw std::invalid_argument.
[[nodiscard]] std::vector<ChaosEvent> parse_chaos_schedule(std::string_view text);

struct ChaosOptions {
  std::vector<ChaosEvent> events;
  // Seeds the corrupt/truncate byte choices — the whole run is a
  // deterministic function of (inputs, schedule, seed).
  std::uint64_t seed = 1;
  // Snapshot cadence in facade ticks; the WAL truncates at each cut.
  std::uint64_t checkpoint_every = 64;

  void validate() const;  // throws std::invalid_argument
};

struct ChaosReport {
  std::uint64_t inputs = 0;    // records in the schedule's input sequence
  std::uint64_t episodes = 0;  // connections used (1 + every teardown)
  std::uint64_t kills = 0;
  std::uint64_t drops = 0;
  std::uint64_t dups = 0;
  std::uint64_t reorders = 0;
  std::uint64_t corrupts = 0;
  std::uint64_t truncates = 0;
  // dup/reorder scheduled on a tick record: skipped, not injected (a
  // duplicated tick is a second tick — a different trajectory, not a
  // transport fault).
  std::uint64_t skipped_on_tick = 0;
  std::uint64_t commands_chaos = 0;  // command frames the wire run emitted
  std::uint64_t commands_clean = 0;  // command frames the oracle emitted
  std::uint64_t crc_errors = 0;      // frames the CRC trailer rejected
  std::uint64_t drift_mismatches = 0;
  // First few divergences, rendered for the failure report.
  std::vector<std::string> mismatch_samples;
  // Frame-level drop attribution (cp/lifecycle.h): every frame the
  // schedule consumed — dropped outright, CRC-rejected after a corrupt,
  // torn down mid-frame after a truncate — charged to (frame type, op).
  // Invariant: attribution.total() == drops + corrupts + truncates.
  DropAttribution attribution;
  // The serve loop's whole-run accept/reject ledger, summed over every
  // connection episode (cp.wire.accepted.*, crc/decode errors).
  WireServeStats wire;

  [[nodiscard]] bool clean() const noexcept { return drift_mismatches == 0; }
  // cp.chaos.* + cp.drift.* + cp.drop.* + cp.wire.* counters for
  // OUT.counters.json / gcinspect.
  [[nodiscard]] CountersSnapshot counters_snapshot() const;
};

// Builds fresh policy controllers: the kill op needs to construct the
// reborn facade from scratch before restoring it.
using ControllerFactory = std::function<std::unique_ptr<Controller>()>;

// Runs the chaos schedule over `inputs` (telemetry/tick/ack messages in
// delivery order; kCommand entries are invalid) against a facade served
// on real socketpairs, then scores the collected command stream against
// a clean in-process oracle over the post-drop sequence.  `actuator_rng`
// seeds the facade's actuator jitter — both runs use identical seeds, so
// jitter cancels out of the comparison.  Throws std::invalid_argument on
// bad inputs and propagates unexpected transport errors.
ChaosReport run_chaos(const std::vector<WireMessage>& inputs,
                      const ControllerFactory& make_controller,
                      const ControlPlaneOptions& options, Rng actuator_rng,
                      const ChaosOptions& chaos);

}  // namespace gc
