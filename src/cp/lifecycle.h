// Causal lifecycle tracking for the control loop (DESIGN.md §14).
//
// Every frame the management plane moves already carries, or can derive, a
// deterministic identity from existing monotone counters — no RNG, no
// event-queue footprint, nothing on the wire changes:
//
//   command   id = (gen << 1) | kind      (per-lane generation, cp/frames.h)
//   telemetry id = send-site sequence     (next_frame_id(kTelemetry))
//   ack       id = send-site sequence     (next_frame_id(kAck))
//   tick      id = facade tick count      (cp.ticks)
//
// On top of that identity the LifecycleTracker records the full state
// machine of every command:
//
//   issued ──sent──> (retransmitted ×N) ──acked/applied──> completed
//      │                                         terminal: superseded
//      └────────────────────────────────────────terminal: reconciled
//
// "superseded" — a newer command of the same kind replaced it before an
// ack; "reconciled" — the actuator's retry budget was spent and the
// controller fell back to the last acknowledged value.  Per-stage latency
// LogHistograms (decision→ack, decision→apply, ack↔apply skew, end-to-end,
// telemetry age at decision) and drop attribution (every consumed frame
// charged to the link or chaos op that ate it: cp.drop.<frame>.<cause>)
// feed SimResult, Prometheus and the `gcinspect --lifecycle` view.
//
// Determinism contract: the tracker is strictly observational.  It never
// draws randomness, never schedules events, and is deliberately excluded
// from ControlPlane::snapshot()/restore() — attaching it cannot perturb a
// policy decision, a retry instant or a golden checksum.  All of its
// counters are deterministic functions of the (deterministic) event
// sequence, so they stay bit-identical across reruns and across sharded
// K (test_sharded_determinism compares full counter snapshots).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "cp/frames.h"
#include "obs/counters.h"
#include "obs/prometheus.h"
#include "stats/log_histogram.h"

namespace gc {

class TraceCollector;  // obs/trace.h

// The four frame populations that cross the management plane, for drop
// attribution.  (Commands and acks travel opposite directions; the matrix
// does not care.)
enum class FrameClass : int { kTelemetry = 0, kTick = 1, kCommand = 2, kAck = 3 };
inline constexpr int kNumFrameClasses = 4;
[[nodiscard]] const char* to_string(FrameClass fc) noexcept;

// What consumed a frame that never reached its application layer.
enum class DropCause : int {
  kChannel = 0,     // sim/control_channel loss draw
  kChaosDrop,       // cp/chaos drop@N
  kChaosCorrupt,    // cp/chaos corrupt@N (CRC trailer rejected the frame)
  kChaosTruncate,   // cp/chaos truncate@N (stream cut mid-frame)
  kWireCrc,         // CRC rejection outside a chaos schedule
};
inline constexpr int kNumDropCauses = 5;
[[nodiscard]] const char* to_string(DropCause cause) noexcept;

// Deterministic command lifecycle id: the per-lane generation is already
// monotone and already on the wire, so (gen, kind) needs no new state.
[[nodiscard]] constexpr std::uint64_t command_lifecycle_id(
    CommandKind kind, std::uint64_t gen) noexcept {
  return (gen << 1) | static_cast<std::uint64_t>(static_cast<int>(kind));
}

// FrameClass × DropCause attribution matrix.  The invariant the chaos and
// channel tests gate on: total() equals the sum of every cell, and every
// consumed frame is charged exactly once — so attribution counters sum
// exactly to total drops.
class DropAttribution {
 public:
  void charge(FrameClass fc, DropCause cause, std::uint64_t n = 1) noexcept {
    cells_[static_cast<int>(fc)][static_cast<int>(cause)] += n;
  }
  [[nodiscard]] std::uint64_t count(FrameClass fc, DropCause cause) const noexcept {
    return cells_[static_cast<int>(fc)][static_cast<int>(cause)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept;
  // Emits `cp.drop.<frame>.<cause>` for every non-zero cell (deterministic
  // enum order) plus the always-present `cp.drop.total`.
  void counters_into(CountersSnapshot& snap) const;
  void clear() noexcept;

 private:
  std::uint64_t cells_[kNumFrameClasses][kNumDropCauses] = {};
};

// One command's reconstructed timeline, exported per-record to
// <prefix>.lifecycle.jsonl and consumed by `gcinspect --lifecycle`.
struct CommandLifecycle {
  enum class State : int {
    kInFlight = 0,   // issued, terminal outcome not yet known
    kCompleted,      // every expected confirmation (ack/apply) arrived
    kSuperseded,     // replaced by a newer same-kind command before an ack
    kReconciled,     // retry budget exhausted; controller fell back to acked
  };

  CommandKind kind = CommandKind::kTarget;
  std::uint64_t gen = 0;
  std::uint32_t era = 0;
  double value = 0.0;
  double issued_s = 0.0;
  double obs_age_s = 0.0;      // telemetry age at the issuing decision
  unsigned retransmits = 0;
  unsigned frame_drops = 0;    // wire copies of this command eaten en route
  double last_sent_s = 0.0;    // issue or latest retransmission
  double acked_s = -1.0;       // -1 = never acknowledged
  double applied_s = -1.0;     // -1 = never (reported) applied
  State state = State::kInFlight;

  [[nodiscard]] std::uint64_t id() const noexcept {
    return command_lifecycle_id(kind, gen);
  }
};
[[nodiscard]] const char* to_string(CommandLifecycle::State state) noexcept;

class LifecycleTracker {
 public:
  LifecycleTracker() = default;

  // Optional Chrome trace sink: one async 'b'/'e' lane per in-flight
  // command (cat "cp.lifecycle", id = truncated lifecycle id) plus instant
  // markers for retransmits/supersessions/reconciliations.  Null detaches.
  void set_trace(TraceCollector* trace) noexcept { trace_ = trace; }

  // Which confirmations a command needs before it counts as completed.
  // The facade sets expect_acks from ActuatorOptions::enabled; the driver
  // opts into expect_applies when it reports fleet-side applies (the sim
  // adapter does, the replay/wire drivers cannot).
  void set_expect_acks(bool v) noexcept { expect_acks_ = v; }
  void set_expect_applies(bool v) noexcept { expect_applies_ = v; }

  // -- command state transitions --------------------------------------------
  void on_issued(double now, const CommandFrame& frame, double obs_age_s);
  void on_retransmit(double now, const CommandFrame& frame);
  void on_acked(double now, CommandKind kind, std::uint64_t gen);
  // Driver-reported fleet-side application of (kind, gen).
  void on_applied(double now, CommandKind kind, std::uint64_t gen);
  // The actuator gave up on this lane (budget exhausted, reconciled to
  // acked state).  Idempotent; call whenever the lane has no outstanding
  // command.
  void on_lane_reconciled(double now, CommandKind kind);

  // -- frame-level drop attribution -----------------------------------------
  void on_frame_dropped(FrameClass fc, DropCause cause) {
    attribution_.charge(fc, cause);
  }
  // Command drops additionally tally on the per-command record.
  void on_command_frame_dropped(double now, const CommandFrame& frame,
                                DropCause cause);
  // Per-class monotone send sequence — the lifecycle id of telemetry/ack
  // frames (commands derive theirs from (gen, kind) instead).
  std::uint64_t next_frame_id(FrameClass fc) noexcept {
    return ++frame_seq_[static_cast<int>(fc)];
  }

  // Closes every still-open record (state preserved: a record that never
  // confirmed stays "in-flight" in the export).  Call once at end of run
  // before records()/export_jsonl().
  void finalize_all(double now);

  // All records, closed and open, ordered by (issued_s, id).
  [[nodiscard]] std::vector<CommandLifecycle> records() const;
  // One JSON object per record, the `gcinspect --lifecycle` input.
  // (write_lifecycle_jsonl below renders an already-extracted vector — the
  // benches keep records in SimResult, not the tracker.)
  void export_jsonl(std::ostream& os) const;

  // -- read-out --------------------------------------------------------------
  [[nodiscard]] const DropAttribution& attribution() const noexcept {
    return attribution_;
  }
  [[nodiscard]] const LogHistogram& ack_latency() const noexcept { return ack_latency_; }
  [[nodiscard]] const LogHistogram& apply_latency() const noexcept {
    return apply_latency_;
  }
  [[nodiscard]] const LogHistogram& ack_to_apply() const noexcept {
    return ack_to_apply_;
  }
  [[nodiscard]] const LogHistogram& e2e_latency() const noexcept { return e2e_; }
  [[nodiscard]] const LogHistogram& obs_age() const noexcept { return obs_age_; }
  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }
  [[nodiscard]] std::uint64_t retransmits() const noexcept { return retransmits_; }
  [[nodiscard]] std::uint64_t acked() const noexcept { return acked_; }
  [[nodiscard]] std::uint64_t applied() const noexcept { return applied_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t superseded() const noexcept { return superseded_; }
  [[nodiscard]] std::uint64_t reconciled() const noexcept { return reconciled_; }
  // Acks/applies for commands no longer in flight (stale duplicates, or a
  // restored facade seeing pre-crash confirmations).
  [[nodiscard]] std::uint64_t late_events() const noexcept { return late_events_; }

  // cp.lifecycle.* counters, `cp.lifecycle.<stage>:<quantile>` gauges (the
  // literal names ci/check.sh gates through gcinspect) and cp.drop.*.
  void counters_into(CountersSnapshot& snap) const;
  // The per-stage histograms named for Prometheus exposition, e.g.
  // cp.lifecycle.ack_latency_seconds — pass to to_prometheus_text().
  [[nodiscard]] std::vector<PrometheusHistogram> prometheus_histograms() const;

  void clear() noexcept;

 private:
  // Open records per lane, keyed by generation.  Records stay here after a
  // terminal supersede/reconcile so late acks/applies still land on the
  // right timeline; completion (or finalize_all) moves them to done_.
  using LaneMap = std::map<std::uint64_t, CommandLifecycle>;

  void maybe_complete(LaneMap& lane, LaneMap::iterator it, double now);
  void close(LaneMap& lane, LaneMap::iterator it);
  void end_span(double now, const CommandLifecycle& rec);

  TraceCollector* trace_ = nullptr;
  bool expect_acks_ = false;
  bool expect_applies_ = false;
  LaneMap open_[kNumCommandKinds];
  std::vector<CommandLifecycle> done_;
  std::uint64_t max_records_ = 1u << 20;  // eviction backstop for soak runs
  std::uint64_t evicted_ = 0;
  std::uint64_t frame_seq_[kNumFrameClasses] = {};
  DropAttribution attribution_;
  LogHistogram ack_latency_;
  LogHistogram apply_latency_;
  LogHistogram ack_to_apply_;
  LogHistogram e2e_;
  LogHistogram obs_age_;
  std::uint64_t issued_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t superseded_ = 0;
  std::uint64_t reconciled_ = 0;
  std::uint64_t late_events_ = 0;
};

// Renders a record vector in the export_jsonl format — used by the benches
// to write `<prefix>.lifecycle.jsonl` from SimResult::command_lifecycles.
void write_lifecycle_jsonl(std::ostream& os,
                           const std::vector<CommandLifecycle>& records);

}  // namespace gc
