// The controller interface of the control plane (DESIGN.md §12).
//
// A Controller is a pure policy: it observes a ControlContext at each
// short/long tick and returns a ControlAction.  It holds no transport,
// clock or fleet state of its own — everything it knows arrives through
// the context — which is what makes the identical binary logic drivable
// by the simulator, by recorded artifacts replayed at 1000×, or by a live
// socket feed (the three drivers of cp/control_plane.h).
//
// Historically these types lived in sim/simulation.h; they moved here so
// control/ no longer depends on simulator types.  sim/simulation.h still
// re-exports them (it includes this header), so existing code compiles
// unchanged.  This header must not include anything from sim/.
#pragma once

#include <cstddef>
#include <optional>

namespace gc {

// What the controller observes at a tick.  With the control channel
// disabled this is the instantaneous ground truth; with it enabled the
// fleet fields come from the newest *delivered* telemetry sample, which
// may be stale (see obs_age_s) or missing updates the channel dropped.
struct ControlContext {
  double now = 0.0;
  // Arrivals / elapsed time since the previous short tick (as sampled at
  // the telemetry source; see obs_age_s for how old that sample is).
  double measured_rate = 0.0;
  unsigned serving = 0;
  unsigned committed = 0;  // serving + booting
  unsigned powered = 0;
  // Ground-truth servers not FAILED; failure-aware controllers run their
  // own (delayed) detector over this signal.
  unsigned available = 0;
  std::size_t jobs_in_system = 0;
  // Age of the newest delivered telemetry sample (now - sample time); 0
  // when the channel is disabled or perfect.
  double obs_age_s = 0.0;
  // The fleet is currently running the watchdog's safe static fallback.
  bool safe_mode = false;
  // Last fleet state confirmed by the actuator's ack protocol; unset
  // before the first ack or when the actuator is disabled.  This is what
  // "re-plan from acked state" plans against.
  std::optional<unsigned> acked_target;
  std::optional<double> acked_speed;
};

// Planning internals behind a ControlAction, filled by the controllers for
// the decision audit log (obs/audit.h).  Purely observational: the
// simulation never branches on these.  Fields a policy has no notion of
// stay 0 (e.g. NPM has no predictor, only failure-aware has a detector).
struct ControlExplain {
  double predicted_rate = 0.0;   // predictor output over the planning horizon
  double planning_rate = 0.0;    // rate handed to the solver (after margin)
  double safety_margin = 0.0;    // margin applied (after any spare relief)
  unsigned planned_servers = 0;  // solver m before hysteresis/retry gating
  unsigned detected_available = 0;  // failure detector's fleet view
  // -- reliability-constrained provisioning (appended fields) ----------------
  // Solved spare count of the standing ReliablePlan; -1 for policies with
  // no notion of solved spares (everything but dcp-reliability).
  int solved_spares = -1;
  // Closed-form fleet availability A(planned m, spares) of that plan.
  double availability_est = 0.0;
  // core/reliability.h BindingConstraint as an integer (0 none, 1 latency,
  // 2 availability, 3 capacity): which constraint pinned the plan.
  unsigned binding_constraint = 0;
};

// What the controller requests.  Unset fields mean "leave unchanged".
struct ControlAction {
  std::optional<unsigned> active_target;
  std::optional<double> speed;
  // The policy determined the guarantee is unachievable at the current
  // capacity (solver infeasibility); recorded in SimResult and used to
  // drive admission control.
  bool infeasible = false;
  ControlExplain explain;
};

class SnapshotWriter;  // cp/snapshot.h
class SnapshotReader;

// Implemented by the policies in control/policies.h.  Kept free of solver
// and simulator dependencies so every driver can link it.
class Controller {
 public:
  virtual ~Controller() = default;
  [[nodiscard]] virtual double short_period_s() const = 0;
  [[nodiscard]] virtual double long_period_s() const = 0;
  [[nodiscard]] virtual ControlAction on_short_tick(const ControlContext& ctx) = 0;
  [[nodiscard]] virtual ControlAction on_long_tick(const ControlContext& ctx) = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  // Crash-recovery hooks (DESIGN.md §13): serialize / restore every field
  // that influences a future decision — predictor histories, hysteresis
  // streaks, detector windows, retry gates.  The defaults are no-ops,
  // correct for stateless policies (NPM, combined-single) and for test
  // stubs; any policy holding mutable decision state must override both,
  // reading fields back in exactly the order it wrote them.  load_state
  // throws SnapshotError (via the reader) on malformed input.
  virtual void save_state(SnapshotWriter& w) const { (void)w; }
  virtual void load_state(SnapshotReader& r) { (void)r; }
};

}  // namespace gc
