#include "cp/replay.h"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "util/format.h"

namespace gc {

void ReplayOptions::validate() const {
  if (!std::isfinite(speedup)) {
    throw std::invalid_argument("ReplayOptions: speedup must be finite");
  }
  if (max_reported == 0) {
    throw std::invalid_argument("ReplayOptions: max_reported must be >= 1");
  }
}

ReplayEngine::ReplayEngine(ControlPlane& cp, const ReplayOptions& options,
                           SleepFn sleep)
    : cp_(&cp), options_(options), sleep_(std::move(sleep)) {
  options_.validate();
  if (!sleep_) {
    sleep_ = [](double wall_s) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wall_s));
    };
  }
}

void ReplayEngine::note(const AuditRecord& rec, std::uint64_t tick,
                        const char* field, double expected, double actual) {
  ++stats_.mismatches;
  if (stats_.first_mismatch_s < 0.0) stats_.first_mismatch_s = rec.time_s;
  if (stats_.samples.size() < options_.max_reported) {
    ReplayMismatch m;
    m.tick = tick;
    m.time_s = rec.time_s;
    m.field = field;
    m.expected = expected;
    m.actual = actual;
    stats_.samples.push_back(std::move(m));
  }
}

bool ReplayEngine::feed(const AuditRecord& rec) {
  const std::uint64_t tick = stats_.ticks;

  // The record *is* the delivered telemetry the tick planned on: rebuild
  // the frame the controller box held, stamped at its original sample time
  // so the replayed obs_age_s reproduces exactly.
  TelemetryFrame frame;
  frame.sample_time = rec.time_s - rec.obs_age_s;
  frame.rate = rec.observed_rate;
  frame.serving = rec.serving;
  frame.committed = rec.committed;
  frame.powered = rec.powered;
  frame.available = rec.available;
  frame.jobs_in_system = rec.jobs_in_system;
  cp_->accept_telemetry(frame);

  const ControlPlane::Decision d =
      cp_->on_tick(rec.time_s, rec.long_tick, rec.safe_mode);
  ++stats_.ticks;
  if (rec.long_tick) ++stats_.long_ticks;
  if (!have_time_) {
    first_time_s_ = rec.time_s;
    have_time_ = true;
  }
  last_time_s_ = rec.time_s;
  stats_.replayed_span_s = last_time_s_ - first_time_s_;

  // Exact-double comparison is intentional: both sides are the outputs of
  // the same deterministic code on the same inputs, and the jsonl round
  // trip is bit-exact.  Tolerances would let real drift hide.
  const std::uint64_t before = stats_.mismatches;
  if (d.action.active_target.has_value() != rec.target_set) {
    note(rec, tick, "target_set", rec.target_set ? 1.0 : 0.0,
         d.action.active_target.has_value() ? 1.0 : 0.0);
  } else if (rec.target_set) {
    const unsigned target = *d.action.active_target;
    if (target != rec.target_servers) {
      note(rec, tick, "target_servers", static_cast<double>(rec.target_servers),
           static_cast<double>(target));
    }
    const int delta =
        static_cast<int>(target) - static_cast<int>(d.ctx.committed);
    if (delta != rec.delta_servers) {
      note(rec, tick, "delta_servers", static_cast<double>(rec.delta_servers),
           static_cast<double>(delta));
    }
  }
  if (d.action.speed.has_value() != rec.speed_set) {
    note(rec, tick, "speed_set", rec.speed_set ? 1.0 : 0.0,
         d.action.speed.has_value() ? 1.0 : 0.0);
  } else if (rec.speed_set && *d.action.speed != rec.speed) {
    note(rec, tick, "speed", rec.speed, *d.action.speed);
  }
  if (d.action.infeasible != rec.infeasible) {
    note(rec, tick, "infeasible", rec.infeasible ? 1.0 : 0.0,
         d.action.infeasible ? 1.0 : 0.0);
  }
  const bool diverged = stats_.mismatches != before;
  return !(diverged && options_.fail_fast);
}

ReplayStats ReplayEngine::run(const DecisionAuditLog& log) {
  bool paced = options_.speedup > 0.0;
  double prev_t = 0.0;
  bool have_prev = false;
  for (const AuditRecord& rec : log.records()) {
    if (paced && have_prev) {
      const double dt = rec.time_s - prev_t;
      if (dt > 0.0) sleep_(dt / options_.speedup);
    }
    prev_t = rec.time_s;
    have_prev = true;
    if (!feed(rec)) break;
  }
  return stats_;
}

CountersSnapshot ReplayEngine::counters_snapshot() const {
  CountersSnapshot snap = cp_->counters_snapshot();
  snap.add_counter("cp.drift.ticks", stats_.ticks);
  snap.add_counter("cp.drift.mismatches", stats_.mismatches);
  snap.add_gauge("cp.drift.first_mismatch_s", stats_.first_mismatch_s);
  snap.add_gauge("cp.drift.replayed_span_s", stats_.replayed_span_s);
  return snap;
}

void validate_timeseries(const CsvTable& table, const DecisionAuditLog* audit) {
  const int t_col = table.column_index("t");
  if (t_col < 0) {
    throw std::runtime_error("timeseries: missing required column 't'");
  }
  if (table.header.empty() || table.rows.empty()) {
    throw std::runtime_error("timeseries: empty table");
  }
  double prev_t = 0.0;
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const std::vector<double>& row = table.rows[r];
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (!std::isfinite(row[c])) {
        throw std::runtime_error(
            format("timeseries: non-finite cell at row {} column '{}'", r + 1,
                   table.header[c]));
      }
    }
    const double t = row[static_cast<std::size_t>(t_col)];
    if (r > 0 && t <= prev_t) {
      throw std::runtime_error(format(
          "timeseries: time warp at row {} (t={} after t={})", r + 1, t, prev_t));
    }
    prev_t = t;
  }
  if (audit != nullptr && !audit->empty()) {
    const double audit_first = audit->records().front().time_s;
    const double audit_last = audit->records().back().time_s;
    const double ts_first = table.rows.front()[static_cast<std::size_t>(t_col)];
    const double ts_last = table.rows.back()[static_cast<std::size_t>(t_col)];
    if (ts_first < audit_first || ts_last > audit_last) {
      throw std::runtime_error(
          format("timeseries: time range [{}, {}] outside audit span [{}, {}]",
                 ts_first, ts_last, audit_first, audit_last));
    }
  }
}

}  // namespace gc
