#include "cp/control_plane.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "cp/snapshot.h"
#include "obs/prometheus.h"

namespace gc {

void ControlPlaneOptions::validate() const {
  actuator.validate();
  if (staleness.horizon_s < 0.0) {
    throw std::invalid_argument("ControlPlaneOptions: staleness horizon must be >= 0");
  }
  if (!(rate_ewma_alpha > 0.0) || rate_ewma_alpha > 1.0) {
    throw std::invalid_argument(
        "ControlPlaneOptions: rate_ewma_alpha must be in (0, 1]");
  }
}

ControlPlane::ControlPlane(Controller& controller,
                           const ControlPlaneOptions& options, Rng rng)
    : owned_(nullptr),
      controller_(&controller),
      options_(options),
      actuator_((options.validate(), options.actuator), std::move(rng)),
      rate_ewma_(options.rate_ewma_alpha),
      staleness_(options.staleness) {
  lifecycle_.set_expect_acks(options.actuator.enabled);
}

ControlPlane::ControlPlane(std::unique_ptr<Controller> controller,
                           const ControlPlaneOptions& options, Rng rng)
    : owned_(std::move(controller)),
      controller_(owned_.get()),
      options_(options),
      actuator_((options.validate(), options.actuator), std::move(rng)),
      rate_ewma_(options.rate_ewma_alpha),
      staleness_(options.staleness) {
  if (controller_ == nullptr) {
    throw std::invalid_argument("ControlPlane: null controller");
  }
  lifecycle_.set_expect_acks(options.actuator.enabled);
}

void ControlPlane::seed_observation(const TelemetryFrame& frame) noexcept {
  latest_ = frame;
}

void ControlPlane::accept_telemetry(const TelemetryFrame& frame) noexcept {
  // Reordered deliveries (an older sample overtaken by a newer one) are
  // discarded: the controller only ever moves forward in time.
  if (frame.sample_time >= latest_.sample_time) {
    latest_ = frame;
    ++telemetry_accepted_;
    rate_ewma_.observe(frame.rate);
  } else {
    ++telemetry_stale_discarded_;
  }
}

ControlContext ControlPlane::make_context(double now, bool safe_mode) const {
  ControlContext ctx;
  ctx.now = now;
  ctx.measured_rate = latest_.rate;
  ctx.serving = latest_.serving;
  ctx.committed = latest_.committed;
  ctx.powered = latest_.powered;
  ctx.available = latest_.available;
  ctx.jobs_in_system = static_cast<std::size_t>(latest_.jobs_in_system);
  ctx.obs_age_s = now - latest_.sample_time;
  ctx.safe_mode = safe_mode;
  if (const auto v = actuator_.acked_value(CommandKind::kTarget)) {
    ctx.acked_target = static_cast<unsigned>(*v);
  }
  if (const auto v = actuator_.acked_value(CommandKind::kSpeed)) {
    ctx.acked_speed = *v;
  }
  return ctx;
}

ControlPlane::Decision ControlPlane::on_tick(double now, bool long_tick,
                                             bool safe_mode) {
  Decision d;
  d.ctx = make_context(now, safe_mode);
  // Observational staleness bookkeeping; never fed to the policy.
  (void)staleness_.filter(d.ctx.obs_age_s, d.ctx.measured_rate);
  last_obs_age_s_ = d.ctx.obs_age_s;

  d.action = long_tick ? controller_->on_long_tick(d.ctx)
                       : controller_->on_short_tick(d.ctx);
  ++ticks_;
  if (long_tick) ++long_ticks_;
  if (d.action.infeasible) ++infeasible_ticks_;

  // Grow capacity before raising speed, same order apply_action uses, so
  // freshly revived servers adopt the new speed too.
  if (d.action.active_target) {
    d.commands.push_back({actuator_.issue(now, CommandKind::kTarget,
                                          static_cast<double>(*d.action.active_target),
                                          era_),
                          /*retransmit=*/false});
    ++commands_issued_;
    lifecycle_.on_issued(now, d.commands.back().frame, d.ctx.obs_age_s);
  }
  if (d.action.speed) {
    d.commands.push_back(
        {actuator_.issue(now, CommandKind::kSpeed, *d.action.speed, era_),
         /*retransmit=*/false});
    ++commands_issued_;
    lifecycle_.on_issued(now, d.commands.back().frame, d.ctx.obs_age_s);
  }
  // Collect retransmissions due now.  Polling after issue means a command
  // superseded this very tick never retransmits, and a just-issued command
  // cannot be due (its first retry deadline is now + ack_timeout > now) —
  // both invariants the in-process simulator's event order relied on.
  retry_buf_.clear();
  actuator_.poll(now, retry_buf_);
  for (const CommandFrame& cmd : retry_buf_) {
    d.commands.push_back({cmd, /*retransmit=*/true});
    lifecycle_.on_retransmit(now, cmd);
  }
  // A lane left without an outstanding command whose newest tracked
  // command was never acked just reconciled (retry budget spent).
  if (actuator_.enabled()) {
    for (int k = 0; k < kNumCommandKinds; ++k) {
      const auto kind = static_cast<CommandKind>(k);
      if (!actuator_.outstanding(kind)) lifecycle_.on_lane_reconciled(now, kind);
    }
  }
  return d;
}

void ControlPlane::on_ack(double now, CommandKind kind, std::uint64_t gen) {
  lifecycle_.on_acked(now, kind, gen);
  actuator_.on_ack(now, kind, gen);
}

void ControlPlane::on_command_applied(double now, CommandKind kind,
                                      std::uint64_t gen) {
  lifecycle_.on_applied(now, kind, gen);
}

std::string ControlPlane::snapshot() const {
  // The lifecycle tracker is deliberately NOT serialized: it is a pure
  // observation of the command stream, and keeping it out of the envelope
  // preserves the snapshot format byte-for-byte (DESIGN.md §14.3).
  SnapshotWriter w;
  // Controller type tag first: restoring into a facade running a different
  // policy would silently misinterpret every following byte, so restore()
  // cross-checks this before touching any state.
  w.str(controller_->name());
  controller_->save_state(w);
  w.f64(latest_.sample_time);
  w.f64(latest_.rate);
  w.u32(latest_.serving);
  w.u32(latest_.committed);
  w.u32(latest_.powered);
  w.u32(latest_.available);
  w.u64(latest_.jobs_in_system);
  rate_ewma_.save(w);
  staleness_.save(w);
  actuator_.save(w);
  w.u32(era_);
  w.u64(ticks_);
  w.u64(long_ticks_);
  w.u64(infeasible_ticks_);
  w.u64(telemetry_accepted_);
  w.u64(telemetry_stale_discarded_);
  w.u64(commands_issued_);
  w.f64(last_obs_age_s_);
  return encode_snapshot(w.payload());
}

void ControlPlane::restore(const std::string& bytes) {
  // The payload must outlive the reader (SnapshotReader views, not owns).
  const std::string payload = decode_snapshot(bytes);
  SnapshotReader r(payload);
  const std::string name = r.str();
  if (name != controller_->name()) {
    throw SnapshotError("control plane: snapshot was taken by controller '" + name +
                        "' but this facade runs '" + controller_->name() + "'");
  }
  controller_->load_state(r);
  latest_.sample_time = r.f64();
  latest_.rate = r.f64();
  latest_.serving = r.u32();
  latest_.committed = r.u32();
  latest_.powered = r.u32();
  latest_.available = r.u32();
  latest_.jobs_in_system = r.u64();
  rate_ewma_.load(r);
  staleness_.load(r);
  actuator_.load(r);
  era_ = r.u32();
  ticks_ = r.u64();
  long_ticks_ = r.u64();
  infeasible_ticks_ = r.u64();
  telemetry_accepted_ = r.u64();
  telemetry_stale_discarded_ = r.u64();
  commands_issued_ = r.u64();
  last_obs_age_s_ = r.f64();
  r.expect_end();
}

CountersSnapshot ControlPlane::counters_snapshot() const {
  CountersSnapshot snap;
  snap.add_counter("cp.ticks", ticks_);
  snap.add_counter("cp.ticks.long", long_ticks_);
  snap.add_counter("cp.ticks.infeasible", infeasible_ticks_);
  snap.add_counter("cp.telemetry.accepted", telemetry_accepted_);
  snap.add_counter("cp.telemetry.stale_discarded", telemetry_stale_discarded_);
  snap.add_counter("cp.telemetry.stale_ticks", staleness_.stale_ticks());
  snap.add_counter("cp.commands.issued", commands_issued_);
  snap.add_counter("cp.commands.retransmits", actuator_.retries());
  snap.add_counter("cp.commands.acked", actuator_.acked());
  snap.add_counter("cp.commands.stale_acks", actuator_.stale_acks());
  snap.add_counter("cp.commands.exhausted", actuator_.exhausted());
  snap.add_gauge("cp.era", static_cast<double>(era_));
  snap.add_gauge("cp.rate.latest", latest_.rate);
  snap.add_gauge("cp.rate.smoothed", rate_ewma_.value());
  snap.add_gauge("cp.obs_age_s", last_obs_age_s_);
  snap.add_gauge("cp.telemetry.stale", staleness_.stale() ? 1.0 : 0.0);
  lifecycle_.counters_into(snap);
  return snap;
}

std::string ControlPlane::prometheus_text() const {
  return to_prometheus_text(counters_snapshot(),
                            lifecycle_.prometheus_histograms());
}

}  // namespace gc
