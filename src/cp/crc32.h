// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over byte ranges.
//
// The integrity check shared by every durable control-plane artifact: the
// per-frame trailer on cp/wire streams, the write-ahead log records and
// the snapshot envelope (DESIGN.md §13).  Table-driven, one table shared
// process-wide; the function is pure and thread-compatible.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gc {

namespace detail {

consteval std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

// CRC of `data`, continuing from `seed` (pass a previous result to chain
// ranges).  The default seed is the standard initial value.
[[nodiscard]] inline std::uint32_t crc32(std::string_view data,
                                         std::uint32_t seed = 0) noexcept {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (const char ch : data) {
    c = detail::kCrc32Table[(c ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace gc
