// The controller-side half of the management plane as one reusable facade
// (DESIGN.md §12).
//
// Everything the "controller box" does between receiving a telemetry frame
// and emitting command frames lives here: the newest-wins observation
// store, the policy controller itself, the facade-level rate estimator and
// staleness accounting, and the ack/retry CommandActuator.  The facade is
// transport-agnostic — it never schedules events, opens sockets or touches
// a Cluster.  Three drivers feed it today:
//
//   * sim/simulation.cpp — the in-process simulator; ships telemetry and
//     transmits the returned command frames over sim/control_channel.
//     Bit-identical to the pre-extraction loop (the pinned determinism
//     goldens hold).
//   * cp/replay.h — tools/gcreplay's engine; streams a recorded audit log
//     back through a fresh facade and asserts the command stream matches.
//   * cp/wire.h — a length-prefixed frame protocol over a byte stream
//     (UNIX socket), for out-of-process fleets.
//
// Determinism contract: one tick = exactly one controller call plus one
// actuator issue per set action field plus one retry poll, in that order.
// The estimator/staleness instruments are strictly observational — they
// feed counters and gauges, never the controller — so attaching the facade
// cannot perturb a policy's decisions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "control/actuator.h"
#include "control/estimator.h"
#include "cp/controller.h"
#include "cp/frames.h"
#include "cp/lifecycle.h"
#include "obs/counters.h"
#include "stats/rng.h"

namespace gc {

struct ControlPlaneOptions {
  // Ack/retry protocol knobs (control/actuator.h).  Commands are stamped
  // even when disabled (fire-and-forget), so every driver sees the same
  // generation sequence.
  ActuatorOptions actuator;
  // Facade-level staleness accounting over delivered telemetry ages.
  // Observational only: the controllers run their *own* guards; this one
  // just surfaces `cp.telemetry.stale_ticks` for operators.  horizon 0
  // disables it.
  StalenessOptions staleness;
  // Smoothing factor for the delivered-rate gauge (`cp.rate.smoothed`).
  double rate_ewma_alpha = 0.2;

  // Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

class ControlPlane {
 public:
  // One stamped command bound for the fleet.  `retransmit` marks retry
  // traffic (the actuator re-asserting an unacked command) as opposed to a
  // command issued by this tick's decision.
  struct Outbound {
    CommandFrame frame;
    bool retransmit = false;
  };

  // The result of one control tick: the context the policy saw, the action
  // it returned, and the command frames to transmit — in transmit order
  // (fresh target, fresh speed, then due retransmissions).
  struct Decision {
    ControlContext ctx;
    ControlAction action;
    std::vector<Outbound> commands;
  };

  // Borrows the controller (must outlive the facade) — callers build it
  // via control/policies.h make_policy or hand-construct one.
  ControlPlane(Controller& controller, const ControlPlaneOptions& options,
               Rng rng);
  // Owning overload for drivers with no other home for the controller
  // (gcreplay, the wire server).
  ControlPlane(std::unique_ptr<Controller> controller,
               const ControlPlaneOptions& options, Rng rng);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  [[nodiscard]] double short_period_s() const { return controller_->short_period_s(); }
  [[nodiscard]] double long_period_s() const { return controller_->long_period_s(); }
  [[nodiscard]] Controller& controller() noexcept { return *controller_; }

  // Seeds the observation store with ground truth known at start-up (the
  // t = 0 fleet state) without counting it as a delivered sample.
  void seed_observation(const TelemetryFrame& frame) noexcept;

  // Delivers one telemetry frame.  Newest-wins: a frame older than the
  // current observation is discarded (counted), so the facade's fleet view
  // only ever moves forward in time.
  void accept_telemetry(const TelemetryFrame& frame) noexcept;

  // The context a tick at `now` would plan on: the newest delivered frame,
  // its age, the safe-mode flag the driver reports, and the last
  // fleet-acknowledged target/speed.
  [[nodiscard]] ControlContext make_context(double now, bool safe_mode) const;

  // Runs one control tick: builds the context, consults the policy, stamps
  // the resulting commands through the actuator and collects due
  // retransmissions.  The driver transmits `Decision::commands` in order.
  [[nodiscard]] Decision on_tick(double now, bool long_tick, bool safe_mode);

  // Fleet acknowledgement for (kind, gen); forwarded to the actuator.
  void on_ack(double now, CommandKind kind, std::uint64_t gen);

  // Driver-reported fleet-side application of (kind, gen) — feeds the
  // lifecycle tracker's decision→apply / end-to-end latency histograms.
  // Only drivers that can observe the fleet call this (the sim adapter
  // does; replay and wire drivers cannot see the far side).
  void on_command_applied(double now, CommandKind kind, std::uint64_t gen);

  // Causal lifecycle tracker (cp/lifecycle.h): per-command state machine,
  // per-stage latency histograms and drop attribution.  Strictly
  // observational — excluded from snapshot()/restore(), so recovery and
  // the goldens are untouched by anything recorded here.
  [[nodiscard]] LifecycleTracker& lifecycle() noexcept { return lifecycle_; }
  [[nodiscard]] const LifecycleTracker& lifecycle() const noexcept {
    return lifecycle_;
  }

  // Controller incarnation stamped into every command.  The driver bumps
  // it when a new controller instance takes over (outage recovery), so the
  // fleet can reject commands planned by a dead incarnation.
  [[nodiscard]] std::uint32_t era() const noexcept { return era_; }
  void bump_era() noexcept { ++era_; }

  [[nodiscard]] const TelemetryFrame& latest_observation() const noexcept {
    return latest_;
  }
  [[nodiscard]] const CommandActuator& actuator() const noexcept { return actuator_; }
  [[nodiscard]] CommandActuator& actuator() noexcept { return actuator_; }

  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] std::uint64_t long_ticks() const noexcept { return long_ticks_; }
  [[nodiscard]] std::uint64_t infeasible_ticks() const noexcept {
    return infeasible_ticks_;
  }
  [[nodiscard]] std::uint64_t telemetry_accepted() const noexcept {
    return telemetry_accepted_;
  }
  [[nodiscard]] std::uint64_t telemetry_stale_discarded() const noexcept {
    return telemetry_stale_discarded_;
  }
  [[nodiscard]] std::uint64_t commands_issued() const noexcept {
    return commands_issued_;
  }
  // EWMA of the delivered telemetry rate (observational gauge).
  [[nodiscard]] double smoothed_rate() const noexcept { return rate_ewma_.value(); }
  // Facade staleness view of the last tick (inert at horizon 0).
  [[nodiscard]] bool telemetry_stale() const noexcept { return staleness_.stale(); }

  // -- Crash recovery (DESIGN.md §13) ----------------------------------------
  //
  // snapshot() serializes the complete mutable state of the facade — the
  // policy controller's internals (via Controller::save_state), the
  // observation store, the estimator/staleness instruments, the actuator
  // lanes and jitter RNG, the era and every cp.* counter — wrapped in the
  // versioned, CRC-guarded envelope of cp/snapshot.h.  restore() loads
  // those bytes into a freshly constructed facade running the *same*
  // controller type under the *same* options; the controller name is
  // cross-checked, and any malformation throws SnapshotError.  A facade
  // whose restore() threw is in an unspecified partial state and must be
  // discarded — recovery code rebuilds and retries, it never continues.
  //
  // Contract: restore(snapshot()) is a bit-identical state transplant.
  // Replaying the same inputs after a snapshot/restore round trip yields
  // exactly the command stream (values, generations, eras, retry instants,
  // jitter draws) the uninterrupted facade would have emitted — the
  // recovery drift oracle in tools/gcreplay holds this line.
  [[nodiscard]] std::string snapshot() const;
  void restore(const std::string& bytes);

  // The facade's own metric plane (`cp.*` namespace): tick/telemetry/
  // command counters plus actuator protocol totals, as a snapshot any
  // driver can merge into its run artifacts or serve to a scraper.  This
  // is where the Prometheus exposition of the control plane now lives —
  // obs/prometheus renders the same snapshot for every driver instead of
  // each one hand-picking registry entries.
  [[nodiscard]] CountersSnapshot counters_snapshot() const;
  // counters_snapshot() plus the lifecycle per-stage latency histograms
  // rendered as proper Prometheus histogram types (cumulative
  // `_bucket{le}`/`_sum`/`_count`), not quantile gauges only.
  [[nodiscard]] std::string prometheus_text() const;

 private:
  std::unique_ptr<Controller> owned_;  // null when borrowing
  Controller* controller_;
  ControlPlaneOptions options_;
  CommandActuator actuator_;
  LifecycleTracker lifecycle_;
  TelemetryFrame latest_;
  EwmaEstimator rate_ewma_;
  StalenessGuard staleness_;
  std::uint32_t era_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t long_ticks_ = 0;
  std::uint64_t infeasible_ticks_ = 0;
  std::uint64_t telemetry_accepted_ = 0;
  std::uint64_t telemetry_stale_discarded_ = 0;
  std::uint64_t commands_issued_ = 0;
  double last_obs_age_s_ = 0.0;
  std::vector<CommandFrame> retry_buf_;  // reused across ticks
};

}  // namespace gc
