#include "cp/lifecycle.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>

#include "obs/trace.h"

namespace gc {
namespace {

// %.17g round-trips doubles exactly, matching the audit/counters writers.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* span_name(CommandKind kind) noexcept {
  return kind == CommandKind::kTarget ? "target" : "speed";
}

std::uint32_t span_id(const CommandLifecycle& rec) noexcept {
  return static_cast<std::uint32_t>(rec.id());
}

}  // namespace

const char* to_string(FrameClass fc) noexcept {
  switch (fc) {
    case FrameClass::kTelemetry: return "telemetry";
    case FrameClass::kTick: return "tick";
    case FrameClass::kCommand: return "command";
    case FrameClass::kAck: return "ack";
  }
  return "?";
}

const char* to_string(DropCause cause) noexcept {
  switch (cause) {
    case DropCause::kChannel: return "channel";
    case DropCause::kChaosDrop: return "chaos_drop";
    case DropCause::kChaosCorrupt: return "chaos_corrupt";
    case DropCause::kChaosTruncate: return "chaos_truncate";
    case DropCause::kWireCrc: return "wire_crc";
  }
  return "?";
}

const char* to_string(CommandLifecycle::State state) noexcept {
  switch (state) {
    case CommandLifecycle::State::kInFlight: return "in-flight";
    case CommandLifecycle::State::kCompleted: return "completed";
    case CommandLifecycle::State::kSuperseded: return "superseded";
    case CommandLifecycle::State::kReconciled: return "reconciled";
  }
  return "?";
}

std::uint64_t DropAttribution::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& row : cells_) {
    for (const std::uint64_t cell : row) sum += cell;
  }
  return sum;
}

void DropAttribution::counters_into(CountersSnapshot& snap) const {
  for (int fc = 0; fc < kNumFrameClasses; ++fc) {
    for (int cause = 0; cause < kNumDropCauses; ++cause) {
      if (cells_[fc][cause] == 0) continue;
      snap.add_counter(std::string("cp.drop.") +
                           to_string(static_cast<FrameClass>(fc)) + "." +
                           to_string(static_cast<DropCause>(cause)),
                       cells_[fc][cause]);
    }
  }
  snap.add_counter("cp.drop.total", total());
}

void DropAttribution::clear() noexcept {
  for (auto& row : cells_) {
    for (std::uint64_t& cell : row) cell = 0;
  }
}

void LifecycleTracker::end_span(double now, const CommandLifecycle& rec) {
  trace_async_end(trace_, now, "cp.lifecycle", span_name(rec.kind), span_id(rec));
}

void LifecycleTracker::close(LaneMap& lane, LaneMap::iterator it) {
  if (done_.size() < max_records_) {
    done_.push_back(it->second);
  } else {
    ++evicted_;
  }
  lane.erase(it);
}

void LifecycleTracker::maybe_complete(LaneMap& lane, LaneMap::iterator it,
                                      double now) {
  CommandLifecycle& rec = it->second;
  if (rec.state != CommandLifecycle::State::kInFlight) return;
  if (!expect_acks_ && !expect_applies_) return;  // nothing ever confirms
  if (expect_acks_ && rec.acked_s < 0.0) return;
  if (expect_applies_ && rec.applied_s < 0.0) return;
  const double done_at = std::max(rec.acked_s, rec.applied_s);
  e2e_.add(done_at - rec.issued_s);
  if (rec.acked_s >= 0.0 && rec.applied_s >= 0.0) {
    // Ack↔apply skew: in the simulator the fleet applies first and the
    // ack travels back, so this is the ack's return-trip latency.
    ack_to_apply_.add(rec.acked_s - rec.applied_s);
  }
  rec.state = CommandLifecycle::State::kCompleted;
  ++completed_;
  end_span(now, rec);
  close(lane, it);
}

void LifecycleTracker::on_issued(double now, const CommandFrame& frame,
                                 double obs_age_s) {
  LaneMap& lane = open_[static_cast<int>(frame.kind)];
  // A fresh same-kind command supersedes the newest still-in-flight one
  // (mirrors CommandActuator::issue).  The superseded record stays open so
  // a late ack/apply still lands on its timeline.
  if (!lane.empty()) {
    CommandLifecycle& prev = lane.rbegin()->second;
    if (prev.state == CommandLifecycle::State::kInFlight) {
      prev.state = CommandLifecycle::State::kSuperseded;
      ++superseded_;
      trace_instant(trace_, now, "cp.lifecycle", "cmd-superseded");
      end_span(now, prev);
    }
  }
  CommandLifecycle rec;
  rec.kind = frame.kind;
  rec.gen = frame.gen;
  rec.era = frame.era;
  rec.value = frame.value;
  rec.issued_s = now;
  rec.obs_age_s = obs_age_s;
  rec.last_sent_s = now;
  ++issued_;
  obs_age_.add(obs_age_s);
  trace_async_begin(trace_, now, "cp.lifecycle", span_name(rec.kind), span_id(rec));
  const auto [it, inserted] = lane.emplace(frame.gen, rec);
  if (!inserted) {
    // A reborn controller (cold restart) reuses generations: close the
    // pre-crash record and track the fresh command under the same key.
    close(lane, it);
    lane.emplace(frame.gen, rec);
  }
}

void LifecycleTracker::on_retransmit(double now, const CommandFrame& frame) {
  ++retransmits_;
  trace_instant(trace_, now, "cp.lifecycle", "cmd-retransmit");
  LaneMap& lane = open_[static_cast<int>(frame.kind)];
  const auto it = lane.find(frame.gen);
  if (it == lane.end()) {
    ++late_events_;
    return;
  }
  ++it->second.retransmits;
  it->second.last_sent_s = now;
}

void LifecycleTracker::on_acked(double now, CommandKind kind, std::uint64_t gen) {
  LaneMap& lane = open_[static_cast<int>(kind)];
  const auto it = lane.find(gen);
  if (it == lane.end()) {
    ++late_events_;  // duplicate ack for a closed record, or unknown gen
    return;
  }
  CommandLifecycle& rec = it->second;
  if (rec.acked_s >= 0.0) {
    ++late_events_;
    return;
  }
  rec.acked_s = now;
  if (rec.state == CommandLifecycle::State::kInFlight) {
    ack_latency_.add(now - rec.issued_s);
    ++acked_;
    maybe_complete(lane, it, now);
  } else {
    ++late_events_;  // stale ack for a superseded/reconciled command
  }
}

void LifecycleTracker::on_applied(double now, CommandKind kind,
                                  std::uint64_t gen) {
  LaneMap& lane = open_[static_cast<int>(kind)];
  const auto it = lane.find(gen);
  if (it == lane.end()) {
    ++late_events_;
    return;
  }
  CommandLifecycle& rec = it->second;
  if (rec.applied_s >= 0.0) {
    ++late_events_;
    return;
  }
  rec.applied_s = now;
  ++applied_;  // superseded commands still get applied for real
  if (rec.state == CommandLifecycle::State::kInFlight) {
    apply_latency_.add(now - rec.issued_s);
    maybe_complete(lane, it, now);
  }
}

void LifecycleTracker::on_lane_reconciled(double now, CommandKind kind) {
  LaneMap& lane = open_[static_cast<int>(kind)];
  if (lane.empty()) return;
  CommandLifecycle& rec = lane.rbegin()->second;
  // Only the newest record can have been actuator-outstanding; anything
  // already acked (or terminal) is not a reconciliation.
  if (rec.state != CommandLifecycle::State::kInFlight || rec.acked_s >= 0.0) {
    return;
  }
  rec.state = CommandLifecycle::State::kReconciled;
  ++reconciled_;
  trace_instant(trace_, now, "cp.lifecycle", "cmd-reconciled");
  end_span(now, rec);
}

void LifecycleTracker::on_command_frame_dropped(double now,
                                                const CommandFrame& frame,
                                                DropCause cause) {
  attribution_.charge(FrameClass::kCommand, cause);
  LaneMap& lane = open_[static_cast<int>(frame.kind)];
  const auto it = lane.find(frame.gen);
  if (it != lane.end()) ++it->second.frame_drops;
  trace_instant(trace_, now, "cp.lifecycle", "cmd-frame-dropped");
}

void LifecycleTracker::finalize_all(double now) {
  for (LaneMap& lane : open_) {
    while (!lane.empty()) {
      const auto it = lane.begin();
      if (it->second.state == CommandLifecycle::State::kInFlight) {
        end_span(now, it->second);
      }
      close(lane, it);
    }
  }
}

std::vector<CommandLifecycle> LifecycleTracker::records() const {
  std::vector<CommandLifecycle> out = done_;
  for (const LaneMap& lane : open_) {
    for (const auto& [gen, rec] : lane) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const CommandLifecycle& a, const CommandLifecycle& b) {
              if (a.issued_s != b.issued_s) return a.issued_s < b.issued_s;
              return a.id() < b.id();
            });
  return out;
}

void LifecycleTracker::export_jsonl(std::ostream& os) const {
  write_lifecycle_jsonl(os, records());
}

void write_lifecycle_jsonl(std::ostream& os,
                           const std::vector<CommandLifecycle>& records) {
  for (const CommandLifecycle& rec : records) {
    os << "{\"kind\":\"" << to_string(rec.kind) << "\",\"gen\":" << rec.gen
       << ",\"id\":" << rec.id() << ",\"era\":" << rec.era
       << ",\"value\":" << num(rec.value)
       << ",\"issued_s\":" << num(rec.issued_s)
       << ",\"obs_age_s\":" << num(rec.obs_age_s)
       << ",\"retransmits\":" << rec.retransmits
       << ",\"frame_drops\":" << rec.frame_drops
       << ",\"last_sent_s\":" << num(rec.last_sent_s)
       << ",\"acked_s\":" << num(rec.acked_s)
       << ",\"applied_s\":" << num(rec.applied_s) << ",\"state\":\""
       << to_string(rec.state) << "\"}\n";
  }
}

void LifecycleTracker::counters_into(CountersSnapshot& snap) const {
  snap.add_counter("cp.lifecycle.issued", issued_);
  snap.add_counter("cp.lifecycle.retransmits", retransmits_);
  snap.add_counter("cp.lifecycle.acked", acked_);
  snap.add_counter("cp.lifecycle.applied", applied_);
  snap.add_counter("cp.lifecycle.completed", completed_);
  snap.add_counter("cp.lifecycle.superseded", superseded_);
  snap.add_counter("cp.lifecycle.reconciled", reconciled_);
  snap.add_counter("cp.lifecycle.late_events", late_events_);
  if (evicted_ > 0) snap.add_counter("cp.lifecycle.records_evicted", evicted_);
  std::uint64_t open_count = 0;
  for (const LaneMap& lane : open_) open_count += lane.size();
  snap.add_gauge("cp.lifecycle.open", static_cast<double>(open_count));
  snap.add_gauge("cp.lifecycle.retransmit_rate",
                 issued_ == 0
                     ? 0.0
                     : static_cast<double>(retransmits_) /
                           static_cast<double>(issued_));
  // Literal `<stage>:<quantile>` gauge names — ci/check.sh gates these
  // through `gcinspect --check 'cp.lifecycle.ack_latency:p99<=...'`.
  snap.add_gauge("cp.lifecycle.ack_latency:p50", ack_latency_.quantile(0.50));
  snap.add_gauge("cp.lifecycle.ack_latency:p99", ack_latency_.quantile(0.99));
  snap.add_gauge("cp.lifecycle.apply_latency:p50", apply_latency_.quantile(0.50));
  snap.add_gauge("cp.lifecycle.apply_latency:p99", apply_latency_.quantile(0.99));
  snap.add_gauge("cp.lifecycle.e2e:p99", e2e_.quantile(0.99));
  snap.add_gauge("cp.lifecycle.obs_age:p99", obs_age_.quantile(0.99));
  attribution_.counters_into(snap);
}

std::vector<PrometheusHistogram> LifecycleTracker::prometheus_histograms()
    const {
  return {
      {"cp.lifecycle.ack_latency_seconds", &ack_latency_},
      {"cp.lifecycle.apply_latency_seconds", &apply_latency_},
      {"cp.lifecycle.ack_to_apply_seconds", &ack_to_apply_},
      {"cp.lifecycle.e2e_seconds", &e2e_},
      {"cp.lifecycle.obs_age_seconds", &obs_age_},
  };
}

void LifecycleTracker::clear() noexcept {
  for (LaneMap& lane : open_) lane.clear();
  done_.clear();
  evicted_ = 0;
  for (std::uint64_t& seq : frame_seq_) seq = 0;
  attribution_.clear();
  ack_latency_.clear();
  apply_latency_.clear();
  ack_to_apply_.clear();
  e2e_.clear();
  obs_age_.clear();
  issued_ = retransmits_ = acked_ = applied_ = 0;
  completed_ = superseded_ = reconciled_ = late_events_ = 0;
}

}  // namespace gc
