#include "cp/chaos.h"

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cp/wal.h"
#include "stats/rng.h"
#include "util/format.h"
#include "util/string_util.h"

namespace gc {
namespace {

// -- Wire plumbing -----------------------------------------------------------

void encode_msg(std::string& buf, const WireMessage& msg) {
  switch (msg.type) {
    case WireMsgType::kTelemetry: append_telemetry_frame(buf, msg.telemetry); return;
    case WireMsgType::kTick: append_tick_frame(buf, msg.tick); return;
    case WireMsgType::kAck: append_ack_frame(buf, msg.ack); return;
    case WireMsgType::kCommand:
      throw std::invalid_argument("chaos: command frame in the input sequence");
  }
  throw std::invalid_argument("chaos: unknown input message type");
}

void send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(
          format("chaos: send failed: {}", std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

void decode_commands(FrameDecoder& dec, std::vector<CommandFrame>& out) {
  while (const auto msg = dec.next()) {
    if (msg->type != WireMsgType::kCommand) {
      throw WireError("chaos: non-command frame travelling fleet-ward");
    }
    out.push_back(msg->command);
  }
}

// Pulls whatever command bytes are already queued without blocking, so the
// socketpair buffer never fills up while the client is still sending.
void drain_available(int fd, FrameDecoder& dec, std::vector<CommandFrame>& out) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      throw std::runtime_error(
          format("chaos: recv failed: {}", std::strerror(errno)));
    }
    if (n == 0) return;  // peer closed; the EOF drain finishes the job
    dec.feed(chunk, static_cast<std::size_t>(n));
    decode_commands(dec, out);
  }
}

void drain_to_eof(int fd, FrameDecoder& dec, std::vector<CommandFrame>& out) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return;
      throw std::runtime_error(
          format("chaos: recv failed: {}", std::strerror(errno)));
    }
    if (n == 0) return;
    dec.feed(chunk, static_cast<std::size_t>(n));
    decode_commands(dec, out);
  }
}

// Routes one input into an in-process facade, collecting emitted command
// frames — the oracle's transport-free equivalent of the serve loop.
void route_clean(ControlPlane& cp, const WireMessage& msg,
                 std::vector<CommandFrame>& out) {
  switch (msg.type) {
    case WireMsgType::kTelemetry:
      cp.accept_telemetry(msg.telemetry);
      return;
    case WireMsgType::kTick: {
      const ControlPlane::Decision d =
          cp.on_tick(msg.tick.now, msg.tick.long_tick, msg.tick.safe_mode);
      for (const ControlPlane::Outbound& ob : d.commands) out.push_back(ob.frame);
      return;
    }
    case WireMsgType::kAck:
      cp.on_ack(msg.ack.now, msg.ack.kind, msg.ack.gen);
      return;
    case WireMsgType::kCommand:
      throw std::invalid_argument("chaos: command frame in the input sequence");
  }
}

[[nodiscard]] bool frames_equal(const CommandFrame& a, const CommandFrame& b) {
  return a.kind == b.kind &&
         std::bit_cast<std::uint64_t>(a.value) ==
             std::bit_cast<std::uint64_t>(b.value) &&
         a.gen == b.gen && a.era == b.era;
}

[[nodiscard]] std::string describe(const CommandFrame& f) {
  return format("kind={} value={:.17g} gen={} era={}", to_string(f.kind),
                f.value, f.gen, f.era);
}

}  // namespace

const char* to_string(ChaosOp op) noexcept {
  switch (op) {
    case ChaosOp::kDrop: return "drop";
    case ChaosOp::kDup: return "dup";
    case ChaosOp::kReorder: return "reorder";
    case ChaosOp::kCorrupt: return "corrupt";
    case ChaosOp::kTruncate: return "truncate";
    case ChaosOp::kKill: return "kill";
  }
  return "?";
}

std::vector<ChaosEvent> parse_chaos_schedule(std::string_view text) {
  std::vector<ChaosEvent> events;
  std::unordered_set<std::uint64_t> used;
  for (std::string_view token : split(text, ',')) {
    const std::string_view item = trim(token);
    if (item.empty()) continue;
    const std::size_t at = item.find('@');
    if (at == std::string_view::npos) {
      throw std::invalid_argument(
          format("chaos: '{}' is not <op>@<index>", std::string(item)));
    }
    const std::string_view name = item.substr(0, at);
    ChaosEvent ev;
    if (name == "drop") ev.op = ChaosOp::kDrop;
    else if (name == "dup") ev.op = ChaosOp::kDup;
    else if (name == "reorder") ev.op = ChaosOp::kReorder;
    else if (name == "corrupt") ev.op = ChaosOp::kCorrupt;
    else if (name == "truncate") ev.op = ChaosOp::kTruncate;
    else if (name == "kill") ev.op = ChaosOp::kKill;
    else {
      throw std::invalid_argument(
          format("chaos: unknown op '{}'", std::string(name)));
    }
    const std::string_view digits = item.substr(at + 1);
    if (digits.empty()) {
      throw std::invalid_argument(
          format("chaos: '{}' has no index", std::string(item)));
    }
    std::uint64_t index = 0;
    for (const char c : digits) {
      if (c < '0' || c > '9') {
        throw std::invalid_argument(
            format("chaos: bad index in '{}'", std::string(item)));
      }
      index = index * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!used.insert(index).second) {
      throw std::invalid_argument(
          format("chaos: two ops scheduled at index {}", index));
    }
    ev.index = index;
    events.push_back(ev);
  }
  return events;
}

void ChaosOptions::validate() const {
  if (checkpoint_every == 0) {
    throw std::invalid_argument("chaos: checkpoint_every must be >= 1");
  }
}

CountersSnapshot ChaosReport::counters_snapshot() const {
  CountersSnapshot snap;
  snap.add_counter("cp.chaos.inputs", inputs);
  snap.add_counter("cp.chaos.episodes", episodes);
  snap.add_counter("cp.chaos.kills", kills);
  snap.add_counter("cp.chaos.drops", drops);
  snap.add_counter("cp.chaos.dups", dups);
  snap.add_counter("cp.chaos.reorders", reorders);
  snap.add_counter("cp.chaos.corrupts", corrupts);
  snap.add_counter("cp.chaos.truncates", truncates);
  snap.add_counter("cp.chaos.skipped_on_tick", skipped_on_tick);
  snap.add_counter("cp.drift.mismatches", drift_mismatches);
  snap.add_counter("cp.drift.commands.chaos", commands_chaos);
  snap.add_counter("cp.drift.commands.clean", commands_clean);
  // Per-(frame type, cause) drop attribution + the serve loop's
  // accept/reject ledger (includes cp.wire.crc_errors).
  attribution.counters_into(snap);
  const CountersSnapshot wire_snap = wire.counters_snapshot();
  for (const auto& [name, value] : wire_snap.counters) {
    snap.add_counter(name, value);
  }
  return snap;
}

namespace {

// The lifecycle frame class of a wire message, for drop attribution.
[[nodiscard]] FrameClass frame_class(WireMsgType type) noexcept {
  switch (type) {
    case WireMsgType::kTelemetry: return FrameClass::kTelemetry;
    case WireMsgType::kTick: return FrameClass::kTick;
    case WireMsgType::kCommand: return FrameClass::kCommand;
    case WireMsgType::kAck: return FrameClass::kAck;
  }
  return FrameClass::kTelemetry;  // unreachable for valid enums
}

}  // namespace

ChaosReport run_chaos(const std::vector<WireMessage>& inputs,
                      const ControllerFactory& make_controller,
                      const ControlPlaneOptions& options, Rng actuator_rng,
                      const ChaosOptions& chaos) {
  chaos.validate();
  if (!make_controller) {
    throw std::invalid_argument("chaos: null controller factory");
  }
  std::unordered_map<std::uint64_t, ChaosOp> schedule;
  for (const ChaosEvent& ev : chaos.events) {
    if (ev.index >= inputs.size()) {
      throw std::invalid_argument(format(
          "chaos: {}@{} is beyond the {} input records", to_string(ev.op),
          ev.index, inputs.size()));
    }
    schedule.emplace(ev.index, ev.op);
  }

  ChaosReport report;
  report.inputs = inputs.size();

  // Clean oracle: the same facade fed in-process with the post-drop
  // sequence.  Every fault except drop must leave the wire run's command
  // stream equal to this one.
  std::vector<CommandFrame> clean_cmds;
  {
    ControlPlane oracle(make_controller(), options, actuator_rng);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const auto it = schedule.find(i);
      if (it != schedule.end() && it->second == ChaosOp::kDrop) continue;
      route_clean(oracle, inputs[i], clean_cmds);
    }
  }

  // The wire run, with durability: every accepted record is journaled,
  // snapshots are cut on the checkpoint cadence (truncating the WAL), and
  // a kill rebuilds the facade from checkpoint + WAL replay.  The hook
  // fires after routing, which is safe here because episodes only end at
  // record boundaries — the record is always both applied and journaled
  // before a kill can strike.
  std::optional<ControlPlane> cp;
  cp.emplace(make_controller(), options, actuator_rng);
  std::string last_snapshot = cp->snapshot();
  WalWriter wal;
  WireServeStats stats;
  Rng fault_rng(chaos.seed, /*stream=*/77);
  std::vector<CommandFrame> chaos_cmds;
  std::unordered_set<std::uint64_t> fired;
  std::size_t i = 0;

  while (i < inputs.size()) {
    ++report.episodes;
    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw std::runtime_error(
          format("chaos: socketpair failed: {}", std::strerror(errno)));
    }
    ControlPlane& facade = *cp;
    WireHooks hooks;
    hooks.on_accepted = [&facade, &wal, &last_snapshot,
                         every = chaos.checkpoint_every](const WireMessage& msg) {
      wal.append(msg);
      if (msg.type == WireMsgType::kTick && facade.ticks() % every == 0) {
        last_snapshot = facade.snapshot();
        wal.reset();
      }
    };
    std::exception_ptr server_error;
    std::thread server([&facade, fd = sv[1], &stats, &hooks, &server_error] {
      try {
        serve_connection(facade, fd, stats, &hooks);
      } catch (...) {
        server_error = std::current_exception();
      }
      ::close(fd);
    });

    FrameDecoder dec;
    bool teardown = false;
    bool kill_after = false;
    bool expect_server_error = false;
    std::string pending_stale;  // reorder: stale duplicate due after the next send
    while (i < inputs.size() && !teardown) {
      std::string frame;
      encode_msg(frame, inputs[i]);
      const std::string stale = std::exchange(pending_stale, std::string());
      const bool is_tick = inputs[i].type == WireMsgType::kTick;
      const auto it = schedule.find(i);
      const ChaosOp* op =
          (it != schedule.end() && !fired.contains(i)) ? &it->second : nullptr;
      if (op != nullptr) fired.insert(i);
      if (op == nullptr) {
        send_all(sv[0], frame);
        if (!stale.empty()) send_all(sv[0], stale);
        ++i;
      } else {
        switch (*op) {
          case ChaosOp::kDrop:
            ++report.drops;
            report.attribution.charge(frame_class(inputs[i].type),
                                      DropCause::kChaosDrop);
            ++i;
            break;
          case ChaosOp::kDup:
            send_all(sv[0], frame);
            if (is_tick) {
              ++report.skipped_on_tick;
            } else {
              send_all(sv[0], frame);
              ++report.dups;
            }
            if (!stale.empty()) send_all(sv[0], stale);
            ++i;
            break;
          case ChaosOp::kReorder:
            send_all(sv[0], frame);
            if (is_tick) {
              ++report.skipped_on_tick;
            } else {
              pending_stale = frame;
              ++report.reorders;
            }
            if (!stale.empty()) send_all(sv[0], stale);
            ++i;
            break;
          case ChaosOp::kCorrupt: {
            // Flip one byte past the length prefix: the CRC trailer (or
            // the type/length checks) must reject the frame; the record
            // is resent intact on the next connection.
            std::string bad = frame;
            const std::size_t off =
                4 + static_cast<std::size_t>(
                        fault_rng.uniform_below(bad.size() - 4));
            bad[off] = static_cast<char>(
                static_cast<std::uint8_t>(bad[off]) ^
                static_cast<std::uint8_t>(1 + fault_rng.uniform_below(255)));
            send_all(sv[0], bad);
            ++report.corrupts;
            report.attribution.charge(frame_class(inputs[i].type),
                                      DropCause::kChaosCorrupt);
            teardown = true;
            expect_server_error = true;
            break;
          }
          case ChaosOp::kTruncate: {
            const std::size_t cut = 1 + static_cast<std::size_t>(
                                            fault_rng.uniform_below(frame.size() - 1));
            send_all(sv[0], std::string_view(frame).substr(0, cut));
            ::shutdown(sv[0], SHUT_WR);
            ++report.truncates;
            report.attribution.charge(frame_class(inputs[i].type),
                                      DropCause::kChaosTruncate);
            teardown = true;
            expect_server_error = true;
            break;
          }
          case ChaosOp::kKill:
            send_all(sv[0], frame);
            ++i;
            kill_after = true;
            teardown = true;
            break;
        }
      }
      drain_available(sv[0], dec, chaos_cmds);
    }
    // A reorder scheduled on the episode's last record loses its stale
    // duplicate to the teardown — losing a stale duplicate is, by
    // design, invisible.
    ::shutdown(sv[0], SHUT_WR);
    drain_to_eof(sv[0], dec, chaos_cmds);
    server.join();
    ::close(sv[0]);
    if (server_error) {
      if (!expect_server_error) std::rethrow_exception(server_error);
      try {
        std::rethrow_exception(server_error);
      } catch (const WireError&) {
        // The injected fault did its job; the facade survives, only the
        // connection died.
      }
    }
    if (kill_after) {
      ++report.kills;
      cp.emplace(make_controller(), options, actuator_rng);
      cp->restore(last_snapshot);
      wal_replay(*cp, wal.bytes());
    }
  }

  report.commands_clean = clean_cmds.size();
  report.commands_chaos = chaos_cmds.size();
  report.crc_errors = stats.crc_errors;
  report.wire = stats;
  const std::size_t n = std::max(clean_cmds.size(), chaos_cmds.size());
  for (std::size_t k = 0; k < n; ++k) {
    if (k >= clean_cmds.size()) {
      ++report.drift_mismatches;
      if (report.mismatch_samples.size() < 8) {
        report.mismatch_samples.push_back(
            format("cmd[{}]: extra in chaos run: {}", k, describe(chaos_cmds[k])));
      }
    } else if (k >= chaos_cmds.size()) {
      ++report.drift_mismatches;
      if (report.mismatch_samples.size() < 8) {
        report.mismatch_samples.push_back(
            format("cmd[{}]: missing from chaos run: {}", k,
                   describe(clean_cmds[k])));
      }
    } else if (!frames_equal(clean_cmds[k], chaos_cmds[k])) {
      ++report.drift_mismatches;
      if (report.mismatch_samples.size() < 8) {
        report.mismatch_samples.push_back(format("cmd[{}]: clean {} vs chaos {}",
                                                 k, describe(clean_cmds[k]),
                                                 describe(chaos_cmds[k])));
      }
    }
  }
  return report;
}

}  // namespace gc
