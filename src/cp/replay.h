// Deterministic replay of a recorded control trajectory — the drift oracle
// behind tools/gcreplay (DESIGN.md §12.3).
//
// An audit record is exactly the ControlContext a tick planned on (the
// delivered telemetry, its age, the safe-mode flag) plus the commands the
// policy emitted.  The policies are deterministic, RNG-free functions of
// the context sequence, so feeding the recorded contexts into a *fresh*
// ControlPlane running the same policy must reproduce the recorded
// commanded target/speed/delta/infeasible columns bit-for-bit.  Any
// mismatch means the controller drifted from its recording — a changed
// default, a lost invariant, an accidental RNG draw — and the soak lane
// (ci/check.sh soak) fails.
//
// The engine drives a virtual clock: records are paced at `speedup`×
// recorded time (1× = real time, 1000× = a day per ~86 s), or free-run at
// speedup <= 0.  Sleeping is injected (SleepFn) so tests replay instantly.
//
// Artifact hygiene is strict by contract: validate_timeseries() and the
// jsonl parser *throw* on malformed input — replay never clamps, repairs
// or skips a bad record (tests/test_replay_fuzz.cpp holds the line).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cp/control_plane.h"
#include "obs/audit.h"
#include "obs/counters.h"
#include "util/csv.h"

namespace gc {

struct ReplayOptions {
  // Virtual-clock rate: recorded seconds per wall second.  <= 0 replays as
  // fast as possible (no sleeping).
  double speedup = 0.0;
  // Stop at the first mismatch instead of replaying to the end.
  bool fail_fast = false;
  // Mismatch samples kept for reporting (counting continues past this).
  std::size_t max_reported = 8;

  void validate() const;  // throws std::invalid_argument
};

// One divergence between the recorded and the replayed command stream.
struct ReplayMismatch {
  std::uint64_t tick = 0;  // record index in the audit log
  double time_s = 0.0;
  std::string field;     // which commanded column diverged
  double expected = 0.0;  // recorded value
  double actual = 0.0;    // replayed value
};

struct ReplayStats {
  std::uint64_t ticks = 0;
  std::uint64_t long_ticks = 0;
  std::uint64_t mismatches = 0;
  double replayed_span_s = 0.0;   // last - first record time
  double first_mismatch_s = -1.0;  // -1 = clean
  std::vector<ReplayMismatch> samples;

  [[nodiscard]] bool clean() const noexcept { return mismatches == 0; }
};

class ReplayEngine {
 public:
  using SleepFn = std::function<void(double wall_seconds)>;

  // Borrows the facade (must outlive the engine).  `sleep` defaults to a
  // real std::this_thread wait; pass a stub to replay without pacing.
  ReplayEngine(ControlPlane& cp, const ReplayOptions& options, SleepFn sleep = {});

  // Swaps the facade under the engine without losing cumulative stats.
  // The kill/restore path in tools/gcreplay rebuilds the ControlPlane from
  // its checkpoint mid-run; the oracle keeps scoring the reborn facade
  // against the same recording.
  void rebind(ControlPlane& cp) noexcept { cp_ = &cp; }

  // Feeds one audit record: delivers its telemetry view, runs the tick and
  // compares the replayed commands against the recorded ones.  Returns
  // false when fail_fast is set and the record diverged.
  bool feed(const AuditRecord& rec);

  // Replays a whole log through feed(), pacing by the virtual clock.
  ReplayStats run(const DecisionAuditLog& log);

  [[nodiscard]] const ReplayStats& stats() const noexcept { return stats_; }

  // The facade's cp.* snapshot merged with the drift verdict
  // (cp.drift.mismatches / cp.drift.ticks / cp.drift.first_mismatch_s) —
  // what gcreplay writes as OUT.counters.json for `gcinspect --check`.
  [[nodiscard]] CountersSnapshot counters_snapshot() const;

 private:
  void note(const AuditRecord& rec, std::uint64_t tick, const char* field,
            double expected, double actual);

  ControlPlane* cp_;
  ReplayOptions options_;
  SleepFn sleep_;
  ReplayStats stats_;
  bool have_time_ = false;
  double first_time_s_ = 0.0;
  double last_time_s_ = 0.0;
};

// Structural validation of a PREFIX.timeseries.csv table against the
// recorder's export contract: the `t` column exists, time is finite and
// strictly increasing, every cell parses finite, and (when a non-empty
// audit log is supplied) the series' time range lies within the log's.
// Throws std::runtime_error with a line-numbered message on any violation
// — corrupt artifacts are rejected, never repaired.
void validate_timeseries(const CsvTable& table,
                         const DecisionAuditLog* audit = nullptr);

}  // namespace gc
