#include "cp/wal.h"

#include "cp/control_plane.h"
#include "util/format.h"

namespace gc {

void WalWriter::append(const WireMessage& msg) {
  switch (msg.type) {
    case WireMsgType::kTelemetry: append_telemetry(msg.telemetry); return;
    case WireMsgType::kTick: append_tick(msg.tick); return;
    case WireMsgType::kAck: append_ack(msg.ack); return;
    case WireMsgType::kCommand:
      throw WalError("wal: refusing to journal a command frame");
  }
  throw WalError(format("wal: unknown message type {}",
                        static_cast<unsigned>(msg.type)));
}

void WalWriter::append_telemetry(const TelemetryFrame& frame) {
  append_telemetry_frame(buf_, frame, WireCrc::kCrc32);
  ++records_;
}

void WalWriter::append_tick(const TickMsg& tick) {
  append_tick_frame(buf_, tick, WireCrc::kCrc32);
  ++records_;
}

void WalWriter::append_ack(const AckWireMsg& ack) {
  append_ack_frame(buf_, ack, WireCrc::kCrc32);
  ++records_;
}

void WalWriter::reset() {
  buf_.assign(kWalMagic);
  records_ = 0;
}

WalReplayStats wal_replay(ControlPlane& cp, std::string_view bytes) {
  if (bytes.size() < kWalMagic.size()) {
    throw WalError(format("wal: {} bytes is too short to hold the header",
                          bytes.size()));
  }
  if (bytes.substr(0, kWalMagic.size()) != kWalMagic) {
    throw WalError("wal: bad magic (not a GCCPWAL1 log)");
  }
  WalReplayStats stats;
  FrameDecoder decoder;
  decoder.feed(bytes.substr(kWalMagic.size()));
  while (const auto msg = decoder.next()) {
    switch (msg->type) {
      case WireMsgType::kTelemetry:
        cp.accept_telemetry(msg->telemetry);
        ++stats.telemetry;
        break;
      case WireMsgType::kTick:
        // Commands regenerate deterministically from the restored state;
        // the replayed decision is discarded, the drift oracle checks the
        // live stream instead.
        (void)cp.on_tick(msg->tick.now, msg->tick.long_tick, msg->tick.safe_mode);
        ++stats.ticks;
        break;
      case WireMsgType::kAck:
        cp.on_ack(msg->ack.now, msg->ack.kind, msg->ack.gen);
        ++stats.acks;
        break;
      case WireMsgType::kCommand:
        throw WalError("wal: command frame in log");
    }
  }
  if (decoder.buffered() > 0) {
    throw WalError(format("wal: log ends mid-frame ({} bytes dangling)",
                          decoder.buffered()));
  }
  return stats;
}

}  // namespace gc
