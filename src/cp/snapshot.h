// Versioned binary snapshots of control-plane state (DESIGN.md §13.1).
//
// A snapshot is the serialized mutable state of a ControlPlane facade —
// policy controller internals, estimator/staleness instruments, actuator
// lanes and generations, era and the cp.* counters — sufficient to rebuild
// a facade that emits the *bit-identical* command stream the crashed one
// would have.  Together with the write-ahead log (cp/wal.h) it is the
// durable half of crash recovery: restore the last checkpoint, replay the
// WAL to the tip, resume.
//
// Envelope layout (all integers little-endian):
//
//   [8 B magic "GCCPSNAP"][u32 version][u32 payload_len][payload][u32 crc32]
//
// The CRC covers the payload bytes only; version is part of the envelope so
// a loader can reject a format it does not speak *before* trusting any
// field offsets.  Inside the payload every field is written through the
// typed SnapshotWriter putters and read back through the matching
// SnapshotReader getters in the same order — there is no schema, the
// writing code *is* the schema, and the version number is bumped whenever
// that order changes.
//
// Loading is strict by contract (the discipline of cp/wire and the artifact
// parsers fuzzed in tests/test_replay_fuzz): a short buffer, a bad magic,
// an unknown version, a CRC mismatch, a non-finite double where a finite
// one was written, a boolean byte that is not 0/1, or trailing bytes after
// the last field all throw SnapshotError.  Malformed input is rejected,
// never clamped or repaired — and the reader poisons itself on the first
// error, so a caller cannot accidentally keep pulling fields out of a
// stream it already knows is corrupt.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gc {

class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Current snapshot payload format.  Bump whenever any save_state/save
// implementation changes what it writes.
inline constexpr std::uint32_t kSnapshotVersion = 1;

// Appends typed fields to a growing payload buffer.  Writing never fails;
// the envelope (magic/version/length/CRC) is added by encode_snapshot.
class SnapshotWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void boolean(bool v);
  // Length-prefixed byte string (u32 length + raw bytes).
  void str(std::string_view v);

  [[nodiscard]] const std::string& payload() const noexcept { return buf_; }

 private:
  std::string buf_;
};

// Strict cursor over a snapshot payload.  Every getter checks bounds and
// value validity; the first failure throws SnapshotError and poisons the
// reader (all later calls throw).
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view payload) : data_(payload) {}
  // The reader views the payload, it does not own it — constructing one
  // over a temporary string (e.g. decode_snapshot's return value) would
  // dangle on the first getter.  Bind the payload to a local first.
  explicit SnapshotReader(std::string&&) = delete;

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  // Rejects NaN/Inf: no field of the control plane's state is legitimately
  // non-finite (sentinels like first_mismatch_s = -1 are finite).
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::string str();

  // Throws unless every payload byte has been consumed — a snapshot with
  // trailing bytes was written by different code than is reading it.
  void expect_end();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

 private:
  void need(std::size_t n, const char* what);
  [[noreturn]] void fail(const std::string& why);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

// Wraps a payload in the versioned envelope (magic + version + length +
// CRC32 trailer).
[[nodiscard]] std::string encode_snapshot(std::string_view payload);

// Unwraps an envelope produced by encode_snapshot, verifying magic,
// version, length and CRC.  Returns the payload bytes; throws
// SnapshotError on any malformation.
[[nodiscard]] std::string decode_snapshot(std::string_view bytes);

}  // namespace gc
