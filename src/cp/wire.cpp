#include "cp/wire.h"

#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "cp/control_plane.h"
#include "cp/crc32.h"
#include "util/format.h"

namespace gc {
namespace {

// Fixed payload sizes per type (the type byte itself excluded).
constexpr std::uint32_t kTelemetryBytes = 8 + 8 + 4 * 4 + 8;  // 40
constexpr std::uint32_t kTickBytes = 8 + 1 + 1;               // 10
constexpr std::uint32_t kCommandBytes = 1 + 8 + 8 + 4;        // 21
constexpr std::uint32_t kAckBytes = 8 + 1 + 8;                // 17

void put_u8(std::string& buf, std::uint8_t v) {
  buf.push_back(static_cast<char>(v));
}

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(buf, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(buf, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::string& buf, double v) {
  put_u64(buf, std::bit_cast<std::uint64_t>(v));
}

// Cursor over one complete frame's payload; the decoder guarantees the
// length before constructing it, so reads cannot run off the end.
struct PayloadReader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  std::uint8_t u8() {
    return static_cast<std::uint8_t>(data[pos++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  double f64_finite(const char* field) {
    const double v = std::bit_cast<double>(u64());
    if (!std::isfinite(v)) {
      throw WireError(format("wire: non-finite {} in frame", field));
    }
    return v;
  }
  bool boolean(const char* field) {
    const std::uint8_t v = u8();
    if (v > 1) {
      throw WireError(format("wire: {} byte must be 0 or 1, got {}", field, v));
    }
    return v == 1;
  }
  CommandKind kind() {
    const std::uint8_t v = u8();
    if (v >= kNumCommandKinds) {
      throw WireError(format("wire: command kind {} out of range", v));
    }
    return static_cast<CommandKind>(v);
  }
};

WireMessage decode_payload(WireMsgType type, const char* data, std::size_t size) {
  PayloadReader r{data, size};
  WireMessage msg;
  msg.type = type;
  switch (type) {
    case WireMsgType::kTelemetry: {
      msg.telemetry.sample_time = r.f64_finite("sample_time");
      msg.telemetry.rate = r.f64_finite("rate");
      msg.telemetry.serving = r.u32();
      msg.telemetry.committed = r.u32();
      msg.telemetry.powered = r.u32();
      msg.telemetry.available = r.u32();
      msg.telemetry.jobs_in_system = r.u64();
      if (msg.telemetry.rate < 0.0) {
        throw WireError("wire: negative telemetry rate");
      }
      break;
    }
    case WireMsgType::kTick: {
      msg.tick.now = r.f64_finite("now");
      msg.tick.long_tick = r.boolean("long_tick");
      msg.tick.safe_mode = r.boolean("safe_mode");
      break;
    }
    case WireMsgType::kCommand: {
      msg.command.kind = r.kind();
      msg.command.value = r.f64_finite("value");
      msg.command.gen = r.u64();
      msg.command.era = r.u32();
      break;
    }
    case WireMsgType::kAck: {
      msg.ack.now = r.f64_finite("now");
      msg.ack.kind = r.kind();
      msg.ack.gen = r.u64();
      break;
    }
  }
  return msg;
}

std::uint32_t expected_payload_bytes(std::uint8_t type) {
  switch (static_cast<WireMsgType>(type)) {
    case WireMsgType::kTelemetry: return kTelemetryBytes;
    case WireMsgType::kTick: return kTickBytes;
    case WireMsgType::kCommand: return kCommandBytes;
    case WireMsgType::kAck: return kAckBytes;
  }
  throw WireError(format("wire: unknown message type {}", type));
}

// Emits the [u32 length][u8 type] prefix for a frame of `payload` bytes,
// returning the buffer offset of the type byte so the caller can checksum
// type + payload after writing them.  `crc` widens the declared length by
// the trailer.
std::size_t begin_frame(std::string& buf, WireMsgType type, std::uint32_t payload,
                        WireCrc crc) {
  put_u32(buf, 1 + payload + (crc == WireCrc::kCrc32 ? 4u : 0u));
  const std::size_t body = buf.size();
  put_u8(buf, static_cast<std::uint8_t>(type));
  return body;
}

void end_frame(std::string& buf, std::size_t body, WireCrc crc) {
  if (crc != WireCrc::kCrc32) return;
  put_u32(buf, crc32(std::string_view(buf).substr(body)));
}

void write_all(int fd, const std::string& buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(format("wire: write failed: {}", std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

void append_telemetry_frame(std::string& buf, const TelemetryFrame& frame,
                            WireCrc crc) {
  const std::size_t body = begin_frame(buf, WireMsgType::kTelemetry,
                                       kTelemetryBytes, crc);
  put_f64(buf, frame.sample_time);
  put_f64(buf, frame.rate);
  put_u32(buf, frame.serving);
  put_u32(buf, frame.committed);
  put_u32(buf, frame.powered);
  put_u32(buf, frame.available);
  put_u64(buf, frame.jobs_in_system);
  end_frame(buf, body, crc);
}

void append_tick_frame(std::string& buf, const TickMsg& tick, WireCrc crc) {
  const std::size_t body = begin_frame(buf, WireMsgType::kTick, kTickBytes, crc);
  put_f64(buf, tick.now);
  put_u8(buf, tick.long_tick ? 1 : 0);
  put_u8(buf, tick.safe_mode ? 1 : 0);
  end_frame(buf, body, crc);
}

void append_command_frame(std::string& buf, const CommandFrame& cmd, WireCrc crc) {
  const std::size_t body =
      begin_frame(buf, WireMsgType::kCommand, kCommandBytes, crc);
  put_u8(buf, static_cast<std::uint8_t>(cmd.kind));
  put_f64(buf, cmd.value);
  put_u64(buf, cmd.gen);
  put_u32(buf, cmd.era);
  end_frame(buf, body, crc);
}

void append_ack_frame(std::string& buf, const AckWireMsg& ack, WireCrc crc) {
  const std::size_t body = begin_frame(buf, WireMsgType::kAck, kAckBytes, crc);
  put_f64(buf, ack.now);
  put_u8(buf, static_cast<std::uint8_t>(ack.kind));
  put_u64(buf, ack.gen);
  end_frame(buf, body, crc);
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (poisoned_) throw WireError("wire: decoder poisoned by earlier error");
  // Compact the consumed prefix before growing; keeps the buffer bounded
  // by one partial frame plus the freshly fed chunk.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

std::optional<WireMessage> FrameDecoder::next() {
  if (poisoned_) throw WireError("wire: decoder poisoned by earlier error");
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return std::nullopt;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(
                  static_cast<std::uint8_t>(buf_[pos_ + static_cast<std::size_t>(i)]))
              << (8 * i);
  }
  try {
    if (length == 0) throw WireError("wire: zero-length frame");
    if (length > kMaxFrameBytes) {
      throw WireError(format("wire: frame length {} exceeds cap {}", length,
                             kMaxFrameBytes));
    }
    if (avail < 4 + static_cast<std::size_t>(length)) return std::nullopt;
    const auto type_byte = static_cast<std::uint8_t>(buf_[pos_ + 4]);
    const std::uint32_t expected = expected_payload_bytes(type_byte);
    // Two legal lengths per type: legacy (type + payload) and checksummed
    // (type + payload + 4-byte CRC trailer).  Anything else is corrupt.
    const bool has_crc = length == 1 + expected + 4;
    if (!has_crc && length != 1 + expected) {
      throw WireError(format("wire: type {} frame must be {} or {} bytes, got {}",
                             type_byte, 1 + expected, 1 + expected + 4, length));
    }
    if (has_crc) {
      const std::string_view body(buf_.data() + pos_ + 4, 1 + expected);
      std::uint32_t stored = 0;
      for (int i = 0; i < 4; ++i) {
        stored |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(
                      buf_[pos_ + 4 + 1 + expected + static_cast<std::size_t>(i)]))
                  << (8 * i);
      }
      const std::uint32_t computed = crc32(body);
      if (stored != computed) {
        throw WireCrcError(format(
            "wire: type {} frame CRC mismatch (stored {:08x}, computed {:08x})",
            type_byte, stored, computed));
      }
      ++crc_frames_;
    }
    const WireMessage msg = decode_payload(static_cast<WireMsgType>(type_byte),
                                           buf_.data() + pos_ + 5, expected);
    pos_ += 4 + static_cast<std::size_t>(length);
    return msg;
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

CountersSnapshot WireServeStats::counters_snapshot() const {
  CountersSnapshot snap;
  snap.add_counter("cp.wire.accepted.telemetry", telemetry);
  snap.add_counter("cp.wire.accepted.tick", ticks);
  snap.add_counter("cp.wire.accepted.ack", acks);
  snap.add_counter("cp.wire.commands_sent", commands_sent);
  snap.add_counter("cp.wire.crc_errors", crc_errors);
  snap.add_counter("cp.wire.decode_errors", decode_errors);
  return snap;
}

WireServeStats serve_connection(ControlPlane& cp, int fd) {
  WireServeStats stats;
  serve_connection(cp, fd, stats, /*hooks=*/nullptr);
  return stats;
}

void serve_connection(ControlPlane& cp, int fd, WireServeStats& stats,
                      const WireHooks* hooks) {
  FrameDecoder decoder;
  std::string out;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(format("wire: read failed: {}", std::strerror(errno)));
    }
    if (n == 0) {
      if (decoder.buffered() > 0) {
        ++stats.decode_errors;
        throw WireError(format("wire: stream ended mid-frame ({} bytes buffered)",
                               decoder.buffered()));
      }
      return;
    }
    decoder.feed(chunk, static_cast<std::size_t>(n));
    for (;;) {
      std::optional<WireMessage> msg;
      try {
        msg = decoder.next();
      } catch (const WireCrcError&) {
        // Metered before the rethrow poisons this connection: the caller's
        // stats object survives the throw by contract.
        ++stats.crc_errors;
        throw;
      } catch (const WireError&) {
        // Any other malformation (length/type/enum/non-finite payloads).
        ++stats.decode_errors;
        throw;
      }
      if (!msg) break;
      switch (msg->type) {
        case WireMsgType::kTelemetry:
          cp.accept_telemetry(msg->telemetry);
          ++stats.telemetry;
          break;
        case WireMsgType::kTick: {
          const ControlPlane::Decision d =
              cp.on_tick(msg->tick.now, msg->tick.long_tick, msg->tick.safe_mode);
          ++stats.ticks;
          out.clear();
          for (const ControlPlane::Outbound& ob : d.commands) {
            append_command_frame(out, ob.frame);
            ++stats.commands_sent;
          }
          if (!out.empty()) write_all(fd, out);
          break;
        }
        case WireMsgType::kAck:
          cp.on_ack(msg->ack.now, msg->ack.kind, msg->ack.gen);
          ++stats.acks;
          break;
        case WireMsgType::kCommand:
          ++stats.decode_errors;
          throw WireError("wire: command frame arriving controller-ward");
      }
      if (hooks != nullptr && hooks->on_accepted) hooks->on_accepted(*msg);
    }
  }
}

}  // namespace gc
