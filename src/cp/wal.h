// Write-ahead log for the control plane's inbound traffic (DESIGN.md §13).
//
// A snapshot alone can only restore the facade to the instant it was cut;
// everything the controller absorbed afterwards — telemetry deliveries,
// ticks, acks — would be lost to a crash.  The WAL closes that window: a
// durable transport appends every *accepted* inbound message before
// acting on its effects becomes externally visible, and recovery is
//
//   restore(snapshot) ; wal_replay(log written since that snapshot)
//
// which lands the facade bit-identically on the pre-crash state (the
// tick's regenerated command frames are discarded during replay — they
// are a deterministic function of the restored state, and the drift
// oracle in tools/gcreplay proves it).
//
// Layout: an 8-byte magic "GCCPWAL1" followed by a sequence of wire
// frames (cp/wire.h) in arrival order, each carrying its CRC-32 trailer.
// Only fleet->controller types are legal — kCommand in a WAL means the
// writer was broken, not the disk.
//
// The loader is strict by the same contract as the snapshot and wire
// decoders: a bad magic, an unknown type, a CRC mismatch, a command frame
// or a truncated tail all throw (WalError, or the underlying WireError /
// WireCrcError) and the facade must be considered unusable — recovery
// retries from an older checkpoint, it never continues past corruption.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "cp/wire.h"

namespace gc {

class ControlPlane;

class WalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The 8-byte log header; the trailing '1' is the format version.
inline constexpr std::string_view kWalMagic = "GCCPWAL1";

// Appends inbound messages as CRC'd wire frames to an in-memory buffer;
// the transport owns persistence (gcreplay rewrites its PREFIX.wal file
// after every append batch, the chaos harness keeps it in memory).
class WalWriter {
 public:
  WalWriter() { reset(); }

  // Routes by type; throws WalError on kCommand (commands are never
  // journaled — replay regenerates them).
  void append(const WireMessage& msg);

  void append_telemetry(const TelemetryFrame& frame);
  void append_tick(const TickMsg& tick);
  void append_ack(const AckWireMsg& ack);

  // Truncates back to a bare header.  Called right after a snapshot is
  // cut: the checkpoint now covers everything the log used to.
  void reset();

  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

 private:
  std::string buf_;
  std::uint64_t records_ = 0;
};

struct WalReplayStats {
  std::uint64_t telemetry = 0;
  std::uint64_t ticks = 0;
  std::uint64_t acks = 0;
};

// Replays a serialized log into the facade: telemetry -> accept_telemetry,
// tick -> on_tick (decision discarded), ack -> on_ack.  Strict: throws
// WalError / WireError / WireCrcError on any malformation, including a
// truncated final frame.
WalReplayStats wal_replay(ControlPlane& cp, std::string_view bytes);

}  // namespace gc
