#include "cp/snapshot.h"

#include <bit>
#include <cmath>

#include "cp/crc32.h"
#include "util/format.h"

namespace gc {
namespace {

constexpr std::string_view kMagic = "GCCPSNAP";

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

std::uint32_t get_u32(std::string_view data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(
             data[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void SnapshotWriter::u8(std::uint8_t v) {
  buf_.push_back(static_cast<char>(v));
}

void SnapshotWriter::u32(std::uint32_t v) { put_u32(buf_, v); }

void SnapshotWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void SnapshotWriter::boolean(bool v) { u8(v ? 1 : 0); }

void SnapshotWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.append(v);
}

void SnapshotReader::fail(const std::string& why) {
  poisoned_ = true;
  throw SnapshotError(why);
}

void SnapshotReader::need(std::size_t n, const char* what) {
  if (poisoned_) fail("snapshot: reader poisoned by earlier error");
  if (data_.size() - pos_ < n) {
    fail(format("snapshot: truncated payload reading {} ({} of {} bytes left)",
                what, data_.size() - pos_, n));
  }
}

std::uint8_t SnapshotReader::u8() {
  need(1, "u8");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t SnapshotReader::u32() {
  need(4, "u32");
  const std::uint32_t v = get_u32(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t SnapshotReader::u64() {
  need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
             data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double SnapshotReader::f64() {
  const double v = std::bit_cast<double>(u64());
  if (!std::isfinite(v)) fail("snapshot: non-finite double field");
  return v;
}

bool SnapshotReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) fail(format("snapshot: boolean byte must be 0 or 1, got {}", v));
  return v == 1;
}

std::string SnapshotReader::str() {
  const std::uint32_t n = u32();
  need(n, "string bytes");
  std::string out(data_.substr(pos_, n));
  pos_ += n;
  return out;
}

void SnapshotReader::expect_end() {
  if (poisoned_) fail("snapshot: reader poisoned by earlier error");
  if (pos_ != data_.size()) {
    fail(format("snapshot: {} trailing bytes after the last field",
                data_.size() - pos_));
  }
}

std::string encode_snapshot(std::string_view payload) {
  std::string out;
  out.reserve(kMagic.size() + 12 + payload.size());
  out.append(kMagic);
  put_u32(out, kSnapshotVersion);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  put_u32(out, crc32(payload));
  return out;
}

std::string decode_snapshot(std::string_view bytes) {
  if (bytes.size() < kMagic.size() + 12) {
    throw SnapshotError(
        format("snapshot: {} bytes is shorter than the smallest envelope",
               bytes.size()));
  }
  if (bytes.substr(0, kMagic.size()) != kMagic) {
    throw SnapshotError("snapshot: bad magic (not a GCCPSNAP artifact)");
  }
  std::size_t pos = kMagic.size();
  const std::uint32_t version = get_u32(bytes, pos);
  pos += 4;
  if (version != kSnapshotVersion) {
    throw SnapshotError(format("snapshot: unsupported version {} (expected {})",
                               version, kSnapshotVersion));
  }
  const std::uint32_t payload_len = get_u32(bytes, pos);
  pos += 4;
  if (bytes.size() - pos != static_cast<std::size_t>(payload_len) + 4) {
    throw SnapshotError(format(
        "snapshot: envelope declares {} payload bytes but {} follow the header",
        payload_len, bytes.size() - pos));
  }
  const std::string_view payload = bytes.substr(pos, payload_len);
  const std::uint32_t want = get_u32(bytes, pos + payload_len);
  const std::uint32_t got = crc32(payload);
  if (want != got) {
    throw SnapshotError(format(
        "snapshot: CRC mismatch (stored {:08x}, computed {:08x})", want, got));
  }
  return std::string(payload);
}

}  // namespace gc
