#include "power/power_model.h"

#include <cmath>
#include <stdexcept>

namespace gc {

PowerModel::PowerModel(PowerModelParams params) : params_(params) {
  const auto& p = params_;
  const bool valid = p.p_idle_watts >= 0.0 && p.p_max_watts >= p.p_idle_watts &&
                     p.alpha >= 1.0 && p.p_off_watts >= 0.0 &&
                     p.p_off_watts <= p.p_idle_watts && std::isfinite(p.alpha);
  if (!valid) {
    throw std::invalid_argument(
        "PowerModel: require 0 <= p_off <= p_idle <= p_max and alpha >= 1");
  }
}

double PowerModel::power(double speed, double utilization) const noexcept {
  const double s = speed < 0.0 ? 0.0 : (speed > 1.0 ? 1.0 : speed);
  const double u = utilization < 0.0 ? 0.0 : (utilization > 1.0 ? 1.0 : utilization);
  const double gate = params_.utilization_gated ? u : 1.0;
  return params_.p_idle_watts + dynamic_range() * std::pow(s, params_.alpha) * gate;
}

}  // namespace gc
