#include "power/energy_meter.h"

#include "util/assert.h"

namespace gc {

const char* to_string(PowerState state) noexcept {
  switch (state) {
    case PowerState::kOff: return "off";
    case PowerState::kBooting: return "booting";
    case PowerState::kOn: return "on";
    case PowerState::kShuttingDown: return "shutting_down";
    case PowerState::kFailed: return "failed";
  }
  return "?";
}

EnergyMeter::EnergyMeter(const PowerModel* model, double start_time)
    : model_(model), last_time_(start_time) {
  GC_CHECK(model != nullptr, "EnergyMeter needs a power model");
}

double EnergyMeter::instantaneous_power() const noexcept {
  switch (state_) {
    case PowerState::kOff:
    case PowerState::kFailed: return model_->off_power();
    case PowerState::kBooting:
    case PowerState::kShuttingDown: return model_->transition_power();
    case PowerState::kOn: return model_->power(speed_, busy_ ? 1.0 : 0.0);
  }
  return 0.0;
}

void EnergyMeter::integrate(double now) {
  GC_CHECK(now >= last_time_, "EnergyMeter: time went backwards");
  const double joules = (now - last_time_) * instantaneous_power();
  switch (state_) {
    case PowerState::kOn: by_class_[busy_ ? 0 : 1] += joules; break;
    case PowerState::kBooting:
    case PowerState::kShuttingDown: by_class_[2] += joules; break;
    case PowerState::kOff:
    case PowerState::kFailed: by_class_[3] += joules; break;
  }
  last_time_ = now;
}

void EnergyMeter::update(double now, PowerState state, double speed, bool busy) {
  integrate(now);
  state_ = state;
  speed_ = speed;
  busy_ = busy;
}

void EnergyMeter::flush(double now) { integrate(now); }

double EnergyMeter::total_joules() const noexcept {
  return by_class_[0] + by_class_[1] + by_class_[2] + by_class_[3];
}

}  // namespace gc
