#include "power/frequency_ladder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.h"

namespace gc {

FrequencyLadder::FrequencyLadder(std::vector<double> levels_ghz)
    : levels_(std::move(levels_ghz)) {
  if (levels_.empty()) throw std::invalid_argument("FrequencyLadder: no levels");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (!(levels_[i] > 0.0) || !std::isfinite(levels_[i])) {
      throw std::invalid_argument("FrequencyLadder: levels must be positive finite");
    }
    if (i > 0 && !(levels_[i] > levels_[i - 1])) {
      throw std::invalid_argument("FrequencyLadder: levels must be strictly increasing");
    }
  }
  speeds_.reserve(levels_.size());
  const double fmax = levels_.back();
  for (const double f : levels_) speeds_.push_back(f / fmax);
  min_speed_ = speeds_.front();
}

FrequencyLadder::FrequencyLadder(ContinuousTag, double min_speed)
    : min_speed_(min_speed), continuous_(true) {}

FrequencyLadder FrequencyLadder::continuous(double min_speed) {
  if (!(min_speed > 0.0 && min_speed <= 1.0)) {
    throw std::invalid_argument("FrequencyLadder::continuous: min_speed in (0,1]");
  }
  return FrequencyLadder(ContinuousTag{}, min_speed);
}

FrequencyLadder FrequencyLadder::default_ladder() {
  return FrequencyLadder({0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4});
}

double FrequencyLadder::speed_of_level(std::size_t i) const {
  GC_CHECK(!continuous_, "speed_of_level on a continuous ladder");
  GC_CHECK(i < speeds_.size(), "ladder level out of range");
  return speeds_[i];
}

double FrequencyLadder::round_up(double s) const noexcept {
  if (continuous_) return std::clamp(s, min_speed_, 1.0);
  const auto it = std::lower_bound(speeds_.begin(), speeds_.end(), s - 1e-12);
  return it == speeds_.end() ? 1.0 : *it;
}

double FrequencyLadder::round_down(double s) const noexcept {
  if (continuous_) return std::clamp(s, min_speed_, 1.0);
  const auto it = std::upper_bound(speeds_.begin(), speeds_.end(), s + 1e-12);
  return it == speeds_.begin() ? speeds_.front() : *(it - 1);
}

bool FrequencyLadder::contains(double s, double tol) const noexcept {
  if (continuous_) return s >= min_speed_ - tol && s <= 1.0 + tol;
  return std::any_of(speeds_.begin(), speeds_.end(),
                     [&](double level) { return std::abs(level - s) <= tol; });
}

}  // namespace gc
