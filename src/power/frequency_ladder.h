// Discrete DVFS frequency ladder.
//
// Real processors expose a small set of P-states; the solver works in
// normalized speed s = f / f_max and rounds its continuous optimum up to
// the next available level.  A ladder with `continuous()` semantics is also
// supported for the relaxation analysis (ablation F10).
#pragma once

#include <span>
#include <vector>

namespace gc {

class FrequencyLadder {
 public:
  // `levels_ghz` must be strictly increasing and positive; the last entry
  // is f_max.  Throws std::invalid_argument otherwise.
  explicit FrequencyLadder(std::vector<double> levels_ghz);

  // A ladder that admits any speed in [min_speed, 1].
  [[nodiscard]] static FrequencyLadder continuous(double min_speed = 0.1);

  // The default ladder used throughout the evaluation: 600 MHz – 2.4 GHz in
  // 200 MHz steps (a typical 2010-era Intel speedstep table).
  [[nodiscard]] static FrequencyLadder default_ladder();

  [[nodiscard]] bool is_continuous() const noexcept { return continuous_; }
  [[nodiscard]] double f_max_ghz() const noexcept { return levels_.empty() ? 0.0 : levels_.back(); }
  [[nodiscard]] double min_speed() const noexcept { return min_speed_; }
  [[nodiscard]] std::span<const double> levels_ghz() const noexcept { return levels_; }
  [[nodiscard]] std::size_t num_levels() const noexcept { return levels_.size(); }

  // Normalized speed of level i (level 0 is the slowest).
  [[nodiscard]] double speed_of_level(std::size_t i) const;

  // Smallest available speed >= s (clamped to 1.0 from above).  For a
  // continuous ladder this is max(s, min_speed).
  [[nodiscard]] double round_up(double s) const noexcept;

  // Largest available speed <= s (clamped to min_speed from below).
  [[nodiscard]] double round_down(double s) const noexcept;

  [[nodiscard]] bool contains(double s, double tol = 1e-9) const noexcept;

 private:
  struct ContinuousTag {};
  FrequencyLadder(ContinuousTag, double min_speed);

  std::vector<double> levels_;   // GHz, ascending; empty when continuous
  std::vector<double> speeds_;   // levels_ / f_max
  double min_speed_ = 0.0;
  bool continuous_ = false;
};

}  // namespace gc
