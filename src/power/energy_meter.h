// Energy accounting.
//
// The simulator reports *when* a server changes (state, speed, busy/idle);
// the meter integrates power over the piecewise-constant segments and keeps
// a per-category breakdown (busy / idle / transition / off) so the
// experiment tables can attribute where the joules went.
#pragma once

#include <array>
#include <cstddef>

#include "power/power_model.h"

namespace gc {

// kFailed is a fail-stop crash state (fault injection): the server serves
// nothing and draws off power (the PSU tripped / the host is fenced) until
// a repair returns it to kOff.
enum class PowerState : int { kOff = 0, kBooting = 1, kOn = 2, kShuttingDown = 3, kFailed = 4 };
[[nodiscard]] const char* to_string(PowerState state) noexcept;

class EnergyMeter {
 public:
  EnergyMeter(const PowerModel* model, double start_time);

  // Accounts the interval [last_update, now) at the *previous* operating
  // point, then records the new one.  `busy` means a job is executing.
  void update(double now, PowerState state, double speed, bool busy);

  // Finalizes accounting up to `now` without changing the operating point.
  void flush(double now);

  [[nodiscard]] double total_joules() const noexcept;
  [[nodiscard]] double joules_busy() const noexcept { return by_class_[0]; }
  [[nodiscard]] double joules_idle() const noexcept { return by_class_[1]; }
  [[nodiscard]] double joules_transition() const noexcept { return by_class_[2]; }
  [[nodiscard]] double joules_off() const noexcept { return by_class_[3]; }

  [[nodiscard]] double last_update_time() const noexcept { return last_time_; }
  [[nodiscard]] double instantaneous_power() const noexcept;

 private:
  void integrate(double now);

  const PowerModel* model_;  // non-owning; outlives the meter
  double last_time_;
  PowerState state_ = PowerState::kOff;
  double speed_ = 1.0;
  bool busy_ = false;
  // busy / idle / transition / off
  std::array<double, 4> by_class_{};
};

}  // namespace gc
