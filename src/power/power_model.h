// Server power model.
//
// The standard affine + polynomial law used throughout the DVFS literature
// (and by the paper's line of work):
//
//     P(s, u) = P_idle + (P_max - P_idle) * s^alpha * g(u)
//
// where s = f/f_max is the normalized speed, u in [0,1] is utilization and
// g(u) = 1 when `utilization_gated` is false ("worst-case" power: an ON
// server at speed s always burns its speed-s power) or g(u) = u when true
// (dynamic power only while actually executing).  The default is gated,
// matching what a busy/idle-accounting simulator measures; the optimizer
// supports both so the F10 ablation can compare them.
//
// Off servers draw `p_off`; a booting (resp. shutting-down) server draws
// `p_max` (full power but zero service), the standard pessimistic model of
// VOVF transition cost.
#pragma once

#include <limits>

namespace gc {

struct PowerModelParams {
  double p_idle_watts = 150.0;  // power of an ON server at any speed, u = 0
  double p_max_watts = 250.0;   // power at s = 1, u = 1
  double alpha = 3.0;           // dynamic power exponent (cubic in f)
  double p_off_watts = 5.0;     // "off" draw (BMC, NIC wake logic)
  bool utilization_gated = true;
};

class PowerModel {
 public:
  explicit PowerModel(PowerModelParams params = {});

  [[nodiscard]] const PowerModelParams& params() const noexcept { return params_; }

  // Instantaneous power of an ON server at speed s with utilization u.
  [[nodiscard]] double power(double speed, double utilization) const noexcept;

  // Expected power given average utilization (equals `power` by linearity
  // of g; provided for readability at call sites doing steady-state math).
  [[nodiscard]] double expected_power(double speed, double utilization) const noexcept {
    return power(speed, utilization);
  }

  [[nodiscard]] double busy_power(double speed) const noexcept { return power(speed, 1.0); }
  [[nodiscard]] double idle_power() const noexcept { return params_.p_idle_watts; }
  [[nodiscard]] double off_power() const noexcept { return params_.p_off_watts; }
  // Transitioning servers (booting or shutting down) burn full power.
  [[nodiscard]] double transition_power() const noexcept { return params_.p_max_watts; }

  [[nodiscard]] double p_max() const noexcept { return params_.p_max_watts; }
  [[nodiscard]] double dynamic_range() const noexcept {
    return params_.p_max_watts - params_.p_idle_watts;
  }

 private:
  PowerModelParams params_;
};

// VOVF transition cost model: delays during which the server consumes
// transition power and serves nothing.
struct TransitionModel {
  double boot_delay_s = 90.0;       // OFF -> ON
  double shutdown_delay_s = 10.0;   // ON -> OFF (after draining)

  [[nodiscard]] double boot_energy_joules(const PowerModel& pm) const noexcept {
    return boot_delay_s * pm.transition_power();
  }
  [[nodiscard]] double shutdown_energy_joules(const PowerModel& pm) const noexcept {
    return shutdown_delay_s * pm.transition_power();
  }

  // Classic VOVF break-even: how long a server must stay OFF before the
  // shutdown+boot energy pays for itself against the idle draw it avoids.
  // Shutting down for shorter dips than this *wastes* energy.  Returns
  // +inf when idle power does not exceed the off draw.
  [[nodiscard]] double break_even_time_s(const PowerModel& pm) const noexcept {
    const double saved_per_second = pm.idle_power() - pm.off_power();
    if (!(saved_per_second > 0.0)) return std::numeric_limits<double>::infinity();
    return (boot_energy_joules(pm) + shutdown_energy_joules(pm)) / saved_per_second;
  }
};

}  // namespace gc
