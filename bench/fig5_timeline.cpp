// F5 — Time series under a diurnal day (Combined/DCP policy).
//
// Prints λ(t), serving servers m(t), common speed s(t), instantaneous
// cluster power P(t) and the windowed mean response time.  Expected shape:
// m(t) and s(t) track the sinusoidal load with a small lead (safety margin
// + sliding-max prediction); response stays below the 500 ms guarantee all
// day; power follows the load instead of the flat NPM ceiling.
#include <iostream>

#include "exp/runner.h"
#include "trace_out.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const gc::CliArgs args(argc, argv);
  gcbench::TraceOut trace_out(args);

  gc::RunSpec spec;
  spec.config = gc::bench_cluster_config();
  spec.policy = gc::PolicyKind::kCombinedDcp;
  spec.policy_options.dcp = gc::bench_dcp_params();
  spec.sim.record_interval_s = 180.0;
  spec.seed = 505;
  trace_out.attach(spec.sim);

  const gc::Scenario scenario =
      gc::make_scenario(gc::ScenarioKind::kDiurnal, spec.config, 0.7, 55, 7200.0);
  const gc::SimResult result = gc::run_one(scenario, spec);
  trace_out.write(result);

  gc::TablePrinter table("Fig 5: combined-dcp timeline, diurnal day (7200 s compressed)");
  table.column("t", {.precision = 0, .unit = "s"})
      .column("lambda", {.precision = 1, .unit = "jobs/s"})
      .column("m(t)", {.precision = 0})
      .column("s(t)", {.precision = 2})
      .column("P(t)", {.precision = 0, .unit = "W"})
      .column("win T", {.precision = 0, .unit = "ms"});
  for (const gc::TimelinePoint& p : result.timeline) {
    table.row()
        .cell(p.time)
        .cell(p.arrival_rate)
        .cell(static_cast<long long>(p.serving))
        .cell(p.speed)
        .cell(p.power_watts)
        .cell(p.window_mean_response_s * 1e3);
  }
  std::cout << table;
  std::cout << gc::format(
      "\nday: energy {:.2f} kWh | mean T {:.0f} ms | p95 {:.0f} ms | boots {} | "
      "shutdowns {} | SLA {}\n",
      result.energy.total_j() / 3.6e6, result.mean_response_s * 1e3,
      result.p95_response_s * 1e3, result.boots, result.shutdowns,
      result.sla_met(spec.config.t_ref_s) ? "met" : "MISSED");
  return 0;
}
