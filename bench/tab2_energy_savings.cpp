// T2 — Total energy, savings vs NPM and SLA compliance per policy × trace
// (the paper's headline table).
//
// Expected shape: combined-dcp achieves the largest savings on every
// trace while keeping the mean-response guarantee; vovf-only beats
// dvfs-only on these mid-load traces (idle power dominates); all savings
// come with SLA "met".
#include <iostream>

#include "exp/comparison.h"

int main() {
  gc::RunSpec spec;
  spec.config = gc::bench_cluster_config();
  spec.policy_options.dcp = gc::bench_dcp_params();
  spec.seed = 606;

  const std::vector<gc::PolicyKind> policies = {
      gc::PolicyKind::kThreshold, gc::PolicyKind::kDvfsOnly, gc::PolicyKind::kVovfOnly,
      gc::PolicyKind::kCombinedSinglePeriod, gc::PolicyKind::kCombinedDcp};

  struct TraceSpec {
    gc::ScenarioKind kind;
    double level;
    double day_s;
  };
  const TraceSpec traces[] = {
      {gc::ScenarioKind::kDiurnal, 0.7, 7200.0},
      {gc::ScenarioKind::kFlashCrowd, 0.8, 7200.0},
      {gc::ScenarioKind::kWc98Like, 0.7, 2400.0},  // 3 compressed days
  };

  std::vector<gc::ComparisonRow> all_rows;
  for (const TraceSpec& t : traces) {
    const gc::Scenario scenario =
        gc::make_scenario(t.kind, spec.config, t.level, 77, t.day_s);
    const auto rows = gc::compare_policies(scenario, spec, policies);
    all_rows.insert(all_rows.end(), rows.begin(), rows.end());
  }
  std::cout << gc::comparison_table(
      "Table 2: energy and SLA per policy x trace (savings vs NPM)", all_rows);
  return 0;
}
