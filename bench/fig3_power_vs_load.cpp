// F3 — Steady-state cluster power vs load for the four policies
// (analytic, the paper's "model" figure).
//
// NPM:       M servers at s=1 (utilization-gated dynamic power).
// DVFS-only: M servers at the SLA-minimal common speed.
// VOVF-only: the fewest full-speed servers meeting the SLA.
// Combined:  the joint optimum.
//
// Expected shape: combined <= min(dvfs, vovf) everywhere; vovf-only wins
// over dvfs-only at low load (idle power dominates) and the curves
// converge to NPM as load approaches feasibility.
#include <iostream>

#include "core/provisioner.h"
#include "exp/scenario.h"
#include "util/table.h"

int main() {
  const gc::ClusterConfig config = gc::bench_cluster_config();
  const gc::Provisioner solver(config);
  const unsigned m_all = config.max_servers;

  gc::TablePrinter table("Fig 3: steady-state cluster power vs load (analytic)");
  table.column("load", {.precision = 1, .unit = "jobs/s"})
      .column("npm", {.precision = 0, .unit = "W"})
      .column("dvfs-only", {.precision = 0, .unit = "W"})
      .column("vovf-only", {.precision = 0, .unit = "W"})
      .column("combined", {.precision = 0, .unit = "W"})
      .column("combined saves", {.precision = 1, .unit = "% vs npm"});

  const double max_rate = config.max_feasible_arrival_rate();
  for (double frac = 0.05; frac <= 1.0001; frac += 0.05) {
    const double lambda = frac * max_rate;
    const double npm = solver.evaluate(lambda, m_all, 1.0).power_watts;
    const double dvfs = solver.best_speed_for(lambda, m_all).power_watts;
    // VOVF-only: fewest servers at full speed.
    double vovf = npm;
    for (unsigned m = 1; m <= m_all; ++m) {
      const gc::OperatingPoint pt = solver.evaluate(lambda, m, 1.0);
      if (pt.feasible) {
        vovf = pt.power_watts;
        break;
      }
    }
    const double combined = solver.solve(lambda).power_watts;
    table.row()
        .cell(lambda)
        .cell(npm)
        .cell(dvfs)
        .cell(vovf)
        .cell(combined)
        .cell((1.0 - combined / npm) * 100.0);
  }
  std::cout << table;
  return 0;
}
