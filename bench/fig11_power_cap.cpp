// F11 (extension) — Power-capped operation: the "quantitative control of
// power consumption" the abstract promises, exercised as the dual problem.
//
//   (a) capacity curve: max supportable arrival rate vs power cap;
//   (b) response-optimal operation under a cap at fixed load.
//
// Expected shape: (a) is the inverse of Fig 3's combined curve — concave,
// saturating at the cluster's feasible maximum once the cap covers
// full-speed operation; (b) response time degrades gracefully as the cap
// tightens until the SLA becomes unattainable and the solver reports that
// load shedding is required.
#include <iostream>

#include "core/power_cap.h"
#include "exp/scenario.h"
#include "util/format.h"
#include "util/table.h"

int main() {
  const gc::ClusterConfig config = gc::bench_cluster_config();
  const gc::Provisioner solver(config);
  const gc::PowerCapSolver cap_solver(&solver);

  {
    gc::TablePrinter table("Fig 11a: max supportable load vs power cap (SLA held)");
    table.column("cap", {.precision = 0, .unit = "W"})
        .column("max load", {.precision = 1, .unit = "jobs/s"})
        .column("load frac", {.precision = 2})
        .column("m @ cap", {.precision = 0})
        .column("s @ cap", {.precision = 2});
    for (double cap = 250.0; cap <= 4250.0; cap += 400.0) {
      const double rate = cap_solver.max_supportable_rate(cap);
      const gc::OperatingPoint pt = solver.solve(rate);
      table.row()
          .cell(cap)
          .cell(rate)
          .cell(rate / config.max_feasible_arrival_rate())
          .cell(static_cast<long long>(pt.servers))
          .cell(pt.speed);
    }
    std::cout << table << '\n';
  }

  {
    const double lambda = 0.5 * config.max_feasible_arrival_rate();
    gc::TablePrinter table(gc::format(
        "Fig 11b: response-optimal operation under a cap (load {:.0f} jobs/s)", lambda));
    table.column("cap", {.precision = 0, .unit = "W"})
        .column("m", {.precision = 0})
        .column("s", {.precision = 2})
        .column("power", {.precision = 0, .unit = "W"})
        .column("mean T", {.precision = 0, .unit = "ms"})
        .column("note");
    for (double cap = 4000.0; cap >= 1200.0; cap -= 400.0) {
      const auto pt = cap_solver.best_point_under_cap(lambda, cap);
      table.row().cell(cap);
      if (pt) {
        table.cell(static_cast<long long>(pt->servers))
            .cell(pt->speed)
            .cell(pt->power_watts)
            .cell(pt->response_time_s * 1e3)
            .cell("ok");
      } else {
        table.cell(static_cast<long long>(0))
            .cell(0.0)
            .cell(0.0)
            .cell(0.0)
            .cell("SHED LOAD");
      }
    }
    std::cout << table;
  }
  return 0;
}
