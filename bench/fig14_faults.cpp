// F14 — Robustness under fail-stop faults (extension; not in the paper):
//   (a) the policy comparison of Tab. 2 re-run while servers crash with
//       mean time between failures swept from "never" down to 900 s
//       (compressed-day scale), with exponential repairs and a 10% chance
//       that any boot hangs;
//   (b) graceful degradation: 10 of 16 servers die for good at mid-day and
//       admission control sheds the excess load instead of letting the
//       queues collapse.
//
// Expected shape: every policy loses capacity as the MTBF shrinks, but the
// failure-aware DCP (detector + spare capacity + boot retries) holds the
// per-job SLA-violation rate below the plain DCP at every nonzero fault
// rate, for a single-digit-percent energy premium.  In (b) the run with
// admission control sheds a visible fraction of the offered load and keeps
// the *admitted* jobs within the response guarantee, while the run without
// it collapses.
#include <cstdint>
#include <iostream>
#include <limits>
#include <vector>

#include "exp/comparison.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "trace_out.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"

namespace {

constexpr double kMttrS = 180.0;
constexpr double kBootHangProb = 0.1;
constexpr std::uint64_t kFaultSeed = 0xf14aULL;

gc::RunSpec make_spec(const gc::ClusterConfig& config, const gc::DcpParams& dcp,
                      gc::PolicyKind policy, double mtbf_s) {
  gc::RunSpec spec;
  spec.config = config;
  spec.policy = policy;
  spec.policy_options.dcp = dcp;
  spec.seed = 7;
  if (mtbf_s > 0.0) {
    spec.sim.faults.mtbf_s = mtbf_s;
    spec.sim.faults.mttr_s = kMttrS;
    spec.sim.faults.boot_hang_prob = kBootHangProb;
    spec.sim.faults.seed = kFaultSeed;
  }
  // Admission control is on for every policy: overload shedding is an
  // infrastructure property, not a policy feature, so the comparison stays
  // fair.
  spec.sim.admission.enabled = true;
  spec.sim.admission.mu_max = config.mu_max;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const gc::CliArgs args(argc, argv);
  gcbench::TraceOut trace_out(args);

  const gc::ClusterConfig config = gc::bench_cluster_config();
  const gc::DcpParams dcp = gc::bench_dcp_params();
  const gc::Scenario scenario =
      gc::make_scenario(gc::ScenarioKind::kDiurnal, config, 0.7);

  const std::vector<double> mtbf_values = {0.0, 7200.0, 3600.0, 1800.0, 900.0};
  const std::vector<gc::PolicyKind> policies = {
      gc::PolicyKind::kNpm, gc::PolicyKind::kDvfsOnly, gc::PolicyKind::kVovfOnly,
      gc::PolicyKind::kCombinedDcp, gc::PolicyKind::kDcpFailureAware};

  gc::TablePrinter table(gc::format(
      "Fig 14a: policies under fail-stop faults (diurnal day, MTTR {:.9g} s, "
      "{:.9g}% boot hangs)",
      kMttrS, kBootHangProb * 100.0));
  table.column("MTBF", {.precision = 0, .unit = "s"})
      .column("policy")
      .column("energy", {.precision = 2, .unit = "kWh"})
      .column("savings", {.precision = 1, .unit = "% vs NPM"})
      .column("mean T", {.precision = 1, .unit = "ms"})
      .column("viol", {.precision = 2, .unit = "% jobs"})
      .column("shed", {.precision = 2, .unit = "%"})
      .column("unavail", {.precision = 2, .unit = "%"})
      .column("SLA");

  for (const double mtbf : mtbf_values) {
    std::vector<gc::Cell> cells;
    cells.reserve(policies.size());
    for (const gc::PolicyKind policy : policies) {
      cells.push_back({scenario, make_spec(config, dcp, policy, mtbf)});
    }
    const std::vector<gc::SimResult> results = gc::run_all(cells);
    const double npm_energy = results[0].energy.total_j();
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const gc::ComparisonRow row = gc::make_row(
          scenario.name, policies[i], results[i], npm_energy, config.t_ref_s);
      table.row()
          .cell(mtbf)
          .cell(gc::to_string(row.policy))
          .cell(row.energy_kwh)
          .cell(row.savings_vs_npm_pct)
          .cell(row.mean_response_ms)
          .cell(row.job_violation_pct)
          .cell(row.shed_pct)
          .cell(row.unavailability_pct)
          .cell(row.sla_met ? "yes" : "NO");
    }
  }
  std::cout << table << '\n';

  // -- (b) capacity shortfall: most of the fleet dies at mid-day -------------
  // Six survivors serve at most 60 jobs/s against a ~90/s midday peak: a
  // deficit no controller can provision away, so the contrast is pure
  // admission control.
  gc::TablePrinter demo(
      "Fig 14b: graceful degradation when 10 of 16 servers die at mid-day");
  demo.column("admission")
      .column("mean T", {.precision = 1, .unit = "ms"})
      .column("p95 T", {.precision = 1, .unit = "ms"})
      .column("viol", {.precision = 2, .unit = "% jobs"})
      .column("shed", {.precision = 2, .unit = "%"})
      .column("lost", {.precision = 0, .unit = "jobs"})
      .column("unavail", {.precision = 2, .unit = "%"})
      .column("SLA");

  gc::SimResult traced_result;
  for (const bool admit : {false, true}) {
    gc::RunSpec spec = make_spec(config, dcp, gc::PolicyKind::kDcpFailureAware,
                                 /*mtbf_s=*/0.0);
    spec.sim.admission.enabled = admit;
    for (std::uint32_t s = 6; s < config.max_servers; ++s) {
      spec.sim.faults.script.push_back(
          {scenario.horizon_s * 0.5, s,
           std::numeric_limits<double>::infinity()});
    }
    // Without shedding the backlog never drains; bound the run.
    spec.sim.hard_stop_s = scenario.horizon_s * 1.25;
    // The sinks watch the graceful-degradation run (admission on): the one
    // with shedding instants and the failed-server lifecycle lanes.
    if (admit) trace_out.attach(spec.sim);
    const gc::SimResult result = gc::run_one(scenario, spec);
    if (admit) traced_result = result;
    demo.row()
        .cell(admit ? "on" : "off")
        .cell(result.mean_response_s * 1e3)
        .cell(result.p95_response_s * 1e3)
        .cell(result.job_violation_ratio * 100.0)
        .cell(result.shed_ratio * 100.0)
        .cell(static_cast<long long>(result.jobs_lost))
        .cell(result.unavailability * 100.0)
        .cell(result.sla_met(config.t_ref_s) ? "yes" : "NO");
  }
  std::cout << demo;
  trace_out.write(traced_result);
  return 0;
}
