// F2 — Optimal operating points vs load.
//
// For a sweep of arrival rates, prints the jointly optimal number of
// active servers m*, the common speed s*, the predicted cluster power and
// the predicted mean response time, plus the continuous relaxation for
// reference.  Expected shape: m* grows roughly linearly with load while s*
// saw-tooths just above the SLA-minimal speed; predicted response pins at
// t_ref (the solver runs exactly as slow as the guarantee allows).
#include <iostream>

#include "core/provisioner.h"
#include "exp/scenario.h"
#include "util/table.h"

int main() {
  const gc::ClusterConfig config = gc::bench_cluster_config();
  const gc::Provisioner solver(config);

  gc::TablePrinter table("Fig 2: optimal (m, s) operating points, M=16, t_ref=500 ms");
  table.column("load", {.precision = 1, .unit = "jobs/s"})
      .column("load frac", {.precision = 2})
      .column("m*", {.precision = 0})
      .column("s*", {.precision = 3})
      .column("power", {.precision = 0, .unit = "W"})
      .column("pred T", {.precision = 1, .unit = "ms"})
      .column("util", {.precision = 2})
      .column("relaxed m", {.precision = 2})
      .column("relaxed power", {.precision = 0, .unit = "W"});

  const double max_rate = config.max_feasible_arrival_rate();
  for (double frac = 0.05; frac <= 1.0001; frac += 0.05) {
    const double lambda = frac * max_rate;
    const gc::OperatingPoint pt = solver.solve(lambda);
    const gc::ContinuousSolution relaxed = solver.solve_continuous(lambda);
    table.row()
        .cell(lambda)
        .cell(frac)
        .cell(static_cast<long long>(pt.servers))
        .cell(pt.speed)
        .cell(pt.power_watts)
        .cell(pt.response_time_s * 1e3)
        .cell(pt.utilization)
        .cell(relaxed.servers)
        .cell(relaxed.power_watts);
  }
  std::cout << table;
  return 0;
}
