// T4 (extension) — Statistical confidence for the headline table.
//
// Table 2 reports single runs (one seed per cell, identical across
// policies).  This bench reruns the diurnal comparison with independent
// replications and reports mean ± 95% t-interval per policy, demonstrating
// that the policy ordering is not seed luck.  Replications execute in
// parallel on the process thread pool with per-replication RNG streams.
//
// The pooled p95/p99 columns come from merging the replications'
// LogHistograms (stats/log_histogram.h) — exact pooling of the 8 response
// distributions, which per-run P² estimates cannot provide (averaging
// per-run quantiles is not the quantile of the pooled sample).
#include <iostream>

#include "exp/comparison.h"
#include "stats/accumulators.h"
#include "stats/batch_means.h"
#include "stats/log_histogram.h"
#include "util/table.h"

namespace {

struct Aggregate {
  gc::MeanVarAccumulator energy_kwh;
  gc::MeanVarAccumulator mean_t_ms;
  gc::MeanVarAccumulator viol_pct;
};

}  // namespace

int main() {
  constexpr unsigned kReplications = 8;
  gc::RunSpec spec;
  spec.config = gc::bench_cluster_config();
  spec.policy_options.dcp = gc::bench_dcp_params();
  spec.seed = 5150;
  const gc::Scenario scenario =
      gc::make_scenario(gc::ScenarioKind::kDiurnal, spec.config, 0.7, 31, 3600.0);

  const gc::PolicyKind policies[] = {gc::PolicyKind::kNpm, gc::PolicyKind::kDvfsOnly,
                                     gc::PolicyKind::kVovfOnly,
                                     gc::PolicyKind::kCombinedDcp};

  gc::TablePrinter table(
      "Table 4: replicated diurnal comparison, mean +/- 95% CI (8 replications)");
  table.column("policy")
      .column("energy", {.precision = 3, .unit = "kWh"})
      .column("+/-", {.precision = 3})
      .column("mean T", {.precision = 1, .unit = "ms"})
      .column("+/-", {.precision = 1})
      .column("pool p95", {.precision = 1, .unit = "ms"})
      .column("pool p99", {.precision = 1, .unit = "ms"})
      .column("viol", {.precision = 2, .unit = "%"})
      .column("+/-", {.precision = 2});

  for (const gc::PolicyKind policy : policies) {
    gc::RunSpec cell = spec;
    cell.policy = policy;
    const auto results = gc::run_replicated(scenario, cell, kReplications);
    Aggregate agg;
    gc::LogHistogram pooled;
    for (const gc::SimResult& r : results) {
      agg.energy_kwh.add(r.energy.total_j() / 3.6e6);
      agg.mean_t_ms.add(r.mean_response_s * 1e3);
      agg.viol_pct.add(r.job_violation_ratio * 100.0);
      pooled.merge(r.response_hist);
    }
    const double t = gc::t_quantile(0.95, kReplications - 1);
    table.row()
        .cell(to_string(policy))
        .cell(agg.energy_kwh.mean())
        .cell(t * agg.energy_kwh.sem())
        .cell(agg.mean_t_ms.mean())
        .cell(t * agg.mean_t_ms.sem())
        .cell(pooled.quantile(0.95) * 1e3)
        .cell(pooled.quantile(0.99) * 1e3)
        .cell(agg.viol_pct.mean())
        .cell(t * agg.viol_pct.sem());
  }
  std::cout << table;
  return 0;
}
