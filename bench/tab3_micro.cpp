// T3 — Micro-performance of the solver and the simulator core
// (google-benchmark).  Not a figure of the paper; documents that the
// "more boilerplate" solver+simulator stack is fast enough that every
// other bench is workload-bound, not infrastructure-bound.
#include <benchmark/benchmark.h>

#include "core/provisioner.h"
#include "exp/scenario.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "stats/rng.h"
#include "workload/workload.h"

namespace {

gc::ClusterConfig config_of_size(unsigned m) {
  gc::ClusterConfig config;
  config.max_servers = m;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  return config;
}

void BM_SolveScan(benchmark::State& state) {
  const gc::Provisioner solver(config_of_size(static_cast<unsigned>(state.range(0))));
  const double max_rate = solver.config().max_feasible_arrival_rate();
  double lambda = 0.0;
  for (auto _ : state) {
    lambda += max_rate / 1000.0;
    if (lambda > max_rate) lambda = 0.0;
    benchmark::DoNotOptimize(solver.solve(lambda));
  }
}
BENCHMARK(BM_SolveScan)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SolveFast(benchmark::State& state) {
  const gc::Provisioner solver(config_of_size(static_cast<unsigned>(state.range(0))));
  const double max_rate = solver.config().max_feasible_arrival_rate();
  double lambda = 0.0;
  for (auto _ : state) {
    lambda += max_rate / 1000.0;
    if (lambda > max_rate) lambda = 0.0;
    benchmark::DoNotOptimize(solver.solve_fast(lambda));
  }
}
BENCHMARK(BM_SolveFast)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SolveContinuous(benchmark::State& state) {
  const gc::Provisioner solver(config_of_size(64));
  double lambda = 0.0;
  for (auto _ : state) {
    lambda += 0.37;
    if (lambda > 400.0) lambda = 0.0;
    benchmark::DoNotOptimize(solver.solve_continuous(lambda));
  }
}
BENCHMARK(BM_SolveContinuous);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  gc::EventQueue queue;
  gc::Rng rng(1);
  double base = 0.0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule(base + rng.uniform01(), gc::EventType::kArrival);
    }
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(queue.pop());
    base += 1.0;
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

class StaticController final : public gc::Controller {
 public:
  [[nodiscard]] double short_period_s() const override { return 1e9; }
  [[nodiscard]] double long_period_s() const override { return 1e9; }
  [[nodiscard]] gc::ControlAction on_short_tick(const gc::ControlContext&) override {
    return {};
  }
  [[nodiscard]] gc::ControlAction on_long_tick(const gc::ControlContext&) override {
    gc::ControlAction action;
    action.active_target = 4;
    action.speed = 1.0;
    return action;
  }
  [[nodiscard]] const char* name() const override { return "static"; }
};

// End-to-end simulator throughput (jobs simulated per second of wall time).
void BM_SimulatorThroughput(benchmark::State& state) {
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    gc::Workload workload = gc::Workload::poisson_exponential(24.0, 10.0, 2000.0, 3);
    gc::ClusterOptions cluster;
    cluster.num_servers = 4;
    cluster.initial_active = 4;
    StaticController controller;
    gc::SimulationOptions sim;
    sim.t_ref_s = 1.0;
    const gc::SimResult result = run_simulation(workload, cluster, controller, sim);
    jobs += result.completed_jobs;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
