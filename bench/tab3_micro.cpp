// T3 — Micro-performance of the solver and the simulator core
// (google-benchmark).  Not a figure of the paper; documents that the
// "more boilerplate" solver+simulator stack is fast enough that every
// other bench is workload-bound, not infrastructure-bound.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/provisioner.h"
#include "exp/scenario.h"
#include "sim/dispatcher.h"
#include "sim/event_queue.h"
#include "sim/server.h"
#include "sim/simulation.h"
#include "stats/rng.h"
#include "workload/workload.h"

namespace {

gc::ClusterConfig config_of_size(unsigned m) {
  gc::ClusterConfig config;
  config.max_servers = m;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  return config;
}

void BM_SolveScan(benchmark::State& state) {
  const gc::Provisioner solver(config_of_size(static_cast<unsigned>(state.range(0))));
  const double max_rate = solver.config().max_feasible_arrival_rate();
  double lambda = 0.0;
  for (auto _ : state) {
    lambda += max_rate / 1000.0;
    if (lambda > max_rate) lambda = 0.0;
    benchmark::DoNotOptimize(solver.solve(lambda));
  }
}
BENCHMARK(BM_SolveScan)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SolveFast(benchmark::State& state) {
  const gc::Provisioner solver(config_of_size(static_cast<unsigned>(state.range(0))));
  const double max_rate = solver.config().max_feasible_arrival_rate();
  double lambda = 0.0;
  for (auto _ : state) {
    lambda += max_rate / 1000.0;
    if (lambda > max_rate) lambda = 0.0;
    benchmark::DoNotOptimize(solver.solve_fast(lambda));
  }
}
BENCHMARK(BM_SolveFast)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SolveContinuous(benchmark::State& state) {
  const gc::Provisioner solver(config_of_size(64));
  double lambda = 0.0;
  for (auto _ : state) {
    lambda += 0.37;
    if (lambda > 400.0) lambda = 0.0;
    benchmark::DoNotOptimize(solver.solve_continuous(lambda));
  }
}
BENCHMARK(BM_SolveContinuous);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  gc::EventQueue queue;
  gc::Rng rng(1);
  double base = 0.0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule(base + rng.uniform01(), gc::EventType::kArrival);
    }
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(queue.pop());
    base += 1.0;
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

// Steady-state event-loop churn with M pending departures: each iteration
// cancels one pending event, schedules its replacement, pops the head and
// schedules the popped subject's successor — the cancel-heavy access
// pattern a running simulation produces (speed changes reschedule
// departures constantly).  4 queue ops per iteration.
void BM_EventLoopChurn(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  gc::EventQueue queue;
  gc::Rng rng(42);
  std::vector<gc::EventId> pending(m);
  for (unsigned i = 0; i < m; ++i) {
    pending[i] = queue.schedule(rng.uniform01() * 10.0, gc::EventType::kDeparture, i);
  }
  for (auto _ : state) {
    const auto pick = static_cast<unsigned>(rng.uniform_below(m));
    queue.cancel(pending[pick]);
    pending[pick] = queue.schedule(queue.now() + rng.uniform01() * 10.0,
                                   gc::EventType::kDeparture, pick);
    const auto event = queue.pop();
    pending[event->subject] = queue.schedule(
        queue.now() + rng.uniform01() * 10.0, gc::EventType::kDeparture,
        event->subject);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_EventLoopChurn)->Arg(16)->Arg(256)->Arg(1024);

// Dispatcher hot path: one pick over a fleet with half the servers
// serving, via the incremental serving index vs the O(M) reference scan.
void dispatcher_pick_bench(benchmark::State& state, bool indexed) {
  const auto m = static_cast<unsigned>(state.range(0));
  const gc::PowerModel power{gc::PowerModelParams{}};
  std::vector<gc::Server> servers;
  std::vector<std::uint32_t> serving;
  servers.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    const bool on = i % 2 == 0;
    servers.emplace_back(i, &power, 1.0, on, 0.0);
    if (on) serving.push_back(i);
  }
  gc::Dispatcher dispatcher(gc::DispatchPolicy::kJoinShortestQueue,
                            gc::Rng(7, /*stream=*/3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(indexed ? dispatcher.pick(0.0, servers, serving)
                                     : dispatcher.pick(0.0, servers));
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_DispatcherPickIndexed(benchmark::State& state) {
  dispatcher_pick_bench(state, true);
}
void BM_DispatcherPickScan(benchmark::State& state) {
  dispatcher_pick_bench(state, false);
}
BENCHMARK(BM_DispatcherPickIndexed)->Arg(64)->Arg(1024);
BENCHMARK(BM_DispatcherPickScan)->Arg(64)->Arg(1024);

// solve() over a recurring set of measured rates — the access pattern DCP
// ticks generate (integer arrival counts over fixed periods), where the
// memo cache converts the scan into a table lookup.
void BM_SolveCachedReplay(benchmark::State& state) {
  const gc::Provisioner solver(config_of_size(64));
  const double max_rate = solver.config().max_feasible_arrival_rate();
  std::vector<double> rates;
  for (int i = 0; i < 64; ++i) {
    rates.push_back(max_rate * static_cast<double>(i) / 80.0);
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(rates[cursor]));
    cursor = (cursor + 1) % rates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolveCachedReplay);

class StaticController final : public gc::Controller {
 public:
  [[nodiscard]] double short_period_s() const override { return 1e9; }
  [[nodiscard]] double long_period_s() const override { return 1e9; }
  [[nodiscard]] gc::ControlAction on_short_tick(const gc::ControlContext&) override {
    return {};
  }
  [[nodiscard]] gc::ControlAction on_long_tick(const gc::ControlContext&) override {
    gc::ControlAction action;
    action.active_target = 4;
    action.speed = 1.0;
    return action;
  }
  [[nodiscard]] const char* name() const override { return "static"; }
};

// End-to-end simulator throughput (jobs simulated per second of wall time).
void BM_SimulatorThroughput(benchmark::State& state) {
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    gc::Workload workload = gc::Workload::poisson_exponential(24.0, 10.0, 2000.0, 3);
    gc::ClusterOptions cluster;
    cluster.num_servers = 4;
    cluster.initial_active = 4;
    StaticController controller;
    gc::SimulationOptions sim;
    sim.t_ref_s = 1.0;
    const gc::SimResult result = run_simulation(workload, cluster, controller, sim);
    jobs += result.completed_jobs;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
