// F9 — Load-predictor ablation: the energy-vs-violation frontier.
//
// Runs Combined/DCP with each predictor on the diurnal and flash-crowd
// traces.  Expected shape: sliding-max is the most conservative (lowest
// violations, highest energy); last-value is cheapest but suffers under
// flash crowds; ewma and linear-trend sit between, with linear-trend
// strongest on the steady diurnal ramp.
#include <iostream>

#include "exp/runner.h"
#include "util/table.h"

int main() {
  const gc::PredictorKind predictors[] = {
      gc::PredictorKind::kLastValue, gc::PredictorKind::kEwma,
      gc::PredictorKind::kSlidingMax, gc::PredictorKind::kLinearTrend};
  const gc::ScenarioKind kinds[] = {gc::ScenarioKind::kDiurnal,
                                    gc::ScenarioKind::kFlashCrowd};

  std::vector<gc::Cell> cells;
  for (const gc::ScenarioKind kind : kinds) {
    const gc::Scenario scenario =
        gc::make_scenario(kind, gc::bench_cluster_config(), 0.75, 66, 3600.0);
    for (const gc::PredictorKind predictor : predictors) {
      gc::RunSpec spec;
      spec.config = gc::bench_cluster_config();
      spec.policy = gc::PolicyKind::kCombinedDcp;
      spec.policy_options.dcp = gc::bench_dcp_params();
      spec.policy_options.predictor = predictor;
      spec.seed = 909;
      cells.push_back({scenario, spec});
    }
    // Clairvoyant bound: the same controller fed the true profile.
    gc::RunSpec oracle_spec;
    oracle_spec.config = gc::bench_cluster_config();
    oracle_spec.policy = gc::PolicyKind::kOracle;
    oracle_spec.policy_options.dcp = gc::bench_dcp_params();
    oracle_spec.seed = 909;
    cells.push_back({scenario, oracle_spec});
  }
  const auto results = gc::run_all(cells);

  gc::TablePrinter table("Fig 9: predictor ablation (combined-dcp @75% load)");
  table.column("scenario")
      .column("predictor")
      .column("energy", {.precision = 3, .unit = "kWh"})
      .column("mean T", {.precision = 0, .unit = "ms"})
      .column("viol", {.precision = 2, .unit = "%"})
      .column("boots", {.precision = 0})
      .column("SLA");
  std::size_t i = 0;
  auto emit = [&](const char* scenario_label, const char* predictor_label) {
    const gc::SimResult& r = results[i++];
    table.row()
        .cell(scenario_label)
        .cell(predictor_label)
        .cell(r.energy.total_j() / 3.6e6)
        .cell(r.mean_response_s * 1e3)
        .cell(r.job_violation_ratio * 100.0)
        .cell(static_cast<long long>(r.boots))
        .cell(r.sla_met(gc::bench_cluster_config().t_ref_s) ? "met" : "MISS");
  };
  for (const gc::ScenarioKind kind : kinds) {
    for (const gc::PredictorKind predictor : predictors) {
      emit(to_string(kind), to_string(predictor));
    }
    emit(to_string(kind), "oracle (bound)");
  }
  std::cout << table;
  return 0;
}
