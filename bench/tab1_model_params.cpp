// T1 — Model parameters (the paper's "Table 1").
//
// Prints every parameter of the evaluation configuration at both the
// bench scale (what the other benches run) and the paper scale (the
// defaults of ClusterConfig, 2010-era server numbers).
#include <iostream>

#include "exp/scenario.h"
#include "util/table.h"

namespace {

void print_config(const char* label, const gc::ClusterConfig& config,
                  const gc::DcpParams& dcp) {
  gc::TablePrinter table(label);
  table.column("parameter").column("value", {.precision = 3, .fixed = false}).column("unit");
  auto row = [&](const char* name, double value, const char* unit) {
    table.row().cell(name).cell(value).cell(unit);
  };
  row("cluster size M", config.max_servers, "servers");
  row("service rate mu_max", config.mu_max, "jobs/s @ s=1");
  row("SLA t_ref (mean response)", config.t_ref_s * 1e3, "ms");
  row("max feasible arrival rate", config.max_feasible_arrival_rate(), "jobs/s");
  row("P_idle", config.power.p_idle_watts, "W");
  row("P_max", config.power.p_max_watts, "W");
  row("P_off", config.power.p_off_watts, "W");
  row("alpha (dynamic power exponent)", config.power.alpha, "-");
  row("utilization-gated dynamic power", config.power.utilization_gated ? 1.0 : 0.0,
      "bool");
  row("frequency levels", static_cast<double>(config.ladder.num_levels()), "P-states");
  row("min speed s_min", config.ladder.min_speed(), "fraction of f_max");
  row("boot delay D_on", config.transition.boot_delay_s, "s");
  row("shutdown delay D_off", config.transition.shutdown_delay_s, "s");
  row("long control period T_L", dcp.long_period_s, "s");
  row("short control period T_S", dcp.short_period_s, "s");
  row("safety margin", dcp.safety_margin, "x predicted load");
  row("scale-down patience", dcp.scale_down_patience, "long periods");
  std::cout << table << '\n';
}

}  // namespace

int main() {
  print_config("Table 1a: bench-scale configuration (used by fig4..fig10, tab2)",
               gc::bench_cluster_config(), gc::bench_dcp_params());

  gc::ClusterConfig paper;  // defaults: 64 servers, 250 W, 90 s boots
  gc::DcpParams paper_dcp;  // 300 s / 30 s
  print_config("Table 1b: paper-scale configuration (defaults; same code paths)",
               paper, paper_dcp);
  return 0;
}
