// F16 — Reliability-constrained provisioning (extension; not in the paper):
//   (a) the energy–availability Pareto front: the reliability DCP re-run
//       with the availability target A_ref swept from "none" up to 0.9999
//       across three MTBF regimes (compressed-day scale, exponential
//       repairs).  Tightening A_ref buys availability with spare servers,
//       so fleet energy rises monotonically along each regime's front.
//   (b) wear-aware vs naive provisioning at a fixed A_ref: charging a
//       lifetime cost per on/off cycle makes the solver hold the committed
//       pool through the diurnal trough instead of chasing it, cutting
//       boot/shutdown transitions (and thus wear) for a bounded energy
//       premium at the same availability target.
//
// Expected shape: in (a) energy and the solved spare count are
// non-decreasing in A_ref until the 16-server cap binds (the estimate then
// saturates below the target and the binding column says "capacity").  In
// (b) the wear-aware run boots strictly fewer servers than the naive run,
// meets the same A_ref, and stays within a single-digit-percent energy
// premium.
#include <cstdint>
#include <iostream>
#include <vector>

#include "exp/comparison.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "trace_out.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"

namespace {

constexpr double kMttrS = 180.0;
constexpr std::uint64_t kFaultSeed = 0xf16aULL;
// Lifetime budget per server; at the bench scale a compressed day burns a
// visible few percent of it, which is what the wear columns report.
constexpr double kCyclesToFailure = 2000.0;
// Energy-equivalent cost per on/off cycle.  Amortized over the 25 s long
// period this is 0.5 * 10000 / 25 = 200 W per moved server — between idle
// (150 W) and peak (250 W) power, so holding a server through the trough
// beats cycling it, but only just: the solver still sheds deep surplus.
constexpr double kWearCycleCostJ = 10000.0;

gc::RunSpec make_spec(const gc::ClusterConfig& config, const gc::DcpParams& dcp,
                      double mtbf_s, double a_ref, double cycle_cost_j) {
  gc::RunSpec spec;
  spec.config = config;
  spec.policy = gc::PolicyKind::kDcpReliability;
  spec.policy_options.dcp = dcp;
  spec.seed = 7;

  gc::ReliabilityOptions& reliability = spec.policy_options.reliability;
  reliability.mtbf_s = mtbf_s;
  reliability.mttr_s = kMttrS;
  reliability.availability_target = a_ref;
  reliability.max_spares = 6;
  reliability.cycles_to_failure = kCyclesToFailure;
  reliability.cycle_cost_j = cycle_cost_j;
  // The simulation readout (wear fractions, availability estimate) uses the
  // same model the controller plans with.
  spec.sim.reliability = reliability;

  // Faults injected at the same regime the solver assumes, so the observed
  // availability column validates the closed-form estimate.
  if (mtbf_s > 0.0) {
    spec.sim.faults.mtbf_s = mtbf_s;
    spec.sim.faults.mttr_s = kMttrS;
    spec.sim.faults.seed = kFaultSeed;
  }
  spec.sim.admission.enabled = true;
  spec.sim.admission.mu_max = config.mu_max;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const gc::CliArgs args(argc, argv);
  gcbench::TraceOut trace_out(args);

  const gc::ClusterConfig config = gc::bench_cluster_config();
  const gc::DcpParams dcp = gc::bench_dcp_params();
  const gc::Scenario scenario =
      gc::make_scenario(gc::ScenarioKind::kDiurnal, config, 0.7);

  // -- (a) the energy–availability Pareto front ------------------------------
  const std::vector<double> mtbf_values = {7200.0, 3600.0, 1800.0};
  const std::vector<double> a_refs = {0.0, 0.9, 0.99, 0.999, 0.9999};

  gc::TablePrinter table(gc::format(
      "Fig 16a: energy vs availability target (diurnal day, MTTR {:.9g} s, "
      "wear-aware)",
      kMttrS));
  table.column("MTBF", {.precision = 0, .unit = "s"})
      .column("A_ref", {.precision = 4})
      .column("energy", {.precision = 2, .unit = "kWh"})
      .column("avail est", {.precision = 4})
      .column("avail obs", {.precision = 4})
      .column("spares", {.precision = 2})
      .column("boots", {.precision = 0})
      .column("wear max", {.precision = 2, .unit = "%"})
      .column("mean T", {.precision = 1, .unit = "ms"})
      .column("SLA");

  for (const double mtbf : mtbf_values) {
    std::vector<gc::Cell> cells;
    cells.reserve(a_refs.size());
    for (const double a_ref : a_refs) {
      cells.push_back(
          {scenario, make_spec(config, dcp, mtbf, a_ref, kWearCycleCostJ)});
    }
    const std::vector<gc::SimResult> results = gc::run_all(cells);
    for (std::size_t i = 0; i < a_refs.size(); ++i) {
      const gc::SimResult& r = results[i];
      table.row()
          .cell(mtbf)
          .cell(a_refs[i])
          .cell(r.energy.total_j() / 3.6e6)
          .cell(r.availability_estimate)
          .cell(1.0 - r.unavailability)
          .cell(r.mean_solved_spares)
          .cell(static_cast<long long>(
              r.counters.counter_or("fleet.boot_count", 0)))
          .cell(r.wear_fraction_max * 100.0)
          .cell(r.mean_response_s * 1e3)
          .cell(r.sla_met(config.t_ref_s) ? "yes" : "NO");
    }
  }
  std::cout << table << '\n';

  // -- (b) wear-aware vs naive at a fixed availability target ----------------
  // The gentlest regime of (a): the target is genuinely reachable inside the
  // 16-server cap, so CI can gate on "estimate >= A_ref" (ci/check.sh F16).
  constexpr double kDemoMtbfS = 7200.0;
  constexpr double kDemoARef = 0.9;

  gc::TablePrinter demo(gc::format(
      "Fig 16b: wear-aware vs naive provisioning (MTBF {:.9g} s, A_ref {:.9g})",
      kDemoMtbfS, kDemoARef));
  demo.column("wear cost")
      .column("energy", {.precision = 2, .unit = "kWh"})
      .column("boots", {.precision = 0})
      .column("shutdowns", {.precision = 0})
      .column("wear max", {.precision = 2, .unit = "%"})
      .column("avail est", {.precision = 4})
      .column("mean T", {.precision = 1, .unit = "ms"})
      .column("SLA");

  gc::SimResult traced_result;
  for (const bool wear_aware : {false, true}) {
    gc::RunSpec spec = make_spec(config, dcp, kDemoMtbfS, kDemoARef,
                                 wear_aware ? kWearCycleCostJ : 0.0);
    // The sinks watch the wear-aware run: the one whose audit records carry
    // the solved spare counts and binding constraints worth inspecting.
    if (wear_aware) trace_out.attach(spec.sim);
    const gc::SimResult result = gc::run_one(scenario, spec);
    if (wear_aware) traced_result = result;
    demo.row()
        .cell(wear_aware ? "on" : "off")
        .cell(result.energy.total_j() / 3.6e6)
        .cell(static_cast<long long>(
            result.counters.counter_or("fleet.boot_count", 0)))
        .cell(static_cast<long long>(
            result.counters.counter_or("fleet.shutdown_count", 0)))
        .cell(result.wear_fraction_max * 100.0)
        .cell(result.availability_estimate)
        .cell(result.mean_response_s * 1e3)
        .cell(result.sla_met(config.t_ref_s) ? "yes" : "NO");
  }
  std::cout << demo;
  trace_out.write(traced_result);
  return 0;
}
