// F12 (extension) — Robustness of the M/M/1-designed controller to the
// assumptions the design model makes:
//   (a) job-size distribution (scv 0 / 1 / heavy-tailed), all renormalized
//       to the same mean so the offered load is identical;
//   (b) dispatch policy.
//
// Expected shape (from M/G/1 theory, DESIGN.md): deterministic sizes beat
// the design target comfortably (waiting halves at scv=0); heavy-tailed
// sizes inflate waiting roughly with (1+scv)/2 and push the mean response
// over the guarantee — quantifying where the paper's model stops holding.
// Dispatch: JSQ ≈ least-work > round-robin > random.
#include <iostream>

#include "exp/runner.h"
#include "util/table.h"

int main() {
  const gc::ClusterConfig config = gc::bench_cluster_config();
  const double mean_size = 1.0 / config.mu_max;
  const gc::Scenario scenario =
      gc::make_scenario(gc::ScenarioKind::kDiurnal, config, 0.7, 123, 3600.0);

  {
    struct SizeCase {
      const char* label;
      gc::Distribution dist;
      double scv;
    };
    const SizeCase cases[] = {
        {"deterministic", gc::Distribution::deterministic(mean_size), 0.0},
        {"exponential", gc::Distribution::exponential(config.mu_max), 1.0},
        {"bounded-pareto", gc::Distribution::bounded_pareto(1.6, 0.01, 5.0)
                               .with_mean(mean_size), 20.0},
    };
    std::vector<gc::Cell> cells;
    for (const SizeCase& c : cases) {
      gc::RunSpec spec;
      spec.config = config;
      spec.policy = gc::PolicyKind::kCombinedDcp;
      spec.policy_options.dcp = gc::bench_dcp_params();
      spec.seed = 111;
      spec.job_size = c.dist;
      cells.push_back({scenario, spec});
    }
    const auto results = gc::run_all(cells);
    gc::TablePrinter table(
        "Fig 12a: job-size sensitivity (combined-dcp, diurnal @70%, equal mean size)");
    table.column("size law")
        .column("~scv", {.precision = 0})
        .column("mean T", {.precision = 0, .unit = "ms"})
        .column("p95 T", {.precision = 0, .unit = "ms"})
        .column("viol", {.precision = 2, .unit = "%"})
        .column("energy", {.precision = 3, .unit = "kWh"})
        .column("SLA");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      table.row()
          .cell(cases[i].label)
          .cell(cases[i].scv)
          .cell(results[i].mean_response_s * 1e3)
          .cell(results[i].p95_response_s * 1e3)
          .cell(results[i].job_violation_ratio * 100.0)
          .cell(results[i].energy.total_j() / 3.6e6)
          .cell(results[i].sla_met(config.t_ref_s) ? "met" : "MISS");
    }
    std::cout << table << '\n';
  }

  {
    const gc::DispatchPolicy policies[] = {
        gc::DispatchPolicy::kRandom, gc::DispatchPolicy::kRoundRobin,
        gc::DispatchPolicy::kJoinShortestQueue, gc::DispatchPolicy::kLeastWork};
    std::vector<gc::Cell> cells;
    for (const gc::DispatchPolicy d : policies) {
      gc::RunSpec spec;
      spec.config = config;
      spec.policy = gc::PolicyKind::kCombinedDcp;
      spec.policy_options.dcp = gc::bench_dcp_params();
      spec.dispatch = d;
      spec.seed = 222;
      cells.push_back({scenario, spec});
    }
    const auto results = gc::run_all(cells);
    gc::TablePrinter table("Fig 12b: dispatch-policy sensitivity (combined-dcp)");
    table.column("dispatch")
        .column("mean T", {.precision = 0, .unit = "ms"})
        .column("p95 T", {.precision = 0, .unit = "ms"})
        .column("viol", {.precision = 2, .unit = "%"})
        .column("energy", {.precision = 3, .unit = "kWh"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
      table.row()
          .cell(to_string(policies[i]))
          .cell(results[i].mean_response_s * 1e3)
          .cell(results[i].p95_response_s * 1e3)
          .cell(results[i].job_violation_ratio * 100.0)
          .cell(results[i].energy.total_j() / 3.6e6);
    }
    std::cout << table;
  }
  return 0;
}
