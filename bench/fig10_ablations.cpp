// F10 — Model ablations (analytic):
//   (a) discrete frequency ladder vs continuous DVFS — the cost of
//       P-state granularity;
//   (b) always-on (the paper's model) vs utilization-gated dynamic power
//       — how the gating assumption changes the optimum;
//   (c) M/M/1-per-server vs M/M/c performance model — how much the
//       conservative dispatch model over-provisions.
//
// Expected shape: the ladder penalty is a few percent (saw-tooth, worst
// mid-step); gating the dynamic power devalues DVFS and shifts the optimum
// towards fewer, faster servers; the M/M/c model provisions fewer servers
// at equal load.
#include <iostream>

#include "core/provisioner.h"
#include "exp/scenario.h"
#include "util/table.h"

int main() {
  const gc::ClusterConfig base = gc::bench_cluster_config();

  gc::ClusterConfig continuous = base;
  continuous.ladder = gc::FrequencyLadder::continuous(0.1);

  gc::ClusterConfig gated = base;
  gated.power.utilization_gated = true;

  gc::ClusterConfig mmc = base;
  mmc.perf_model = gc::PerfModel::kMmcCluster;

  const gc::Provisioner solver_base(base);
  const gc::Provisioner solver_cont(continuous);
  const gc::Provisioner solver_gated(gated);
  const gc::Provisioner solver_mmc(mmc);

  gc::TablePrinter table("Fig 10: solver ablations (analytic, M=16)");
  table.column("load", {.precision = 1, .unit = "jobs/s"})
      .column("ladder W", {.precision = 0})
      .column("contin W", {.precision = 0})
      .column("ladder pen", {.precision = 1, .unit = "%"})
      .column("gated W", {.precision = 0})
      .column("gated m", {.precision = 0})
      .column("base m", {.precision = 0})
      .column("mmc m", {.precision = 0})
      .column("mmc W", {.precision = 0});

  const double max_rate = base.max_feasible_arrival_rate();
  for (double frac = 0.1; frac <= 1.0001; frac += 0.1) {
    const double lambda = frac * max_rate;
    const gc::OperatingPoint ladder_pt = solver_base.solve(lambda);
    const gc::OperatingPoint cont_pt = solver_cont.solve(lambda);
    const gc::OperatingPoint gated_pt = solver_gated.solve(lambda);
    const gc::OperatingPoint mmc_pt = solver_mmc.solve(lambda);
    table.row()
        .cell(lambda)
        .cell(ladder_pt.power_watts)
        .cell(cont_pt.power_watts)
        .cell((ladder_pt.power_watts / cont_pt.power_watts - 1.0) * 100.0)
        .cell(gated_pt.power_watts)
        .cell(static_cast<long long>(gated_pt.servers))
        .cell(static_cast<long long>(ladder_pt.servers))
        .cell(static_cast<long long>(mmc_pt.servers))
        .cell(mmc_pt.power_watts);
  }
  std::cout << table;
  return 0;
}
