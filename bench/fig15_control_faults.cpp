// F15 — Degraded control plane (extension; not in the paper):
//   (a) command loss rate x delivery latency sweep over a flash-crowd day,
//       contrasting naive DCP (fire-and-forget commands: a dropped
//       target-m command stays lost until the next long tick re-plans —
//       25 s of the 7200 s bench day, ≙ 300 s at real-day scale) against
//       DCP with the ack/retry actuator (control/actuator.h), which
//       detects the missing ack and retransmits on the next control tick;
//   (b) controller fail-stop across the morning ramp, with and without
//       the watchdog's safe-mode fallback (everything on at nominal
//       frequency until the controller returns).
//
// Expected shape: at zero loss the variants are identical.  As command
// loss grows, naive DCP rides out multi-minute windows at a stale server
// count.  Lost scale-downs are hidden slack (extra capacity, better
// latency), so the naive curve even looks fine at moderate loss — until a
// lost scale-*up* lands on a flash-crowd onset and the queue blows through
// the SLA.  The retry variant repairs every lost command within one short
// tick, so its behaviour stays pinned to the zero-loss baseline either
// way: degradation is bounded instead of a lottery.  In (b) the frozen
// fleet misses the ramp and violates; safe mode buys the SLA back for the
// outage-window energy premium.
//
// The sweep table also reports the lifecycle tracker's per-stage actuation
// latencies (decision→ack p50/p99, decision→apply p99, cp/lifecycle.h):
// time-to-ack and time-to-apply distributions across the command-loss
// sweep are the figure's causal complement — the SLA column says *whether*
// a variant degraded, the latency columns say *why* (how long commands sat
// unconfirmed).  `--quick` shrinks the sweep to the CI soak lane's needs;
// with --trace-out/--timeseries-out the sinks watch a dedicated lossy
// ack/retry run (loss=0.10, latency=5 s), whose artifact set includes the
// `<prefix>.lifecycle.jsonl` timeline that `gcinspect --lifecycle` renders.
#include <cstdint>
#include <iostream>
#include <vector>

#include "exp/comparison.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "trace_out.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"

namespace {

constexpr std::uint64_t kChannelSeed = 0xf15cULL;

gc::RunSpec make_spec(const gc::ClusterConfig& config, const gc::DcpParams& dcp,
                      bool retry, double loss, double latency_s) {
  gc::RunSpec spec;
  spec.config = config;
  spec.policy = gc::PolicyKind::kCombinedDcp;
  spec.policy_options.dcp = dcp;
  spec.seed = 7;
  // Admission control stays OFF: shedding would bound the queue during the
  // stale-capacity windows and mask exactly the damage this figure measures.
  spec.sim.channel.enabled = true;
  // Telemetry stays clean: the sweep isolates *actuation* degradation.
  spec.sim.channel.command = {loss, latency_s, latency_s};
  spec.sim.channel.ack = {loss, latency_s, latency_s};
  spec.sim.channel.seed = kChannelSeed;
  spec.sim.actuator.enabled = retry;
  // One short period: a lost command is re-asserted at the very next tick.
  // At the 5 s-latency point this sits below the ack round trip, so the
  // actuator also retransmits commands whose ack is merely in flight —
  // deliberate eagerness that the fleet's generation dedup makes free.
  spec.sim.actuator.ack_timeout_s = 5.0;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const gc::CliArgs args(argc, argv);
  gcbench::TraceOut trace_out(args);
  // --quick: the CI soak lane's cut of the sweep — two loss points, zero
  // latency, no fail-stop demo.  Same specs, same seeds, just fewer cells.
  const bool quick = args.has("quick");

  const gc::ClusterConfig config = gc::bench_cluster_config();
  const gc::DcpParams dcp = gc::bench_dcp_params();
  // Flash crowds are where actuation latency bites: each spike needs a
  // prompt scale-up, so one lost target-m command costs a long period of
  // overload.  (On the smooth diurnal day a stale target is one or two
  // servers for 300 s — naive DCP shrugs that off.)
  const gc::Scenario scenario =
      gc::make_scenario(gc::ScenarioKind::kFlashCrowd, config, 0.8);

  const std::vector<double> loss_values =
      quick ? std::vector<double>{0.0, 0.10}
            : std::vector<double>{0.0, 0.01, 0.05, 0.10, 0.15, 0.20, 0.25};
  const std::vector<double> latency_values =
      quick ? std::vector<double>{0.0} : std::vector<double>{0.0, 5.0};

  gc::TablePrinter table(
      "Fig 15a: command loss x latency — naive DCP vs ack/retry actuation "
      "(flash-crowd day, telemetry clean)");
  table.column("loss", {.precision = 0, .unit = "%"})
      .column("latency", {.precision = 0, .unit = "s"})
      .column("actuation")
      .column("energy", {.precision = 2, .unit = "kWh"})
      .column("mean T", {.precision = 1, .unit = "ms"})
      .column("viol", {.precision = 2, .unit = "% jobs"})
      .column("cmd drop", {.precision = 0})
      .column("retries", {.precision = 0})
      .column("t_ack p50", {.precision = 2, .unit = "s"})
      .column("t_ack p99", {.precision = 2, .unit = "s"})
      .column("t_apply p99", {.precision = 2, .unit = "s"})
      .column("SLA");

  for (const double latency : latency_values) {
    for (const double loss : loss_values) {
      std::vector<gc::Cell> cells;
      for (const bool retry : {false, true}) {
        cells.push_back({scenario, make_spec(config, dcp, retry, loss, latency)});
      }
      const std::vector<gc::SimResult> results = gc::run_all(cells);
      for (std::size_t i = 0; i < results.size(); ++i) {
        const gc::SimResult& r = results[i];
        auto& row = table.row();
        row.cell(loss * 100.0)
            .cell(latency)
            .cell(i == 0 ? "naive" : "ack/retry")
            .cell(r.energy.total_j() / 3.6e6)
            .cell(r.mean_response_s * 1e3)
            .cell(r.job_violation_ratio * 100.0)
            .cell(static_cast<long long>(r.commands_dropped))
            .cell(static_cast<long long>(r.command_retries));
        // Naive DCP expects no acks, so its ack histogram is empty — the
        // dashes keep that structural (not measured-zero) gap visible.
        if (r.lifecycle_ack_hist.count() > 0) {
          row.cell(r.lifecycle_ack_hist.quantile(0.50))
              .cell(r.lifecycle_ack_hist.quantile(0.99));
        } else {
          row.cell("-").cell("-");
        }
        if (r.lifecycle_apply_hist.count() > 0) {
          row.cell(r.lifecycle_apply_hist.quantile(0.99));
        } else {
          row.cell("-");
        }
        row.cell(r.sla_met(config.t_ref_s) ? "yes" : "NO");
      }
    }
  }
  std::cout << table << '\n';

  // -- (b) controller fail-stop across the morning ramp ----------------------
  // The controller goes dark while the diurnal load climbs toward the
  // midday peak.  Without safe mode the fleet freezes at its overnight
  // size; with it, the watchdog turns everything on at nominal frequency
  // until the recovered controller's first command lands.
  if (!quick) {
    gc::TablePrinter demo(
        "Fig 15b: controller outage across the ramp — watchdog safe mode");
    demo.column("outage")
        .column("safe mode")
        .column("energy", {.precision = 2, .unit = "kWh"})
        .column("mean T", {.precision = 1, .unit = "ms"})
        .column("viol", {.precision = 2, .unit = "% jobs"})
        .column("missed", {.precision = 0, .unit = "ticks"})
        .column("safe", {.precision = 0, .unit = "s"})
        .column("SLA");

    for (const int variant : {0, 1, 2}) {
      gc::RunSpec spec = make_spec(config, dcp, /*retry=*/true, /*loss=*/0.0,
                                   /*latency_s=*/0.0);
      if (variant > 0) {
        spec.sim.controller_faults.script = {
            {scenario.horizon_s * 0.25, scenario.horizon_s * 0.25}};
        spec.sim.controller_faults.safe_mode = variant == 2;
      }
      const gc::SimResult result = gc::run_one(scenario, spec);
      demo.row()
          .cell(variant == 0 ? "none" : "ramp")
          .cell(variant == 0 ? "-" : (variant == 2 ? "on" : "off"))
          .cell(result.energy.total_j() / 3.6e6)
          .cell(result.mean_response_s * 1e3)
          .cell(result.job_violation_ratio * 100.0)
          .cell(static_cast<long long>(result.ticks_missed))
          .cell(result.safe_mode_time_s)
          .cell(result.sla_met(config.t_ref_s) ? "yes" : "NO");
    }
    std::cout << demo;
  }

  // The sinks watch a dedicated lossy ack/retry run (10% command/ack loss,
  // 5 s delivery latency): the regime where the lifecycle timeline is
  // interesting — retransmissions, channel drops and multi-second
  // decision→ack gaps all show up in <prefix>.lifecycle.jsonl and the
  // Chrome trace's async command spans (`gcinspect PREFIX --lifecycle`).
  if (trace_out.enabled()) {
    gc::RunSpec spec = make_spec(config, dcp, /*retry=*/true, /*loss=*/0.10,
                                 /*latency_s=*/5.0);
    trace_out.attach(spec.sim);
    trace_out.write(gc::run_one(scenario, spec));
  }
  return 0;
}
