// perf_smoke — the persisted performance trajectory of the simulator core.
//
// Runs three cheap, deterministic micro-measurements and writes them to
// BENCH_core.json (overridable via argv[1]) so CI keeps a machine-readable
// record of core hot-path throughput next to every build:
//
//   * event_loop    — EventQueue churn (cancel + schedule + pop + schedule
//                     per iteration) with M pending departures,
//                     M ∈ {16, 256, 1024}; reported as queue ops/sec.
//   * solve         — Provisioner::solve ns/call over a recurring stream
//                     of measured rates (the DCP tick pattern, so the memo
//                     cache is exercised the way a simulation exercises it).
//   * solver_cache  — hit/miss counters after a fig8-style WC98 trace
//                     replay under the two DCP-family policies sharing one
//                     Provisioner: the end-to-end evidence that real
//                     control traffic re-solves repeated rates.
//   * sharded       — the K x M scaling grid of the sharded simulation
//                     core (sim/sharded.h): K ∈ {1, 2, 4, 8} shards over
//                     M ∈ {1024, 16384, 131072} servers, reported as
//                     events/sec plus speedup and parallel efficiency
//                     relative to K = 1 at the same M.  Each cell also
//                     asserts the EventQueue capacity hint held: zero
//                     queue reallocations in steady state (hard failure,
//                     not a trajectory entry).
//
// Wall-clock numbers vary with the machine; the JSON is a trajectory, not
// a pass/fail gate (CI only checks that the file is produced and sane,
// and — on machines whose committed baseline demonstrates parallel
// speedup — that the K=4 / M=16384 sharded speedup does not regress).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "control/policies.h"
#include "core/provisioner.h"
#include "exp/scenario.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "stats/rng.h"
#include "util/format.h"
#include "workload/rate_profile.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// 4 queue ops per iteration: cancel one of M pending departures, schedule
// its replacement, pop the head, schedule the popped subject's successor.
double event_loop_ops_per_sec(unsigned m, long iters) {
  gc::EventQueue queue;
  gc::Rng rng(42);
  std::vector<gc::EventId> pending(m);
  for (unsigned i = 0; i < m; ++i) {
    pending[i] = queue.schedule(rng.uniform01() * 10.0, gc::EventType::kDeparture, i);
  }
  const auto start = Clock::now();
  for (long it = 0; it < iters; ++it) {
    const auto pick = static_cast<unsigned>(rng.uniform_below(m));
    queue.cancel(pending[pick]);
    pending[pick] = queue.schedule(queue.now() + rng.uniform01() * 10.0,
                                   gc::EventType::kDeparture, pick);
    const auto event = queue.pop();
    pending[event->subject] = queue.schedule(
        queue.now() + rng.uniform01() * 10.0, gc::EventType::kDeparture,
        event->subject);
  }
  return static_cast<double>(iters) * 4.0 / seconds_since(start);
}

double best_of(int reps, unsigned m, long iters) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    best = std::max(best, event_loop_ops_per_sec(m, iters));
  }
  return best;
}

// solve() ns/call over the DCP tick pattern: a recurring set of measured
// rates, so the run mixes cold scans with memo-cache hits exactly as a
// simulation does.
double solve_ns_per_call(const gc::Provisioner& solver, long iters) {
  const double max_rate = solver.config().max_feasible_arrival_rate();
  std::vector<double> rates;
  for (int i = 0; i < 64; ++i) {
    rates.push_back(max_rate * static_cast<double>(i) / 80.0);
  }
  double sink = 0.0;
  const auto start = Clock::now();
  for (long it = 0; it < iters; ++it) {
    sink += solver.solve(rates[static_cast<std::size_t>(it) % rates.size()]).speed;
  }
  const double ns = seconds_since(start) * 1e9 / static_cast<double>(iters);
  // Defeat dead-code elimination without benchmark:: helpers.
  if (sink < 0.0) std::fprintf(stderr, "%f", sink);
  return ns;
}

// solve_reliable() ns/call over the same tick pattern, with the availability
// target and wear cost live so every cold call runs the full
// base-count × spare-count scan.  The cache makes the steady state cheap;
// the baseline entry keeps the cold-scan cost from regressing unnoticed.
double solve_reliable_ns_per_call(const gc::Provisioner& solver, long iters) {
  gc::ReliabilityOptions reliability;
  reliability.mtbf_s = 7200.0;
  reliability.mttr_s = 180.0;
  reliability.availability_target = 0.99;
  reliability.max_spares = 6;
  reliability.cycles_to_failure = 2000.0;
  reliability.cycle_cost_j = 10000.0;
  const gc::ClusterConfig& config = solver.config();
  const double max_rate = config.max_feasible_arrival_rate();
  std::vector<double> rates;
  for (int i = 0; i < 64; ++i) {
    rates.push_back(max_rate * static_cast<double>(i) / 80.0);
  }
  double sink = 0.0;
  const auto start = Clock::now();
  for (long it = 0; it < iters; ++it) {
    sink += solver
                .solve_reliable(rates[static_cast<std::size_t>(it) % rates.size()],
                                config.max_servers,
                                /*m_committed=*/config.max_servers / 2,
                                /*horizon_s=*/25.0, reliability)
                .base.speed;
  }
  const double ns = seconds_since(start) * 1e9 / static_cast<double>(iters);
  if (sink < 0.0) std::fprintf(stderr, "%f", sink);
  return ns;
}

// The fig8 workload — three compressed WC98-like days — replayed under
// combined DCP and then failure-aware DCP, both sharing ONE Provisioner.
// Both runs see the identical arrival trace on the identical tick grid,
// and both DCP variants query the solver with raw measured rates (a job
// count over a fixed period — a discrete, recurring set of keys), so the
// second run re-queries keys the first already solved: the cross-run
// reuse the memo cache is built for, plus days 2-3 revisiting day-1-like
// load levels within each run.  (DVFS-only would be a poor cache witness:
// its EWMA-smoothed rate estimate is a fresh continuous value every tick,
// so nearly every query is a distinct key.)
gc::SolverCacheStats trace_replay_cache_stats() {
  const gc::ClusterConfig config = gc::bench_cluster_config();
  const double day_s = 2400.0;
  const auto profile = gc::make_wc98_like_profile(
      0.7 * config.max_feasible_arrival_rate(), /*days=*/3.0, /*seed=*/13, day_s);
  const gc::Trace trace = gc::Trace::from_profile(*profile, 3.0 * day_s, /*seed=*/13);

  const gc::Provisioner solver(config);
  gc::PolicyOptions popts;
  popts.dcp = gc::bench_dcp_params();
  const gc::PolicyKind kinds[2] = {gc::PolicyKind::kCombinedDcp,
                                   gc::PolicyKind::kDcpFailureAware};
  for (const gc::PolicyKind kind : kinds) {
    gc::Workload workload = gc::Workload::trace_replay(
        trace, gc::Distribution::exponential(config.mu_max), /*seed=*/21);
    const auto controller = gc::make_policy(kind, &solver, popts);
    gc::ClusterOptions cluster;
    cluster.num_servers = config.max_servers;
    cluster.power = config.power;
    cluster.transition = config.transition;
    cluster.initial_active = config.max_servers;
    gc::SimulationOptions sim;
    sim.t_ref_s = config.t_ref_s;
    sim.warmup_s = 2.0 * popts.dcp.long_period_s;
    // Observability at full blast: the replay measurement doubles as the
    // smoke test that a traced + time-series-recorded run stays within the
    // perf budget (both sinks are discarded afterwards).
    gc::TraceCollector trace_sink;
    gc::TimeSeriesRecorder ts_sink;
    sim.trace = &trace_sink;
    sim.timeseries = &ts_sink;
    (void)run_simulation(workload, cluster, *controller, sim);
  }
  return solver.cache_stats();
}

// One cell of the sharded scaling grid: a constant-rate trace replayed
// through run_sharded_simulation over an M-server fleet split into K
// shards, under the rule-based threshold autoscaler (no solver in the hot
// path, so the measurement is the DES core, not Provisioner enumeration).
// The arrival count grows with M so per-barrier O(M) work (reconcile
// scans, canonical folds) never dominates the per-event work being
// measured.  Fails the whole bench (exit, not a JSON entry) if the
// EventQueue capacity hint did not hold: a steady-state reallocation means
// expected_events_hint plumbing regressed.
struct ShardedCell {
  unsigned shards = 0;
  unsigned servers = 0;
  double events_per_sec = 0.0;
  double speedup = 1.0;     // vs the K = 1 cell at the same M
  double efficiency = 1.0;  // speedup / K
  // Engine self-profile (ShardProfile): how packed the barrier windows
  // were and how skewed the per-shard work was.  Imbalance explains a low
  // efficiency number: barrier waits, not per-event cost.
  double busy_fraction = 0.0;
  double imbalance = 0.0;
};

double sharded_cell_events_per_sec(unsigned k, unsigned m,
                                   gc::ShardProfile& shard_profile) {
  gc::ClusterConfig config = gc::bench_cluster_config();
  config.max_servers = m;

  const double horizon_s = 30.0;
  const auto arrivals = static_cast<double>(std::max(100000u, 2 * m));
  const gc::PiecewiseLinearRate profile(
      {{0.0, arrivals / horizon_s}, {horizon_s, arrivals / horizon_s}});
  const gc::Trace trace = gc::Trace::from_profile(profile, horizon_s, /*seed=*/7);
  const gc::Distribution job_size = gc::Distribution::exponential(config.mu_max);

  const gc::Provisioner solver(config);
  gc::PolicyOptions popts;
  popts.dcp = gc::bench_dcp_params();
  const auto controller = gc::make_policy(gc::PolicyKind::kThreshold, &solver, popts);

  gc::ClusterOptions cluster;
  cluster.num_servers = m;
  cluster.power = config.power;
  cluster.transition = config.transition;
  cluster.initial_active = m;
  cluster.dispatch_seed = 4242;

  gc::SimulationOptions sim;
  sim.t_ref_s = config.t_ref_s;
  // Generous per-shard headroom: concurrent pending events are bounded by
  // jobs in flight plus the tick/fault timers, far below this.
  sim.expected_events_hint = 1u << 16;

  gc::ShardedOptions sharded;
  sharded.num_shards = k;
  sharded.profile = &shard_profile;

  const auto start = Clock::now();
  const gc::SimResult result =
      run_sharded_simulation(trace, job_size, /*workload_seed=*/7, cluster,
                             *controller, sim, sharded);
  const double elapsed = seconds_since(start);

  const std::uint64_t reallocs =
      result.counters.counter_or("sharded.queue_reallocations", 0);
  if (reallocs != 0) {
    std::fprintf(stderr,
                 "perf_smoke: sharded K=%u M=%u: %llu EventQueue "
                 "reallocations in steady state (expected_events_hint "
                 "violated)\n",
                 k, m, static_cast<unsigned long long>(reallocs));
    std::exit(1);
  }
  const std::uint64_t events =
      result.counters.counter_or("sharded.shard_events_scheduled", 0);
  return static_cast<double>(events) / elapsed;
}

std::vector<ShardedCell> sharded_grid() {
  const unsigned shard_counts[4] = {1, 2, 4, 8};
  const unsigned fleet_sizes[3] = {1024, 16384, 131072};
  std::vector<ShardedCell> grid;
  for (const unsigned m : fleet_sizes) {
    double base = 0.0;
    for (const unsigned k : shard_counts) {
      ShardedCell cell;
      cell.shards = k;
      cell.servers = m;
      gc::ShardProfile shard_profile;
      cell.events_per_sec = sharded_cell_events_per_sec(k, m, shard_profile);
      cell.busy_fraction = shard_profile.busy_fraction();
      cell.imbalance = shard_profile.imbalance();
      if (k == 1) base = cell.events_per_sec;
      cell.speedup = base > 0.0 ? cell.events_per_sec / base : 0.0;
      cell.efficiency = cell.speedup / static_cast<double>(k);
      grid.push_back(cell);
    }
  }
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_core.json";

  const unsigned sizes[3] = {16, 256, 1024};
  double ops[3];
  for (int i = 0; i < 3; ++i) {
    (void)event_loop_ops_per_sec(sizes[i], 100000);  // warmup
    ops[i] = best_of(3, sizes[i], 1000000);
  }

  const gc::Provisioner solver(gc::bench_cluster_config());
  const double solve_ns = solve_ns_per_call(solver, 200000);
  const double solve_reliable_ns = solve_reliable_ns_per_call(solver, 200000);
  const gc::SolverCacheStats replay = trace_replay_cache_stats();
  const std::vector<ShardedCell> grid = sharded_grid();
  double speedup_k4_m16384 = 0.0;
  for (const ShardedCell& cell : grid) {
    if (cell.shards == 4 && cell.servers == 16384) speedup_k4_m16384 = cell.speedup;
  }

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_smoke: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"event_loop\": [\n");
  for (int i = 0; i < 3; ++i) {
    std::fprintf(out, "    {\"pending_events\": %u, \"events_per_sec\": %.6e}%s\n",
                 sizes[i], ops[i], i + 1 < 3 ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"solve_ns_per_call\": %.3f,\n"
               "  \"solve_reliable_ns_per_call\": %.3f,\n"
               "  \"solver_cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"hit_rate\": %.6f},\n",
               solve_ns, solve_reliable_ns,
               static_cast<unsigned long long>(replay.hits),
               static_cast<unsigned long long>(replay.misses), replay.hit_rate());
  std::fprintf(out, "  \"sharded\": [\n");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const ShardedCell& cell = grid[i];
    std::fprintf(out,
                 "    {\"shards\": %u, \"servers\": %u, "
                 "\"events_per_sec\": %.6e, \"speedup\": %.4f, "
                 "\"efficiency\": %.4f, \"busy_fraction\": %.4f, "
                 "\"imbalance\": %.4f}%s\n",
                 cell.shards, cell.servers, cell.events_per_sec, cell.speedup,
                 cell.efficiency, cell.busy_fraction, cell.imbalance,
                 i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"sharded_speedup_k4_m16384\": %.4f\n"
               "}\n",
               speedup_k4_m16384);
  std::fclose(out);

  std::printf("event loop  : M=16 %.3e  M=256 %.3e  M=1024 %.3e ops/sec\n",
              ops[0], ops[1], ops[2]);
  std::printf("solve       : %.1f ns/call (cached replay mix)\n", solve_ns);
  std::printf("solve_rel   : %.1f ns/call (cached replay mix, avail + wear)\n",
              solve_reliable_ns);
  std::printf("cache replay: %llu hits / %llu misses (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(replay.hits),
              static_cast<unsigned long long>(replay.misses),
              replay.hit_rate() * 100.0);
  for (const ShardedCell& cell : grid) {
    std::printf("sharded     : K=%u M=%-6u %.3e ev/s  speedup %.2fx  eff %.0f%%\n",
                cell.shards, cell.servers, cell.events_per_sec, cell.speedup,
                cell.efficiency * 100.0);
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
