// F6 — Transition-overhead compensation: DCP vs single-period control as
// the boot delay grows (the paper's DCP motivation figure).
//
// Expected shape: with near-zero boot delay the two controllers are
// comparable; as boots slow down, the reactive single-period controller's
// response time and violation rate climb (capacity arrives late and the
// frequency is stale between periods) while DCP stays near the guarantee
// at a small energy premium.
#include <iostream>

#include "exp/runner.h"
#include "util/table.h"

int main() {
  const double boot_delays[] = {0.0, 5.0, 10.0, 20.0, 40.0, 80.0};

  std::vector<gc::Cell> cells;
  for (const double boot : boot_delays) {
    gc::RunSpec spec;
    spec.config = gc::bench_cluster_config();
    spec.config.transition.boot_delay_s = boot;
    spec.policy_options.dcp = gc::bench_dcp_params();
    spec.seed = 707;
    const gc::Scenario scenario =
        gc::make_scenario(gc::ScenarioKind::kDiurnal, spec.config, 0.75, 88, 3600.0);
    for (const gc::PolicyKind policy :
         {gc::PolicyKind::kCombinedSinglePeriod, gc::PolicyKind::kCombinedDcp}) {
      gc::Cell cell{scenario, spec};
      cell.spec.policy = policy;
      cells.push_back(std::move(cell));
    }
    // Third variant: the single-period controller with the backlog-aware
    // planning rate (extension) — quantifies how much of the single-period
    // damage is recoverable without the DCP structure.
    gc::Cell backlog_cell{scenario, spec};
    backlog_cell.spec.policy = gc::PolicyKind::kCombinedSinglePeriod;
    backlog_cell.spec.policy_options.backlog_aware = true;
    cells.push_back(std::move(backlog_cell));
  }
  const auto results = gc::run_all(cells);

  gc::TablePrinter table(
      "Fig 6: DCP vs single-period control under growing boot delay (diurnal @75%)");
  table.column("boot delay", {.precision = 0, .unit = "s"})
      .column("single T", {.precision = 0, .unit = "ms"})
      .column("single viol", {.precision = 2, .unit = "%"})
      .column("single kWh", {.precision = 3})
      .column("dcp T", {.precision = 0, .unit = "ms"})
      .column("dcp viol", {.precision = 2, .unit = "%"})
      .column("dcp kWh", {.precision = 3})
      .column("single+bl T", {.precision = 0, .unit = "ms"})
      .column("single+bl viol", {.precision = 2, .unit = "%"})
      .column("single+bl kWh", {.precision = 3});

  std::size_t i = 0;
  for (const double boot : boot_delays) {
    const gc::SimResult& single = results[i++];
    const gc::SimResult& dcp = results[i++];
    const gc::SimResult& backlog = results[i++];
    table.row()
        .cell(boot)
        .cell(single.mean_response_s * 1e3)
        .cell(single.job_violation_ratio * 100.0)
        .cell(single.energy.total_j() / 3.6e6)
        .cell(dcp.mean_response_s * 1e3)
        .cell(dcp.job_violation_ratio * 100.0)
        .cell(dcp.energy.total_j() / 3.6e6)
        .cell(backlog.mean_response_s * 1e3)
        .cell(backlog.job_violation_ratio * 100.0)
        .cell(backlog.energy.total_j() / 3.6e6);
  }
  std::cout << table;
  return 0;
}
