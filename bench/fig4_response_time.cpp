// F4 — Simulated mean, p95 and p99 response time vs load, per policy.
//
// Constant-rate runs at increasing load levels.  Expected shape: every
// power-managed policy rides just under the 500 ms guarantee (the solver
// provisions for exactly t_ref); NPM sits far below it; nobody exceeds it
// except transiently near feasibility.
#include <iostream>

#include "exp/runner.h"
#include "util/table.h"

int main() {
  gc::RunSpec spec;
  spec.config = gc::bench_cluster_config();
  spec.policy_options.dcp = gc::bench_dcp_params();
  spec.seed = 404;

  const gc::PolicyKind policies[] = {
      gc::PolicyKind::kNpm, gc::PolicyKind::kDvfsOnly, gc::PolicyKind::kVovfOnly,
      gc::PolicyKind::kCombinedDcp};
  const double levels[] = {0.2, 0.35, 0.5, 0.65, 0.8, 0.9};

  // Build the full grid and run it in parallel.
  std::vector<gc::Cell> cells;
  for (const double level : levels) {
    const gc::Scenario scenario = gc::make_scenario(gc::ScenarioKind::kConstant,
                                                    spec.config, level, 17, 2400.0);
    for (const gc::PolicyKind policy : policies) {
      gc::Cell cell{scenario, spec};
      cell.spec.policy = policy;
      cells.push_back(std::move(cell));
    }
  }
  const std::vector<gc::SimResult> results = gc::run_all(cells);

  gc::TablePrinter table(
      "Fig 4: simulated response time vs load (t_ref = 500 ms; mean / p95 / "
      "p99 in ms)");
  table.column("load frac", {.precision = 2})
      .column("npm mean", {.precision = 0})
      .column("npm p95", {.precision = 0})
      .column("npm p99", {.precision = 0})
      .column("dvfs mean", {.precision = 0})
      .column("dvfs p95", {.precision = 0})
      .column("dvfs p99", {.precision = 0})
      .column("vovf mean", {.precision = 0})
      .column("vovf p95", {.precision = 0})
      .column("vovf p99", {.precision = 0})
      .column("comb mean", {.precision = 0})
      .column("comb p95", {.precision = 0})
      .column("comb p99", {.precision = 0})
      .column("SLA", {.precision = 0});

  std::size_t i = 0;
  for (const double level : levels) {
    table.row().cell(level);
    bool all_met = true;
    for (std::size_t p = 0; p < 4; ++p) {
      const gc::SimResult& r = results[i++];
      table.cell(r.mean_response_s * 1e3)
          .cell(r.p95_response_s * 1e3)
          .cell(r.p99_response_s * 1e3);
      all_met = all_met && r.sla_met(spec.config.t_ref_s);
    }
    table.cell(all_met ? "met" : "miss");
  }
  std::cout << table;
  return 0;
}
